"""Tests for the CLI and rulebook serialization."""

import json

import pytest

from repro.__main__ import main
from repro.learning import learn
from repro.learning.serialize import (load_rulebook, rulebook_from_dict,
                                      rulebook_to_dict, save_rulebook)


@pytest.fixture(scope="module")
def learned():
    return learn()


# ---------------------------------------------------------------------------
# Serialization.
# ---------------------------------------------------------------------------

def test_rulebook_roundtrip(tmp_path, learned):
    path = tmp_path / "rules.json"
    save_rulebook(learned.rulebook, str(path))
    loaded = load_rulebook(str(path))
    assert len(loaded) == len(learned.rulebook)
    assert loaded._shapes == learned.rulebook._shapes
    assert {rule.guest_pattern for rule in loaded.rules} == \
        {rule.guest_pattern for rule in learned.rulebook.rules}


def test_rulebook_roundtrip_preserves_coverage(learned):
    from repro.guest.asm import assemble
    from repro.guest.decoder import decode

    data = rulebook_to_dict(learned.rulebook)
    loaded = rulebook_from_dict(json.loads(json.dumps(data)))
    program = assemble("    add r0, r1, r2\n    svc #0", base=0)
    insns = [decode(int.from_bytes(program.data[i:i + 4], "little"), i)
             for i in range(0, 8, 4)]
    for insn in insns:
        assert loaded.covers(insn) == learned.rulebook.covers(insn)


def test_rulebook_rejects_unknown_format():
    with pytest.raises(ValueError):
        rulebook_from_dict({"format": 99, "rules": [], "shapes": []})


def test_saved_file_is_plain_json(tmp_path, learned):
    path = tmp_path / "rules.json"
    save_rulebook(learned.rulebook, str(path))
    data = json.loads(path.read_text())
    assert data["format"] == 1
    assert all("guest" in rule and "host" in rule for rule in data["rules"])


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "perlbench" in out and "rules-full" in out and "fig16" in out


def test_cli_run_workload(capsys):
    assert main(["run", "sjeng", "--engine", "tcg"]) == 0
    out = capsys.readouterr().out
    assert "118238" in out           # sjeng's checksum
    assert "cost per guest insn" in out


def test_cli_run_unknown_workload(capsys):
    assert main(["run", "nonesuch"]) == 2


def test_cli_bench_unknown(capsys):
    assert main(["bench", "fig99"]) == 2


def test_cli_exec_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
main:
    mov r0, #7
    bl updec
    mov r0, #0
    bl uexit
""")
    assert main(["exec", str(source), "--engine", "rules-base"]) == 0
    assert capsys.readouterr().out.startswith("7\n")


def test_cli_learn_and_save(tmp_path, capsys):
    path = tmp_path / "book.json"
    assert main(["learn", "--save", str(path)]) == 0
    assert path.exists()
    out = capsys.readouterr().out
    assert "parameterized rules" in out


# ---------------------------------------------------------------------------
# The persistent translation cache verb: repro cache info|clear|verify.
# ---------------------------------------------------------------------------

def test_cli_cache_info_on_missing_dir(tmp_path, capsys):
    root = tmp_path / "nonexistent"
    assert main(["cache", "info", str(root)]) == 0
    assert "translation cache" in capsys.readouterr().out
    assert main(["cache", "info", str(root), "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data == {"root": str(root), "stores": []}


def test_cli_cache_verify_on_empty_dir_is_ok(tmp_path, capsys):
    assert main(["cache", "verify", str(tmp_path)]) == 0
    assert "0 with problems" in capsys.readouterr().out


def test_cli_cache_lifecycle(tmp_path, capsys):
    """Populate via --cache-dir, then info -> verify -> tamper -> clear."""
    import os

    from repro.cache import iter_store_dirs

    root = tmp_path / "tc"
    assert main(["run", "sjeng", "--engine", "rules-full",
                 "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "118238" in out               # sjeng's checksum, unchanged
    assert "cache:" in out and "saved" in out

    # info: one store with entries, both table and JSON forms.
    assert main(["cache", "info", str(root), "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["stores"]) == 1
    assert data["stores"][0]["entries"] > 0
    assert data["stores"][0]["bytes"] > 0

    # verify: clean store passes.
    assert main(["cache", "verify", str(root)]) == 0
    assert "ok" in capsys.readouterr().out

    # A warm run loads the store and prints the warm-start line.
    assert main(["run", "sjeng", "--engine", "rules-full",
                 "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "118238" in out
    loaded = int(out.split("cache: ")[1].split(" loaded")[0])
    assert loaded > 0

    # Tamper with one entry: verify must exit non-zero and say why.
    store_dir = iter_store_dirs(str(root))[0]
    entries_path = os.path.join(store_dir, "entries.json")
    with open(entries_path) as handle:
        payload = json.load(handle)
    payload["entries"][0]["words"][0] ^= 2
    with open(entries_path, "w") as handle:
        json.dump(payload, handle)
    assert main(["cache", "verify", str(root)]) == 1
    assert "CORRUPT" in capsys.readouterr().out
    assert main(["cache", "verify", str(root), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert any("checksum mismatch" in problem
               for store in report["stores"]
               for problem in store["problems"])

    # The engine refuses the tampered entry but the run still succeeds.
    assert main(["run", "sjeng", "--engine", "rules-full",
                 "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "118238" in out
    assert "1 corrupt" in out

    # clear: removes the store; a second clear is a no-op.
    assert main(["cache", "clear", str(root)]) == 0
    assert "removed 1 store(s)" in capsys.readouterr().out
    assert iter_store_dirs(str(root)) == []
    assert main(["cache", "clear", str(root)]) == 0
    assert "removed 0 store(s)" in capsys.readouterr().out


def test_cli_cache_rejects_bad_action(capsys):
    with pytest.raises(SystemExit) as info:
        main(["cache", "frobnicate", "/tmp/x"])
    assert info.value.code == 2
