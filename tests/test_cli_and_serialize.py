"""Tests for the CLI and rulebook serialization."""

import json

import pytest

from repro.__main__ import main
from repro.learning import learn
from repro.learning.serialize import (load_rulebook, rulebook_from_dict,
                                      rulebook_to_dict, save_rulebook)


@pytest.fixture(scope="module")
def learned():
    return learn()


# ---------------------------------------------------------------------------
# Serialization.
# ---------------------------------------------------------------------------

def test_rulebook_roundtrip(tmp_path, learned):
    path = tmp_path / "rules.json"
    save_rulebook(learned.rulebook, str(path))
    loaded = load_rulebook(str(path))
    assert len(loaded) == len(learned.rulebook)
    assert loaded._shapes == learned.rulebook._shapes
    assert {rule.guest_pattern for rule in loaded.rules} == \
        {rule.guest_pattern for rule in learned.rulebook.rules}


def test_rulebook_roundtrip_preserves_coverage(learned):
    from repro.guest.asm import assemble
    from repro.guest.decoder import decode

    data = rulebook_to_dict(learned.rulebook)
    loaded = rulebook_from_dict(json.loads(json.dumps(data)))
    program = assemble("    add r0, r1, r2\n    svc #0", base=0)
    insns = [decode(int.from_bytes(program.data[i:i + 4], "little"), i)
             for i in range(0, 8, 4)]
    for insn in insns:
        assert loaded.covers(insn) == learned.rulebook.covers(insn)


def test_rulebook_rejects_unknown_format():
    with pytest.raises(ValueError):
        rulebook_from_dict({"format": 99, "rules": [], "shapes": []})


def test_saved_file_is_plain_json(tmp_path, learned):
    path = tmp_path / "rules.json"
    save_rulebook(learned.rulebook, str(path))
    data = json.loads(path.read_text())
    assert data["format"] == 1
    assert all("guest" in rule and "host" in rule for rule in data["rules"])


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "perlbench" in out and "rules-full" in out and "fig16" in out


def test_cli_run_workload(capsys):
    assert main(["run", "sjeng", "--engine", "tcg"]) == 0
    out = capsys.readouterr().out
    assert "118238" in out           # sjeng's checksum
    assert "cost per guest insn" in out


def test_cli_run_unknown_workload(capsys):
    assert main(["run", "nonesuch"]) == 2


def test_cli_bench_unknown(capsys):
    assert main(["bench", "fig99"]) == 2


def test_cli_exec_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
main:
    mov r0, #7
    bl updec
    mov r0, #0
    bl uexit
""")
    assert main(["exec", str(source), "--engine", "rules-base"]) == 0
    assert capsys.readouterr().out.startswith("7\n")


def test_cli_learn_and_save(tmp_path, capsys):
    path = tmp_path / "book.json"
    assert main(["learn", "--save", str(path)]) == 0
    assert path.exists()
    out = capsys.readouterr().out
    assert "parameterized rules" in out
