"""Unit tests for the harness: report rendering, runner, cost model."""

import pytest

from repro.common import costmodel
from repro.common.errors import ReproError
from repro.harness import (ENGINE_SPECS, format_table, geomean, percent,
                           run_cached, run_workload)
from repro.harness.runner import clear_cache, make_machine
from repro.workloads import ALL_WORKLOADS
from repro.workloads.spec import Workload


def test_geomean_basics():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([1.0]) == 1.0
    assert geomean([]) == 0.0
    assert geomean([0.0, 4.0]) == 4.0  # zeros are skipped


def test_percent():
    assert percent(1, 4) == 25.0
    assert percent(1, 0) == 0.0


def test_format_table_alignment():
    text = format_table(["A", "Blong"], [["x", 1.234], ["yy", 10.0]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text and "10.00" in text
    # Columns align: every row has the same separator positions.
    assert lines[2].startswith("-")


def test_run_workload_rejects_wrong_output():
    bad = Workload("bad", body="""
main:
    mov r0, #1
    bl updec
    mov r0, #0
    bl uexit
""", expected_output="2\n")
    with pytest.raises(ReproError):
        run_workload(bad, "interp")


def test_run_workload_rejects_nonzero_exit():
    bad = Workload("bad-exit", body="""
main:
    mov r0, #3
    bl uexit
""")
    with pytest.raises(ReproError):
        run_workload(bad, "tcg")


def test_run_cached_reuses_results():
    clear_cache()
    workload = ALL_WORKLOADS["sjeng"]
    first = run_cached(workload, "interp")
    second = run_cached(workload, "interp")
    assert first is second
    clear_cache()


def test_make_machine_applies_device_setup():
    workload = Workload("devcheck", body="""
main:
    mov r0, #0
    bl uexit
""", disk_image=b"HELLO", nic_packets=[b"\x01\x02"])
    machine = make_machine(workload, "tcg")
    assert bytes(machine.blockdev.image[:5]) == b"HELLO"
    assert len(machine.nic.rx_queue) == 1


def test_unknown_engine_rejected():
    workload = ALL_WORKLOADS["sjeng"]
    with pytest.raises(ValueError):
        make_machine(workload, "jit-9000")


def test_engine_specs_all_construct():
    workload = Workload("tiny", body="""
main:
    mov r0, #0
    bl uexit
""")
    for engine in ENGINE_SPECS:
        result = run_workload(workload, engine)
        assert result.exit_code == 0


def test_cost_model_sanity():
    """Constants the experiments rely on keep their documented ordering."""
    assert costmodel.COST_LAZY_FLAGS_PARSE < costmodel.COST_PAGE_WALK
    assert costmodel.COST_SOFTFLOAT > costmodel.HELPER_CALL_OVERHEAD
    assert costmodel.COST_BLOCK_SECTOR_IO > 10 * costmodel.COST_MMIO_ACCESS
    assert costmodel.COST_TRANSLATE_PER_INSN > costmodel.COST_TB_LOOKUP
