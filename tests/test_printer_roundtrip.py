"""Property: the instruction printer emits valid assembler syntax.

For random decodable machine words, ``str(decode(word))`` must assemble
back to an instruction with identical semantics-bearing fields.  This
pins the printer and the assembler to each other — useful because the
learning pipeline parameterizes rules over printed text.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AssemblerError, DecodingError
from repro.guest.asm import assemble
from repro.guest.decoder import decode
from repro.guest.isa import Cond, Op

#: fields that define an instruction's semantics.
_FIELDS = ("op", "cond", "set_flags", "rd", "rn", "rm", "rs",
           "mem_offset_imm", "mem_offset_reg", "mem_shift",
           "mem_shift_imm", "pre_indexed", "add_offset", "writeback",
           "reglist", "before", "increment", "target", "imm", "spsr",
           "cp_op1", "cp_crn", "cp_crm", "cp_op2", "cps_enable",
           "fd", "fn", "fm")

#: printer/assembler asymmetries that are intentional:
#: - MSR with an empty field mask prints no field suffix;
#: - post-indexed transfers with offset 0 print "#0" (no-op add).
def _canonical(insn):
    values = {}
    for name in _FIELDS:
        value = getattr(insn, name)
        if name == "imm" and insn.op is Op.MSR:
            value = value or 0xF
        values[name] = value
    if insn.op2 is not None:
        values["op2"] = str(insn.op2)
    return values


@settings(max_examples=400)
@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_printer_assembler_roundtrip(word):
    try:
        insn = decode(word, 0x2000)
    except DecodingError:
        return
    if insn.op is Op.MSR and insn.imm == 0:
        return  # an empty field mask is unprintable (and useless)
    if insn.op in (Op.B, Op.BL) and insn.cond == Cond.AL and \
            str(insn).startswith("b 0x"):
        pass  # branch targets print as absolute hex: parseable
    text = str(insn)
    try:
        program = assemble("    " + text, base=0x2000)
    except AssemblerError as exc:
        raise AssertionError(f"printer produced unparseable text "
                             f"{text!r}: {exc}") from exc
    word2 = int.from_bytes(program.data[:4], "little")
    insn2 = decode(word2, 0x2000)
    assert _canonical(insn2) == _canonical(insn), \
        f"{text!r}: {word:#x} -> {word2:#x}"
