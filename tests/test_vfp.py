"""Tests for the VFP single-precision extension (paper footnote 3)."""

import struct

import pytest

from repro.common.f32 import (f32_add, f32_compare, f32_mul, f32_sub,
                              from_float, to_float)
from repro.core import OptLevel, make_rule_engine
from repro.guest.decoder import decode
from repro.guest.encoder import encode
from repro.guest.isa import ArmInsn, Op
from repro.workloads.specfp import SPECFP_WORKLOADS
from tests.support import run_workload
from tests.test_rule_engine import LEVELS


def bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


# ---------------------------------------------------------------------------
# binary32 arithmetic helpers.
# ---------------------------------------------------------------------------

def test_f32_roundtrip():
    for value in (0.0, 1.5, -2.25, 3.4e38, 1e-40):
        assert to_float(from_float(value)) == struct.unpack(
            "<f", struct.pack("<f", value))[0]


def test_f32_add_rounds_to_single():
    # 1 + 2^-30 is not representable in binary32: rounds back to 1.0.
    one = bits(1.0)
    tiny = bits(2.0 ** -30)
    assert f32_add(one, tiny) == one


def test_f32_compare_cases():
    assert f32_compare(bits(1.0), bits(2.0)) == 0b1000   # less
    assert f32_compare(bits(2.0), bits(2.0)) == 0b0110   # equal
    assert f32_compare(bits(3.0), bits(2.0)) == 0b0010   # greater
    nan = 0x7FC00000
    assert f32_compare(nan, bits(1.0)) == 0b0011         # unordered


def test_f32_mul_overflow_is_infinity():
    big = bits(3e38)
    assert f32_mul(big, big) == bits(float("inf"))


# ---------------------------------------------------------------------------
# Encoding round trips.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("insn", [
    ArmInsn(op=Op.VADD, fd=1, fn=2, fm=31),
    ArmInsn(op=Op.VSUB, fd=30, fn=0, fm=1),
    ArmInsn(op=Op.VMUL, fd=7, fn=7, fm=7),
    ArmInsn(op=Op.VCMP, fd=9, fm=10),
    ArmInsn(op=Op.VLDR, fd=11, rn=4, mem_offset_imm=128),
    ArmInsn(op=Op.VSTR, fd=12, rn=13, mem_offset_imm=4, add_offset=False),
    ArmInsn(op=Op.VMOVSR, fn=13, rd=3),
    ArmInsn(op=Op.VMOVRS, fn=14, rd=12),
])
def test_vfp_codec_roundtrip(insn):
    out = decode(encode(insn), 0)
    assert out.op == insn.op
    for name in ("fd", "fn", "fm", "rd", "rn", "mem_offset_imm",
                 "add_offset"):
        assert getattr(out, name) == getattr(insn, name)


# ---------------------------------------------------------------------------
# Differential execution across engines.
# ---------------------------------------------------------------------------

VFP_SEMANTICS = r"""
main:
    ldr r4, =USER_HEAP
    ldr r0, =0x3FC00000      @ 1.5
    str r0, [r4]
    ldr r0, =0x40100000      @ 2.25
    str r0, [r4, #4]
    vldr s0, [r4]
    vldr s1, [r4, #4]
    vadd.f32 s2, s0, s1
    vsub.f32 s3, s1, s0
    vmul.f32 s4, s2, s3
    vstr s2, [r4, #8]
    vstr s3, [r4, #12]
    vstr s4, [r4, #16]
    ldr r0, [r4, #8]
    bl uphex                 @ 3.75
    ldr r0, [r4, #12]
    bl uphex                 @ 0.75
    ldr r0, [r4, #16]
    bl uphex                 @ 2.8125
    @ compares drive the integer condition codes through vmrs
    vcmp.f32 s1, s0
    vmrs r5, fpscr
    mov r0, r5, lsr #28
    bl updec                 @ greater: C -> 2
    vcmp.f32 s0, s0
    vmrs r5, fpscr
    mov r0, r5, lsr #28
    bl updec                 @ equal: ZC -> 6
    @ register transfers
    ldr r6, =0xC0490FDB      @ -3.14159...
    vmov s9, r6
    vmov r7, s9
    cmp r6, r7
    moveq r0, #0
    movne r0, #9
    bl uexit
"""


def test_vfp_semantics_on_reference():
    code, text, _ = run_workload(VFP_SEMANTICS, engine="interp")
    assert code == 0
    assert text == "40700000\n3f400000\n40340000\n2\n6\n"


@pytest.mark.parametrize("level", LEVELS)
def test_vfp_agrees_across_rule_levels(level):
    reference = run_workload(VFP_SEMANTICS, engine="interp")[:2]
    assert run_workload(VFP_SEMANTICS, engine="tcg")[:2] == reference
    outcome = run_workload(VFP_SEMANTICS, engine="rules",
                           rule_engine_factory=make_rule_engine(level))[:2]
    assert outcome == reference


@pytest.mark.parametrize("name", sorted(SPECFP_WORKLOADS))
def test_fp_workloads_match_expected(name):
    workload = SPECFP_WORKLOADS[name]
    code, text, _ = run_workload(workload.body, engine="rules",
                                 rule_engine_factory=make_rule_engine(
                                     OptLevel.FULL),
                                 max_insns=workload.max_insns)
    assert code == 0
    assert text == workload.expected_output


def test_fp_rules_need_no_coordination():
    """A pure FP arithmetic block emits zero sync instructions."""
    from repro.core.engine import RuleEngine
    from repro.guest.asm import assemble
    from repro.miniqemu.machine import Machine

    machine = Machine(engine="tcg")
    machine.memory.load_program(assemble("""
    vadd.f32 s0, s1, s2
    vmul.f32 s3, s0, s0
    vsub.f32 s4, s3, s1
    bx lr
""", base=0x40000))
    engine = RuleEngine(machine, level=OptLevel.FULL)
    tb = engine.translate(0x40000, 0)
    assert tb.meta["sync_insns"] == 0
    sse = [insn for insn in tb.code if "ss" in insn.op.value]
    assert len(sse) == 9  # 3 ops x (movss, op, movss)
