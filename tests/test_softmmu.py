"""Unit tests: physical memory map, TLB, page-table walker, guest bus."""

import pytest

from repro.common.errors import BusError, MemoryFault
from repro.guest.cpu import GuestCpu, MODE_SVC, MODE_USR
from repro.softmmu import (ACCESS_CODE, ACCESS_READ, ACCESS_WRITE, GuestBus,
                           MMU_IDX_KERNEL, MMU_IDX_USER, PAGE_SIZE,
                           PageWalker, PhysicalMemoryMap, SoftTlb)
from repro.softmmu.pagetable import (PERM_EXEC, PERM_READ, PERM_USER,
                                     PERM_WRITE, Translation)

RAM_HOST_BASE = 0x40000000


@pytest.fixture
def memory():
    memory = PhysicalMemoryMap()
    memory.add_ram(0, 1 << 20)
    return memory


class _Dev:
    def __init__(self):
        self.last = None

    def mmio_read(self, offset, size):
        return 0xDEAD0000 | offset

    def mmio_write(self, offset, size, value):
        self.last = (offset, size, value)


# ---------------------------------------------------------------------------
# Physical map.
# ---------------------------------------------------------------------------

def test_ram_read_write(memory):
    memory.write(0x100, 4, 0x12345678)
    assert memory.read(0x100, 4) == 0x12345678
    assert memory.read(0x100, 1) == 0x78
    assert memory.read(0x103, 1) == 0x12


def test_unmapped_access_raises(memory):
    with pytest.raises(BusError):
        memory.read(0x90000000, 4)


def test_overlapping_regions_rejected(memory):
    with pytest.raises(ValueError):
        memory.add_ram(0x1000, 0x1000)


def test_device_dispatch(memory):
    device = _Dev()
    memory.add_device(0x10000000, 0x1000, device, "dev")
    assert memory.read(0x10000004, 4) == 0xDEAD0004
    memory.write(0x10000008, 4, 99)
    assert device.last == (8, 4, 99)


def test_bulk_rejects_mmio(memory):
    memory.add_device(0x10000000, 0x1000, _Dev(), "dev")
    with pytest.raises(BusError):
        memory.read_bytes(0x10000000, 16)


# ---------------------------------------------------------------------------
# TLB.
# ---------------------------------------------------------------------------

def test_tlb_miss_then_hit():
    tlb = SoftTlb(RAM_HOST_BASE)
    assert tlb.lookup(MMU_IDX_KERNEL, 0x1234, ACCESS_READ) is None
    tlb.fill(MMU_IDX_KERNEL, Translation(0x1000, 0x5000,
                                         PERM_READ | PERM_WRITE | PERM_EXEC))
    assert tlb.lookup(MMU_IDX_KERNEL, 0x1234, ACCESS_READ) == 0x5234
    assert tlb.lookup(MMU_IDX_KERNEL, 0x1234, ACCESS_WRITE) == 0x5234
    # A different page mapping to the same set misses.
    assert tlb.lookup(MMU_IDX_KERNEL, 0x101234, ACCESS_READ) is None


def test_tlb_user_permission_split():
    tlb = SoftTlb(RAM_HOST_BASE)
    tlb.fill(MMU_IDX_USER, Translation(0x2000, 0x2000,
                                       PERM_READ | PERM_WRITE | PERM_EXEC))
    # Privileged-only page: invisible to the user index.
    assert tlb.lookup(MMU_IDX_USER, 0x2100, ACCESS_READ) is None
    tlb.fill(MMU_IDX_USER, Translation(0x2000, 0x2000,
                                       PERM_READ | PERM_WRITE | PERM_EXEC |
                                       PERM_USER))
    assert tlb.lookup(MMU_IDX_USER, 0x2100, ACCESS_READ) == 0x2100


def test_tlb_flush():
    tlb = SoftTlb(RAM_HOST_BASE)
    tlb.fill(MMU_IDX_KERNEL, Translation(0x3000, 0x3000,
                                         PERM_READ | PERM_WRITE | PERM_EXEC |
                                         PERM_USER))
    tlb.flush()
    assert tlb.lookup(MMU_IDX_KERNEL, 0x3000, ACCESS_READ) is None


def test_tlb_packed_layout_matches_api():
    """Generated code reads the packed bytes; the API must agree."""
    tlb = SoftTlb(RAM_HOST_BASE)
    tlb.fill(MMU_IDX_KERNEL, Translation(0x7000, 0x9000,
                                         PERM_READ | PERM_EXEC))
    offset = tlb.entry_offset(MMU_IDX_KERNEL, 0x7000)
    addr_read = int.from_bytes(tlb.data[offset:offset + 4], "little")
    addr_write = int.from_bytes(tlb.data[offset + 4:offset + 8], "little")
    addend = int.from_bytes(tlb.data[offset + 12:offset + 16], "little")
    assert addr_read == 0x7000
    assert addr_write == 0xFFFFFFFF  # not writable
    assert (0x7000 + addend) & 0xFFFFFFFF == RAM_HOST_BASE + 0x9000


# ---------------------------------------------------------------------------
# Page walker: build short-descriptor tables by hand.
# ---------------------------------------------------------------------------

def _build_tables(memory, l1_base=0x20000, l2_base=0x24000):
    # Section for MiB 1 (user RW).
    memory.write(l1_base + 4 * 1, 4, (1 << 20) | 0xC00 | 0b10)
    # Section for MiB 2 (privileged only).
    memory.write(l1_base + 4 * 2, 4, (2 << 20) | 0x400 | 0b10)
    # L2 table for MiB 0.
    memory.write(l1_base, 4, l2_base | 0b01)
    # Page 3 of MiB 0 -> physical page 8, user ok.
    memory.write(l2_base + 4 * 3, 4, (8 << 12) | 0x30 | 0b10)
    return l1_base


def test_walker_section(memory):
    walker = PageWalker(memory)
    ttbr = _build_tables(memory)
    translation = walker.walk(ttbr, 0x112345, is_write=True, is_user=True)
    assert translation.paddr_page == 0x112000
    assert translation.perms & PERM_USER


def test_walker_small_page(memory):
    walker = PageWalker(memory)
    ttbr = _build_tables(memory)
    translation = walker.walk(ttbr, 0x3ABC, is_write=False, is_user=True)
    assert translation.paddr_page == 0x8000
    assert translation.vaddr_page == 0x3000


def test_walker_translation_fault(memory):
    walker = PageWalker(memory)
    ttbr = _build_tables(memory)
    with pytest.raises(MemoryFault):
        walker.walk(ttbr, 0x300000, is_write=False, is_user=False)
    with pytest.raises(MemoryFault):
        walker.walk(ttbr, 0x5000, is_write=False, is_user=False)


def test_walker_permission_fault(memory):
    walker = PageWalker(memory)
    ttbr = _build_tables(memory)
    with pytest.raises(MemoryFault) as excinfo:
        walker.walk(ttbr, 0x212345, is_write=False, is_user=True)
    assert excinfo.value.reason == "permission"
    # Privileged access is fine.
    walker.walk(ttbr, 0x212345, is_write=True, is_user=False)


# ---------------------------------------------------------------------------
# GuestBus end to end.
# ---------------------------------------------------------------------------

def test_bus_mmu_disabled_is_identity(memory):
    cpu = GuestCpu()
    bus = GuestBus(cpu, memory, SoftTlb(RAM_HOST_BASE))
    bus.store(0x500, 4, 0xCAFEBABE)
    assert bus.load(0x500, 4) == 0xCAFEBABE
    assert memory.read(0x500, 4) == 0xCAFEBABE


def test_bus_translates_and_fills_tlb(memory):
    cpu = GuestCpu()
    tlb = SoftTlb(RAM_HOST_BASE)
    bus = GuestBus(cpu, memory, tlb)
    ttbr = _build_tables(memory)
    cpu.cp15.ttbr0 = ttbr
    cpu.cp15.sctlr = 1
    # Virtual page 3 maps to physical page 8.
    memory.write(0x8010, 4, 77)
    assert bus.load(0x3010, 4) == 77
    assert tlb.lookup(0, 0x3010, ACCESS_READ) == 0x8010
    fills = tlb.fill_count
    bus.load(0x3014, 4)  # now a TLB hit
    assert tlb.fill_count == fills


def test_bus_user_mode_fault(memory):
    cpu = GuestCpu()
    bus = GuestBus(cpu, memory, SoftTlb(RAM_HOST_BASE))
    cpu.cp15.ttbr0 = _build_tables(memory)
    cpu.cp15.sctlr = 1
    cpu.write_cpsr((cpu.cpsr & ~0x1F) | MODE_USR)
    with pytest.raises(MemoryFault):
        bus.load(0x212000, 4)  # privileged section


def test_bus_cross_page_access(memory):
    cpu = GuestCpu()
    bus = GuestBus(cpu, memory, SoftTlb(RAM_HOST_BASE))
    boundary = PAGE_SIZE - 2
    bus.store(boundary, 4, 0x11223344)
    assert bus.load(boundary, 4) == 0x11223344
