"""Differential fuzzing with control flow.

Structured random programs made of several basic blocks connected by
conditional forward branches and back-edges — this exercises block
chaining, the two-successor TB terminators and, crucially, the inter-TB
sync elimination (flags live across chained block boundaries).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OptLevel, make_rule_engine
from tests.test_fuzz_differential import FOOTER, HEADER, run_engine

_REGS = [f"r{i}" for i in range(6)]  # r6 is the loop counter
_COND = ["eq", "ne", "cs", "cc", "mi", "pl", "hi", "ls", "ge", "lt", "gt",
         "le"]


@st.composite
def block_body(draw):
    """A few flag-relevant instructions for one basic block."""
    lines = []
    for _ in range(draw(st.integers(1, 5))):
        choice = draw(st.integers(0, 4))
        rd = draw(st.sampled_from(_REGS))
        rn = draw(st.sampled_from(_REGS))
        if choice == 0:
            lines.append(f"cmp {rn}, #{draw(st.sampled_from([0, 1, 0xFF]))}")
        elif choice == 1:
            lines.append(f"adds {rd}, {rn}, #{draw(st.integers(0, 255))}")
        elif choice == 2:
            lines.append(f"sub {rd}, {rn}, #{draw(st.integers(0, 255))}")
        elif choice == 3:
            cond = draw(st.sampled_from(_COND))
            lines.append(f"add{cond} {rd}, {rd}, #1")
        else:
            lines.append(f"ldr {rd}, [r7, #{draw(st.integers(0, 30)) * 4}]")
    return lines


@st.composite
def branchy_program(draw):
    """blocks connected by conditional forward branches.

    Shape per block i:  <body>; b<cond> Lj (j > i);  fall through.
    A bounded counted back-edge at the end exercises chained loops.
    """
    count = draw(st.integers(3, 6))
    bodies = [draw(block_body()) for _ in range(count)]
    lines = []
    for index, body in enumerate(bodies):
        lines.append(f"L{index}:")
        lines.extend("    " + text for text in body)
        if index < count - 1:
            target = draw(st.integers(index + 1, count - 1))
            cond = draw(st.sampled_from(_COND))
            lines.append(f"    b{cond} L{target}")
    # Counted loop over the whole region (r6 as the counter).
    lines.insert(0, "    mov r6, #3")
    lines.append("    subs r6, r6, #1")
    lines.append("    bne L0")
    return "\n".join(lines)


@settings(max_examples=20, deadline=None)
@given(branchy_program())
def test_branchy_programs_agree(body):
    source = HEADER + body + FOOTER
    reference = run_engine(source, "interp")
    assert reference == run_engine(source, "tcg"), "tcg diverged"
    for level in (OptLevel.BASE, OptLevel.ELIMINATION, OptLevel.FULL):
        outcome = run_engine(source, "rules", make_rule_engine(level))
        assert outcome == reference, f"rules-{level.name} diverged"
