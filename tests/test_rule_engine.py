"""Differential tests: rule engine (all opt levels) vs the reference.

Every workload must produce identical console output and exit codes on
the interpreter, the TCG baseline and the rule engine at every
optimization level — the master invariant of the reproduction.
"""

import pytest

from repro.core import EmptyRulebook, OptLevel, make_rule_engine
from tests.support import run_workload

LEVELS = [OptLevel.BASE, OptLevel.REDUCTION, OptLevel.ELIMINATION,
          OptLevel.FULL]


def run_all_engines(body, max_insns=2_000_000, **kwargs):
    results = {}
    results["interp"] = run_workload(body, engine="interp",
                                     max_insns=max_insns, **kwargs)[:2]
    results["tcg"] = run_workload(body, engine="tcg",
                                  max_insns=max_insns, **kwargs)[:2]
    for level in LEVELS:
        results[f"rules-{level.name}"] = run_workload(
            body, engine="rules",
            rule_engine_factory=make_rule_engine(level),
            max_insns=max_insns, **kwargs)[:2]
    return results


def assert_all_agree(body, **kwargs):
    results = run_all_engines(body, **kwargs)
    reference = results["interp"]
    for name, outcome in results.items():
        assert outcome == reference, \
            f"{name} diverged: {outcome!r} != {reference!r}"
    return reference


# ---------------------------------------------------------------------------
# Flag-semantics workloads: each stresses one part of the CCR protocol.
# ---------------------------------------------------------------------------

CARRY_CHAIN = r"""
main:
    @ 64-bit addition and subtraction via adc/sbc (carry composition).
    ldr r4, =0xFFFFFFFF
    ldr r5, =0x00000001
    adds r0, r4, r4        @ lo
    adc r1, r5, r5         @ hi with carry
    bl uphex               @ r0 = lo
    mov r0, r1
    bl updec               @ hi = 3
    subs r0, r5, r4        @ 1 - 0xFFFFFFFF: borrow
    sbc r1, r5, r5         @ 1 - 1 - borrow = -1
    bl uphex
    mov r0, r1
    bl uphex
    mov r0, #0
    bl uexit
"""

CONDITIONS = r"""
main:
    mov r4, #0             @ pass counter
    @ unsigned compares
    mov r0, #5
    cmp r0, #3
    addhi r4, r4, #1       @ 5 >u 3
    addls r4, r4, #100
    cmp r0, #5
    addcs r4, r4, #1       @ C set on equal
    addeq r4, r4, #1
    addne r4, r4, #100
    cmp r0, #9
    addcc r4, r4, #1       @ 5 <u 9
    @ signed compares
    mvn r1, #0             @ -1
    cmp r1, #1
    addlt r4, r4, #1
    addge r4, r4, #100
    addle r4, r4, #1
    addgt r4, r4, #100
    cmp r0, r1             @ 5 vs -1 signed
    addgt r4, r4, #1
    addmi r4, r4, #100
    @ overflow
    ldr r2, =0x7FFFFFFF
    adds r3, r2, r2
    addvs r4, r4, #1
    addvc r4, r4, #100
    addmi r4, r4, #1       @ result negative
    mov r0, r4
    bl updec               @ expect 9
    mov r0, #0
    bl uexit
"""

SHIFTER_CARRY = r"""
main:
    mov r4, #0
    ldr r0, =0x80000001
    movs r1, r0, lsr #1    @ carry out = bit0 = 1
    addcs r4, r4, #1
    movs r1, r0, lsl #1    @ carry out = bit31 = 1
    addcs r4, r4, #1
    movs r1, r0, asr #1    @ sign fill, carry = 1
    addcs r4, r4, #1
    addmi r4, r4, #1       @ asr keeps sign
    ands r2, r0, #0xC0000000  @ rotated imm: C = imm[31] = 1
    addcs r4, r4, #1
    tst r0, #1             @ small imm: C unchanged (still 1)
    addcs r4, r4, #1
    mov r0, r4
    bl updec               @ expect 6
    mov r0, #0
    bl uexit
"""

CONDITIONAL_MEMORY = r"""
main:
    ldr r4, =USER_HEAP
    mov r5, #10
    mov r6, #0
loop:
    cmp r5, #5
    strge r5, [r4, r5, lsl #2]   @ conditional store
    ldrlt r7, =99
    strlt r7, [r4, r5, lsl #2]
    subs r5, r5, #1
    bne loop
    mov r5, #10
sum:
    ldr r3, [r4, r5, lsl #2]
    add r6, r6, r3
    subs r5, r5, #1
    bne sum
    mov r0, r6
    bl updec               @ 5+6+...+10 + 99*4 = 45-... compute below
    mov r0, #0
    bl uexit
"""

LDM_STM = r"""
main:
    mov r0, #1
    mov r1, #2
    mov r2, #3
    mov r3, #4
    ldr r4, =USER_HEAP
    stmia r4!, {r0-r3}
    stmdb r4, {r0-r3}
    ldr r5, =USER_HEAP
    ldmia r5!, {r6-r9}
    add r0, r6, r7
    add r0, r0, r8
    add r0, r0, r9
    bl updec               @ 10
    push {r0-r3}
    pop {r6-r9}
    add r0, r6, r9
    bl updec               @ 10+4... r6=r0(10), r9=r3(4) -> 14
    mov r0, #0
    bl uexit
"""

MULTIPLY = r"""
main:
    mov r4, #7
    mov r5, #6
    mul r6, r4, r5
    mla r7, r6, r5, r4     @ 42*6+7 = 259
    mov r0, r7
    bl updec
    muls r0, r4, r5
    moveq r0, #996
    bl updec               @ 42
    mov r0, #0
    bl uexit
"""


@pytest.mark.parametrize("body,name", [
    (CARRY_CHAIN, "carry_chain"),
    (CONDITIONS, "conditions"),
    (SHIFTER_CARRY, "shifter_carry"),
    (CONDITIONAL_MEMORY, "conditional_memory"),
    (LDM_STM, "ldm_stm"),
    (MULTIPLY, "multiply"),
])
def test_engines_agree(body, name):
    assert_all_agree(body)


def test_conditions_expected_value():
    code, text, _ = run_workload(CONDITIONS, engine="interp")
    assert text == "9\n"
    assert code == 0


def test_shifter_carry_expected_value():
    code, text, _ = run_workload(SHIFTER_CARRY, engine="interp")
    assert text == "6\n"


def test_empty_rulebook_still_correct():
    """With zero rule coverage everything goes through the QEMU fallback."""
    body = CONDITIONS
    reference = run_workload(body, engine="interp")[:2]
    outcome = run_workload(
        body, engine="rules",
        rule_engine_factory=make_rule_engine(OptLevel.FULL,
                                             rulebook=EmptyRulebook()))[:2]
    assert outcome == reference


def test_unoptimized_rules_slower_than_optimized():
    body = CONDITIONS
    costs = {}
    for level in (OptLevel.BASE, OptLevel.FULL):
        _, _, machine = run_workload(
            body, engine="rules",
            rule_engine_factory=make_rule_engine(level))
        costs[level] = machine.stats()["engine.host_cost"]
    assert costs[OptLevel.FULL] < costs[OptLevel.BASE]


def test_interrupts_during_rule_execution():
    """A fast timer forces many interrupt deliveries through rule code."""
    body = r"""
main:
    ldr r4, =50000
spin:
    subs r4, r4, #1
    bne spin
    bl uticks
    cmp r0, #10
    movge r0, #0
    movlt r0, #1
    bl uexit
"""
    for level in LEVELS:
        code, _, machine = run_workload(
            body, engine="rules", timer_reload=500,
            rule_engine_factory=make_rule_engine(level))
        assert code == 0, f"{level.name}: not enough ticks"
        assert machine.irq_delivered > 10
