"""Smoke tests: every example script runs end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "44100" in out
    assert "identical guest behaviour" in out


def test_inspect_translation(capsys):
    out = run_example("inspect_translation.py", capsys)
    assert "MiniQEMU" in out
    assert "rule-based, BASE" in out
    assert "rule-based, FULL" in out
    assert "[sync]" in out          # coordination is visible
    assert "pushfd" in out          # the packed save


def test_interrupt_latency(capsys):
    out = run_example("interrupt_latency.py", capsys)
    assert "IRQs delivered" in out
    assert "Lazy flag parses" in out


def test_floating_point(capsys):
    out = run_example("floating_point.py", capsys)
    assert "helper calls" in out
    assert "0 sync instructions" in out
    assert "Speedup" in out


@pytest.mark.slow
def test_learn_rules(capsys):
    out = run_example("learn_rules.py", capsys)
    assert "parameterized rules" in out
    assert "dynamic rule coverage" in out
