"""Encoder/decoder round-trip tests for the ARM guest ISA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import decode_arm_imm, encode_arm_imm, ror32
from repro.common.errors import DecodingError
from repro.guest.decoder import decode
from repro.guest.encoder import encode
from repro.guest.isa import (ArmInsn, Cond, Op, Operand2, ShiftKind,
                             DATA_PROCESSING_OPS, COMPARE_OPS, UNARY_DP_OPS)


def roundtrip(insn: ArmInsn) -> ArmInsn:
    word = encode(insn)
    return decode(word, insn.addr)


# ---------------------------------------------------------------------------
# Modified immediates.
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=0xFF),
       st.integers(min_value=0, max_value=15))
def test_arm_imm_roundtrip(imm8, rotation):
    value = decode_arm_imm(rotation, imm8)
    encoded = encode_arm_imm(value)
    assert encoded is not None
    rot2, imm2 = encoded
    assert decode_arm_imm(rot2, imm2) == value


def test_arm_imm_unencodable():
    assert encode_arm_imm(0x12345678) is None
    assert encode_arm_imm(0x101) is None


@pytest.mark.parametrize("value", [0, 1, 0xFF, 0xFF0, 0xFF00, 0xFF000000,
                                   0xF000000F, 0x3FC])
def test_arm_imm_known_encodable(value):
    encoded = encode_arm_imm(value)
    assert encoded is not None
    assert decode_arm_imm(*encoded) == value


# ---------------------------------------------------------------------------
# Data processing.
# ---------------------------------------------------------------------------

_dp_ops = sorted(DATA_PROCESSING_OPS, key=lambda op: op.value)


@pytest.mark.parametrize("op", _dp_ops)
def test_dp_register_roundtrip(op):
    insn = ArmInsn(op=op, rd=3, rn=4, op2=Operand2.register(5),
                   set_flags=(op not in COMPARE_OPS))
    if op in COMPARE_OPS:
        insn.set_flags = False
    out = roundtrip(insn)
    assert out.op == op
    assert out.op2.rm == 5
    if op not in COMPARE_OPS and op not in UNARY_DP_OPS:
        assert (out.rd, out.rn) == (3, 4)


@pytest.mark.parametrize("shift,amount", [
    (ShiftKind.LSL, 0), (ShiftKind.LSL, 5), (ShiftKind.LSL, 31),
    (ShiftKind.LSR, 1), (ShiftKind.LSR, 32),
    (ShiftKind.ASR, 7), (ShiftKind.ASR, 32),
    (ShiftKind.ROR, 8),
])
def test_dp_shift_roundtrip(shift, amount):
    insn = ArmInsn(op=Op.ADD, rd=0, rn=1,
                   op2=Operand2.register(2, shift, amount))
    out = roundtrip(insn)
    assert out.op2.shift == shift
    assert out.op2.shift_imm == amount


def test_dp_rrx_roundtrip():
    insn = ArmInsn(op=Op.MOV, rd=0, op2=Operand2.register(1, ShiftKind.RRX))
    out = roundtrip(insn)
    assert out.op2.shift == ShiftKind.RRX


def test_dp_register_shift_roundtrip():
    insn = ArmInsn(op=Op.ORR, rd=1, rn=2,
                   op2=Operand2.register(3, ShiftKind.LSR, rs=4))
    out = roundtrip(insn)
    assert out.op2.rs == 4
    assert out.op2.shift == ShiftKind.LSR


@given(st.integers(min_value=0, max_value=0xF),
       st.integers(min_value=0, max_value=0xFF))
@settings(max_examples=50)
def test_dp_immediate_roundtrip(rotation, imm8):
    value = ror32(imm8, rotation * 2)
    insn = ArmInsn(op=Op.MOV, rd=7, op2=Operand2.immediate(value))
    out = roundtrip(insn)
    assert out.op2.is_imm and out.op2.imm == value


@pytest.mark.parametrize("cond", list(Cond))
def test_condition_field_roundtrip(cond):
    insn = ArmInsn(op=Op.ADD, cond=cond, rd=0, rn=0,
                   op2=Operand2.immediate(1))
    assert roundtrip(insn).cond == cond


# ---------------------------------------------------------------------------
# Multiplies.
# ---------------------------------------------------------------------------

def test_mul_roundtrip():
    insn = ArmInsn(op=Op.MUL, rd=4, rm=2, rs=3, set_flags=True)
    out = roundtrip(insn)
    assert (out.op, out.rd, out.rm, out.rs, out.set_flags) == \
        (Op.MUL, 4, 2, 3, True)


def test_mla_roundtrip():
    insn = ArmInsn(op=Op.MLA, rd=4, rm=2, rs=3, rn=5)
    out = roundtrip(insn)
    assert (out.op, out.rd, out.rm, out.rs, out.rn) == (Op.MLA, 4, 2, 3, 5)


# ---------------------------------------------------------------------------
# Loads/stores.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("op", [Op.LDR, Op.STR, Op.LDRB, Op.STRB])
@pytest.mark.parametrize("pre,wb,add", [(True, False, True),
                                        (True, True, True),
                                        (False, False, True),
                                        (True, False, False)])
def test_word_byte_transfer_roundtrip(op, pre, wb, add):
    insn = ArmInsn(op=op, rd=1, rn=2, mem_offset_imm=0x24,
                   pre_indexed=pre, writeback=wb, add_offset=add)
    out = roundtrip(insn)
    assert out.op == op
    assert out.mem_offset_imm == 0x24
    assert out.pre_indexed == pre
    assert out.add_offset == add
    if pre:
        assert out.writeback == wb


def test_register_offset_transfer_roundtrip():
    insn = ArmInsn(op=Op.LDR, rd=0, rn=1, mem_offset_reg=2,
                   mem_shift=ShiftKind.LSL, mem_shift_imm=2)
    out = roundtrip(insn)
    assert out.mem_offset_reg == 2
    assert out.mem_shift_imm == 2


@pytest.mark.parametrize("op", [Op.LDRH, Op.STRH, Op.LDRSB, Op.LDRSH])
def test_halfword_transfer_roundtrip(op):
    insn = ArmInsn(op=op, rd=3, rn=4, mem_offset_imm=0x42)
    out = roundtrip(insn)
    assert out.op == op
    assert out.mem_offset_imm == 0x42


def test_halfword_register_offset_roundtrip():
    insn = ArmInsn(op=Op.LDRH, rd=3, rn=4, mem_offset_reg=5)
    out = roundtrip(insn)
    assert out.mem_offset_reg == 5


@pytest.mark.parametrize("op", [Op.LDM, Op.STM])
@pytest.mark.parametrize("before,inc", [(False, True), (True, True),
                                        (False, False), (True, False)])
def test_block_transfer_roundtrip(op, before, inc):
    insn = ArmInsn(op=op, rn=13, reglist=[0, 1, 4, 14], writeback=True,
                   before=before, increment=inc)
    out = roundtrip(insn)
    assert out.op == op
    assert out.reglist == [0, 1, 4, 14]
    assert (out.before, out.increment, out.writeback) == (before, inc, True)


# ---------------------------------------------------------------------------
# Branches and system instructions.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("op", [Op.B, Op.BL])
@pytest.mark.parametrize("delta", [-0x100, 0, 8, 0x1000])
def test_branch_roundtrip(op, delta):
    insn = ArmInsn(op=op, addr=0x8000, target=0x8000 + 8 + delta)
    out = roundtrip(insn)
    assert out.op == op
    assert out.target == insn.target


def test_bx_roundtrip():
    assert roundtrip(ArmInsn(op=Op.BX, rm=14)).rm == 14


def test_mrs_msr_roundtrip():
    out = roundtrip(ArmInsn(op=Op.MRS, rd=3, spsr=True))
    assert (out.op, out.rd, out.spsr) == (Op.MRS, 3, True)
    out = roundtrip(ArmInsn(op=Op.MSR, rm=4, imm=0x9, spsr=False))
    assert (out.op, out.rm, out.imm, out.spsr) == (Op.MSR, 4, 0x9, False)


def test_mcr_mrc_roundtrip():
    insn = ArmInsn(op=Op.MCR, cp_op1=0, rd=2, cp_crn=2, cp_crm=0, cp_op2=0)
    out = roundtrip(insn)
    assert (out.op, out.rd, out.cp_crn) == (Op.MCR, 2, 2)
    insn = ArmInsn(op=Op.MRC, cp_op1=0, rd=5, cp_crn=1, cp_crm=0, cp_op2=0)
    out = roundtrip(insn)
    assert (out.op, out.rd, out.cp_crn) == (Op.MRC, 5, 1)


def test_vmrs_vmsr_roundtrip():
    assert roundtrip(ArmInsn(op=Op.VMRS, rd=1)).op == Op.VMRS
    assert roundtrip(ArmInsn(op=Op.VMSR, rd=2)).op == Op.VMSR
    assert roundtrip(ArmInsn(op=Op.VMSR, rd=2)).rd == 2


def test_svc_wfi_nop_clz_cps_roundtrip():
    assert roundtrip(ArmInsn(op=Op.SVC, imm=42)).imm == 42
    assert roundtrip(ArmInsn(op=Op.WFI)).op == Op.WFI
    assert roundtrip(ArmInsn(op=Op.NOP)).op == Op.NOP
    out = roundtrip(ArmInsn(op=Op.CLZ, rd=1, rm=2))
    assert (out.op, out.rd, out.rm) == (Op.CLZ, 1, 2)
    assert roundtrip(ArmInsn(op=Op.CPS, cps_enable=True)).cps_enable
    assert not roundtrip(ArmInsn(op=Op.CPS, cps_enable=False)).cps_enable


# ---------------------------------------------------------------------------
# Decoder robustness: random words either decode or raise DecodingError,
# and decoding is stable under re-encoding.
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=300)
def test_decode_never_crashes(word):
    try:
        insn = decode(word, 0x1000)
    except DecodingError:
        return
    word2 = encode(insn)
    insn2 = decode(word2, 0x1000)
    assert insn2.op == insn.op
    assert insn2.cond == insn.cond
