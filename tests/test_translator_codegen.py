"""Static codegen properties of the rule translator, per optimization.

These tests pin the paper's mechanisms at the generated-code level:
Fig 9 (redundant restores), Fig 10 (consecutive memory ops), Fig 11
(inter-TB elimination) and Fig 12 (define-before-use scheduling).
"""

import pytest

from repro.core import OptConfig, OptLevel
from repro.core.engine import RuleEngine
from repro.guest.asm import assemble
from repro.host.isa import X86Op
from repro.miniqemu.machine import Machine

BASE_ADDR = 0x40000


def translate(source, level=OptLevel.FULL, config=None, at=BASE_ADDR):
    machine = Machine(engine="tcg")
    machine.memory.load_program(assemble(source, base=BASE_ADDR))
    engine = RuleEngine(machine, level=level, config=config)
    return engine.translate(at, 0)


def count_tag(tb, tag):
    return sum(1 for insn in tb.code if insn.tag == tag)


def ops(tb):
    return [insn.op for insn in tb.code]


# ---------------------------------------------------------------------------
# Fig 10: consecutive memory accesses.
# ---------------------------------------------------------------------------

CONSECUTIVE_STORES = """
    cmp r1, #10
    str r2, [r3]
    str r2, [r3, #4]
    str r2, [r3, #8]
    bne target
target:
    nop
"""


def test_base_pairs_every_memory_access():
    tb = translate(CONSECUTIVE_STORES, OptLevel.BASE)
    # One save per store (the flags are re-restored after each one).
    assert tb.meta["sync_saves"] >= 3
    assert tb.meta["sync_restores"] >= 3


def test_elimination_coalesces_consecutive_stores():
    tb = translate(CONSECUTIVE_STORES, OptLevel.ELIMINATION)
    # One save before the run of stores; one restore for the branch.
    assert tb.meta["sync_saves"] == 1
    assert tb.meta["sync_restores"] == 1


# ---------------------------------------------------------------------------
# Fig 9: redundant restores for conditional runs.
# ---------------------------------------------------------------------------

CONDITIONAL_RUN = """
    cmp r1, #10
    addeq r2, r2, #1
    addeq r3, r3, #1
    addeq r4, r4, #1
    bx lr
"""


def test_base_restores_per_conditional():
    tb = translate(CONDITIONAL_RUN, OptLevel.BASE)
    assert tb.meta["sync_restores"] >= 3


def test_elimination_keeps_flags_live_across_conditionals():
    tb = translate(CONDITIONAL_RUN, OptLevel.ELIMINATION)
    # The flags stay in EFLAGS through the whole run: no restores at all.
    assert tb.meta["sync_restores"] == 0


# ---------------------------------------------------------------------------
# Fig 11: inter-TB elimination.
# ---------------------------------------------------------------------------

INTER_TB = """
    cmp r1, r2
    b next
next:
    cmp r3, r4          @ defines all flags before any use
    bne elsewhere
elsewhere:
    nop
"""

INTER_TB_LIVE = """
    cmp r1, r2
    b next
next:
    addeq r3, r3, #1    @ READS Z at entry: the save must stay
    bx lr
"""


def test_inter_tb_elides_end_save_when_successor_defines_first():
    with_opt = translate(INTER_TB, OptLevel.ELIMINATION)
    without = translate(
        INTER_TB,
        config=OptConfig(packed_sync=True, eliminate_redundant=True,
                         inter_tb=False))
    assert with_opt.meta["sync_saves"] < without.meta["sync_saves"]


def test_inter_tb_keeps_save_when_successor_reads_flags():
    tb = translate(INTER_TB_LIVE, OptLevel.ELIMINATION)
    assert tb.meta["sync_saves"] == 1


# ---------------------------------------------------------------------------
# Fig 12: define-before-use scheduling.
# ---------------------------------------------------------------------------

DEFINE_BEFORE_USE = """
    cmp r1, r2
    ldr r3, [r4]
    bne target
target:
    nop
"""


def test_scheduling_reorders_the_load_above_the_producer():
    scheduled = translate(DEFINE_BEFORE_USE, OptLevel.FULL)
    assert scheduled.guest_insns[0].op.name == "LDR"
    # With the load hoisted above the producer, no flag save/restore
    # surrounds the memory access any more: the first flag-coordination
    # instruction comes after the guest compare.
    flag_sync_ops = {X86Op.PUSHFD, X86Op.POPFD, X86Op.SETCC, X86Op.CMC}
    guest_cmp_index = next(i for i, insn in enumerate(scheduled.code)
                           if insn.op is X86Op.CMP and insn.tag == "rule")
    before_cmp = scheduled.code[:guest_cmp_index]
    assert not [insn for insn in before_cmp
                if insn.op in flag_sync_ops]


def test_scheduling_reduces_dynamic_sync_cost():
    """Dynamically (one path executes), scheduling strictly wins."""
    from repro.core import make_rule_engine
    from tests.support import run_workload

    body = """
main:
    ldr r4, =USER_HEAP
    ldr r5, =20000
loop:
    cmp r5, r9
    ldr r3, [r4]
    bne cont
cont:
    subs r5, r5, #1
    bne loop
    mov r0, #0
    bl uexit
"""
    costs = {}
    for level in (OptLevel.ELIMINATION, OptLevel.FULL):
        _, _, machine = run_workload(
            body, engine="rules",
            rule_engine_factory=make_rule_engine(level))
        costs[level] = machine.stats().get("engine.tag_sync", 0.0)
    assert costs[OptLevel.FULL] < costs[OptLevel.ELIMINATION]


# ---------------------------------------------------------------------------
# Sequence shapes.
# ---------------------------------------------------------------------------

def test_base_uses_parsed_sequences():
    tb = translate(CONSECUTIVE_STORES, OptLevel.BASE)
    assert X86Op.SETCC in ops(tb)       # per-bit parse
    assert X86Op.PUSHFD not in ops(tb)  # no packed saves at Base


def test_reduction_uses_packed_sequences():
    tb = translate(CONSECUTIVE_STORES, OptLevel.REDUCTION)
    assert X86Op.PUSHFD in ops(tb)
    assert X86Op.POPFD in ops(tb)


def test_conditionals_use_direct_jcc():
    tb = translate(CONDITIONAL_RUN, OptLevel.FULL)
    jcc_count = sum(1 for insn in tb.code if insn.op is X86Op.JCC)
    # One skip-jcc per conditional insn + the irq check + the bx exit
    # never re-compares against env fields.
    cmp_env = [insn for insn in tb.code
               if insn.op is X86Op.CMP and insn.tag == "rule"]
    assert jcc_count >= 3
    assert len(cmp_env) == 1  # only the guest cmp itself


def test_every_instruction_is_tagged():
    tb = translate(CONSECUTIVE_STORES, OptLevel.FULL)
    known = {"rule", "sync", "mmu", "irqcheck", "chain", "helper",
             "fallback", "code"}
    assert {insn.tag for insn in tb.code} <= known
