"""Observability subsystem: tracer, profiler, exporters, stat namespaces.

The load-bearing guarantees under test:

- with tracing/profiling *disabled* every cost counter is bit-identical
  to a run without the subsystem (probes are zero-cost when off);
- the coordination-cost breakdown's category totals sum to
  ``engine.host_cost`` exactly (each executed host instruction and each
  modelled charge increments exactly one tag counter);
- per-TB attribution is lossless: attributed + unattributed cost equals
  ``engine.host_cost``;
- the Chrome trace export passes the trace-event schema validator;
- ``Machine.stats()`` keys are unique and namespaced on every engine.
"""

import json
import re
import time

import pytest

from repro.common.errors import ReproError
from repro.harness import run_workload
from repro.harness.runner import make_machine
from repro.observability import (COORDINATION_CATEGORIES, NULL_TRACER,
                                 STAT_NAMESPACES, Profiler, Tracer,
                                 build_profile, chrome_trace,
                                 coordination_breakdown, merge_stats,
                                 namespace_group, render_profile,
                                 validate_chrome_trace)
from repro.observability.trace import TraceEvent
from repro.workloads import ALL_WORKLOADS

WORKLOAD = ALL_WORKLOADS["sjeng"]  # the smallest SPEC analog
ENGINES = ("interp", "tcg", "rules-full")


def _stats_without_trace(stats):
    return {key: value for key, value in stats.items()
            if not key.startswith("trace.")}


# ---------------------------------------------------------------------------
# Zero cost when disabled.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_tracing_leaves_cost_counters_bit_identical(engine):
    plain = run_workload(WORKLOAD, engine)
    traced = run_workload(WORKLOAD, engine, tracer=Tracer(),
                          profiler=Profiler())
    assert traced.output == plain.output
    # Every non-trace counter — costs, tags, tiers, io — must match
    # exactly: probes never charge modelled cost.
    assert _stats_without_trace(traced.stats) == \
        _stats_without_trace(plain.stats)


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.emit("tb.enter", pc=0)      # safety-net no-op
    assert NULL_TRACER.events() == ()
    assert NULL_TRACER.tail() == ()
    assert NULL_TRACER.stats() == {}


def test_tracing_wall_clock_overhead_within_budget():
    """Tracing on must cost < 5% wall time (plus a timer-noise epsilon)."""
    def best_of(tracer_factory, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            tracer = tracer_factory()
            start = time.perf_counter()
            run_workload(WORKLOAD, "rules-full", tracer=tracer)
            best = min(best, time.perf_counter() - start)
        return best

    best_of(lambda: None, rounds=1)         # warm caches/imports
    off = best_of(lambda: None)
    on = best_of(Tracer)
    assert on <= off * 1.05 + 0.05, (on, off)


# ---------------------------------------------------------------------------
# Ring buffer mechanics.
# ---------------------------------------------------------------------------

def test_tracer_ring_drops_oldest_and_counts():
    tracer = Tracer(capacity=4)
    for index in range(7):
        tracer.emit("probe.fire", index=index)
    assert tracer.emitted == 7
    assert tracer.dropped == 3
    kept = [event.arg("index") for event in tracer.events()]
    assert kept == [3, 4, 5, 6]
    assert [event.arg("index") for event in tracer.tail(2)] == [5, 6]
    assert tracer.stats() == {"events": 7.0, "dropped": 3.0,
                              "buffered": 4.0}


def test_trace_event_rendering_and_args():
    event = TraceEvent(12.0, 3, "sync.save", (("mode", "packed"),
                                              ("insns", 3)))
    assert event.arg("mode") == "packed"
    assert event.arg("missing", 0) == 0
    assert str(event) == "[cost=12 ic=3] sync.save mode=packed insns=3"


# ---------------------------------------------------------------------------
# Stats namespacing.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_stats_keys_are_unique_and_namespaced(engine):
    result = run_workload(WORKLOAD, engine, tracer=Tracer())
    pattern = re.compile(
        r"^(%s)\.[^.]+$" % "|".join(STAT_NAMESPACES))
    for key in result.stats:
        assert pattern.match(key), f"bad stats key {key!r} on {engine}"
    # merge_stats would have raised on a duplicate; spot-check the
    # groups round-trip.
    engine_keys = namespace_group(result.stats, "engine")
    assert "host_cost" in engine_keys and "guest_icount" in engine_keys


def test_merge_stats_rejects_collisions_and_bad_namespaces():
    class TwiceMap(dict):
        """A mapping whose items() yields the same namespace twice."""
        def items(self):
            yield "engine", {"x": 1.0}
            yield "engine", {"x": 2.0}

    with pytest.raises(ReproError, match="duplicate"):
        merge_stats(TwiceMap())
    with pytest.raises(ReproError, match="must not contain"):
        merge_stats({"engine": {"a.b": 1.0}})
    with pytest.raises(ReproError, match="unknown stats namespace"):
        merge_stats({"bogus": {"x": 1.0}})


def test_merge_stats_merges_disjoint_groups():
    merged = merge_stats({"engine": {"x": 1.0}, "io": {"cost": 2.0}})
    assert merged == {"engine.x": 1.0, "io.cost": 2.0}


# ---------------------------------------------------------------------------
# Coordination-cost breakdown and per-TB attribution.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ("tcg", "rules-full"))
def test_breakdown_sums_exactly_to_host_cost(engine):
    result = run_workload(WORKLOAD, engine)
    breakdown = coordination_breakdown(result.stats)
    assert sum(breakdown.values()) == \
        pytest.approx(result.stats["engine.host_cost"], abs=1e-6)
    assert breakdown["body"] > 0
    assert set(breakdown) == set(COORDINATION_CATEGORIES) | {"other"}


def test_profiler_attribution_is_lossless():
    profiler = Profiler()
    machine = make_machine(WORKLOAD, "rules-full", profiler=profiler)
    machine.run(WORKLOAD.max_insns)
    host_cost = machine.stats()["engine.host_cost"]
    attributed = profiler.attributed_cost()
    unattributed = sum(profiler.unattributed.values())
    assert attributed + unattributed == pytest.approx(host_cost, abs=1e-6)
    assert attributed > 0
    rows = profiler.tb_rows()
    assert rows and rows[0]["cost"] >= rows[-1]["cost"]
    # Each row's category split sums to the row's cost.
    for row in rows:
        assert sum(row["by_category"].values()) == \
            pytest.approx(row["cost"], abs=1e-6)


def test_profile_document_and_report():
    tracer, profiler = Tracer(), Profiler()
    machine = make_machine(WORKLOAD, "rules-full", tracer=tracer,
                           profiler=profiler)
    machine.run(WORKLOAD.max_insns)
    profile = build_profile(machine, workload=WORKLOAD.name,
                            engine="rules-full")
    assert profile["totals"]["host_cost"] > 0
    assert profile["tbs"] and profile["per_pc"]
    assert profile["rules"], "rules-full run must attribute rule usage"
    json.dumps(profile, default=str)        # JSON-safe
    report = render_profile(profile, top=5)
    assert "coordination-cost breakdown" in report
    assert "hot TBs" in report
    assert "100.0%" in report               # breakdown total row
    # Per-rule table ranks by overlapping TB cost (documented caveat).
    assert "hottest rules" in report


# ---------------------------------------------------------------------------
# Chrome trace export.
# ---------------------------------------------------------------------------

def test_chrome_trace_exports_and_validates():
    tracer = Tracer()
    result = run_workload(WORKLOAD, "rules-full", tracer=tracer)
    assert result.stats["trace.events"] > 0
    trace = chrome_trace(tracer.events())
    assert validate_chrome_trace(trace) == []
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert "X" in phases                    # tb.enter spans
    assert "M" in phases                    # process/thread names
    names = {event["name"] for event in trace["traceEvents"]}
    assert "tb.enter" in names and "sync.save" in names


def test_validate_chrome_trace_rejects_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    bad = {"traceEvents": [
        {"ph": "I", "pid": 1, "tid": 1, "ts": 0},          # no name
        {"name": "x", "ph": "Q", "pid": 1, "tid": 1, "ts": 0},
        {"name": "x", "ph": "I", "pid": "1", "tid": 1, "ts": 0},
        {"name": "x", "ph": "I", "pid": 1, "tid": 1, "ts": -1},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0},  # no dur
    ]}
    problems = validate_chrome_trace(bad)
    assert len(problems) == 5
    good = {"traceEvents": [
        {"name": "p", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "x"}},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
         "dur": 1.0},
    ]}
    assert validate_chrome_trace(good) == []


# ---------------------------------------------------------------------------
# Flight recorder.
# ---------------------------------------------------------------------------

def test_errors_carry_recent_trace_events():
    tracer = Tracer()
    machine = make_machine(WORKLOAD, "rules-full", tracer=tracer)
    with pytest.raises(ReproError) as info:
        machine.run(50)                     # guest cannot halt in time
    context = info.value.context
    assert context is not None
    assert context.trace, "flight recorder must attach trailing events"
    assert "trace[" in str(info.value)


def test_errors_without_tracer_have_empty_flight_record():
    machine = make_machine(WORKLOAD, "rules-full")
    with pytest.raises(ReproError) as info:
        machine.run(50)
    assert info.value.context.trace == ()
