"""Continuous benchmarking: snapshots, the comparator, the perf gate.

The load-bearing guarantees under test:

- a suite snapshot passes the schema validator, and for every engine
  tier the Sec III coordination categories sum *exactly* to that
  tier's ``host_cost`` (the attribution invariant);
- the cost model is deterministic: two clean runs of the same tree
  produce bit-identical snapshots, so the exact gate reports every
  metric flat and exits 0;
- the injector's ``extra-sync`` site works as a regression simulator
  end to end: the gate exits nonzero and attributes the damage to the
  ``coordination`` category, while guest behaviour (and therefore the
  soundness checker) is unaffected;
- the comparator handles schema drift: added/removed/skipped metrics,
  zero-valued baselines, and non-finite scalars each get the right
  verdict and gate at the right ``--fail-on`` level;
- ``benchmarks/conftest.save_result`` refuses to persist metric-free
  or schema-invalid payloads.
"""

import importlib.util
import json
import math
import pathlib

import pytest

from repro.__main__ import main
from repro.harness import run_workload
from repro.observability import (IncomparableSnapshots, compare_snapshots,
                                 iter_metrics, load_snapshot,
                                 next_snapshot_path, run_suite,
                                 validate_result_payload,
                                 validate_snapshot, write_snapshot)
from repro.observability.baseline import DOWN, NEUTRAL, UP
from repro.observability.regress import (GATE_LEVELS, VERDICT_ADDED,
                                         VERDICT_CHANGED, VERDICT_FLAT,
                                         VERDICT_IMPROVED, VERDICT_INVALID,
                                         VERDICT_REGRESSED, VERDICT_REMOVED,
                                         VERDICT_SKIPPED,
                                         bootstrap_ratio_ci)
from repro.workloads import ALL_WORKLOADS

SWEEP = ("sjeng",)
INJECT = "seed=1,extra-sync=0.5"


@pytest.fixture(scope="module")
def clean_snapshot():
    return run_suite(mode="custom", sweep_workloads=SWEEP,
                     name="clean", wallclock_samples=2)


@pytest.fixture(scope="module")
def injected_snapshot():
    return run_suite(mode="custom", sweep_workloads=SWEEP,
                     name="injected", inject=INJECT, wallclock_samples=2)


# ---------------------------------------------------------------------------
# Snapshot schema + the attribution invariant.
# ---------------------------------------------------------------------------

def test_snapshot_is_schema_valid(clean_snapshot):
    assert validate_snapshot(clean_snapshot) == []


def test_coordination_categories_sum_to_host_cost(clean_snapshot):
    for engine, totals in clean_snapshot["tiers"].items():
        breakdown = clean_snapshot["coordination"][engine]
        category_sum = sum(value for key, value in breakdown.items()
                           if key != "total")
        assert category_sum == breakdown["total"] == totals["host_cost"], \
            engine


def test_snapshot_roundtrips_through_disk(tmp_path, clean_snapshot):
    path = write_snapshot(str(tmp_path / "snap.json"), clean_snapshot)
    assert load_snapshot(path) == clean_snapshot


def test_write_refuses_invalid_snapshot(tmp_path, clean_snapshot):
    broken = json.loads(json.dumps(clean_snapshot))
    broken["coordination"]["rules-full"]["mmu"] += 1.0  # breaks the sum
    with pytest.raises(ValueError, match="categories sum"):
        write_snapshot(str(tmp_path / "bad.json"), broken)
    assert not (tmp_path / "bad.json").exists()


def test_next_snapshot_path_skips_existing(tmp_path):
    assert next_snapshot_path(str(tmp_path)).endswith("BENCH_0.json")
    (tmp_path / "BENCH_0.json").write_text("{}")
    assert next_snapshot_path(str(tmp_path)).endswith("BENCH_1.json")


# ---------------------------------------------------------------------------
# Determinism: clean vs clean is flat everywhere and exits 0.
# ---------------------------------------------------------------------------

def test_clean_rerun_is_bit_identical(clean_snapshot):
    again = run_suite(mode="custom", sweep_workloads=SWEEP,
                      name="again", wallclock_samples=2)
    report = compare_snapshots(clean_snapshot, again)
    non_flat = [v for v in report.verdicts if v.verdict != VERDICT_FLAT]
    assert non_flat == []
    assert report.exit_code("changed") == 0
    assert report.top_category is None


# ---------------------------------------------------------------------------
# The regression simulator (extra-sync) end to end.
# ---------------------------------------------------------------------------

def test_extra_sync_preserves_guest_behaviour():
    workload = ALL_WORKLOADS["sjeng"]
    clean = run_workload(workload, "rules-full")
    injected = run_workload(workload, "rules-full", inject=INJECT)
    assert injected.output == clean.output
    assert injected.exit_code == 0
    assert injected.host_cost > clean.host_cost


def test_injected_regression_is_caught_and_attributed(
        clean_snapshot, injected_snapshot):
    report = compare_snapshots(clean_snapshot, injected_snapshot)
    assert report.exit_code("regressed") == 1
    assert report.top_category == "coordination"
    # Only the coordination category grew: the simulator is surgical.
    grew = {category for category, delta
            in report.category_deltas.items() if delta > 0}
    assert grew == {"coordination"}
    regressed = [v for v in report.verdicts
                 if v.verdict == VERDICT_REGRESSED]
    assert regressed
    for verdict in regressed:
        if not verdict.metric.startswith("coordination."):
            assert verdict.attribution == "coordination", verdict.metric
    # host_cost regressed on every rules tier; tcg is untouched
    # (extra-sync only fires on rules-tier TBs).
    regressed_ids = {v.metric for v in regressed}
    assert "tiers.rules-full.host_cost" in regressed_ids
    assert not any(m.startswith("tiers.tcg.") for m in regressed_ids)


def test_injected_snapshot_still_schema_valid(injected_snapshot):
    # The inserted sync insns are tagged and charged, so the category
    # sum invariant survives injection.
    assert validate_snapshot(injected_snapshot) == []


# ---------------------------------------------------------------------------
# Comparator edge cases (synthetic snapshots — no machine runs).
# ---------------------------------------------------------------------------

def _tiny_snapshot(host_cost=100.0, coordination=20.0, summary=None,
                   experiments=("figx",), sweep=("w",)):
    body = host_cost - coordination
    return {
        "schema": "repro-bench-snapshot", "schema_version": 1,
        "name": "tiny", "mode": "custom",
        "figures": {"figx": {"rows": [],
                             "summary": dict(summary or {"metric": 1.0})}},
        "tiers": {"rules-full": {"host_cost": host_cost}},
        "coordination": {"rules-full": {"body": body,
                                        "coordination": coordination,
                                        "total": host_cost}},
        "sync": {}, "coverage": {}, "wallclock": {},
        "fingerprint": {"sweep_workloads": list(sweep),
                        "engines": ["rules-full"],
                        "experiments": list(experiments)},
    }


def _verdict_of(report, metric):
    return {v.metric: v for v in report.verdicts}[metric]


def test_added_metric_gates_on_changed_only():
    base = _tiny_snapshot(summary={"metric": 1.0})
    cur = _tiny_snapshot(summary={"metric": 1.0, "fresh": 2.0})
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "figures.figx.summary.fresh")
    assert verdict.verdict == VERDICT_ADDED
    assert report.exit_code("regressed") == 0
    assert report.exit_code("changed") == 1
    assert report.exit_code("never") == 0


def test_removed_metric_gates_on_changed_only():
    base = _tiny_snapshot(summary={"metric": 1.0, "gone": 2.0})
    cur = _tiny_snapshot(summary={"metric": 1.0})
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "figures.figx.summary.gone")
    assert verdict.verdict == VERDICT_REMOVED
    assert report.exit_code("regressed") == 0
    assert report.exit_code("changed") == 1


def test_skipped_section_never_gates():
    base = _tiny_snapshot(experiments=("figx",))
    cur = _tiny_snapshot(experiments=())
    del cur["figures"]["figx"]
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "figures.figx.summary.metric")
    assert verdict.verdict == VERDICT_SKIPPED
    assert report.exit_code("changed") == 0


def test_zero_valued_baseline_metric():
    base = _tiny_snapshot(coordination=0.0)
    cur = _tiny_snapshot(coordination=30.0)
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "coordination.rules-full.coordination")
    assert verdict.verdict == VERDICT_REGRESSED
    assert verdict.rel_change is None  # no finite ratio from zero
    assert report.exit_code("regressed") == 1


def test_non_finite_summary_scalar_is_invalid_and_gates():
    base = _tiny_snapshot(summary={"metric": 1.0})
    cur = _tiny_snapshot(summary={"metric": math.nan})
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "figures.figx.summary.metric")
    assert verdict.verdict == VERDICT_INVALID
    assert report.exit_code("regressed") == 1
    cur_none = _tiny_snapshot(summary={"metric": None})
    report = compare_snapshots(base, cur_none)
    assert _verdict_of(
        report, "figures.figx.summary.metric").verdict == VERDICT_INVALID


def test_neutral_direction_yields_changed():
    base = _tiny_snapshot()
    cur = _tiny_snapshot()
    cur["tiers"]["rules-full"]["guest_icount"] = 5.0
    base["tiers"]["rules-full"]["guest_icount"] = 4.0
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "tiers.rules-full.guest_icount")
    assert verdict.verdict == VERDICT_CHANGED
    assert report.exit_code("regressed") == 0
    assert report.exit_code("changed") == 1


def test_improvement_direction_up():
    base = _tiny_snapshot(summary={"metric": 1.0})
    cur = _tiny_snapshot(summary={"metric": 2.0})
    # figx is not in SUMMARY_DIRECTIONS, so its metrics are neutral;
    # patch in an UP direction via a known figure name instead.
    base["figures"]["fig16"] = {"rows": [], "summary": {"geomean": 1.0}}
    cur["figures"]["fig16"] = {"rows": [], "summary": {"geomean": 2.0}}
    base["fingerprint"]["experiments"].append("fig16")
    cur["fingerprint"]["experiments"].append("fig16")
    report = compare_snapshots(base, cur)
    verdict = _verdict_of(report, "figures.fig16.summary.geomean")
    assert verdict.direction == UP
    assert verdict.verdict == VERDICT_IMPROVED


def test_incomparable_sweeps_raise():
    base = _tiny_snapshot(sweep=("w",))
    cur = _tiny_snapshot(sweep=("w", "v"))
    with pytest.raises(IncomparableSnapshots, match="sweep_workloads"):
        compare_snapshots(base, cur)


def test_gate_levels_are_nested():
    assert set(GATE_LEVELS["never"]) <= set(GATE_LEVELS["regressed"]) \
        <= set(GATE_LEVELS["changed"])


def test_bootstrap_ci_is_deterministic_and_brackets_ratio():
    base = [1.0, 1.1, 0.9, 1.05, 0.95]
    cur = [2.0, 2.2, 1.8, 2.1, 1.9]
    lo, hi = bootstrap_ratio_ci(base, cur)
    assert (lo, hi) == bootstrap_ratio_ci(base, cur)
    assert lo <= 2.0 <= hi * 1.2
    assert lo > 1.5  # a genuine 2x slowdown is clearly outside noise


# ---------------------------------------------------------------------------
# Metric enumeration.
# ---------------------------------------------------------------------------

def test_iter_metrics_directions(clean_snapshot):
    metrics = {metric: direction for metric, _, direction
               in iter_metrics(clean_snapshot)}
    assert metrics["tiers.rules-full.host_cost"] == DOWN
    assert metrics["tiers.rules-full.guest_icount"] == NEUTRAL
    assert metrics["coordination.rules-full.coordination"] == DOWN
    assert metrics["sync.rules-full.sync_elisions_dyn"] == UP
    assert metrics["coverage.rules-full.covered_fraction"] == UP
    assert not any(m.startswith("wallclock.") for m in metrics)


# ---------------------------------------------------------------------------
# Result-payload schema + benchmarks/conftest.save_result.
# ---------------------------------------------------------------------------

def test_validate_result_payload_rejects_empty_and_nonfinite():
    assert validate_result_payload(
        {"name": "x", "rows": [], "summary": {}})
    assert validate_result_payload(
        {"name": "x", "rows": [], "summary": {"a": math.inf}})
    assert validate_result_payload(
        {"name": "", "rows": [], "summary": {"a": 1.0}})
    assert validate_result_payload("not a dict")
    assert validate_result_payload(
        {"name": "x", "rows": [{"v": [1, 2]}], "summary": {"a": 1.0}})
    assert validate_result_payload(
        {"name": "x", "rows": [{"v": 1}], "summary": {}}) == []
    assert validate_result_payload(
        {"name": "x", "rows": [], "summary": {"a": 1.0}}) == []


@pytest.fixture
def save_result(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "bench_conftest",
        pathlib.Path(__file__).parent.parent / "benchmarks" /
        "conftest.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    return module.save_result


def test_save_result_rejects_bare_string(save_result):
    with pytest.raises(TypeError, match="summary"):
        save_result("smoke", "just some rendered text")


def test_save_result_rejects_nonfinite_summary(save_result):
    with pytest.raises(ValueError, match="schema"):
        save_result("smoke", "text", summary={"metric": math.nan})


def test_save_result_accepts_string_with_summary(save_result, tmp_path):
    save_result("smoke", "rendered text", summary={"metric": 3.0})
    payload = json.loads((tmp_path / "smoke.json").read_text())
    assert payload["summary"] == {"metric": 3.0}
    assert (tmp_path / "smoke.txt").read_text() == "rendered text\n"


def test_save_result_accepts_experiment_result(save_result, tmp_path):
    from repro.harness import ExperimentResult

    result = ExperimentResult("smoke", rows=[{"w": "sjeng", "v": 1.5}],
                              summary={"geomean": 1.5}, text="tbl")
    save_result("smoke", result, config={"engine": "tcg"})
    payload = json.loads((tmp_path / "smoke.json").read_text())
    assert payload["rows"] == [{"w": "sjeng", "v": 1.5}]
    assert payload["config"] == {"engine": "tcg"}


# ---------------------------------------------------------------------------
# The CLI verb (suite mode + the gate's exit codes).
# ---------------------------------------------------------------------------

def test_cli_bench_gate_catches_injected_regression(tmp_path, capsys):
    base = str(tmp_path / "base.json")
    code = main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--out", base])
    assert code == 0
    assert validate_snapshot(load_snapshot(base)) == []

    code = main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--inject", INJECT, "--out", str(tmp_path / "cur.json"),
                 "--compare", base, "--format", "json"])
    assert code == 1
    out = capsys.readouterr().out
    report = json.loads(out[out.index("{"):])  # the report is last
    assert report["top_category"] == "coordination"
    assert report["counts"][VERDICT_REGRESSED] > 0


def test_cli_bench_clean_compare_exits_zero(tmp_path):
    base = str(tmp_path / "base.json")
    assert main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--out", base]) == 0
    assert main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--out", str(tmp_path / "cur.json"),
                 "--compare", base]) == 0


def test_cli_bench_usage_errors(tmp_path):
    assert main(["bench", "--workload", "nope",
                 "--out", str(tmp_path / "s.json")]) == 2
    assert main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--out", str(tmp_path / "s.json"),
                 "--fail-on", "bogus"]) == 2
    assert main(["bench", "--workload", "sjeng", "--samples", "2",
                 "--out", str(tmp_path / "s2.json"),
                 "--compare", str(tmp_path / "missing.json")]) == 2
