"""Persistent translation cache: cold vs warm differential tests.

A warm-started run must be *bit-identical* to a cold one in everything
that matters — final CPU and memory state, guest output, and every
deterministic ``Machine.stats()`` metric (cost model, coordination
breakdown) — because warm loading only skips real translation work,
never modelled work.  Only the ``cache.*`` stats group may differ.

The store is also hostile territory: entries whose guest bytes no
longer match memory (self-modified or re-patched code), tampered
entries, and entries built from since-quarantined rules must all be
detected at load, evicted from the persisted store, and replaced by
fresh translation — never executed.
"""

import hashlib
import json
import os
import random
import struct

import pytest

from repro.cache import attach_cache, iter_store_dirs, verify_store
from repro.core import OptLevel, make_rule_engine
from repro.guest.asm import assemble
from repro.miniqemu.machine import Machine
from repro.miniqemu.tb import TranslationBlock
from repro.robustness import FaultInjector, parse_inject_spec

BASE = 0x1000
UART_DR = 0x10000000
SYSCON_EXIT = 0x100F0000

# The patch region: a straight-line run of data-processing instructions
# the SMC tests overwrite.  It starts at BASE + 4 (right after the
# opening branch), so its addresses are known without assembling.
PATCH_SLOTS = 12
PATCH_BASE = BASE + 4

PROGRAM = ("    b main\n"
           "patch:\n"
           + "    add r6, r6, #1\n" * PATCH_SLOTS +
           "    bx lr\n"
           """
main:
    mov r6, #0
    ldr r0, =0x12345678
    ldr r1, =0x9ABCDEF0
    mov r2, #0
loop:
    adds r2, r2, #1
    add r0, r0, r1
    eor r1, r1, r0
    cmp r2, #6
    bne loop
    bl patch
    @ fold state + flags into r0 and dump it
    mrs r8, cpsr
    ldr r9, =0xF0000000
    and r8, r8, r9
    add r0, r0, r1
    eor r0, r0, r6
    add r0, r0, r8
    ldr r10, =0x10000000
    str r0, [r10]
    mov r0, r0, lsr #8
    str r0, [r10]
    mov r0, r0, lsr #8
    str r0, [r10]
    ldr r10, =0x100F0000
    mov r1, #0
    str r1, [r10]
"""
)


def _machine(cache_dir=None, inject=None):
    kwargs = {}
    if inject is not None:
        kwargs["fault_injector"] = FaultInjector(parse_inject_spec(inject))
    machine = Machine(engine="rules",
                      rule_engine_factory=make_rule_engine(OptLevel.FULL),
                      **kwargs)
    machine.memory.load_program(assemble(PROGRAM, base=BASE))
    machine.cpu.regs[15] = BASE
    machine.env.load_from_cpu(machine.cpu)
    loader = attach_cache(machine, str(cache_dir)) if cache_dir else None
    return machine, loader


def _patch(machine, addr, word):
    machine.ram.data[addr:addr + 4] = struct.pack("<I", word)


def _run(machine, loader):
    code = machine.run(200_000)
    if loader is not None:
        loader.save()
    return code


def _final_state(machine):
    return (
        bytes(machine.uart.output),
        tuple(machine.cpu.regs),
        machine.cpu.cpsr,
        tuple(machine.env.get_reg(i) for i in range(16)),
        hashlib.sha256(bytes(machine.ram.data)).hexdigest(),
    )


def _deterministic_stats(machine):
    """Everything except the cache.* group, which differs by design."""
    return {key: value for key, value in machine.stats().items()
            if not key.startswith("cache.")}


# ---------------------------------------------------------------------------
# Cold vs warm: the core differential.
# ---------------------------------------------------------------------------

def test_cold_then_warm_is_bit_identical(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    code = _run(cold, cold_loader)
    assert code == 0
    assert cold_loader.loaded == 0
    assert cold_loader.saved > 0          # the store was populated
    assert iter_store_dirs(str(tmp_path))

    warm, warm_loader = _machine(tmp_path)
    assert len(warm_loader) == cold_loader.saved
    assert _run(warm, warm_loader) == 0

    # Every persisted rules-tier TB warm-started; nothing re-translated.
    assert warm_loader.loaded == cold_loader.saved
    assert warm_loader.fresh == 0
    assert warm_loader.stale == warm_loader.corrupt == 0

    # Final architectural state, output, and every deterministic metric
    # (cost model, sync/coordination breakdown) are bit-identical.
    assert _final_state(warm) == _final_state(cold)
    assert _deterministic_stats(warm) == _deterministic_stats(cold)

    # The cache group tells the two runs apart.
    assert warm.stats()["cache.tb_loaded"] == cold_loader.saved
    assert cold.stats()["cache.tb_loaded"] == 0


def test_warm_tbs_carry_cached_provenance(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)
    for tb in cold.engine.cache.all_tbs():
        if tb.meta.get("tier") == "rules":
            assert tb.meta.get("provenance") == "fresh"

    warm, warm_loader = _machine(tmp_path)
    _run(warm, warm_loader)
    cached = [tb for tb in warm.engine.cache.all_tbs()
              if tb.meta.get("provenance") == "cached"]
    assert len(cached) == warm_loader.loaded > 0


def test_save_is_idempotent_when_nothing_changed(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)
    store_dir = iter_store_dirs(str(tmp_path))[0]
    entries = os.path.join(store_dir, "entries.json")
    before = os.path.getmtime(entries), open(entries).read()

    warm, warm_loader = _machine(tmp_path)
    _run(warm, warm_loader)
    assert warm_loader.saved == 0
    assert open(entries).read() == before[1]    # store not rewritten


# ---------------------------------------------------------------------------
# SMC: guest code that changed since the store was built must be
# detected stale, evicted from the persisted store, and re-translated.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_smc_evicts_stale_entries(tmp_path, seed):
    rng = random.Random(seed)
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)

    # Patch a random slot in the patch region with a different
    # data-processing instruction (code changed since persist).
    slot = rng.randrange(PATCH_SLOTS)
    amount = rng.randrange(2, 200)
    addr = PATCH_BASE + 4 * slot
    word = struct.unpack(
        "<I", assemble(f"    add r6, r6, #{amount}\n", base=addr).data)[0]

    warm, warm_loader = _machine(tmp_path)
    _patch(warm, addr, word)
    assert _run(warm, warm_loader) == 0

    # Reference: a cache-less machine with the identical patch.
    fresh, _ = _machine()
    _patch(fresh, addr, word)
    assert _run(fresh, None) == 0

    assert _final_state(warm) == _final_state(fresh)
    assert warm_loader.stale >= 1          # the patched block was caught
    assert warm_loader.evicted >= 1
    assert warm_loader.fresh >= 1          # ...and re-translated

    # The re-translated block was re-persisted: a third run with the
    # same patch warm-starts everything again.
    third, third_loader = _machine(tmp_path)
    _patch(third, addr, word)
    assert _run(third, third_loader) == 0
    assert _final_state(third) == _final_state(fresh)
    assert third_loader.stale == 0
    assert third_loader.fresh == 0 and third_loader.loaded > 0


def test_smc_inside_one_run_matches_reference(tmp_path):
    """A program that patches its own code before first execution runs
    identically cold, warm, and on the reference interpreter."""
    source = """
    b main
target:
    mov r0, #1          @ overwritten before it ever executes
    bx lr
main:
    ldr r1, =target
    ldr r2, =word
    ldr r2, [r2]
    str r2, [r1]        @ patch: mov r0, #1  ->  mov r0, #42
    bl target
    ldr r10, =0x10000000
    str r0, [r10]
    ldr r10, =0x100F0000
    mov r1, #0
    str r1, [r10]
word:
    .word 0xE3A0002A    @ mov r0, #42
"""

    def build(engine, factory=None, cache=None):
        machine = Machine(engine=engine, rule_engine_factory=factory)
        machine.memory.load_program(assemble(source, base=BASE))
        machine.cpu.regs[15] = BASE
        machine.env.load_from_cpu(machine.cpu)
        loader = attach_cache(machine, str(cache)) if cache else None
        return machine, loader

    reference, _ = build("interp")
    assert _run(reference, None) == 0
    assert bytes(reference.uart.output) == b"\x2a"

    cache = tmp_path / "store"
    cold, cold_loader = build("rules", make_rule_engine(OptLevel.FULL), cache)
    assert _run(cold, cold_loader) == 0
    warm, warm_loader = build("rules", make_rule_engine(OptLevel.FULL), cache)
    assert _run(warm, warm_loader) == 0
    assert bytes(cold.uart.output) == bytes(warm.uart.output) == b"\x2a"
    # The patched block was persisted post-patch, so its bytes validate.
    assert warm_loader.loaded > 0 and warm_loader.stale == 0


# ---------------------------------------------------------------------------
# Tampered stores: detected, quarantined from reuse, never executed.
# ---------------------------------------------------------------------------

def _tamper_first_entry(root):
    """Flip a guest word in the store without fixing its checksum."""
    store_dir = iter_store_dirs(str(root))[0]
    path = os.path.join(store_dir, "entries.json")
    with open(path) as handle:
        payload = json.load(handle)
    payload["entries"][0]["words"][0] ^= 4
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return store_dir


def test_tampered_store_is_rejected_not_executed(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)
    store_dir = _tamper_first_entry(tmp_path)

    # Deep verification sees both the payload and the entry damage.
    problems = verify_store(store_dir)
    assert any("tampered" in problem for problem in problems)
    assert any("checksum mismatch" in problem for problem in problems)

    # The warm run detects the bad entry at fetch, evicts it from the
    # persisted store, and translates fresh — the result is identical.
    warm, warm_loader = _machine(tmp_path)
    assert _run(warm, warm_loader) == 0
    assert warm_loader.corrupt == 1
    assert warm_loader.evicted >= 1
    assert warm_loader.loaded == cold_loader.saved - 1
    assert _final_state(warm) == _final_state(cold)
    assert _deterministic_stats(warm) == _deterministic_stats(cold)


def test_quarantined_rule_evicts_persisted_entries(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)

    warm, warm_loader = _machine(tmp_path)
    rules = sorted({rule
                    for entry in warm_loader._entries.values()
                    for rule in (entry.get("meta") or {}).get("rules_used",
                                                              ())})
    assert rules, "expected persisted entries with rule provenance"
    victim = rules[0]
    # The runtime quarantine path: ladder + code-cache invalidation.
    # The cache's eviction listener must drop persisted entries too.
    warm.engine.ladder.quarantine_rule(victim, "test")
    warm.engine.cache.invalidate_rules([victim])
    assert warm_loader.evicted >= 1
    assert all(victim not in (entry.get("meta") or {}).get("rules_used", ())
               for entry in warm_loader._entries.values())

    # The run still completes with identical output (fallback covers
    # the quarantined rule's instructions).
    assert _run(warm, warm_loader) == 0
    assert bytes(warm.uart.output) == bytes(cold.uart.output)


# ---------------------------------------------------------------------------
# Fault-injection sites: the loader's validation paths under test.
# ---------------------------------------------------------------------------

def test_inject_cache_corrupt_forces_fresh_translation(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)

    warm, warm_loader = _machine(tmp_path, inject="seed=5,cache-corrupt=1.0")
    assert _run(warm, warm_loader) == 0
    stats = warm.stats()
    assert stats["robust.inj_cache_corrupt"] >= 1
    assert warm_loader.loaded == 0         # every entry refused...
    assert warm_loader.corrupt >= 1
    assert bytes(warm.uart.output) == bytes(cold.uart.output)


def test_inject_cache_stale_bytes_forces_fresh_translation(tmp_path):
    cold, cold_loader = _machine(tmp_path)
    _run(cold, cold_loader)

    warm, warm_loader = _machine(tmp_path,
                                 inject="seed=5,cache-stale-bytes=1.0")
    assert _run(warm, warm_loader) == 0
    stats = warm.stats()
    assert stats["robust.inj_cache_stale_bytes"] >= 1
    assert warm_loader.loaded == 0
    assert warm_loader.stale >= 1
    assert bytes(warm.uart.output) == bytes(cold.uart.output)


def test_parse_inject_spec_accepts_cache_sites():
    plan = parse_inject_spec("seed=1,cache-corrupt=0.5,cache-stale-bytes=0.25")
    assert plan.rates == {"cache-corrupt": 0.5, "cache-stale-bytes": 0.25}


# ---------------------------------------------------------------------------
# Regression: the successor live-in cache must not outlive coverage
# changes (quarantine) or code-cache invalidation.
# ---------------------------------------------------------------------------

def _bare_rules_machine(source, base=0x2000):
    machine = Machine(engine="rules",
                      rule_engine_factory=make_rule_engine(OptLevel.FULL))
    machine.memory.load_program(assemble(source, base=base))
    return machine


def test_live_in_cache_cleared_on_rule_quarantine():
    """Reproduces the stale-elision bug: quarantining a rule turns its
    instructions uncovered, which changes a successor block's live-in
    from "flags dead" to "flags needed".  A cached pre-quarantine fact
    would let a predecessor elide a flag sync the successor now needs.
    """
    from repro.core.rulebook import rule_key
    from repro.guest.decoder import decode

    pc = 0x2000
    machine = _bare_rules_machine("    adds r0, r0, r1\n    bx lr\n",
                                  base=pc)
    engine = machine.engine
    before = engine.successor_live_in(pc)
    assert pc in engine._live_in_cache

    adds = decode(int.from_bytes(machine.ram.data[pc:pc + 4], "little"), pc)
    key = rule_key(adds)
    assert engine.rulebook.covers(adds)
    engine.ladder.quarantine_rule(key, "test")
    engine.cache.invalidate_rules([key])

    # The fix: coverage changed, so every cached live-in fact is gone.
    assert engine._live_in_cache == {}
    after = engine.successor_live_in(pc)
    assert not engine.rulebook.covers(adds)
    # The block's live-in genuinely changed — serving the cached value
    # would have produced a wrong (stale) elision decision.
    assert after != before


def test_live_in_cache_dropped_per_victim_on_invalidation():
    machine = _bare_rules_machine("    adds r0, r0, r1\n    bx lr\n")
    engine = machine.engine
    engine.successor_live_in(0x2000)
    engine._live_in_cache[0x9000] = 7    # unrelated cached fact
    tb = TranslationBlock(pc=0x2000, mmu_idx=0)
    engine.cache.insert(tb)
    engine.cache.invalidate(tb)
    assert 0x2000 not in engine._live_in_cache
    assert engine._live_in_cache.get(0x9000) == 7   # others survive
