"""Tests for MiniQEMU internals: TB cache, block chaining, lazy flags."""

from repro.core import OptLevel, make_rule_engine
from repro.guest.asm import assemble
from repro.miniqemu import Machine
from repro.miniqemu.env import (ENV_CF, ENV_NF, ENV_PACKED_FLAGS,
                                ENV_PACKED_VALID, ENV_VF, ENV_ZF)


def run_flat(source, engine="tcg", factory=None, max_insns=100000):
    machine = Machine(engine=engine, rule_engine_factory=factory)
    machine.memory.load_program(assemble(source, base=0x1000))
    machine.cpu.regs[15] = 0x1000
    machine.env.load_from_cpu(machine.cpu)
    machine.run(max_insns)
    return machine

EXIT = """
    ldr r10, =0x100F0000
    mov r0, #0
    str r0, [r10]
"""

LOOP = """
    mov r0, #0
    mov r1, #50
loop:
    add r0, r0, #1
    subs r1, r1, #1
    bne loop
""" + EXIT


def test_tb_cache_reuses_translations():
    machine = run_flat(LOOP)
    stats = machine.stats()
    # The loop body TB is translated once but executed ~50 times.
    assert stats["engine.tb_count"] < 8
    loop_tbs = [tb for tb in machine.engine.cache.all_tbs()
                if tb.exec_count > 10]
    assert loop_tbs


def test_block_chaining_patches_direct_jumps():
    machine = run_flat(LOOP)
    chained = [tb for tb in machine.engine.cache.all_tbs()
               if any(target is not None for target in tb.jmp_target)]
    assert chained, "the loop back-edge should be chained"


def test_chaining_preserved_across_engines():
    for factory in (None, make_rule_engine(OptLevel.FULL)):
        engine = "tcg" if factory is None else "rules"
        machine = run_flat(LOOP, engine=engine, factory=factory)
        chained = [tb for tb in machine.engine.cache.all_tbs()
                   if any(t is not None for t in tb.jmp_target)]
        assert chained, engine


def test_separate_tbs_per_mmu_index():
    """Kernel and user mode must not share translations."""
    from tests.support import run_workload
    _, _, machine = run_workload("""
main:
    mov r0, #0
    bl uexit
""", engine="tcg")
    indexes = {tb.mmu_idx for tb in machine.engine.cache.all_tbs()}
    assert indexes == {0, 1}


def test_lazy_flags_parse_only_on_demand():
    """The packed CCR save is parsed per-bit only when QEMU reads it."""
    source = """
    cmp r0, r1
    ldr r2, [r10]          @ memory op: packed save, no parse
    mrs r3, cpsr           @ helper reads CPSR: must parse
""" + EXIT
    machine = run_flat("    ldr r10, =0x41000\n" + source,
                       engine="rules",
                       factory=make_rule_engine(OptLevel.FULL))
    assert machine.runtime.flag_parse_count >= 1
    # The parse materialized ARM-convention bits: cmp r0,r1 with both
    # zero sets Z=1 C=1 (no borrow).
    env = machine.env
    assert env.read(ENV_ZF) == 1
    assert env.read(ENV_CF) == 1
    assert env.read(ENV_NF) == 0
    assert env.read(ENV_VF) == 0


def test_packed_slot_holds_arm_convention():
    """After a sync-save of a subtraction the stored carry is ARM C."""
    source = """
    ldr r10, =0x41000
    mov r0, #5
    cmp r0, #3             @ 5-3: ARM C=1 (no borrow), x86 CF=0
    ldr r2, [r10]          @ coordination point: packed save
""" + EXIT
    machine = run_flat(source, engine="rules",
                       factory=make_rule_engine(OptLevel.REDUCTION))
    env = machine.env
    # Find the flags: either still packed-valid or parsed at exit.
    if env.read(ENV_PACKED_VALID):
        packed = env.read(ENV_PACKED_FLAGS)
        assert packed & 1 == 1          # CF bit = ARM C = 1 after cmc
    else:
        assert env.read(ENV_CF) == 1


def test_translation_costs_are_charged_once():
    machine = run_flat(LOOP)
    stats = machine.stats()
    static_insns = stats["engine.static_guest_insns"]
    assert stats["engine.translation_cost"] == 300 * static_insns


def test_stats_tags_cover_all_instructions():
    machine = run_flat(LOOP, engine="rules",
                       factory=make_rule_engine(OptLevel.FULL))
    stats = machine.stats()
    tag_total = sum(value for key, value in stats.items()
                    if key.startswith("engine.tag_"))
    assert tag_total == stats["engine.host_instructions"] + \
        (stats["engine.host_cost"] - stats["engine.host_instructions"])
