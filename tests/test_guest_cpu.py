"""Unit tests: guest CPU state, mode banking, exceptions, interpreter."""

import pytest

from repro.common.errors import MemoryFault
from repro.guest import GuestCpu, Interpreter, assemble
from repro.guest.cpu import (CPSR_I, MODE_ABT, MODE_IRQ, MODE_SVC, MODE_USR,
                             VECTOR_IRQ, VECTOR_SVC)
from repro.guest.interp import condition_passed
from repro.guest.isa import Cond


class FlatBus:
    def __init__(self, size=0x20000):
        self.data = bytearray(size)
        self.flushes = 0

    def fetch(self, vaddr):
        if vaddr >= len(self.data):
            raise MemoryFault(vaddr, False)
        return int.from_bytes(self.data[vaddr:vaddr + 4], "little")

    def load(self, vaddr, size):
        if vaddr + size > len(self.data):
            raise MemoryFault(vaddr, False)
        return int.from_bytes(self.data[vaddr:vaddr + size], "little")

    def store(self, vaddr, size, value):
        if vaddr + size > len(self.data):
            raise MemoryFault(vaddr, True)
        self.data[vaddr:vaddr + size] = \
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def tlb_flush(self):
        self.flushes += 1


def run(source, steps=1000, setup=None):
    bus = FlatBus()
    program = assemble(source, base=0x1000)
    bus.data[0x1000:0x1000 + program.size] = program.data
    cpu = GuestCpu()
    cpu.regs[15] = 0x1000
    if setup:
        setup(cpu, bus)
    interp = Interpreter(cpu, bus)
    for _ in range(steps):
        if cpu.halted:
            break
        interp.step()
    return cpu, bus


# ---------------------------------------------------------------------------
# Mode banking.
# ---------------------------------------------------------------------------

def test_sp_is_banked_between_modes():
    cpu = GuestCpu()
    assert cpu.mode == MODE_SVC
    cpu.regs[13] = 0x1000
    cpu.switch_mode(MODE_IRQ)
    cpu.regs[13] = 0x2000
    cpu.switch_mode(MODE_SVC)
    assert cpu.regs[13] == 0x1000
    cpu.switch_mode(MODE_IRQ)
    assert cpu.regs[13] == 0x2000


def test_usr_and_sys_share_bank():
    cpu = GuestCpu()
    cpu.switch_mode(MODE_USR)
    cpu.regs[13] = 0x3333
    cpu.switch_mode(0x1F)  # SYS
    assert cpu.regs[13] == 0x3333


def test_exception_entry_and_return():
    cpu = GuestCpu()
    cpu.set_nzcv(1, 0, 1, 0)
    cpu.set_flag(CPSR_I, 0)
    old_cpsr = cpu.cpsr
    cpu.regs[15] = 0x500
    cpu.take_exception(MODE_IRQ, VECTOR_IRQ, 0x504)
    assert cpu.mode == MODE_IRQ
    assert cpu.flag(CPSR_I) == 1
    assert cpu.regs[14] == 0x504
    assert cpu.regs[15] == VECTOR_IRQ
    assert cpu.spsr == old_cpsr
    cpu.exception_return(0x500)
    assert cpu.cpsr == old_cpsr
    assert cpu.regs[15] == 0x500


# ---------------------------------------------------------------------------
# Condition evaluation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cond,nzcv,expected", [
    (Cond.EQ, 0b0100, True), (Cond.EQ, 0b0000, False),
    (Cond.HI, 0b0010, True), (Cond.HI, 0b0110, False),
    (Cond.LS, 0b0110, True), (Cond.LS, 0b0010, False),
    (Cond.GE, 0b1001, True), (Cond.GE, 0b1000, False),
    (Cond.GT, 0b0000, True), (Cond.GT, 0b0100, False),
    (Cond.LE, 0b1000, True), (Cond.LE, 0b1001, False),
    (Cond.AL, 0b0000, True),
])
def test_condition_passed(cond, nzcv, expected):
    cpsr = nzcv << 28
    assert condition_passed(cond, cpsr) == expected


# ---------------------------------------------------------------------------
# Interpreter semantics spot checks.
# ---------------------------------------------------------------------------

def test_svc_takes_exception_to_vector():
    # Vector at 0 is unmapped code... place a handler at the vector.
    source = """
    svc #7
after:
    nop
"""
    bus = FlatBus()
    program = assemble(source, base=0x1000)
    bus.data[0x1000:0x1000 + program.size] = program.data
    handler = assemble("    movs pc, lr", base=VECTOR_SVC)
    bus.data[VECTOR_SVC:VECTOR_SVC + 4] = handler.data
    cpu = GuestCpu()
    cpu.regs[15] = 0x1000
    interp = Interpreter(cpu, bus)
    interp.step()
    assert cpu.mode == MODE_SVC and cpu.regs[15] == VECTOR_SVC
    assert cpu.regs[14] == 0x1004
    interp.step()  # movs pc, lr
    assert cpu.regs[15] == 0x1004


def test_data_abort_sets_fault_registers():
    cpu, _ = run("""
    ldr r1, =0x90000
    ldr r0, [r1]
""", steps=2)
    assert cpu.mode == MODE_ABT
    assert cpu.cp15.dfar == 0x90000
    assert cpu.cp15.dfsr & 0xF == 0x5


def test_irq_taken_between_instructions():
    def setup(cpu, bus):
        cpu.set_flag(CPSR_I, 0)

    source = """
    nop
    nop
"""
    bus = FlatBus()
    program = assemble(source, base=0x1000)
    bus.data[0x1000:0x1000 + program.size] = program.data
    cpu = GuestCpu()
    cpu.regs[15] = 0x1000
    cpu.set_flag(CPSR_I, 0)
    interp = Interpreter(cpu, bus)
    interp.step()
    cpu.irq_line = True
    interp.step()
    assert cpu.mode == MODE_IRQ
    assert cpu.regs[14] == 0x1004 + 4  # next insn + 4


def test_mcr_tlb_flush_reaches_bus():
    cpu, bus = run("""
    mov r0, #0
    mcr p15, 0, r0, c8, c7, 0
""", steps=2)
    assert bus.flushes == 1


def test_msr_user_mode_cannot_set_control_bits():
    cpu, _ = run("""
    ldr r0, =0x10        @ drop to user mode
    msr cpsr_c, r0
    ldr r1, =0xD3        @ try to climb back to SVC with IRQs off
    msr cpsr_c, r1
""", steps=4)
    assert cpu.mode == MODE_USR  # the control byte write was ignored


def test_wfi_halts():
    cpu, _ = run("    wfi\n    nop", steps=5)
    assert cpu.halted
    assert cpu.regs[15] == 0x1004  # pc advanced past wfi


def test_vmrs_vmsr_roundtrip_fpscr():
    cpu, _ = run("""
    ldr r0, =0xA0000000
    vmsr fpscr, r0
    vmrs r1, fpscr
""", steps=3)
    assert cpu.regs[1] == 0xA0000000
    assert cpu.fpscr == 0xA0000000


def test_clz_semantics():
    cpu, _ = run("""
    mov r0, #0x10
    clz r1, r0
    mov r2, #0
    clz r3, r2
""", steps=4)
    assert cpu.regs[1] == 27
    assert cpu.regs[3] == 32


def test_pc_relative_load_and_store_pc_value():
    cpu, bus = run("""
    ldr r1, =0x10000
    str pc, [r1]          @ stores this insn's address + 8
    ldr r2, [r1]
""", steps=3)
    assert cpu.regs[2] == 0x1004 + 8


def test_ldm_with_pc_branches():
    cpu, _ = run("""
    ldr r0, =0x10000
    ldr r1, =target
    str r1, [r0]
    ldm r0, {pc}
    mov r2, #99           @ skipped
target:
    mov r2, #1
    wfi
""", steps=10)
    assert cpu.regs[2] == 1
