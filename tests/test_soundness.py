"""The translation soundness checker (``repro check`` / ``--check``).

Three claims are pinned here:

1. **Clean builds verify**: the dataflow checker reports zero findings
   on everything the translator emits, at every optimization level.
2. **Injected violations are caught**: every analysis-level fault the
   injector plants (dropped sync-save, forged elision justification,
   forged inter-TB claim, illegal reorder, refuted rule) produces an
   ERROR finding — and the ``--check`` engine mode degrades the block
   before it can execute.
3. **Satellite regressions**: the may/definite flag-def split in
   ``core.analysis`` (conditional flag-setters are may-defs only), the
   inter-TB negative path (a successor that only *partially* defines
   the flags keeps the end-of-block save), and the carry-convention
   instructions (ADC/SBC/RRX) stay architecturally exact.
"""

import pytest

from repro.analysis.dataflow import check_tb
from repro.analysis.findings import Report, Severity
from repro.analysis.justify import (AUDIT_KEY, EV_SAVE, J_INTER_TB,
                                    JUSTIFY_KEY, ORIGINAL_INSNS_KEY,
                                    audit_of, inter_tb_justification,
                                    justifications_of)
from repro.core import OptConfig, OptLevel, make_rule_engine
from repro.core.analysis import (F_ALL, F_C, F_N, F_V, F_Z,
                                 flags_written_definite, flags_written_may)
from repro.core.engine import RuleEngine
from repro.guest.asm import assemble
from repro.guest.decoder import decode
from repro.miniqemu.machine import Machine
from repro.robustness.faultinject import FaultInjector, parse_inject_spec

BASE_ADDR = 0x40000

ALL_LEVELS = (OptLevel.BASE, OptLevel.REDUCTION, OptLevel.ELIMINATION,
              OptLevel.FULL)

#: Representative translation sources: flag producers around memory
#: sites (coordination), conditional runs (restore paths), inter-TB
#: edges, scheduling fodder, and a flags-live-across-everything block.
CLEAN_SOURCES = {
    "mem-coordination": """
    cmp r1, #10
    str r2, [r3]
    str r2, [r3, #4]
    bne target
target:
    nop
""",
    "conditional-run": """
    cmp r1, #10
    addeq r2, r2, #1
    addeq r3, r3, #1
    bx lr
""",
    "inter-tb": """
    cmp r1, r2
    b next
next:
    cmp r3, r4
    bne elsewhere
elsewhere:
    nop
""",
    "schedule": """
    cmp r1, r2
    ldr r3, [r4]
    bne target
target:
    nop
""",
    "carry-chain": """
    adds r1, r1, r2
    adc r3, r3, r4
    sbcs r5, r5, r6
    str r1, [r7]
    bx lr
""",
}

#: A flag-producer feeding a memory site feeding a flag consumer: the
#: flags are architecturally LIVE across the coordination point, so a
#: dropped sync-save here is always a detectable soundness violation.
LIVE_ACROSS_SITE = """
    adds r1, r1, r2
    str r3, [r4]
    adds r1, r1, r2
    bx lr
"""


def make_engine(source, level=OptLevel.FULL, inject=None, check=False,
                config=None):
    kwargs = {}
    if inject is not None:
        kwargs["fault_injector"] = FaultInjector(parse_inject_spec(inject))
    machine = Machine(engine="tcg", **kwargs)
    machine.memory.load_program(assemble(source, base=BASE_ADDR))
    return RuleEngine(machine, level=level, config=config, check=check)


def findings_of(engine, tb, **kw):
    return check_tb(tb, engine.config,
                    live_in_of=engine.successor_live_in,
                    rulebook=engine.rulebook, **kw)


def errors_of(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


# ---------------------------------------------------------------------------
# 1. Clean builds verify.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("level", ALL_LEVELS,
                         ids=[level.name for level in ALL_LEVELS])
@pytest.mark.parametrize("name", sorted(CLEAN_SOURCES))
def test_clean_translation_has_zero_findings(name, level):
    engine = make_engine(CLEAN_SOURCES[name], level)
    tb = engine.translate(BASE_ADDR, 0)
    assert findings_of(engine, tb) == []


def test_clean_translation_emits_audit_records():
    engine = make_engine(CLEAN_SOURCES["mem-coordination"], OptLevel.FULL)
    tb = engine.translate(BASE_ADDR, 0)
    kinds = {event["kind"] for event in audit_of(tb.meta)}
    assert "save" in kinds and "produce" in kinds


def test_waivers_reported_only_on_request():
    engine = make_engine(CLEAN_SOURCES["inter-tb"], OptLevel.ELIMINATION)
    tb = engine.translate(BASE_ADDR, 0)
    assert findings_of(engine, tb) == []
    waived = findings_of(engine, tb, include_waivers=True)
    assert all(f.severity is Severity.INFO for f in waived)


# ---------------------------------------------------------------------------
# 2. Injected violations are caught.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("level", (OptLevel.BASE, OptLevel.FULL),
                         ids=["BASE", "FULL"])
def test_dropped_save_is_flagged(level):
    engine = make_engine(LIVE_ACROSS_SITE, level, inject="drop-save=1.0")
    tb = engine.translate(BASE_ADDR, 0)
    engine.machine.injector.instrument_tb(tb)
    assert tb.meta.get("injected") == "drop-save"
    errors = errors_of(findings_of(engine, tb))
    assert errors, "dropped sync-save not detected"
    assert {f.code for f in errors} & {"lost-ccr", "env-stale-handoff"}


@pytest.mark.parametrize("level", (OptLevel.BASE, OptLevel.FULL),
                         ids=["BASE", "FULL"])
def test_forged_elision_is_flagged(level):
    engine = make_engine(LIVE_ACROSS_SITE, level, inject="forge-elide=1.0")
    tb = engine.translate(BASE_ADDR, 0)
    engine.machine.injector.instrument_tb(tb)
    assert tb.meta.get("injected") == "forge-elide"
    errors = errors_of(findings_of(engine, tb))
    assert "bad-elide-justification" in {f.code for f in errors}


def test_forged_inter_tb_claim_is_flagged():
    """A forged Sec III-C-3 record claiming the live successor is dead."""
    engine = make_engine(CLEAN_SOURCES["inter-tb"], OptLevel.ELIMINATION)
    # The middle block's successor (`elsewhere`) only partially defines
    # the flags, so the translator KEEPS the end-of-block save.  Forge
    # the elision by hand: delete the save, plant live_in=0.
    tb = engine.translate(BASE_ADDR + 8, 0)
    save = next(e for e in audit_of(tb.meta) if e["kind"] == EV_SAVE)
    start, end = save["start"], save["end"]
    delta = end - start
    del tb.code[start:end]
    for insn in tb.code:
        if insn.target_index >= end:
            insn.target_index -= delta
    from repro.analysis.justify import shift_indices
    tb.meta[AUDIT_KEY] = shift_indices(
        [e for e in audit_of(tb.meta) if e is not save], start + 1, -delta)
    records = shift_indices(justifications_of(tb.meta), start + 1, -delta)
    goto = next(i for i, insn in enumerate(tb.code)
                if insn.op.name == "GOTO_TB")
    records.append(inter_tb_justification(goto, tb.jmp_pc[0], live_in=0))
    tb.meta[JUSTIFY_KEY] = records
    errors = errors_of(findings_of(engine, tb))
    assert "bad-inter-tb-justification" in {f.code for f in errors}
    witness = next(f.witness for f in errors
                   if f.code == "bad-inter-tb-justification")
    assert witness["recomputed"] != 0


def test_tampered_reorder_is_flagged():
    engine = make_engine(CLEAN_SOURCES["schedule"], OptLevel.FULL)
    tb = engine.translate(BASE_ADDR, 0)
    original = tb.meta.get(ORIGINAL_INSNS_KEY)
    assert original, "scheduling should have reordered this block"
    assert findings_of(engine, tb) == []
    # Claim the block was ALREADY in scheduled order: the dependence
    # replay must reject the (now wrong) permutation evidence.
    source = """
    ldr r3, [r4]
    cmp r1, r2
    bne target
target:
    nop
"""
    fake = [decode(int.from_bytes(chunk, "little"), insn.addr)
            for chunk, insn in zip(
                _words(assemble(source, base=BASE_ADDR)), original)]
    tb.meta[ORIGINAL_INSNS_KEY] = fake
    # The claimed original must disagree with the reorder record.
    assert errors_of(findings_of(engine, tb))


def _words(program):
    data = program.data
    return [data[i:i + 4] for i in range(0, len(data), 4)]


def test_missing_reorder_record_is_flagged():
    engine = make_engine(CLEAN_SOURCES["schedule"], OptLevel.FULL)
    tb = engine.translate(BASE_ADDR, 0)
    tb.meta[JUSTIFY_KEY] = [r for r in justifications_of(tb.meta)
                            if r["kind"] != "reorder"]
    errors = errors_of(findings_of(engine, tb))
    assert "undeclared-reorder" in {f.code for f in errors}


def test_refuted_fixture_rule_is_quarantined():
    from repro.analysis.rulecheck import (classify_candidate,
                                          refutable_fixture)
    from repro.core.rulebook import MatureRulebook, QuarantineFilter
    from repro.learning.symexec.expr import evaluate

    candidate = refutable_fixture()
    verdict = classify_candidate(candidate)
    assert verdict.refuted
    assert verdict.witness is not None  # concrete, validated witness
    quarantine = QuarantineFilter(MatureRulebook())
    from repro.analysis.rulecheck import quarantine_refuted
    keys = quarantine_refuted([candidate], {
        "__fixture_wrong_add:1": verdict}, quarantine)
    assert "ADD" in keys
    assert not quarantine.covers(candidate.guest[0])


def test_rulebook_phase_is_clean_and_quarantines_fixture():
    from repro.analysis.checker import check_rulebook
    from repro.analysis.rulecheck import refutable_fixture
    from repro.core.rulebook import MatureRulebook, QuarantineFilter

    quarantine = QuarantineFilter(MatureRulebook())
    report = Report()
    check_rulebook(report, quarantine=quarantine,
                   extra_candidates=[refutable_fixture()])
    # Every *shipped* rule is proved or tested-only; only the fixture
    # is refuted, and it got quarantined.
    refuted = [f for f in report.findings if f.code == "rule-refuted"]
    assert len(refuted) == 1
    assert refuted[0].rule == "__fixture_wrong_add:1"
    assert report.meta["candidates_refuted"] == 1
    assert report.meta.get("rules_quarantined") == "ADD"
    fixture = refutable_fixture()
    assert not quarantine.covers(fixture.guest[0])


def test_check_mode_degrades_unsound_tb_before_entry():
    engine = make_engine(LIVE_ACROSS_SITE, OptLevel.FULL,
                         inject="drop-save=1.0", check=True)
    tb = engine.get_tb(BASE_ADDR, 0)
    assert tb.meta["tier"] == "tcg"
    assert engine.check_rejected == 1
    assert engine.cache.lookup(BASE_ADDR, 0) is tb


def test_check_mode_accepts_clean_tb():
    engine = make_engine(LIVE_ACROSS_SITE, OptLevel.FULL, check=True)
    tb = engine.get_tb(BASE_ADDR, 0)
    assert tb.meta["tier"] == "rules"
    assert engine.check_tbs == 1
    assert engine.check_rejected == 0


def test_check_mode_run_recovers_full_workload():
    """End to end: every rules TB is corrupted, --check degrades them
    all pre-entry, and the workload still produces its exact output."""
    from repro.harness.runner import run_workload
    from repro.workloads import ALL_WORKLOADS

    result = run_workload(ALL_WORKLOADS["cpu-prime"], "rules-full",
                          inject="seed=3,drop-save=1.0", check=True)
    assert result.exit_code == 0
    assert result.stats["engine.check_rejected"] > 0
    assert result.stats["robust.tier_tcg_tbs"] == \
        result.stats["engine.check_rejected"]


# ---------------------------------------------------------------------------
# 3a. Satellite: may/definite flag-def split (core.analysis).
# ---------------------------------------------------------------------------


def _decode_one(text):
    program = assemble("    " + text, base=0)
    return decode(int.from_bytes(program.data[:4], "little"), 0)


def test_conditional_flag_setter_is_may_def_only():
    insn = _decode_one("addeqs r1, r1, r2")
    assert flags_written_may(insn) == F_ALL
    assert flags_written_definite(insn) == 0


def test_unconditional_flag_setter_is_definite():
    insn = _decode_one("adds r1, r1, r2")
    assert flags_written_may(insn) == flags_written_definite(insn) == F_ALL


def test_logical_s_writes_nz_and_shifter_carry():
    assert flags_written_definite(_decode_one("ands r1, r1, r2")) == \
        F_N | F_Z
    assert flags_written_definite(_decode_one("ands r1, r1, r2, lsl #1")) \
        == F_N | F_Z | F_C


def test_partially_defining_successor_keeps_inter_tb_save():
    """Satellite 3: `movs` defines only N/Z — C|V flow through, so the
    predecessor's end-of-block save must stay (live_in != 0)."""
    source = """
    cmp r1, r2
    b next
next:
    movs r3, r4
    bx lr
"""
    engine = make_engine(source, OptLevel.ELIMINATION)
    live_in = engine.successor_live_in(BASE_ADDR + 8)
    assert live_in & (F_C | F_V)
    tb = engine.translate(BASE_ADDR, 0)
    assert tb.meta["sync_saves"] == 1
    assert not [r for r in justifications_of(tb.meta)
                if r["kind"] == J_INTER_TB]
    assert findings_of(engine, tb) == []


def test_fully_defining_successor_elides_inter_tb_save():
    engine = make_engine(CLEAN_SOURCES["inter-tb"], OptLevel.ELIMINATION)
    tb = engine.translate(BASE_ADDR, 0)
    assert [r for r in justifications_of(tb.meta)
            if r["kind"] == J_INTER_TB]
    assert findings_of(engine, tb) == []


# ---------------------------------------------------------------------------
# 3b. Satellite: ADC/SBC/RRX carry-convention regressions.
# ---------------------------------------------------------------------------

_CARRY_HEADER = """
    ldr r1, =0xFFFFFFFF
    mov r2, #1
    ldr r3, =0x80000001
    mov r4, #7
    mov r5, #0
    mov r6, #3
"""

_CARRY_FOOTER = """
    mrs r8, cpsr
    ldr r9, =0xF0000000
    and r8, r8, r9
    add r0, r1, r2
    eor r0, r0, r3
    add r0, r0, r4
    eor r0, r0, r5
    add r0, r0, r8
    ldr r10, =0x10000000
    str r0, [r10]
    mov r0, r0, lsr #8
    str r0, [r10]
    ldr r10, =0x100F0000
    mov r1, #0
    str r1, [r10]
"""

CARRY_BODIES = {
    "adc-chain": """
    adds r1, r1, r2      @ sets C
    adcs r3, r3, r4      @ consumes + produces C
    adc r5, r5, r5
""",
    "sbc-chain": """
    subs r1, r1, r2      @ C = NOT borrow (inverted on x86)
    sbcs r3, r3, r4
    sbc r5, r5, r2
""",
    "rrx": """
    adds r1, r1, r1      @ put a 1 in C
    mov r3, r3, rrx      @ rotate C into bit 31
    movs r4, r4, rrx     @ and through the flags
    mov r5, r5, rrx
""",
    "rrx-after-borrow": """
    subs r1, r2, r1      @ borrow: C clear
    movs r3, r3, rrx
    adcs r4, r4, r5
""",
}


def _run_carry(source, engine, factory=None):
    machine = Machine(engine=engine, rule_engine_factory=factory)
    machine.memory.load_program(assemble(source, base=0x1000))
    machine.cpu.regs[15] = 0x1000
    machine.env.load_from_cpu(machine.cpu)
    code = machine.run(100000)
    return code, bytes(machine.uart.output)


@pytest.mark.parametrize("name", sorted(CARRY_BODIES))
def test_carry_convention_matches_interpreter(name):
    source = _CARRY_HEADER + CARRY_BODIES[name] + _CARRY_FOOTER
    reference = _run_carry(source, "interp")
    for level in ALL_LEVELS:
        factory = make_rule_engine(level)
        assert _run_carry(source, "rules", factory) == reference, \
            f"rules-{level.name} diverged on {name}"


@pytest.mark.parametrize("name", sorted(CARRY_BODIES))
def test_carry_sources_verify_clean(name):
    source = _CARRY_HEADER + CARRY_BODIES[name] + _CARRY_FOOTER
    engine = make_engine(source, OptLevel.FULL)
    tb = engine.translate(BASE_ADDR, 0)
    assert findings_of(engine, tb) == []


# ---------------------------------------------------------------------------
# Report plumbing.
# ---------------------------------------------------------------------------


def test_report_exit_codes_and_json():
    import json

    from repro.analysis.findings import Finding

    report = Report()
    assert report.exit_code() == 0
    report.findings.append(Finding(
        severity=Severity.INFO, code="waiver", message="m"))
    assert report.exit_code(Severity.INFO) == 0
    report.findings.append(Finding(
        severity=Severity.ERROR, code="lost-ccr", message="m",
        tb_pc=0x8000, host_index=3))
    assert report.exit_code(Severity.INFO) == 1
    assert report.exit_code(Severity.ERROR) == 0
    data = json.loads(report.to_json())
    assert data["counts"]["error"] == 1
    assert any(f["code"] == "lost-ccr" and f["tb_pc"] == "0x8000"
               for f in data["findings"])
    assert "lost-ccr" in report.render_table()
