"""Unit tests for the TCG-like IR, its optimizer, and the backend."""

from repro.ir import (IRBuilder, IRCond, IROp, eliminate_dead_env_stores,
                      eliminate_dead_temps, optimize)
from repro.miniqemu.backend import TcgBackend
from repro.host.isa import X86Op


def test_builder_temps_are_fresh():
    build = IRBuilder()
    a = build.movi(1)
    b = build.movi(2)
    assert a != b
    total = build.add(a, b)
    assert build.insns[-1].dst == total


def test_dead_env_store_elimination():
    build = IRBuilder()
    value1 = build.movi(1)
    build.st_env(value1, 0x40)
    value2 = build.movi(2)
    build.st_env(value2, 0x40)    # overwrites before any read
    build.exit_tb(0)
    optimized = eliminate_dead_env_stores(build.insns)
    stores = [i for i in optimized if i.op is IROp.ST_ENV]
    assert len(stores) == 1
    assert stores[0].args[0] == value2


def test_env_store_kept_when_read_between():
    build = IRBuilder()
    value1 = build.movi(1)
    build.st_env(value1, 0x40)
    build.ld_env(0x40)
    value2 = build.movi(2)
    build.st_env(value2, 0x40)
    build.exit_tb(0)
    optimized = eliminate_dead_env_stores(build.insns)
    stores = [i for i in optimized if i.op is IROp.ST_ENV]
    assert len(stores) == 2


def test_env_store_kept_across_call_barrier():
    build = IRBuilder()
    value1 = build.movi(1)
    build.st_env(value1, 0x40)
    build.call(lambda runtime: None)
    value2 = build.movi(2)
    build.st_env(value2, 0x40)
    build.exit_tb(0)
    optimized = eliminate_dead_env_stores(build.insns)
    stores = [i for i in optimized if i.op is IROp.ST_ENV]
    assert len(stores) == 2


def test_dead_temp_elimination_cascades():
    build = IRBuilder()
    a = build.movi(1)
    b = build.add(a, 2)
    build.add(b, 3)               # c: never used
    keep = build.movi(9)
    build.st_env(keep, 0x10)
    build.exit_tb(0)
    optimized = eliminate_dead_temps(build.insns)
    # a, b and c all die together.
    assert len([i for i in optimized if i.op in (IROp.MOVI, IROp.ADD)]) == 1


def test_optimize_pipeline_shrinks_flag_stores():
    """Two consecutive flag computations: the first is dead."""
    build = IRBuilder()
    for value in (1, 2):
        reg = build.movi(value)
        n = build.and_(build.shr(reg, 31), 1)
        build.st_env(n, 0x40)
        z = build.setcond(IRCond.EQ, reg, 0)
        build.st_env(z, 0x44)
    build.exit_tb(0)
    optimized = optimize(build.insns)
    stores = [i for i in optimized if i.op is IROp.ST_ENV]
    assert len(stores) == 2  # only the second N/Z pair survives


def test_backend_reuses_dying_source_register():
    build = IRBuilder()
    a = build.movi(5)
    b = build.add(a, 7)           # a dies here: two-address reuse
    build.st_env(b, 0x20)
    build.exit_tb(0)
    code = TcgBackend(0).lower(build.insns)
    movs = [i for i in code if i.op is X86Op.MOV]
    adds = [i for i in code if i.op is X86Op.ADD]
    assert len(adds) == 1
    # mov reg,5 ; add reg,7 ; mov [env],reg ; exit -- no extra copy.
    assert len(movs) == 2


def test_backend_spills_when_out_of_registers():
    build = IRBuilder()
    temps = [build.movi(i) for i in range(8)]  # more than 6 registers
    total = temps[0]
    for temp in temps[1:]:
        total = build.add(total, temp)
    build.st_env(total, 0x20)
    build.exit_tb(0)
    code = TcgBackend(0).lower(build.insns)
    # It must lower without raising, producing at least one spill store.
    spill_stores = [i for i in code if i.op is X86Op.MOV and
                    hasattr(i.dst, "disp") and i.dst.disp >= 0x64]
    assert spill_stores


def test_backend_variable_shift_uses_cl():
    build = IRBuilder()
    value = build.movi(0xF0)
    amount = build.movi(4)
    build.st_env(build.shr(value, amount), 0x20)
    build.exit_tb(0)
    code = TcgBackend(0).lower(build.insns)
    shifts = [i for i in code if i.op is X86Op.SHR]
    assert len(shifts) == 1
    assert shifts[0].src.number == 1  # ECX
