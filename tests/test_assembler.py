"""Unit tests for the two-pass ARM assembler."""

import pytest

from repro.common.errors import AssemblerError
from repro.guest.asm import assemble
from repro.guest.decoder import decode
from repro.guest.isa import Cond, Op


def first_insn(source, base=0):
    program = assemble(source, base=base)
    word = int.from_bytes(program.data[:4], "little")
    return decode(word, base)


def insn_at(program, addr):
    offset = addr - program.base
    word = int.from_bytes(program.data[offset:offset + 4], "little")
    return decode(word, addr)


def test_labels_and_branches():
    program = assemble("""
start:
    b forward
    nop
forward:
    b start
""", base=0x1000)
    branch = insn_at(program, 0x1000)
    assert branch.op is Op.B and branch.target == 0x1008
    back = insn_at(program, 0x1008)
    assert back.target == 0x1000


def test_equ_and_expressions():
    program = assemble("""
.equ BASE, 0x1000
.equ FIELD, BASE + (4 * 8)
    mov r0, #FIELD - 0x1000
""")
    insn = insn_at(program, 0)
    assert insn.op2.imm == 32


def test_word_and_asciz_directives():
    program = assemble("""
    .word 0x11223344, 5
    .asciz "ok"
""")
    assert program.data[:4] == bytes.fromhex("44332211")
    assert program.data[4:8] == (5).to_bytes(4, "little")
    assert program.data[8:11] == b"ok\0"


def test_align_and_space():
    program = assemble("""
    .space 3
    .align 2
marker:
    nop
""")
    assert program.symbols["marker"] == 4


def test_ldr_pseudo_uses_mov_when_encodable():
    insn = first_insn("    ldr r0, =0xFF000000")
    assert insn.op is Op.MOV
    assert insn.op2.imm == 0xFF000000


def test_ldr_pseudo_uses_mvn_for_inverted():
    insn = first_insn("    ldr r0, =0xFFFFFFFE")
    assert insn.op is Op.MVN
    assert insn.op2.imm == 1


def test_ldr_pseudo_literal_pool():
    program = assemble("""
    ldr r0, =0x12345678
    nop
""")
    insn = insn_at(program, 0)
    assert insn.op is Op.LDR and insn.rn == 15
    pool_addr = 0 + 8 + insn.mem_offset_imm
    value = int.from_bytes(program.data[pool_addr:pool_addr + 4], "little")
    assert value == 0x12345678


def test_push_pop_aliases():
    push = first_insn("    push {r0, r4-r6, lr}")
    assert push.op is Op.STM and push.rn == 13 and push.writeback
    assert push.reglist == [0, 4, 5, 6, 14]
    assert push.before and not push.increment  # stmdb
    pop = first_insn("    pop {r0, pc}")
    assert pop.op is Op.LDM and pop.reglist == [0, 15]
    assert not pop.before and pop.increment    # ldmia


def test_condition_suffix_disambiguation():
    # "bls" is b+ls, not bl+s; "bleq" is bl+eq.
    assert first_insn("target:\n    bls target").cond == Cond.LS
    assert first_insn("target:\n    bls target").op is Op.B
    assert first_insn("target:\n    bleq target").op is Op.BL
    assert first_insn("target:\n    bleq target").cond == Cond.EQ


def test_old_and_new_style_flags_suffix():
    for text in ("addeqs r0, r0, #1", "addseq r0, r0, #1"):
        insn = first_insn("    " + text)
        assert insn.op is Op.ADD and insn.set_flags
        assert insn.cond == Cond.EQ


def test_memory_addressing_modes():
    pre = first_insn("    ldr r0, [r1, #8]")
    assert pre.pre_indexed and pre.mem_offset_imm == 8 and not pre.writeback
    wb = first_insn("    ldr r0, [r1, #8]!")
    assert wb.writeback
    post = first_insn("    ldr r0, [r1], #8")
    assert not post.pre_indexed
    neg = first_insn("    ldr r0, [r1, #-8]")
    assert not neg.add_offset
    reg = first_insn("    ldr r0, [r1, r2, lsl #2]")
    assert reg.mem_offset_reg == 2 and reg.mem_shift_imm == 2
    negreg = first_insn("    ldr r0, [r1, -r2]")
    assert negreg.mem_offset_reg == 2 and not negreg.add_offset


def test_adr_pseudo():
    program = assemble("""
    adr r0, data
    nop
data:
    .word 1
""")
    insn = insn_at(program, 0)
    assert insn.op is Op.ADD and insn.rn == 15
    assert insn.op2.imm == 0  # data at 8 == pc+8


def test_msr_field_masks():
    insn = first_insn("    msr cpsr_c, r0")
    assert insn.imm == 1
    insn = first_insn("    msr spsr_cxsf, r1")
    assert insn.spsr and insn.imm == 0xF


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("    nop\n    frobnicate r0\n")
    assert excinfo.value.line == 2


def test_unencodable_immediate_rejected():
    with pytest.raises(AssemblerError):
        assemble("    mov r0, #0x12345\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("    b nowhere\n")


def test_comments_stripped():
    program = assemble("""
    nop        @ arm-style comment
    nop        // c-style comment
""")
    assert program.size == 8


def test_char_literals():
    insn = first_insn("    mov r0, #'A'")
    assert insn.op2.imm == 65
    insn = first_insn("    mov r0, #('a' - 10)")
    assert insn.op2.imm == 87
