"""Kernel behaviour tests + differential workload checks."""

import pytest

from repro.core import OptLevel, make_rule_engine
from repro.harness.runner import make_machine, run_workload
from repro.workloads.realworld import REALWORLD_WORKLOADS
from repro.workloads.spec import SPEC_WORKLOADS
from tests.support import run_workload as run_body


# ---------------------------------------------------------------------------
# Kernel services.
# ---------------------------------------------------------------------------

def test_kernel_pdec_prints_edge_values():
    code, text, _ = run_body(r"""
main:
    mov r0, #0
    bl updec
    ldr r0, =4294967295
    bl updec
    ldr r0, =1000000
    bl updec
    mov r0, #0
    bl uexit
""")
    assert text == "0\n4294967295\n1000000\n"


def test_kernel_phex_prints_all_digits():
    code, text, _ = run_body(r"""
main:
    ldr r0, =0xDEADBEEF
    bl uphex
    mov r0, #0
    bl uphex
    mov r0, #0
    bl uexit
""")
    assert text == "deadbeef\n00000000\n"


def test_user_cannot_touch_kernel_memory():
    """A user-mode store to a privileged page must be killed (exit 127)."""
    code, text, _ = run_body(r"""
main:
    ldr r0, =0x8000      @ kernel code page (privileged L2 mapping)
    mov r1, #1
    str r1, [r0]
    bl uexit
""")
    assert code == 127
    assert "D" in text  # the kernel's abort handler marker


def test_user_cannot_touch_devices_directly():
    code, text, _ = run_body(r"""
main:
    ldr r0, =0x10000000  @ the UART is mapped privileged-only
    mov r1, #65
    str r1, [r0]
    mov r0, #0
    bl uexit
""")
    assert code == 127


def test_undefined_instruction_is_trapped():
    code, text, _ = run_body(r"""
main:
    .word 0xFFFFFFFF     @ not a valid instruction
    mov r0, #0
    bl uexit
""")
    assert code == 126
    assert "U" in text


def test_block_device_syscalls_roundtrip():
    code, text, _ = run_body(r"""
main:
    ldr r4, =USER_HEAP
    mov r0, #0
fill:
    add r1, r0, #7
    strb r1, [r4, r0]
    add r0, r0, #1
    cmp r0, #512
    blt fill
    mov r0, #5           @ write sector 5
    mov r1, r4
    bl ubwrite
    add r1, r4, #0x400   @ read it back elsewhere
    mov r0, #5
    bl ubread
    mov r5, #0
    mov r0, #0
check:
    ldrb r1, [r4, r0]
    add r2, r4, #0x400
    ldrb r3, [r2, r0]
    cmp r1, r3
    addne r5, r5, #1
    add r0, r0, #1
    cmp r0, #512
    blt check
    mov r0, r5
    bl updec
    mov r0, #0
    bl uexit
""")
    assert text == "0\n"  # zero mismatches


# ---------------------------------------------------------------------------
# Workload differential checks (a representative subset per engine; the
# benchmarks exercise the full matrix).
# ---------------------------------------------------------------------------

DIFF_SPEC = ["mcf", "sjeng", "xalancbmk", "h264ref"]


@pytest.mark.parametrize("name", DIFF_SPEC)
@pytest.mark.parametrize("engine", ["tcg", "rules-base", "rules-full"])
def test_spec_analog_matches_reference(name, engine):
    workload = SPEC_WORKLOADS[name]
    result = run_workload(workload, engine)
    assert result.output == workload.expected_output
    assert result.exit_code == 0


@pytest.mark.parametrize("name", sorted(REALWORLD_WORKLOADS))
def test_realworld_agree_across_engines(name):
    workload = REALWORLD_WORKLOADS[name]
    outputs = {}
    for engine in ("interp", "tcg", "rules-full"):
        result = run_workload(workload, engine)
        outputs[engine] = result.output
    assert outputs["interp"] == outputs["tcg"] == outputs["rules-full"]


def test_memcached_serves_responses():
    workload = REALWORLD_WORKLOADS["memcached"]
    machine = make_machine(workload, "rules-full")
    machine.run(workload.max_insns)
    # One response per request packet.
    assert len(machine.nic.tx_packets) == len(workload.nic_packets)
    statuses = {packet[0:1] for packet in machine.nic.tx_packets}
    assert statuses <= {b"O", b"V"}


def test_fileio_is_io_bound():
    workload = REALWORLD_WORKLOADS["fileio"]
    result = run_workload(workload, "tcg")
    assert result.io_cost > result.host_cost  # the paper's 1.08x story


def test_all_spec_expected_outputs_are_recorded():
    for workload in SPEC_WORKLOADS.values():
        assert workload.expected_output, workload.name
        assert workload.expected_output.endswith("\n")
