"""Demand paging: data aborts that map a page and resume.

MiB 4 of the guest address space starts unmapped; the kernel's data
abort handler allocates a physical page, installs the L2 entry and
retries the faulting instruction.  This exercises the full
fault -> handler -> resume path on every engine, including the rule
engine's guarantee that dirty register state reaches env before any
potentially-faulting access.
"""

import pytest

from repro.core import OptLevel, make_rule_engine
from tests.support import run_workload

TOUCH_MANY = r"""
main:
    ldr r4, =DEMAND_BASE
    mov r5, #0
touch:
    str r5, [r4, r5, lsl #2]
    add r5, r5, #1
    ldr r1, =3000
    cmp r5, r1
    blt touch
    mov r6, #0
    mov r5, #0
verify:
    ldr r3, [r4, r5, lsl #2]
    add r6, r6, r3
    add r5, r5, #1
    ldr r1, =3000
    cmp r5, r1
    blt verify
    mov r0, r6
    bl updec
    bl ufaults
    bl updec
    mov r0, #0
    bl uexit
"""

SPARSE_TOUCH = r"""
main:
    ldr r4, =DEMAND_BASE
    mov r5, #0
    mov r6, #0
touch:
    add r0, r4, r5, lsl #12      @ one word per page
    str r5, [r0]
    ldr r1, [r0]
    add r6, r6, r1
    add r5, r5, #1
    cmp r5, #40
    blt touch
    mov r0, r6
    bl updec                     @ 0+1+...+39 = 780
    bl ufaults
    bl updec                     @ exactly 40 page-ins
    mov r0, #0
    bl uexit
"""

FAULT_IN_LOOP_WITH_FLAGS = r"""
main:
    @ the faulting store sits between a producer and its consumer: the
    @ abort + resume must preserve the guest condition codes.
    ldr r4, =DEMAND_BASE
    mov r5, #20
    mov r6, #0
loop:
    cmp r5, #10
    str r5, [r4, r5, lsl #8]     @ crosses pages as r5 shrinks
    addge r6, r6, #1             @ consumes the cmp's flags after a fault
    subs r5, r5, #1
    bne loop
    mov r0, r6
    bl updec                     @ r5=20..11 satisfy ge: 10... plus r5=10
    bl ufaults
    bl updec
    mov r0, #0
    bl uexit
"""


def reference(body):
    code, text, _ = run_workload(body, engine="interp")
    assert code == 0
    return code, text


@pytest.mark.parametrize("body,name", [
    (TOUCH_MANY, "touch_many"),
    (SPARSE_TOUCH, "sparse"),
    (FAULT_IN_LOOP_WITH_FLAGS, "flags_across_fault"),
])
def test_demand_paging_agrees_across_engines(body, name):
    expected = reference(body)
    assert run_workload(body, engine="tcg")[:2] == expected
    for level in (OptLevel.BASE, OptLevel.ELIMINATION, OptLevel.FULL):
        outcome = run_workload(
            body, engine="rules",
            rule_engine_factory=make_rule_engine(level))[:2]
        assert outcome == expected, f"{name} diverged at {level.name}"


def test_fault_counts_are_exact():
    _, text = reference(SPARSE_TOUCH)
    assert text == "780\n40\n"


def test_untouched_demand_page_reads_kill():
    """Addresses past the demand MiB still fault fatally."""
    body = r"""
main:
    ldr r4, =0x900000                 @ beyond RAM: genuinely unmapped
    ldr r0, [r4]
    mov r0, #0
    bl uexit
"""
    code, text, _ = run_workload(body, engine="interp")
    assert code == 127
    assert "D" in text
