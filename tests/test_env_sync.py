"""Tests for the env structure and its synchronization with GuestCpu."""

from repro.guest.cpu import GuestCpu, MODE_IRQ, MODE_SVC
from repro.miniqemu.env import (ENV_CF, ENV_NF, ENV_PACKED_VALID, ENV_VF,
                                ENV_ZF, Env, env_reg, env_vfp)


def test_roundtrip_preserves_architectural_state():
    cpu = GuestCpu()
    for index in range(16):
        cpu.regs[index] = 0x1000 + index
    cpu.set_nzcv(1, 0, 1, 1)
    cpu.vfp[5] = 0x3F800000
    cpu.fpscr = 0xA0000000
    env = Env()
    env.load_from_cpu(cpu)

    other = GuestCpu()
    env.store_to_cpu(other)
    assert other.regs == cpu.regs
    assert other.cpsr == cpu.cpsr
    assert other.vfp[5] == 0x3F800000
    assert other.fpscr == 0xA0000000


def test_flags_split_into_per_bit_fields():
    cpu = GuestCpu()
    cpu.set_nzcv(1, 1, 0, 1)
    env = Env()
    env.load_from_cpu(cpu)
    assert env.read(ENV_NF) == 1
    assert env.read(ENV_ZF) == 1
    assert env.read(ENV_CF) == 0
    assert env.read(ENV_VF) == 1
    assert env.read(ENV_PACKED_VALID) == 0


def test_store_to_cpu_switches_mode_with_banking():
    cpu = GuestCpu()
    assert cpu.mode == MODE_SVC
    cpu.regs[13] = 0xAAAA          # SVC stack pointer
    env = Env()
    env.load_from_cpu(cpu)
    # Pretend generated code ran while QEMU recorded an IRQ-mode CPSR.
    env.write(0x50, (cpu.cpsr & 0x0FFFFFF0) | MODE_IRQ)  # ENV_CPSR_REST
    env.set_reg(13, 0xBBBB)        # the IRQ-mode sp value
    env.store_to_cpu(cpu)
    assert cpu.mode == MODE_IRQ
    assert cpu.regs[13] == 0xBBBB
    cpu.switch_mode(MODE_SVC)
    assert cpu.regs[13] == 0xAAAA  # the banked SVC sp survived


def test_field_offsets_do_not_overlap():
    offsets = [env_reg(index) for index in range(16)]
    offsets += [ENV_NF, ENV_ZF, ENV_CF, ENV_VF, ENV_PACKED_VALID]
    offsets += [env_vfp(index) for index in range(32)]
    assert len(set(offsets)) == len(offsets)
    from repro.miniqemu.env import ENV_SIZE
    assert max(offsets) + 4 <= ENV_SIZE


def test_pc_property():
    env = Env()
    env.pc = 0x1234
    assert env.pc == 0x1234
    assert env.get_reg(15) == 0x1234
