"""Unit tests for the host x86 model: flags semantics, interpreter, builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import HostExecutionError
from repro.host import (CodeBuilder, EAX, EBX, ECX, EDX, ESP, HostCpu,
                        HostInterpreter, HostMemory, Imm, Mem, Reg, X86Cond,
                        X86Op)

STACK_TOP = 0x2000


def make_host():
    memory = HostMemory()
    memory.map_region(0, bytearray(0x4000), "flat")
    cpu = HostCpu(stack_top=STACK_TOP)
    return HostInterpreter(cpu, memory), cpu, memory


class FakeTb:
    pc = 0

    def __init__(self, code):
        self.code = code
        self.jmp_target = [None, None]


def run(builder: CodeBuilder):
    builder.exit_tb(0)
    interp, cpu, memory = make_host()
    interp.execute(FakeTb(builder.finish()))
    return interp, cpu, memory


# ---------------------------------------------------------------------------
# Arithmetic flags.
# ---------------------------------------------------------------------------

def test_add_sets_carry_and_overflow():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0xFFFFFFFF)
    builder.add(Reg(EAX), Imm(1))
    _, cpu, _ = run(builder)
    assert cpu.regs[EAX] == 0
    assert (cpu.cf, cpu.zf, cpu.of) == (1, 1, 0)


def test_signed_overflow():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0x7FFFFFFF)
    builder.add(Reg(EAX), Imm(1))
    _, cpu, _ = run(builder)
    assert (cpu.of, cpu.sf, cpu.cf) == (1, 1, 0)


def test_sub_borrow():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.sub(Reg(EAX), Imm(2))
    _, cpu, _ = run(builder)
    assert cpu.regs[EAX] == 0xFFFFFFFF
    assert cpu.cf == 1 and cpu.sf == 1


def test_adc_sbb_chain():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0xFFFFFFFF)
    builder.add(Reg(EAX), Imm(1))      # CF=1
    builder.movi(Reg(EBX), 5)
    builder.adc(Reg(EBX), Imm(0))      # 5 + 0 + CF
    _, cpu, _ = run(builder)
    assert cpu.regs[EBX] == 6


def test_logical_preserves_cf_of():
    """Documented deviation: AND/OR/XOR/TEST keep CF/OF (see DESIGN.md)."""
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.sub(Reg(EAX), Imm(2))      # CF=1
    builder.and_(Reg(EAX), Imm(0xFF))
    _, cpu, _ = run(builder)
    assert cpu.cf == 1                 # real x86 would clear it


def test_inc_dec_preserve_carry():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.sub(Reg(EAX), Imm(2))      # CF=1
    builder.emit(X86Op.INC, Reg(EAX))
    _, cpu, _ = run(builder)
    assert cpu.cf == 1 and cpu.regs[EAX] == 0


def test_shift_carry_out():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0x80000001)
    builder.shr(Reg(EAX), Imm(1))
    _, cpu, _ = run(builder)
    assert cpu.cf == 1 and cpu.regs[EAX] == 0x40000000


def test_rcr_rotates_through_carry():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.sub(Reg(EAX), Imm(2))      # CF=1
    builder.movi(Reg(EBX), 2)
    builder.rcr1(Reg(EBX))
    _, cpu, _ = run(builder)
    assert cpu.regs[EBX] == 0x80000001
    assert cpu.cf == 0


def test_cmc_stc_clc():
    builder = CodeBuilder()
    builder.emit(X86Op.STC)
    builder.cmc()
    _, cpu, _ = run(builder)
    assert cpu.cf == 0


# ---------------------------------------------------------------------------
# Flags as a word (the coordination primitives).
# ---------------------------------------------------------------------------

def test_pushfd_popfd_roundtrip():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0)
    builder.sub(Reg(EAX), Imm(1))      # CF=1 SF=1
    builder.pushfd()
    builder.movi(Reg(EBX), 5)
    builder.add(Reg(EBX), Imm(5))      # clobber flags
    builder.popfd()
    _, cpu, _ = run(builder)
    assert cpu.cf == 1 and cpu.sf == 1 and cpu.zf == 0


def test_lahf_sahf():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.sub(Reg(EAX), Imm(1))      # ZF=1
    builder.lahf()
    builder.movi(Reg(EBX), 1)
    builder.add(Reg(EBX), Imm(1))      # ZF=0
    builder.sahf()
    _, cpu, _ = run(builder)
    assert cpu.zf == 1


def test_setcc_writes_low_byte_only():
    builder = CodeBuilder()
    builder.movi(Reg(EBX), 0xAABBCCDD)
    builder.movi(Reg(EAX), 0)
    builder.cmp(Reg(EAX), Imm(0))
    builder.setcc(X86Cond.E, Reg(EBX))
    _, cpu, _ = run(builder)
    assert cpu.regs[EBX] == 0xAABBCC01


def test_setcc_to_memory_byte():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 1)
    builder.cmp(Reg(EAX), Imm(1))
    builder.setcc(X86Cond.E, Mem(base=None, disp=0x100, size=1))
    _, _, memory = run(builder)
    assert memory.read(0x100, 4) == 1


# ---------------------------------------------------------------------------
# Control flow, stack, memory operands.
# ---------------------------------------------------------------------------

def test_jcc_and_labels():
    builder = CodeBuilder()
    done = builder.new_label()
    builder.movi(Reg(EAX), 0)
    builder.movi(Reg(ECX), 5)
    loop = builder.new_label()
    builder.bind(loop)
    builder.add(Reg(EAX), Imm(3))
    builder.sub(Reg(ECX), Imm(1))
    builder.jcc(X86Cond.NE, loop)
    builder.bind(done)
    _, cpu, _ = run(builder)
    assert cpu.regs[EAX] == 15


def test_push_pop():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 42)
    builder.push(Reg(EAX))
    builder.movi(Reg(EAX), 0)
    builder.pop(Reg(EBX))
    _, cpu, _ = run(builder)
    assert cpu.regs[EBX] == 42
    assert cpu.regs[ESP] == STACK_TOP


def test_memory_scaled_index():
    builder = CodeBuilder()
    builder.movi(Reg(EBX), 0x200)
    builder.movi(Reg(ECX), 3)
    builder.movi(Reg(EAX), 0x11223344)
    builder.mov(Mem(base=EBX, index=ECX, scale=4), Reg(EAX))
    _, _, memory = run(builder)
    assert memory.read(0x20C, 4) == 0x11223344


def test_movzx_movsx():
    builder = CodeBuilder()
    builder.movi(Reg(EAX), 0xFFFFFF80)
    builder.mov(Mem(base=None, disp=0x300, size=1), Reg(EAX))
    builder.movzx(Reg(EBX), Mem(base=None, disp=0x300, size=1))
    builder.movsx(Reg(ECX), Mem(base=None, disp=0x300, size=1))
    _, cpu, _ = run(builder)
    assert cpu.regs[EBX] == 0x80
    assert cpu.regs[ECX] == 0xFFFFFF80


def test_helper_call_receives_stack_args():
    seen = []

    def helper(runtime, a, b):
        seen.append((a, b))
        return a + b

    builder = CodeBuilder()
    builder.movi(Reg(EAX), 7)
    builder.push(Imm(9))
    builder.push(Reg(EAX))
    builder.call_helper(helper, args=(Mem(base=ESP, disp=0),
                                      Mem(base=ESP, disp=4)))
    builder.add(Reg(ESP), Imm(8))
    _, cpu, _ = run(builder)
    assert seen == [(7, 9)]
    assert cpu.regs[EAX] == 16  # result in EAX


def test_unmapped_host_access_raises():
    builder = CodeBuilder()
    builder.mov(Reg(EAX), Mem(base=None, disp=0x999999))
    builder.exit_tb(0)
    interp, _, _ = make_host()
    with pytest.raises(HostExecutionError):
        interp.execute(FakeTb(builder.finish()))


def test_tag_attribution():
    builder = CodeBuilder(default_tag="code")
    with builder.tagged("sync"):
        builder.movi(Reg(EAX), 1)
        builder.movi(Reg(EBX), 2)
    builder.movi(Reg(ECX), 3)
    interp, _, _ = run(builder)
    assert interp.by_tag["sync"] == 2
    assert interp.by_tag["code"] == 2  # movi ecx + exit_tb


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_flags_add_matches_python(a, b):
    cpu = HostCpu()
    result = cpu.flags_add(a, b)
    assert result == (a + b) & 0xFFFFFFFF
    assert cpu.cf == (1 if a + b > 0xFFFFFFFF else 0)
    assert cpu.zf == (1 if result == 0 else 0)


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_flags_sub_matches_python(a, b):
    cpu = HostCpu()
    result = cpu.flags_sub(a, b)
    assert result == (a - b) & 0xFFFFFFFF
    assert cpu.cf == (1 if b > a else 0)
