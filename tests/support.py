"""Shared test helpers: boot a machine with the mini-kernel and a workload."""

from __future__ import annotations

from repro.kernel.kernel import (DEFAULT_TIMER_RELOAD, build_kernel,
                                 build_user_program)
from repro.miniqemu.machine import Machine


def boot_machine(user_body: str, engine: str = "interp",
                 timer_reload: int = DEFAULT_TIMER_RELOAD,
                 rule_engine_factory=None, **machine_kwargs) -> Machine:
    """Create a machine with the kernel + a user program loaded, pc at reset."""
    machine = Machine(engine=engine, rule_engine_factory=rule_engine_factory,
                      **machine_kwargs)
    kernel = build_kernel(timer_reload=timer_reload)
    user = build_user_program(user_body)
    machine.memory.load_program(kernel)
    machine.memory.load_program(user)
    machine.cpu.regs[15] = 0  # reset vector
    machine.env.load_from_cpu(machine.cpu)
    return machine


def run_workload(user_body: str, engine: str = "interp",
                 max_insns: int = 20_000_000, **kwargs):
    """Boot, run to halt; returns (exit_code, uart_text, machine)."""
    machine = boot_machine(user_body, engine=engine, **kwargs)
    code = machine.run(max_insns)
    return code, machine.uart.text, machine
