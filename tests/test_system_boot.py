"""End-to-end system boot tests on the reference interpreter and TCG.

These are the master differential tests: the same kernel + user program
must produce identical console output and exit codes on every engine.
"""

import pytest

from tests.support import run_workload

HELLO = r"""
main:
    adr r0, message
    mov r1, #7
    bl uputs
    mov r0, #42
    bl uexit
message:
    .asciz "hello \n"
"""

ARITHMETIC = r"""
main:
    mov r4, #0          @ sum
    mov r5, #1          @ i
arith_loop:
    mul r6, r5, r5
    add r4, r4, r6
    add r5, r5, #1
    cmp r5, #50
    ble arith_loop
    mov r0, r4
    bl updec            @ sum of squares 1..50 = 42925
    mov r0, #0
    bl uexit
"""

MEMORY = r"""
main:
    ldr r4, =USER_HEAP
    mov r5, #0
fill_loop:
    str r5, [r4, r5, lsl #2]
    add r5, r5, #1
    cmp r5, #256
    blt fill_loop
    mov r6, #0          @ checksum
    mov r5, #0
sum_loop:
    ldr r3, [r4, r5, lsl #2]
    add r6, r6, r3
    add r5, r5, #1
    cmp r5, #256
    blt sum_loop
    mov r0, r6
    bl updec            @ 0+1+...+255 = 32640
    mov r0, #5
    bl uexit
"""

TICKS = r"""
main:
    ldr r4, =20000      @ spin to let the timer fire
spin:
    subs r4, r4, #1
    bne spin
    bl uticks
    cmp r0, #1
    movlt r0, #1        @ expect at least one tick
    movge r0, #0
    bl uexit
"""


@pytest.mark.parametrize("engine", ["interp", "tcg"])
class TestSystemBoot:
    def test_hello(self, engine):
        code, text, _ = run_workload(HELLO, engine=engine)
        assert code == 42
        assert text == "hello \n"

    def test_arithmetic(self, engine):
        code, text, _ = run_workload(ARITHMETIC, engine=engine)
        assert code == 0
        assert text == "42925\n"

    def test_memory(self, engine):
        code, text, _ = run_workload(MEMORY, engine=engine)
        assert code == 5
        assert text == "32640\n"

    def test_timer_ticks(self, engine):
        code, text, _ = run_workload(TICKS, engine=engine,
                                     timer_reload=2000)
        assert code == 0


def test_engines_agree():
    results = {}
    for engine in ("interp", "tcg"):
        code, text, machine = run_workload(ARITHMETIC, engine=engine)
        results[engine] = (code, text)
    assert results["interp"] == results["tcg"]


def test_tcg_reports_host_instructions():
    _, _, machine = run_workload(ARITHMETIC, engine="tcg")
    stats = machine.stats()
    assert stats["engine.host_instructions"] > stats["engine.guest_icount"] > 0
