"""Unit tests for the core package: analysis, condmap, coordination,
register cache, rulebooks, optimization config."""

import pytest

from repro.core import (CarryKind, EmptyRulebook, MatureRulebook, OptConfig,
                        OptLevel, StructuralFilter, analyze_block,
                        flags_read, flags_written)
from repro.core.analysis import (F_ALL, F_C, F_N, F_V, F_Z,
                                 schedule_define_before_use)
from repro.core.condmap import map_condition, negate, skip_sequence
from repro.core.coordination import FlagsState, SyncStats
from repro.core.regcache import CACHE_REGS, RegCache
from repro.guest.asm import assemble
from repro.guest.decoder import decode
from repro.guest.isa import Cond, Op
from repro.host.builder import CodeBuilder
from repro.host.isa import X86Cond, X86Op


def insns_of(source):
    program = assemble(source, base=0)
    out = []
    for offset in range(0, program.size, 4):
        word = int.from_bytes(program.data[offset:offset + 4], "little")
        out.append(decode(word, offset))
    return out


# ---------------------------------------------------------------------------
# Flag read/write analysis.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("text,expected", [
    ("cmp r0, r1", F_ALL),
    ("adds r0, r0, r1", F_ALL),
    ("ands r0, r0, r1", F_N | F_Z),
    ("ands r0, r0, r1, lsr #3", F_N | F_Z | F_C),
    ("tst r0, #0xF000000F", F_N | F_Z | F_C),
    ("tst r0, #1", F_N | F_Z),
    ("muls r0, r1, r2", F_N | F_Z),
    ("add r0, r0, r1", 0),
])
def test_flags_written(text, expected):
    (insn,) = insns_of("    " + text)
    assert flags_written(insn) == expected


@pytest.mark.parametrize("text,expected", [
    ("addeq r0, r0, r1", F_Z),
    ("addhi r0, r0, r1", F_C | F_Z),
    ("addge r0, r0, r1", F_N | F_V),
    ("adc r0, r0, r1", F_C),
    ("add r0, r0, r1, rrx", F_C),
    ("add r0, r0, r1", 0),
    ("mrs r0, cpsr", F_ALL),
])
def test_flags_read(text, expected):
    (insn,) = insns_of("    " + text)
    assert flags_read(insn) == expected


def test_liveness_backward():
    info = analyze_block(insns_of("""
    cmp r0, r1
    addeq r2, r2, #1
    cmp r3, r4
    bne somewhere
somewhere:
"""))
    # After the first cmp, only Z is live (addeq reads it); after the
    # addeq nothing is live because the second cmp redefines all four.
    assert info.insns[0].live_after == F_Z
    assert info.insns[1].live_after == 0


def test_live_in_def_before_use():
    info = analyze_block(insns_of("""
    cmp r0, r1
    beq target
target:
"""))
    assert info.live_in == 0  # cmp defines all four before any read
    info = analyze_block(insns_of("""
    addeq r0, r0, #1
    cmp r0, r1
"""))
    assert info.live_in & F_Z  # reads Z at entry


def test_live_in_stops_at_helper():
    info = analyze_block(insns_of("""
    mcr p15, 0, r0, c2, c0, 0
    cmp r0, r1
"""))
    assert info.live_in == F_ALL  # the helper may read the CPSR


# ---------------------------------------------------------------------------
# Define-before-use scheduling.
# ---------------------------------------------------------------------------

def test_scheduler_hoists_independent_load():
    insns = insns_of("""
    cmp r0, r1
    ldr r2, [r3]
    bne target
target:
""")
    scheduled = schedule_define_before_use(insns)
    assert scheduled[0].op is Op.LDR
    assert scheduled[1].op is Op.CMP


def test_scheduler_respects_data_dependence():
    insns = insns_of("""
    cmp r0, r1
    ldr r0, [r3]
    bne target
target:
""")
    # The load writes r0, which cmp reads: no reorder.
    assert schedule_define_before_use(insns)[0].op is Op.CMP


def test_scheduler_keeps_conditional_memory_in_place():
    insns = insns_of("""
    cmp r0, r1
    ldreq r2, [r3]
    bne target
target:
""")
    assert schedule_define_before_use(insns)[0].op is Op.CMP


# ---------------------------------------------------------------------------
# Condition mapping.
# ---------------------------------------------------------------------------

def test_carry_free_conditions_are_kind_independent():
    for kind in CarryKind:
        assert map_condition(Cond.EQ, kind) == X86Cond.E
        assert map_condition(Cond.GT, kind) == X86Cond.G


def test_carry_conditions_flip_with_kind():
    assert map_condition(Cond.CS, CarryKind.INVERTED) == X86Cond.AE
    assert map_condition(Cond.CS, CarryKind.DIRECT) == X86Cond.B
    assert map_condition(Cond.HI, CarryKind.INVERTED) == X86Cond.A
    assert map_condition(Cond.HI, CarryKind.DIRECT) is None  # two-branch


def test_skip_sequences_for_two_branch_conditions():
    sequence = skip_sequence(Cond.HI, CarryKind.DIRECT)
    assert len(sequence) == 2
    assert all(target == "skip" for _, target in sequence)
    sequence = skip_sequence(Cond.LS, CarryKind.DIRECT)
    assert ("exec" in {target for _, target in sequence})


def test_negate_is_involution():
    for cond in X86Cond:
        assert negate(negate(cond)) == cond


# ---------------------------------------------------------------------------
# Coordination sequences.
# ---------------------------------------------------------------------------

def sequence_lengths(packed):
    builder = CodeBuilder()
    state = FlagsState(builder, SyncStats(), packed=packed)
    state.in_eflags = True
    state.packed_ok = False
    state.parsed_ok = False
    state.kind = CarryKind.DIRECT
    before = len(builder.insns)
    state.emit_save()
    save_length = len(builder.insns) - before
    before = len(builder.insns)
    state.emit_restore()
    restore_length = len(builder.insns) - before
    return save_length, restore_length


def test_packed_sync_is_three_instructions():
    save, restore = sequence_lengths(packed=True)
    assert save == 3      # pushfd; pop [env.packed]; mov [env.valid],1
    assert restore == 2   # push [env.packed]; popfd


def test_parsed_sync_is_much_longer():
    save, restore = sequence_lengths(packed=False)
    assert save >= 4
    assert restore >= 10  # rebuild the FLAGS word bit by bit


def test_inverted_carry_costs_one_cmc():
    builder = CodeBuilder()
    state = FlagsState(builder, SyncStats(), packed=True)
    state.in_eflags = True
    state.packed_ok = False
    state.kind = CarryKind.INVERTED
    state.emit_save()
    assert builder.insns[0].op is X86Op.CMC
    assert state.kind == CarryKind.DIRECT


def test_ensure_parsed_from_packed():
    builder = CodeBuilder()
    state = FlagsState(builder, SyncStats(), packed=True)
    # env holds the CCR in the packed slot only.
    assert state.packed_ok and not state.parsed_ok
    state.ensure_parsed()
    assert state.parsed_ok
    ops = [insn.op for insn in builder.insns]
    assert X86Op.POPFD in ops     # reload from packed
    assert X86Op.SETCC in ops     # parse into per-bit fields


# ---------------------------------------------------------------------------
# Register cache.
# ---------------------------------------------------------------------------

def test_regcache_read_loads_once():
    builder = CodeBuilder()
    cache = RegCache(builder)
    first = cache.read(3)
    count = len(builder.insns)
    assert cache.read(3) == first
    assert len(builder.insns) == count  # cached: no new load


def test_regcache_evicts_lru_with_writeback():
    builder = CodeBuilder()
    cache = RegCache(builder)
    for guest in range(len(CACHE_REGS)):
        cache.write(guest)
    emitted = len(builder.insns)
    cache.read(10)  # evicts the least recently used dirty register
    stores = [insn for insn in builder.insns[emitted:]
              if insn.op is X86Op.MOV and hasattr(insn.dst, "disp")]
    assert len(stores) == 1
    assert stores[0].dst.disp == 0  # guest r0's env slot


def test_regcache_flush_dirty_counts():
    builder = CodeBuilder()
    cache = RegCache(builder)
    cache.write(1)
    cache.write(2)
    cache.read(3)
    assert cache.flush_dirty() == 2
    assert cache.flush_dirty() == 0  # now clean


# ---------------------------------------------------------------------------
# Rulebooks and config.
# ---------------------------------------------------------------------------

def test_mature_rulebook_excludes_system():
    book = MatureRulebook()
    (add,) = insns_of("    add r0, r1, r2")
    (mcr,) = insns_of("    mcr p15, 0, r0, c2, c0, 0")
    assert book.covers(add)
    assert not book.covers(mcr)


def test_structural_filter_rejects_carry_consuming_shift():
    book = StructuralFilter(MatureRulebook())
    (adc_shift,) = insns_of("    adc r0, r1, r2, lsl #3")
    (adc_plain,) = insns_of("    adc r0, r1, r2")
    assert not book.covers(adc_shift)
    assert book.covers(adc_plain)


def test_opt_config_levels_are_cumulative():
    base = OptConfig.from_level(OptLevel.BASE)
    assert not any([base.packed_sync, base.eliminate_redundant,
                    base.inter_tb, base.scheduling])
    full = OptConfig.from_level(OptLevel.FULL)
    assert all([full.packed_sync, full.eliminate_redundant, full.inter_tb,
                full.scheduling])
    assert not full.irq_scheduling  # ablation-only switch


def test_empty_rulebook_covers_nothing():
    (add,) = insns_of("    add r0, r1, r2")
    assert not EmptyRulebook().covers(add)
