"""Differential fuzzing: random guest programs on every engine.

Hypothesis generates random straight-line ALU/branch/memory programs;
each must produce an identical final register checksum on the reference
interpreter, the TCG baseline, and the rule engine at Base and FULL.
This is the broadest net for condition-code protocol bugs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OptLevel, make_rule_engine
from repro.guest.asm import assemble
from repro.miniqemu.machine import Machine

SYSCON_EXIT = 0x100F0000
UART_DR = 0x10000000

_REGS = [f"r{i}" for i in range(7)]  # r0..r6 as data registers
_DP_OPS = ["add", "sub", "and", "orr", "eor", "rsb", "adc", "sbc"]
_SHIFTS = ["lsl", "lsr", "asr", "ror"]
_CONDS = ["", "eq", "ne", "cs", "cc", "mi", "pl", "hi", "ls", "ge", "lt",
          "gt", "le", "vs", "vc"]


@st.composite
def alu_insn(draw):
    op = draw(st.sampled_from(_DP_OPS))
    cond = draw(st.sampled_from(_CONDS))
    set_flags = draw(st.booleans())
    rd, rn = draw(st.sampled_from(_REGS)), draw(st.sampled_from(_REGS))
    suffix = f"{cond}s" if set_flags else cond
    kind = draw(st.integers(0, 3))
    if kind == 0:
        imm = draw(st.sampled_from([0, 1, 7, 0xFF, 0xAB00, 0xFF000000]))
        return f"{op}{suffix} {rd}, {rn}, #{imm}"
    rm = draw(st.sampled_from(_REGS))
    if kind == 1:
        return f"{op}{suffix} {rd}, {rn}, {rm}"
    shift = draw(st.sampled_from(_SHIFTS))
    amount = draw(st.integers(1, 31))
    if kind == 2:
        return f"{op}{suffix} {rd}, {rn}, {rm}, {shift} #{amount}"
    return f"{op}{suffix} {rd}, {rn}, {rm}, rrx"


@st.composite
def misc_insn(draw):
    choice = draw(st.integers(0, 5))
    rd = draw(st.sampled_from(_REGS))
    rn = draw(st.sampled_from(_REGS))
    rm = draw(st.sampled_from(_REGS))
    if choice == 0:
        imm = draw(st.sampled_from([0, 3, 0xFF, 0x3FC]))
        return f"cmp {rn}, #{imm}"
    if choice == 1:
        return f"cmp {rn}, {rm}"
    if choice == 2:
        cond = draw(st.sampled_from(_CONDS))
        return f"mov{cond} {rd}, {rm}"
    if choice == 3:
        return f"muls {rd}, {rn}, {rm}" if draw(st.booleans()) \
            else f"mul {rd}, {rn}, {rm}"
    if choice == 4:
        imm = draw(st.sampled_from([1, 0xC4, 0xFF0]))
        set_flags = "s" if draw(st.booleans()) else ""
        return f"mvn{set_flags} {rd}, #{imm}"
    return f"tst {rn}, #{draw(st.sampled_from([1, 0xFF, 0xF000000F]))}"


@st.composite
def memory_insn(draw):
    # r7 permanently holds a valid buffer base; offsets stay in range.
    rd = draw(st.sampled_from(_REGS))
    kind = draw(st.integers(0, 3))
    offset = draw(st.integers(0, 60)) * 4
    if kind == 0:
        return f"str {rd}, [r7, #{offset}]"
    if kind == 1:
        return f"ldr {rd}, [r7, #{offset}]"
    if kind == 2:
        return f"strb {rd}, [r7, #{offset}]"
    return f"ldrb {rd}, [r7, #{offset}]"


@st.composite
def program(draw):
    body = draw(st.lists(st.one_of(alu_insn(), misc_insn(), memory_insn()),
                         min_size=4, max_size=40))
    return body


HEADER = """
    ldr r7, =0x41000       @ scratch buffer (identity-mapped RAM)
    ldr r0, =0x12345678
    ldr r1, =0x9ABCDEF0
    mov r2, #77
    ldr r3, =0xFFFF0000
    mov r4, #1
    ldr r5, =0x80000000
    mov r6, #0
"""

FOOTER = """
    @ fold every register and the flags into a checksum in r0
    mrs r8, cpsr
    ldr r9, =0xF0000000
    and r8, r8, r9
    add r0, r0, r1
    eor r0, r0, r2
    add r0, r0, r3
    eor r0, r0, r4
    add r0, r0, r5
    eor r0, r0, r6
    add r0, r0, r8
    ldr r10, =0x10000000
    str r0, [r10]          @ dump checksum bytes to the UART
    mov r0, r0, lsr #8
    str r0, [r10]
    mov r0, r0, lsr #8
    str r0, [r10]
    ldr r10, =0x100F0000
    mov r1, #0
    str r1, [r10]          @ exit(0)
"""


def run_engine(source: str, engine: str, factory=None, base=0x1000):
    machine = Machine(engine=engine, rule_engine_factory=factory)
    machine.memory.load_program(assemble(source, base=base))
    machine.cpu.regs[15] = base
    machine.env.load_from_cpu(machine.cpu)
    code = machine.run(200000)
    return code, bytes(machine.uart.output)


@settings(max_examples=25, deadline=None)
@given(program())
def test_random_programs_agree(body):
    source = HEADER + "\n".join("    " + line for line in body) + FOOTER
    reference = run_engine(source, "interp")
    assert reference == run_engine(source, "tcg"), "tcg diverged"
    for level in (OptLevel.BASE, OptLevel.FULL):
        outcome = run_engine(source, "rules", make_rule_engine(level))
        assert outcome == reference, f"rules-{level.name} diverged"


@settings(max_examples=10, deadline=None)
@given(program(), st.integers(200, 900))
def test_random_programs_agree_under_interrupts(body, timer_reload):
    """Same fuzz with a live timer: checks interrupt-point consistency.

    The final architectural state must match even though interrupts are
    delivered at different instruction boundaries per engine, because
    the kernel-free handler here is a no-op (the vector spins straight
    back with the same state).
    """
    # Install a trivial IRQ vector that acks the timer and returns.
    vector = """
.org 0x0
    b start
.org 0x18
    b irq_handler
.org 0x100
irq_handler:
    push {r0, r1}
    ldr r0, =0x10010000
    mov r1, #1
    str r1, [r0, #0xC]      @ ack the timer
    pop {r0, r1}
    subs pc, lr, #4
start:
    ldr sp, =0x50000
    ldr r0, =0x10010000
    ldr r1, =TIMER_RELOAD
    str r1, [r0]
    mov r1, #1
    str r1, [r0, #8]
    ldr r0, =0x10020000
    mov r1, #1
    str r1, [r0, #8]        @ intc: enable timer
    cpsie i
"""
    source = vector.replace("TIMER_RELOAD", str(timer_reload)) + \
        HEADER + "\n".join("    " + line for line in body) + FOOTER
    reference = run_engine(source, "interp", base=0)
    for level in (OptLevel.BASE, OptLevel.FULL):
        outcome = run_engine(source, "rules", make_rule_engine(level),
                             base=0)
        assert outcome == reference, f"rules-{level.name} diverged"
