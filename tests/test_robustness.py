"""Robustness subsystem tests: fault injection, degradation, watchdog.

Covers the tiered degradation ladder (rules -> tcg -> interp), rule
quarantine and TB invalidation, the execution watchdog, wakeup-deadlock
detection, the online differential self-check, and the seeded
fault-injection matrix (every scenario must still produce the correct
guest output and exit code).
"""

import pytest

from repro.common.errors import (DiagContext, InjectedFault, ReproError,
                                 RuleApplicationError, WakeupDeadlock,
                                 WatchdogTimeout)
from repro.core import OptLevel, make_rule_engine
from repro.core.rulebook import (EmptyRulebook, MatureRulebook,
                                 QuarantineFilter, rule_key)
from repro.guest.decoder import decode
from repro.host.isa import X86Insn, X86Op
from repro.kernel.kernel import USER_ENTRY
from repro.miniqemu.tb import CodeCache, TranslationBlock
from repro.robustness import (ExecutionWatchdog, FaultInjector, FaultPlan,
                              MachineSnapshot, NullInjector,
                              fast_forward_halt, parse_inject_spec)
from tests.support import boot_machine, run_workload

RULES_KW = {"engine": "rules",
            "rule_engine_factory": make_rule_engine(OptLevel.FULL)}

ADD_INSN = decode(0xE0810002, 0)    # add r0, r1, r2
SUB_INSN = decode(0xE0410002, 0)    # sub r0, r1, r2


# ---------------------------------------------------------------------------
# --inject spec parsing.
# ---------------------------------------------------------------------------

def test_parse_inject_spec_full():
    plan = parse_inject_spec("seed=7, mem=0.01, fetch=0.5,"
                             "rule-corrupt=eor, rule-wrong=SUB,"
                             "irq-storm=0.001")
    assert plan.seed == 7
    assert plan.rates == {"mem": 0.01, "fetch": 0.5, "irq-storm": 0.001}
    assert plan.corrupt_rules == frozenset({"EOR"})
    assert plan.wrong_rules == frozenset({"SUB"})
    # describe() round-trips through the parser.
    assert parse_inject_spec(plan.describe()) == plan


def test_parse_inject_spec_rejects_unknown_site():
    with pytest.raises(ReproError, match="unknown --inject site"):
        parse_inject_spec("seed=1,frobnicate=0.5")


def test_parse_inject_spec_rejects_bad_rate():
    with pytest.raises(ReproError, match="out of"):
        parse_inject_spec("mem=1.5")
    with pytest.raises(ReproError, match="key=value"):
        parse_inject_spec("mem")


def test_parse_inject_spec_empty_is_noop_plan():
    plan = parse_inject_spec("")
    assert plan == FaultPlan()


# ---------------------------------------------------------------------------
# Deterministic injection streams.
# ---------------------------------------------------------------------------

def test_injector_is_deterministic_per_seed():
    plan = parse_inject_spec("seed=42,mem=0.3,fetch=0.3")
    first = [FaultInjector(plan).fires("mem") for _ in range(1)]
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    assert [a.fires("mem") for _ in range(200)] == \
        [b.fires("mem") for _ in range(200)]
    assert first  # a 0.3 rate fires within 200 draws for this seed
    other = FaultInjector(parse_inject_spec("seed=43,mem=0.3,fetch=0.3"))
    assert [a.fires("mem") for _ in range(200)] != \
        [other.fires("mem") for _ in range(200)]


def test_injector_sites_draw_independent_streams():
    """Consulting one site must not perturb another site's pattern."""
    plan = parse_inject_spec("seed=5,mem=0.2,fetch=0.2")
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    pattern_a = [a.fires("mem") for _ in range(100)]
    for _ in range(57):                 # interleave fetch consultations
        b.fires("fetch")
    pattern_b = [b.fires("mem") for _ in range(100)]
    assert pattern_a == pattern_b


def test_injector_maybe_fault_raises_and_counts():
    plan = parse_inject_spec("seed=1,mem=1.0")
    injector = FaultInjector(plan)
    with pytest.raises(InjectedFault) as info:
        injector.maybe_fault("mem", "test detail")
    assert info.value.site == "mem"
    assert injector.counts_by_site() == {"mem": 1}
    injector.maybe_fault("fetch")       # rate 0: never raises
    assert injector.counts_by_site() == {"mem": 1}


def test_null_injector_is_inert():
    injector = NullInjector()
    assert not injector.enabled
    assert not injector.fires("mem")
    injector.maybe_fault("mem")
    injector.instrument_tb(TranslationBlock(pc=0, mmu_idx=0))
    assert injector.counts_by_site() == {}


# ---------------------------------------------------------------------------
# Rule quarantine.
# ---------------------------------------------------------------------------

def test_quarantine_filter_stops_covering():
    book = QuarantineFilter(MatureRulebook())
    assert book.covers(ADD_INSN)
    assert book.quarantine(rule_key(ADD_INSN), "test")
    assert not book.covers(ADD_INSN)
    assert book.covers(SUB_INSN)        # other rules unaffected
    # Re-quarantining is idempotent and reports "already out".
    assert not book.quarantine(rule_key(ADD_INSN), "again")
    assert book.quarantined == {"ADD": "test"}


def test_quarantine_filter_wraps_any_rulebook():
    book = QuarantineFilter(EmptyRulebook())
    assert not book.covers(ADD_INSN)
    assert book.name == "quarantine(empty)"


# ---------------------------------------------------------------------------
# Code-cache invalidation.
# ---------------------------------------------------------------------------

def _tb(pc, rules=()):
    tb = TranslationBlock(pc=pc, mmu_idx=0)
    tb.meta["rules_used"] = list(rules)
    return tb


def test_cache_invalidate_unlinks_chains():
    cache = CodeCache()
    a, b = _tb(0x100), _tb(0x200)
    cache.insert(a)
    cache.insert(b)
    a.jmp_target[0] = b                 # a is chained into b
    a.jmp_pc[0] = 0x200
    cache.invalidate(b)
    assert cache.lookup(0x200, 0) is None
    assert a.jmp_target[0] is None      # the chain was severed
    assert cache.invalidated == 1


def test_cache_invalidate_unknown_tb_raises_with_context():
    cache = CodeCache()
    stray = _tb(0x300)
    context = DiagContext(guest_pc=0x300, engine="rules")
    with pytest.raises(ReproError, match="cannot invalidate") as info:
        cache.invalidate(stray, context)
    assert info.value.context is context
    assert "engine=rules" in str(info.value)


def test_cache_invalidate_rules_evicts_by_rule_key():
    cache = CodeCache()
    a = _tb(0x100, rules=["ADD", "EOR"])
    b = _tb(0x200, rules=["SUB"])
    c = _tb(0x300)                      # no rule metadata at all
    for tb in (a, b, c):
        cache.insert(tb)
    c.jmp_target[1] = a
    assert cache.invalidate_rules(["EOR"]) == 1
    assert cache.lookup(0x100, 0) is None
    assert cache.lookup(0x200, 0) is b
    assert c.jmp_target[1] is None
    assert cache.invalidate_rules(["MUL"]) == 0


# ---------------------------------------------------------------------------
# Machine snapshots (rollback).
# ---------------------------------------------------------------------------

def test_machine_snapshot_roundtrip():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n")
    machine.cpu.regs[3] = 0xAAAA
    machine.env.set_reg(3, 0xAAAA)
    machine.timer.enabled = True
    machine.timer.reload = 100
    machine.timer.value = 60
    snapshot = MachineSnapshot(machine)
    # Perturb everything the snapshot covers.
    machine.cpu.regs[3] = 0xBBBB
    machine.env.set_reg(3, 0xBBBB)
    machine.cpu.halted = True
    machine.guest_icount += 999
    machine.timer.value = 1
    machine.intc.pending |= 0b10
    machine.cpu.cp15.ttbr0 = 0xDEAD
    snapshot.restore(machine)
    assert machine.cpu.regs[3] == 0xAAAA
    assert machine.env.get_reg(3) == 0xAAAA
    assert not machine.cpu.halted
    assert machine.guest_icount == snapshot.guest_icount
    assert machine.timer.value == 60
    assert machine.intc.pending == 0
    assert machine.cpu.cp15.ttbr0 == 0


# ---------------------------------------------------------------------------
# Execution watchdog.
# ---------------------------------------------------------------------------

def test_watchdog_stops_synthetic_runaway_tb():
    """An infinite host loop must raise a structured WatchdogTimeout."""
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n",
                           watchdog=ExecutionWatchdog(max_host_insns=500))
    runaway = TranslationBlock(pc=0x1234, mmu_idx=0)
    runaway.code = [X86Insn(X86Op.JMP, target_index=0)]
    with pytest.raises(WatchdogTimeout) as info:
        machine.host.execute(runaway)
    error = info.value
    assert error.limit == 500
    assert error.executed > 500
    assert error.tb_pc == 0x1234
    assert machine.watchdog.trips == 1
    assert "watchdog" in str(error)


def test_engine_recovers_from_runaway_tb():
    """A runaway rules-tier TB is rolled back and the block demoted."""
    machine = boot_machine("main:\n  mov r0, #42\n  bl updec\n"
                           "  mov r0, #0\n  bl uexit\n",
                           watchdog=ExecutionWatchdog(max_host_insns=20_000),
                           **RULES_KW)
    engine = machine.engine
    original = engine._translate_tier
    armed = {"on": True}

    def sabotage(tier, pc, mmu_idx):
        tb = original(tier, pc, mmu_idx)
        if armed["on"] and tier == "rules" and pc == USER_ENTRY:
            armed["on"] = False
            tb.code = [X86Insn(X86Op.JMP, target_index=0)]
        return tb

    engine._translate_tier = sabotage
    code = machine.run(5_000_000)
    assert code == 0
    assert machine.uart.text == "42\n"
    stats = machine.stats()
    assert stats["robust.watchdog_trips"] >= 1
    assert stats["robust.tier_demotions"] >= 1
    assert stats["robust.recovered_faults"] >= 1
    assert stats["engine.tb_invalidated"] >= 1
    # The demoted block was retranslated one tier down.
    assert stats["robust.tier_tcg_tbs"] >= 1


def test_engine_recovers_from_host_crash_tb():
    """A TB that crashes the host interpreter degrades the same way."""
    machine = boot_machine("main:\n  mov r0, #7\n  bl updec\n"
                           "  mov r0, #0\n  bl uexit\n",
                           watchdog=ExecutionWatchdog(),
                           **RULES_KW)
    engine = machine.engine
    original = engine._translate_tier
    armed = {"on": True}

    def sabotage(tier, pc, mmu_idx):
        tb = original(tier, pc, mmu_idx)
        if armed["on"] and tier == "rules" and pc == USER_ENTRY:
            armed["on"] = False
            tb.code = []                # falls off the end immediately
        return tb

    engine._translate_tier = sabotage
    code = machine.run(5_000_000)
    assert code == 0
    assert machine.uart.text == "7\n"
    assert machine.stats()["robust.tier_demotions"] >= 1


# ---------------------------------------------------------------------------
# Wakeup-deadlock detection (the shared halt fast-forward).
# ---------------------------------------------------------------------------

def test_fast_forward_halt_no_wakeup_source():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n")
    machine.timer.enabled = False
    with pytest.raises(WakeupDeadlock) as info:
        fast_forward_halt(machine, lambda: False)
    error = info.value
    assert "no wakeup source" in error.reason
    assert error.timer_enabled is False
    assert error.context is not None       # machine diagnostics attached
    assert "engine=" in str(error)


def test_fast_forward_halt_timer_dies_while_waiting():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n")
    machine.timer.enabled = True
    machine.timer.reload = 50
    machine.timer.value = 50
    calls = {"n": 0}

    def advance(_insns):
        calls["n"] += 1
        machine.timer.enabled = False      # wakeup source vanishes

    machine.advance_time = advance
    with pytest.raises(WakeupDeadlock, match="cannot wake up"):
        fast_forward_halt(machine, lambda: False)
    assert calls["n"] == 1


def test_fast_forward_halt_iteration_bound():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n",
                           watchdog=ExecutionWatchdog(max_halt_iterations=3))
    machine.timer.enabled = True
    machine.timer.reload = 50
    machine.timer.value = 50
    machine.advance_time = lambda _insns: None  # time never raises the IRQ
    with pytest.raises(WakeupDeadlock, match="did not wake"):
        fast_forward_halt(machine, lambda: False)


def test_dbt_fast_forward_raises_structured_deadlock():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n", engine="tcg")
    machine.timer.enabled = False
    with pytest.raises(WakeupDeadlock):
        machine.engine._fast_forward_halt()


# ---------------------------------------------------------------------------
# Diagnostic context on errors.
# ---------------------------------------------------------------------------

def test_attach_context_is_chainable_and_sticky():
    error = ReproError("boom").attach_context(DiagContext(guest_pc=0x40000))
    assert "pc=0x00040000" in str(error)
    # The first context wins; later attaches are ignored.
    error.attach_context(DiagContext(guest_pc=0x999))
    assert "pc=0x00040000" in str(error)
    error.attach_context(None)
    assert error.context.guest_pc == 0x40000


def test_machine_diag_context_reports_live_state():
    machine = boot_machine("main:\n  mov r0, #0\n  bl uexit\n", engine="tcg")
    machine.env.pc = 0x40010
    context = machine.diag_context(phase="test")
    assert context.guest_pc == 0x40010
    assert context.engine == "tcg"
    assert context.extra == {"phase": "test"}


def test_run_timeout_error_carries_context():
    machine = boot_machine("main:\nspin:\n  b spin\n", engine="tcg")
    with pytest.raises(ReproError, match="did not halt") as info:
        machine.run(20_000)
    assert info.value.context is not None
    assert info.value.context.icount >= 20_000


# ---------------------------------------------------------------------------
# Translation-time guest fault paths (prefetch abort / undef) — all engines.
# ---------------------------------------------------------------------------

ENGINE_KWARGS = [
    pytest.param({"engine": "interp"}, id="interp"),
    pytest.param({"engine": "tcg"}, id="tcg"),
    pytest.param(dict(RULES_KW), id="rules"),
]


@pytest.mark.parametrize("kwargs", ENGINE_KWARGS)
def test_jump_to_unmapped_address_is_prefetch_abort(kwargs):
    """get_tb's fetch fault must surface as a guest prefetch abort."""
    code, text, _ = run_workload(r"""
main:
    ldr r0, =0x900000    @ MiB 9: never mapped by the kernel
    bx r0
""", **kwargs)
    assert code == 125
    assert "P" in text


@pytest.mark.parametrize("kwargs", ENGINE_KWARGS)
def test_jump_into_undecodable_bytes_is_undef(kwargs):
    """A first-instruction decode failure must surface as an undef."""
    code, text, _ = run_workload(r"""
main:
    b junk
junk:
    .word 0xFFFFFFFF
""", **kwargs)
    assert code == 126
    assert "U" in text


# ---------------------------------------------------------------------------
# The degradation ladder end to end.
# ---------------------------------------------------------------------------

COUNT_BODY = r"""
main:
    mov r4, #0              @ accumulator
    mov r5, #0              @ i
loop:
    add r6, r5, r5, lsl #2  @ 5*i
    sub r6, r6, #3
    eor r6, r6, r5, lsr #1
    add r4, r4, r6
    add r5, r5, #1
    cmp r5, #200
    blt loop
    mov r0, r4
    bl updec
    mov r0, #0
    bl uexit
"""
COUNT_OUTPUT = "99284\n"


def _run_injected(spec, body=COUNT_BODY, **extra):
    plan = parse_inject_spec(spec)
    kwargs = {
        "fault_injector": FaultInjector(plan),
        "watchdog": ExecutionWatchdog(),
        "selfcheck_interval": 1 if plan.wrong_rules else 0,
    }
    kwargs.update(RULES_KW)
    kwargs.update(extra)
    code, text, machine = run_workload(body, **kwargs)
    return code, text, machine


def test_reference_output_without_injection():
    code, text, _ = run_workload(COUNT_BODY, **RULES_KW)
    assert (code, text) == (0, COUNT_OUTPUT)


@pytest.mark.parametrize("spec", [
    "seed=3,fetch=0.2",
    "seed=3,mem=0.2",
    "seed=5,helper=0.2",
    "seed=3,irq-storm=0.001",
    "seed=3,rule-crash=0.05",
])
def test_transient_fault_matrix_preserves_correctness(spec):
    code, text, machine = _run_injected(spec)
    assert (code, text) == (0, COUNT_OUTPUT)
    stats = machine.stats()
    injected = sum(count for key, count in stats.items()
                   if key.startswith("robust.inj_"))
    assert injected >= 1, f"scenario {spec} never fired"


def test_corrupted_rule_is_quarantined_and_run_completes():
    code, text, machine = _run_injected("seed=1,rule-corrupt=EOR")
    assert (code, text) == (0, COUNT_OUTPUT)
    stats = machine.stats()
    assert stats["robust.inj_rule_corrupt"] >= 1
    assert stats["robust.quarantined_rules"] >= 1
    assert stats["robust.recovered_faults"] >= 1
    assert stats["engine.tb_invalidated"] >= 1
    assert "EOR" in machine.engine.ladder.quarantined_rules


def test_wrong_result_rule_is_caught_by_selfcheck():
    """A silently-wrong rule never corrupts live architectural state."""
    code, text, machine = _run_injected("seed=1,rule-wrong=EOR")
    assert (code, text) == (0, COUNT_OUTPUT)
    stats = machine.stats()
    assert stats["robust.inj_rule_wrong"] >= 1
    assert stats["robust.selfcheck_failures"] >= 1
    assert stats["robust.quarantined_rules"] >= 1


def test_translate_time_rule_crash_quarantines_and_retries():
    code, text, machine = _run_injected("seed=2,rule-crash=1.0")
    assert (code, text) == (0, COUNT_OUTPUT)
    stats = machine.stats()
    # Every covered rule the workload needed ended up quarantined, yet
    # the run still completed through the fallback translations.
    assert stats["robust.quarantined_rules"] >= 3
    assert stats["robust.inj_rule_crash"] >= 3


def test_transient_budget_exhaustion_propagates():
    """A *persistent* 'transient' fault eventually escapes with context."""
    code_err = None
    plan = parse_inject_spec("seed=1,fetch=1.0")
    machine = boot_machine(COUNT_BODY, fault_injector=FaultInjector(plan),
                           watchdog=ExecutionWatchdog(), **RULES_KW)
    with pytest.raises(InjectedFault) as info:
        machine.run(5_000_000)
    code_err = info.value
    assert code_err.site == "fetch"
    assert code_err.context is not None


def test_interp_tier_runs_whole_workload():
    """Force every block to the last tier: pure interp execution."""
    machine = boot_machine(COUNT_BODY, engine="tcg")
    engine = machine.engine
    last = len(engine.tiers) - 1
    engine.ladder.start_tier = lambda pc, mmu_idx: last
    code = machine.run(5_000_000)
    assert code == 0
    assert machine.uart.text == COUNT_OUTPUT
    stats = machine.stats()
    assert stats["robust.tier_interp_tbs"] >= 1
    assert stats["robust.tier_tcg_tbs"] == 0
    assert stats["engine.tag_interp_tier"] > 0


def test_rules_engine_reports_ladder_stats():
    code, text, machine = run_workload(COUNT_BODY, **RULES_KW)
    stats = machine.stats()
    for key in ("robust.quarantined_rules", "robust.tier_demotions",
                "robust.recovered_faults", "robust.tier_rules_tbs",
                "robust.tier_tcg_tbs", "robust.tier_interp_tbs",
                "engine.tb_invalidated"):
        assert key in stats
    assert stats["robust.tier_rules_tbs"] > 0
    assert stats["robust.quarantined_rules"] == 0


# ---------------------------------------------------------------------------
# Structured error types.
# ---------------------------------------------------------------------------

def test_rule_application_error_carries_rule_key():
    error = RuleApplicationError("EOR", phase="translate", detail="boom")
    assert error.rule == "EOR"
    assert "translate" in str(error) and "boom" in str(error)


def test_watchdog_timeout_fields():
    error = WatchdogTimeout(1001, 1000, tb_pc=0x40)
    assert (error.executed, error.limit, error.tb_pc) == (1001, 1000, 0x40)


def test_wakeup_deadlock_reports_device_state():
    error = WakeupDeadlock("idle forever", timer_enabled=True,
                           timer_reload=7, intc_pending=0x2)
    assert "timer enabled=True" in str(error)
    assert "pending=0x2" in str(error)
