"""Unit tests for the device models."""

import pytest

from repro.common.errors import GuestHalt
from repro.devices import (BlockDevice, IRQ_BLOCK, IRQ_TIMER,
                           InterruptController, Nic, SECTOR_SIZE,
                           SystemController, Timer, Uart)
from repro.guest.cpu import GuestCpu
from repro.softmmu import PhysicalMemoryMap


@pytest.fixture
def cpu():
    return GuestCpu()


@pytest.fixture
def intc(cpu):
    return InterruptController(cpu)


# ---------------------------------------------------------------------------
# Interrupt controller.
# ---------------------------------------------------------------------------

def test_intc_gates_by_enable(intc, cpu):
    intc.raise_irq(IRQ_TIMER)
    assert not cpu.irq_line          # not enabled yet
    intc.mmio_write(0x08, 4, 1 << IRQ_TIMER)
    assert cpu.irq_line
    assert intc.mmio_read(0x00, 4) == 1 << IRQ_TIMER
    intc.lower_irq(IRQ_TIMER)
    assert not cpu.irq_line


def test_intc_disable_register(intc, cpu):
    intc.mmio_write(0x08, 4, 0xFF)
    intc.raise_irq(IRQ_BLOCK)
    assert cpu.irq_line
    intc.mmio_write(0x0C, 4, 1 << IRQ_BLOCK)
    assert not cpu.irq_line
    assert intc.mmio_read(0x04, 4) == 1 << IRQ_BLOCK  # raw status remains


def test_intc_wakes_halted_cpu(intc, cpu):
    cpu.halted = True
    intc.mmio_write(0x08, 4, 1)
    intc.raise_irq(IRQ_TIMER)
    assert not cpu.halted


# ---------------------------------------------------------------------------
# Timer.
# ---------------------------------------------------------------------------

def test_timer_fires_and_reloads(intc, cpu):
    intc.mmio_write(0x08, 4, 1 << IRQ_TIMER)
    timer = Timer(intc)
    timer.mmio_write(0x00, 4, 100)
    timer.mmio_write(0x08, 4, 1)
    timer.advance(99)
    assert not cpu.irq_line
    timer.advance(1)
    assert cpu.irq_line
    assert timer.ticks == 1
    timer.mmio_write(0x0C, 4, 1)  # ack
    assert not cpu.irq_line
    timer.advance(250)            # catches up across multiple periods
    assert timer.ticks == 3
    assert timer.mmio_read(0x10, 4) == 3


def test_timer_disabled_does_nothing(intc, cpu):
    timer = Timer(intc)
    timer.mmio_write(0x00, 4, 10)
    timer.advance(1000)
    assert timer.ticks == 0


# ---------------------------------------------------------------------------
# UART.
# ---------------------------------------------------------------------------

def test_uart_output_and_input():
    uart = Uart()
    for byte in b"hi":
        uart.mmio_write(0x00, 4, byte)
    assert uart.text == "hi"
    assert uart.mmio_read(0x04, 4) == 0
    uart.feed(b"xy")
    assert uart.mmio_read(0x04, 4) == 1
    assert uart.mmio_read(0x00, 4) == ord("x")
    assert uart.mmio_read(0x00, 4) == ord("y")
    assert uart.mmio_read(0x04, 4) == 0


# ---------------------------------------------------------------------------
# Block device.
# ---------------------------------------------------------------------------

def test_blockdev_dma_roundtrip(intc, cpu):
    memory = PhysicalMemoryMap()
    memory.add_ram(0, 1 << 16)
    intc.mmio_write(0x08, 4, 1 << IRQ_BLOCK)
    dev = BlockDevice(intc, memory, sectors=8)
    payload = bytes(range(256)) * 2
    memory.write_bytes(0x1000, payload)
    # Write sector 3 from RAM.
    dev.mmio_write(0x00, 4, 3)
    dev.mmio_write(0x04, 4, 0x1000)
    dev.mmio_write(0x08, 4, 2)
    assert dev.image[3 * SECTOR_SIZE:4 * SECTOR_SIZE] == payload
    assert cpu.irq_line and dev.mmio_read(0x0C, 4) == 1
    dev.mmio_write(0x10, 4, 1)  # ack
    assert not cpu.irq_line
    # Read it back into a different buffer.
    dev.mmio_write(0x04, 4, 0x2000)
    dev.mmio_write(0x08, 4, 1)
    assert memory.read_bytes(0x2000, SECTOR_SIZE) == payload
    assert dev.mmio_read(0x14, 4) == 2


# ---------------------------------------------------------------------------
# NIC.
# ---------------------------------------------------------------------------

def test_nic_rx_tx(intc, cpu):
    nic = Nic(intc)
    nic.queue_rx(b"ab")
    nic.queue_rx(b"c")
    assert nic.mmio_read(0x00, 4) == 2
    assert nic.mmio_read(0x04, 4) == ord("a")
    assert nic.mmio_read(0x04, 4) == ord("b")
    nic.mmio_write(0x08, 4, 1)  # pop
    assert nic.mmio_read(0x00, 4) == 1
    nic.mmio_write(0x08, 4, 1)
    assert nic.mmio_read(0x00, 4) == 0
    nic.mmio_write(0x0C, 4, ord("z"))
    nic.mmio_write(0x10, 4, 1)
    assert nic.tx_packets == [b"z"]


# ---------------------------------------------------------------------------
# System controller.
# ---------------------------------------------------------------------------

def test_syscon_halts():
    with pytest.raises(GuestHalt) as excinfo:
        SystemController().mmio_write(0x00, 4, 42)
    assert excinfo.value.exit_code == 42
