"""Tests for the rule-learning pipeline: toycc, extraction, verification."""

import pytest

from repro.guest.asm import assemble
from repro.guest.cpu import GuestCpu
from repro.guest.interp import Interpreter
from repro.host.cpu import HostCpu
from repro.host.interp import HostInterpreter
from repro.host.isa import EAX, REG_NAMES
from repro.host.memory import HostMemory
from repro.learning import (LearnedRulebook, TRAINING_SOURCE, extract_all,
                            learn, verify)
from repro.learning.symexec.expr import (App, Const, Sym, const, equivalent,
                                         evaluate, normalize, proved_equal)
from repro.learning.toycc.codegen_arm import compile_arm
from repro.learning.toycc.codegen_x86 import compile_x86
from repro.learning.toycc.parser import ParseError, parse


# ---------------------------------------------------------------------------
# Parser.
# ---------------------------------------------------------------------------

def test_parse_training_corpus():
    functions = parse(TRAINING_SOURCE)
    assert len(functions) >= 15
    names = {function.name for function in functions}
    assert {"poly", "dot", "sumto", "clamp"} <= names


def test_parse_rejects_garbage():
    with pytest.raises(ParseError):
        parse("func broken( {")


def test_parse_expression_precedence():
    (function,) = parse("func f(a, b) { return a + b * 4; }")
    ret = function.body[0]
    assert ret.value.op == "+"
    assert ret.value.right.op == "*"


# ---------------------------------------------------------------------------
# Differential execution: toycc's two back ends must agree with each
# other when actually executed on the two ISA simulators.
# ---------------------------------------------------------------------------

class _FlatBus:
    """Minimal flat memory for running toycc ARM output bare."""

    def __init__(self, size=0x10000):
        self.data = bytearray(size)

    def fetch(self, vaddr):
        return int.from_bytes(self.data[vaddr:vaddr + 4], "little")

    def load(self, vaddr, size):
        return int.from_bytes(self.data[vaddr:vaddr + size], "little")

    def store(self, vaddr, size, value):
        self.data[vaddr:vaddr + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    def tlb_flush(self):
        pass


def run_arm_function(function, args, memory_words=None):
    output = compile_arm(function)
    bus = _FlatBus()
    program = assemble(output.asm, base=0x1000)
    bus.data[0x1000:0x1000 + program.size] = program.data
    if memory_words:
        for address, value in memory_words.items():
            bus.store(address, 4, value & 0xFFFFFFFF)
    cpu = GuestCpu()
    for index, value in enumerate(args):
        cpu.regs[index] = value & 0xFFFFFFFF
    cpu.regs[14] = 0xFFF0  # return sentinel
    cpu.regs[15] = 0x1000
    interp = Interpreter(cpu, bus)
    while cpu.regs[15] != 0xFFF0 and interp.icount < 100000:
        interp.step()
    assert cpu.regs[15] == 0xFFF0, "ARM function did not return"
    return cpu.regs[0], bus


def run_x86_function(function, args, memory_words=None):
    output = compile_x86(function)
    memory = HostMemory()
    data = bytearray(0x10000)
    memory.map_region(0, data, "flat")
    if memory_words:
        for address, value in memory_words.items():
            memory.write(address, value & 0xFFFFFFFF, 4)
    cpu = HostCpu(stack_top=0xFF00)
    for name, value in zip(function.params, args):
        cpu.regs[output.var_homes[name]] = value & 0xFFFFFFFF
    interp = HostInterpreter(cpu, memory)

    class FakeTb:
        pc = 0
        code = output.code
        jmp_target = [None, None]

    interp.execute(FakeTb())
    return cpu.regs[EAX], memory


CASES = [
    ("poly", [3, 5, 2], None),
    ("poly", [0xFFFFFFFF, 1, 7], None),
    ("bits", [0x1234, 0x56], None),
    ("maxdiff", [9, 4], None),
    ("maxdiff", [4, 9], None),
    ("sumto", [10], None),
    ("clamp", [5, 1, 10], None),
    ("clamp", [0, 1, 10], None),
    ("clamp", [99, 1, 10], None),
    ("mixer", [100, 3], None),
    ("cmpchain", [1, 1, 2], None),
    ("negate", [17], None),
    ("masks", [0xABCD], None),
    ("shifty", [5, 64], None),
    ("hashstep", [12345, 67], None),
    ("absval", [0xFFFFFF85], None),  # -123
    ("strideload", [0x2000, 3], {0x2000 + 4 * 7: 777}),
]


@pytest.mark.parametrize("name,args,memory", CASES)
def test_toycc_backends_agree(name, args, memory):
    functions = {function.name: function for function in
                 parse(TRAINING_SOURCE)}
    function = functions[name]
    arm_result, _ = run_arm_function(function, args, memory)
    x86_result, _ = run_x86_function(function, args, memory)
    assert arm_result == x86_result


def test_toycc_loops_and_stores_agree():
    functions = {function.name: function for function in
                 parse(TRAINING_SOURCE)}
    # fill writes memory on both sides; compare the written words.
    arm_result, arm_bus = run_arm_function(functions["fill"],
                                           [0x3000, 8, 100])
    x86_result, x86_memory = run_x86_function(functions["fill"],
                                              [0x3000, 8, 100])
    assert arm_result == x86_result == 8
    for index in range(8):
        address = 0x3000 + 4 * index
        assert arm_bus.load(address, 4) == x86_memory.read(address, 4) \
            == 100 + index


# ---------------------------------------------------------------------------
# Expression engine.
# ---------------------------------------------------------------------------

def test_normalize_shl_equals_mul():
    x = Sym("x")
    assert proved_equal(App("shl", (x, const(2))),
                        App("mulv", (const(4), x)))


def test_normalize_add_commutes():
    x, y = Sym("x"), Sym("y")
    assert proved_equal(App("add", (x, y)), App("add", (y, x)))


def test_normalize_sub_via_negative_coefficient():
    x, y = Sym("x"), Sym("y")
    a = App("add", (x, App("mulv", (const(0xFFFFFFFF), y))))
    b = App("add", (App("mulv", (const(0xFFFFFFFF), y)), x))
    assert proved_equal(a, b)


def test_normalize_xor_cancels():
    x = Sym("x")
    assert repr(normalize(App("xor", (x, x)))) == repr(const(0))


def test_equivalent_rejects_different():
    x, y = Sym("x"), Sym("y")
    ok, _ = equivalent(App("add", (x, y)), App("xor", (x, y)))
    assert not ok


def test_probably_equal_catches_subtle_difference():
    x = Sym("x")
    ok, _ = equivalent(App("shr", (x, const(1))), App("sar", (x, const(1))))
    assert not ok


def test_evaluate_matches_semantics():
    env = {"x": 0x80000000}
    assert evaluate(App("sar", (Sym("x"), const(31))), env) == 0xFFFFFFFF
    assert evaluate(App("shr", (Sym("x"), const(31))), env) == 1


# ---------------------------------------------------------------------------
# Extraction + verification.
# ---------------------------------------------------------------------------

def test_extraction_pairs_lines():
    functions = parse(TRAINING_SOURCE)
    candidates = extract_all(functions)
    assert len(candidates) > 50
    for candidate in candidates:
        assert candidate.guest and candidate.host


def test_verification_accepts_good_fragments():
    functions = parse("func f(a, b) { var x; x = a + b * 2; return x; }")
    candidates = extract_all(functions)
    verdicts = [verify(candidate) for candidate in candidates]
    assert all(verdict.ok for verdict in verdicts)
    assert all(verdict.proved for verdict in verdicts)


def test_verification_rejects_mispaired_fragments():
    good = extract_all(parse("func f(a, b) { var x; x = a + b; "
                             "return x; }"))
    bad = extract_all(parse("func g(a, b) { var x; x = a - b; "
                            "return x; }"))
    # Swap host fragments: a+b guest against a-b host must be rejected.
    frankenstein = good[0]
    frankenstein.host = bad[0].host
    assert not verify(frankenstein).ok


def test_learn_end_to_end():
    result = learn()
    assert result.candidates >= 70
    assert result.verified >= 0.9 * result.candidates
    assert result.proved == result.verified  # normalizer closes everything
    assert len(result.rules) >= 30
    assert isinstance(result.rulebook, LearnedRulebook)
    # Opcode parameterization must have merged at least one ALU family.
    assert any(rule.opcode_class for rule in result.rules)


def test_learned_rulebook_covers_common_instructions():
    from repro.guest.asm import assemble as asm
    from repro.guest.decoder import decode as dec
    result = learn()
    rulebook = result.rulebook

    def covered(text):
        program = asm("    " + text, base=0)
        word = int.from_bytes(program.data[:4], "little")
        return rulebook.covers(dec(word, 0))

    assert covered("add r0, r1, r2")
    assert covered("sub r3, r4, #8")       # opcode parameterization
    assert covered("ldr r0, [r1, r2, lsl #2]")
    assert covered("str r0, [r1, r2, lsl #2]")
    assert covered("cmp r0, r1")
    assert covered("mul r0, r1, r2")
    # System instructions can never be learned from user-level code.
    assert not covered("mcr p15, 0, r0, c2, c0, 0")
    assert not covered("svc #0")
