"""Table I: distribution of coordination-requiring categories."""

from repro.harness import PAPER, table1


def test_table1(benchmark, save):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    save("table1", result)
    summary = result.summary
    rows = {row["benchmark"]: row for row in result.rows}

    # Memory accesses dominate; interrupt checks second; system-level
    # instructions are a small fraction (the paper's ordering).
    assert summary["memory_geomean"] > summary["check_geomean"] > \
        summary["system_geomean"]
    assert summary["system_geomean"] < 1.0
    assert 10.0 < summary["memory_geomean"] < 60.0
    assert 5.0 < summary["check_geomean"] < 30.0

    # Per-benchmark character: gcc is the most system-instruction heavy;
    # hmmer has the longest blocks (fewest checks); mcf and hmmer are
    # among the most memory-intensive.
    assert rows["gcc"]["system_pct"] == max(r["system_pct"]
                                            for r in result.rows)
    assert rows["hmmer"]["check_pct"] == min(r["check_pct"]
                                             for r in result.rows)
    memory_sorted = sorted(result.rows, key=lambda r: -r["memory_pct"])
    assert {"mcf", "hmmer"} <= {r["benchmark"] for r in memory_sorted[:4]}
