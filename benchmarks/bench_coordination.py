"""Sec IV-B: fraction of instructions requiring coordination."""

from repro.harness import coordination_claims


def test_coordination_claims(benchmark, save):
    result = benchmark.pedantic(coordination_claims, rounds=1, iterations=1)
    save("coordination", result)
    summary = result.summary
    # Coordination sites are a large fraction of all instructions
    # (paper: 48.83%), and the optimizations eliminate most of the
    # actual coordination operations (paper: down to 24.61%).
    assert 20.0 < summary["sites_pct"] < 70.0
    assert summary["full_coordination_pct"] < \
        0.6 * summary["base_coordination_pct"]
