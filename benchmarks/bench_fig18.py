"""Fig 18: slowdown vs native execution."""

from repro.harness import fig18


def test_fig18(benchmark, save):
    result = benchmark.pedantic(fig18, rounds=1, iterations=1)
    save("fig18", result)
    summary = result.summary
    # Both systems are an order of magnitude slower than native; the
    # rule-based system is consistently closer to native than QEMU
    # (paper: 18.73x vs 13.83x).
    assert 5.0 < summary["rules_geomean"] < summary["qemu_geomean"] < 30.0
    for row in result.rows:
        assert row["rules_slowdown"] < row["qemu_slowdown"], row
