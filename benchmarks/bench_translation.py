"""Micro-benchmarks of the simulator itself (wall-clock, pytest-benchmark).

These time the Python implementation, not the modelled guest: translator
throughput and end-to-end emulation speed for each engine on one small
workload.  Useful for tracking regressions in the reproduction's own
performance.
"""

import pytest

from repro.core import OptLevel, make_rule_engine
from repro.guest.asm import assemble
from repro.harness import run_workload
from repro.harness.runner import make_machine
from repro.miniqemu.machine import TcgEngine, Machine
from repro.workloads.spec import SPEC_WORKLOADS

_BLOCK = """
    add r0, r1, r2
    subs r3, r0, #17
    and r4, r3, r0, lsl #2
    ldr r5, [r4, #8]
    str r5, [r4, #12]
    cmp r5, r0
    bne target
target:
    bx lr
"""


@pytest.fixture(scope="module")
def block_machine():
    machine = Machine(engine="tcg")
    program = assemble(_BLOCK, base=0x40000)
    machine.memory.load_program(program)
    return machine


def test_tcg_translation_speed(benchmark, block_machine):
    engine = TcgEngine(block_machine)

    def translate():
        return engine.translate(0x40000, 0)

    tb = benchmark(translate)
    assert tb.guest_insn_count == 7


def test_rule_translation_speed(benchmark, block_machine):
    from repro.core.engine import RuleEngine

    engine = RuleEngine(block_machine, level=OptLevel.FULL)

    def translate():
        return engine.translate(0x40000, 0)

    tb = benchmark(translate)
    assert tb.guest_insn_count == 7


@pytest.mark.parametrize("engine", ["interp", "tcg", "rules-full"])
def test_emulation_wall_clock(benchmark, save, engine):
    workload = SPEC_WORKLOADS["sjeng"]  # the smallest SPEC analog

    def run():
        machine = make_machine(workload, engine)
        machine.run(workload.max_insns)
        return machine

    machine = benchmark.pedantic(run, rounds=1, iterations=1)
    assert machine.exit_code == 0
    stats = machine.stats()
    save(f"emulation_{engine.replace('-', '_')}",
         f"emulation wall-clock smoke: {workload.name} on {engine}",
         summary={"guest_icount": stats["engine.guest_icount"],
                  "host_cost": stats["engine.host_cost"],
                  "io_cost": stats["io.cost"]},
         config={"workload": workload.name, "engine": engine})
