"""Fig 14: per-benchmark speedup over QEMU (un-opt vs full opt)."""

from repro.harness import fig14


def test_fig14(benchmark, save):
    result = benchmark.pedantic(fig14, rounds=1, iterations=1)
    save("fig14", result)
    summary = result.summary
    # Headline claims: naive rule application is NOT faster than QEMU
    # (the paper measures a 5% slowdown); the fully-optimized system is
    # decisively faster on every benchmark.
    assert summary["unopt_geomean"] < 1.05
    assert summary["full_geomean"] > 1.2
    for row in result.rows:
        assert row["full_speedup"] > 1.0, row
        assert row["full_speedup"] > row["unopt_speedup"], row
