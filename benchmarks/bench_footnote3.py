"""Footnote 3: floating-point workloads raise the speedup (1.92x vs 1.36x)."""

from repro.harness.experiments import footnote3


def test_footnote3(benchmark, save):
    result = benchmark.pedantic(footnote3, rounds=1, iterations=1)
    save("footnote3", result)
    summary = result.summary
    # FP rules avoid both the softfloat helpers and all coordination, so
    # FP workloads speed up far more than integer ones and lift the
    # combined geomean — the direction and magnitude of the footnote.
    assert summary["fp_geomean"] > 1.5 * summary["int_geomean"]
    # With only 3 CFP analogs against 12 CINT ones the combined lift is
    # smaller than the paper's (which averages over many FP apps); the
    # direction must hold clearly.
    assert summary["combined_geomean"] > 1.1 * summary["int_geomean"]
