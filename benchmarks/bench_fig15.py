"""Fig 15: average host instructions per translated guest instruction."""

from repro.harness import fig15


def test_fig15(benchmark, save):
    result = benchmark.pedantic(fig15, rounds=1, iterations=1)
    save("fig15", result)
    summary = result.summary
    # Rule-based translation produces denser code than the two-step
    # IR pipeline (paper: 17.39 -> 15.40, an 11.44% reduction).
    assert summary["rules_full"] < summary["qemu"]
    assert 5.0 < summary["reduction_pct"] < 50.0
    assert 8.0 < summary["qemu"] < 25.0
