"""Fig 19: real-world application speedups."""

from repro.harness import fig19


def test_fig19(benchmark, save):
    result = benchmark.pedantic(fig19, rounds=1, iterations=1)
    save("fig19", result)
    rows = {row["application"]: row for row in result.rows}
    # Everything speeds up; the I/O- and network-bound applications
    # (fileio, untar, memcached) gain the least, exactly as the paper
    # argues, while the CPU-bound ones gain the most.
    for row in result.rows:
        assert row["speedup"] > 1.0, row
    io_bound = min(rows["fileio"]["speedup"], rows["untar"]["speedup"],
                   rows["memcached"]["speedup"])
    cpu_bound = max(rows["cpu-prime"]["speedup"], rows["sqlite"]["speedup"])
    assert cpu_bound > io_bound
    assert rows["fileio"]["io_fraction"] > 0.4
    assert 1.0 < result.summary["geomean"] < 1.6
