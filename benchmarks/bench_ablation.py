"""Ablation study over the individual optimization switches.

The paper evaluates the optimizations cumulatively (Fig 16); this bench
toggles each :class:`~repro.core.OptConfig` switch independently on a
representative workload subset to show where the win comes from, plus
the interrupt-check relocation variant of Sec III-D-2.
"""

from repro.core import OptConfig
from repro.harness import format_table, geomean, run_workload
from repro.workloads.spec import SPEC_WORKLOADS

#: representative subset (memory-heavy, branchy, balanced).
SUBSET = ["mcf", "xalancbmk", "bzip2", "hmmer"]

CONFIGS = {
    "base": OptConfig(),
    "packed only": OptConfig(packed_sync=True),
    "elimination only": OptConfig(eliminate_redundant=True, inter_tb=True),
    "packed + elimination": OptConfig(packed_sync=True,
                                      eliminate_redundant=True,
                                      inter_tb=True),
    "full (no inter-TB)": OptConfig(packed_sync=True,
                                    eliminate_redundant=True,
                                    scheduling=True),
    "full": OptConfig(packed_sync=True, eliminate_redundant=True,
                      inter_tb=True, scheduling=True),
    "full + irq-relocation": OptConfig(packed_sync=True,
                                       eliminate_redundant=True,
                                       inter_tb=True, scheduling=True,
                                       irq_scheduling=True),
}


def _sweep():
    qemu = {name: run_workload(SPEC_WORKLOADS[name], "tcg").runtime
            for name in SUBSET}
    speedups = {}
    for label, config in CONFIGS.items():
        runtimes = [run_workload(SPEC_WORKLOADS[name], "rules-custom",
                                 config=config).runtime
                    for name in SUBSET]
        speedups[label] = geomean([qemu[name] / runtime
                                   for name, runtime in
                                   zip(SUBSET, runtimes)])
    return speedups


def test_ablation(benchmark, save):
    speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save("ablation", format_table(
        ["Configuration", "Speedup (x)"],
        [[label, value] for label, value in speedups.items()],
        title="Ablation: individual optimization switches "
              f"(subset: {', '.join(SUBSET)})"),
        summary=speedups,
        config={"subset": SUBSET, "engine": "rules-custom",
                "baseline": "tcg"})
    # Packing and elimination each help on their own; combined they beat
    # either alone; inter-TB contributes on top.
    assert speedups["packed only"] > speedups["base"]
    assert speedups["elimination only"] > speedups["base"]
    assert speedups["packed + elimination"] > speedups["packed only"]
    assert speedups["packed + elimination"] > \
        speedups["elimination only"]
    assert speedups["full"] >= 0.99 * speedups["full (no inter-TB)"]
