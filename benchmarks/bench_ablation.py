"""Ablation study over the individual optimization switches.

The paper evaluates the optimizations cumulatively (Fig 16); this bench
toggles each :class:`~repro.core.OptConfig` switch independently on a
representative workload subset to show where the win comes from, plus
the interrupt-check relocation variant of Sec III-D-2.

The sweep itself lives in :func:`repro.harness.ablation` so that
``repro bench`` (the continuous-benchmarking orchestrator) and this
pytest-benchmark entry point are the same experiment — this file only
adds the wall-clock measurement and the sanity assertions.
"""

from repro.harness import ablation
from repro.harness.experiments import ABLATION_SUBSET


def test_ablation(benchmark, save):
    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save("ablation", result,
         config={"subset": ABLATION_SUBSET, "engine": "rules-custom",
                 "baseline": "tcg"})
    speedups = result.summary
    # Packing and elimination each help on their own; combined they beat
    # either alone; inter-TB contributes on top.
    assert speedups["packed only"] > speedups["base"]
    assert speedups["elimination only"] > speedups["base"]
    assert speedups["packed + elimination"] > speedups["packed only"]
    assert speedups["packed + elimination"] > \
        speedups["elimination only"]
    assert speedups["full"] >= 0.99 * speedups["full (no inter-TB)"]
