"""Fig 16: cumulative speedup after each optimization."""

from repro.harness import fig16


def test_fig16(benchmark, save):
    result = benchmark.pedantic(fig16, rounds=1, iterations=1)
    save("fig16", result)
    summary = result.summary
    # Monotone improvement; Base must be at best marginal vs QEMU.
    assert summary["Base"] < 1.05
    assert summary["Base"] < summary["+Reduction"]
    assert summary["+Reduction"] < summary["+Elimination"]
    assert summary["+Scheduling"] >= 0.98 * summary["+Elimination"]
    assert summary["+Scheduling"] > 1.2
