"""Shared infrastructure for the figure benchmarks.

All figure benchmarks share one process-wide sweep cache
(:mod:`repro.harness.runner`), so the full suite runs each
(workload, engine) pair exactly once.  Every rendered table is also
written to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture
def save():
    return save_result
