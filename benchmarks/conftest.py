"""Shared infrastructure for the figure benchmarks.

All figure benchmarks share one process-wide sweep cache
(:mod:`repro.harness.runner`), so the full suite runs each
(workload, engine) pair exactly once.  Every rendered table is written
to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md, and a
machine-readable companion ``benchmarks/results/<name>.json`` carries
the metric rows, summary scalars and configuration of the run.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name, result, summary=None, config=None) -> None:
    """Persist one benchmark result.

    *result* is either an :class:`repro.harness.ExperimentResult`
    (duck-typed: anything with ``.text`` / ``.rows`` / ``.summary``) or
    a rendered table string accompanied by an explicit ``summary=``
    dict — a bare string used to silently produce a metric-free
    ``{"rows": [], "summary": {}}`` JSON companion that the regression
    tooling could not gate on.  The text goes to ``<name>.txt``; the
    schema-validated metric payload goes to ``<name>.json``.  Extra
    *summary* scalars and the benchmark *config* are merged in.
    """
    from repro.observability import validate_result_payload

    RESULTS_DIR.mkdir(exist_ok=True)
    if hasattr(result, "text"):
        text = result.text
        payload = {"name": name, "rows": list(result.rows),
                   "summary": dict(result.summary)}
    elif isinstance(result, str):
        if not summary:
            raise TypeError(
                f"save_result({name!r}): a plain string result needs an "
                f"explicit summary= dict of metrics — otherwise the JSON "
                f"companion carries no gateable data. Pass an "
                f"ExperimentResult or the metrics.")
        text = result
        payload = {"name": name, "rows": [], "summary": {}}
    else:
        raise TypeError(
            f"save_result({name!r}): expected an ExperimentResult or a "
            f"string, got {type(result).__name__}")
    if summary:
        payload["summary"].update(summary)
    problems = validate_result_payload(payload)
    if problems:
        raise ValueError(
            f"save_result({name!r}): payload violates the result "
            f"schema: " + "; ".join(problems))
    if config is not None:
        payload["config"] = config
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with open(RESULTS_DIR / f"{name}.json", "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    print("\n" + text)


@pytest.fixture
def save():
    return save_result
