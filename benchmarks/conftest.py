"""Shared infrastructure for the figure benchmarks.

All figure benchmarks share one process-wide sweep cache
(:mod:`repro.harness.runner`), so the full suite runs each
(workload, engine) pair exactly once.  Every rendered table is written
to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md, and a
machine-readable companion ``benchmarks/results/<name>.json`` carries
the metric rows, summary scalars and configuration of the run.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name, result, summary=None, config=None) -> None:
    """Persist one benchmark result.

    *result* is either a rendered table string or an
    :class:`repro.harness.ExperimentResult` (duck-typed: anything with
    ``.text`` / ``.rows`` / ``.summary``).  The text goes to
    ``<name>.txt``; a JSON document with the metrics goes to
    ``<name>.json``.  Extra *summary* scalars and the benchmark
    *config* are merged into the JSON.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if hasattr(result, "text"):
        text = result.text
        payload = {"name": name, "rows": list(result.rows),
                   "summary": dict(result.summary)}
    else:
        text = result
        payload = {"name": name, "rows": [], "summary": {}}
    if summary:
        payload["summary"].update(summary)
    if config is not None:
        payload["config"] = config
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with open(RESULTS_DIR / f"{name}.json", "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    print("\n" + text)


@pytest.fixture
def save():
    return save_result
