"""Learning-pipeline benchmarks: throughput, yield and coverage.

Not a paper figure, but the pipeline's statistics mirror Sec II-A: how
many candidates the corpus produces, how many survive verification, how
much parameterization compresses the rule set, and what fraction of the
SPEC analogs' dynamic instructions the learned rules cover.
"""

from repro.core import OptLevel, make_rule_engine
from repro.harness import format_table
from repro.kernel.kernel import build_kernel, build_user_program
from repro.learning import learn
from repro.miniqemu.machine import Machine
from repro.workloads.spec import SPEC_WORKLOADS


def test_learning_pipeline(benchmark, save):
    result = benchmark(learn)
    rows = [
        ["candidate fragments", result.candidates],
        ["verified", result.verified],
        ["proved by normalization", result.proved],
        ["parameterized rules", len(result.rules)],
        ["opcode-class rules", sum(1 for rule in result.rules
                                   if rule.opcode_class)],
    ]
    save("learning", format_table(["Stage", "Count"], rows,
                                  title="Rule learning pipeline yield"),
         summary={label: float(count) for label, count in rows})
    assert result.verified >= 0.9 * result.candidates
    assert len(result.rules) < result.verified  # parameterization compresses


def _coverage():
    """Dynamic rule coverage of the learned rulebook on a SPEC subset."""
    rulebook = learn().rulebook
    coverage = {}
    for name in ("mcf", "hmmer", "astar"):
        workload = SPEC_WORKLOADS[name]
        factory = make_rule_engine(OptLevel.FULL, rulebook=rulebook)
        machine = Machine(engine="rules", rule_engine_factory=factory)
        machine.memory.load_program(build_kernel(
            timer_reload=workload.timer_reload))
        machine.memory.load_program(build_user_program(workload.body))
        machine.cpu.regs[15] = 0
        machine.env.load_from_cpu(machine.cpu)
        machine.run(workload.max_insns)
        covered = uncovered = 0
        for tb in machine.engine.cache.all_tbs():
            weight = tb.exec_count
            uncovered += weight * tb.meta.get("n_uncovered", 0)
            covered += weight * (tb.guest_insn_count -
                                 tb.meta.get("n_uncovered", 0) -
                                 tb.meta.get("n_system", 0))
        coverage[name] = covered / max(covered + uncovered, 1)
    return coverage


def test_learned_rulebook_dynamic_coverage(benchmark, save):
    coverage = benchmark.pedantic(_coverage, rounds=1, iterations=1)
    save("learned_coverage", format_table(
        ["Workload", "Dynamic coverage"],
        [[name, f"{100 * value:.1f}%"] for name, value in coverage.items()],
        title="Learned-rulebook dynamic instruction coverage"),
        summary=coverage,
        config={"engine": "rules-full", "rulebook": "learned"})
    # The learned rules must cover the bulk of user-level execution even
    # though the corpus is small (the paper's framework reaches higher
    # coverage with a much larger training set).
    for name, value in coverage.items():
        assert value > 0.5, (name, value)
