"""Fig 17: coordination host instructions per guest instruction."""

from repro.harness import fig17


def test_fig17(benchmark, save):
    result = benchmark.pedantic(fig17, rounds=1, iterations=1)
    save("fig17", result)
    summary = result.summary
    # Each optimization strictly reduces coordination traffic
    # (paper: 8.36 -> 1.79 -> 1.33 -> 0.89).
    assert summary["Base"] > summary["+Reduction"]
    assert summary["+Reduction"] > summary["+Elimination"]
    assert summary["+Scheduling"] <= summary["+Elimination"] * 1.01
    assert summary["+Scheduling"] < 1.0
    assert summary["Base"] > 3.0
