"""Fig 8: host instructions per coordination operation (14 -> 3)."""

from repro.harness import PAPER, fig8


def test_fig8(benchmark, save):
    result = benchmark.pedantic(fig8, rounds=1, iterations=1)
    save("fig08", result)
    summary = result.summary
    # The packed scheme must be several times cheaper than the parsed
    # one (the paper reports 14 -> 3, a 78% saving).
    assert summary["parsed_insns_per_sync"] > \
        2.5 * summary["packed_insns_per_sync"]
    assert summary["packed_insns_per_sync"] < 4.0
    assert 50.0 < summary["saving_pct"] < 90.0
