"""AST for the toy training language.

The language is a C subset sufficient to generate the instruction
patterns the learning pipeline trains on::

    func name(a, b) {
        var x;
        x = a * 2 + b;
        if (x > a) { x = x - 1; } else { x = x + 1; }
        while (x > 0) { x = x - b; }
        return x;
    }

Only ``int`` values exist; ``p[i]`` indexes a word array passed by
address.  Every statement records its source line — that is the debug
information the rule-learning extraction keys on (standing in for DWARF
line tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Array load: base[index] (base is a pointer parameter)."""

    base: str = ""
    index: Optional[Expr] = None


@dataclass
class ByteIndex(Expr):
    """Byte-array load: base[[index]]."""

    base: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Assign(Stmt):
    target: str = ""
    value: Optional[Expr] = None


@dataclass
class Store(Stmt):
    """Array store: base[index] = value."""

    base: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class ByteStore(Stmt):
    """Byte-array store: base[[index]] = value."""

    base: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Function:
    name: str = ""
    params: List[str] = field(default_factory=list)
    locals: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
