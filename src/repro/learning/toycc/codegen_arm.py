"""toycc ARM back end.

Emits textual ARM assembly (assembled by :mod:`repro.guest.asm`) plus the
debug line table the learning pipeline consumes: for every emitted
instruction, the source line of the statement it implements — the
stand-in for the DWARF line table the paper's framework reads from
GCC/LLVM output.

Conventions: parameters and locals live in fixed "home" registers
(r4, r5, r6, r8, r9 in declaration order); parameters arrive in r0..r3
and are moved home in the prologue; expressions evaluate in the scratch
registers r0-r3; the result returns in r0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...common.bitops import encode_arm_imm
from ...common.errors import ReproError
from .ast_nodes import (Assign, Binary, ByteIndex, ByteStore, Function, If,
                        Index, Num, Return, Store, Unary, Var, While)

HOME_REGS = ["r4", "r5", "r6", "r8", "r9"]
SCRATCH_REGS = ["r0", "r1", "r2", "r3"]

#: signed comparison -> (branch-if-true, branch-if-false)
_COND_BRANCHES = {
    "==": ("beq", "bne"), "!=": ("bne", "beq"),
    "<": ("blt", "bge"), ">": ("bgt", "ble"),
    "<=": ("ble", "bgt"), ">=": ("bge", "blt"),
}

_BINOPS = {"+": "add", "-": "sub", "&": "and", "|": "orr", "^": "eor",
           "<<": "lsl", ">>": "asr"}


@dataclass
class ArmOutput:
    name: str
    asm: str
    #: source line for each instruction index (in emission order)
    line_table: List[int] = field(default_factory=list)
    var_homes: Dict[str, str] = field(default_factory=dict)


class ArmCodegen:
    def __init__(self, function: Function):
        self.function = function
        self.lines: List[str] = []        # assembly text lines
        self.line_table: List[int] = []
        self.homes: Dict[str, str] = {}
        self.free_scratch = list(SCRATCH_REGS)
        self._label_counter = 0

    # -- emission helpers ----------------------------------------------------

    def emit(self, text: str, line: int) -> None:
        self.lines.append("    " + text)
        self.line_table.append(line)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f".{self.function.name}_{stem}{self._label_counter}"

    def alloc(self) -> str:
        if not self.free_scratch:
            raise ReproError("toycc: expression too deep for the "
                             "scratch registers")
        return self.free_scratch.pop(0)

    def free(self, reg: str) -> None:
        if reg in SCRATCH_REGS and reg not in self.free_scratch:
            self.free_scratch.insert(0, reg)

    # -- top level -------------------------------------------------------------

    def generate(self) -> ArmOutput:
        function = self.function
        variables = function.params + function.locals
        if len(variables) > len(HOME_REGS):
            raise ReproError(f"toycc: too many variables in "
                             f"{function.name}")
        self.homes = dict(zip(variables, HOME_REGS))
        self.label(function.name)
        for index, param in enumerate(function.params):
            self.emit(f"mov {self.homes[param]}, r{index}", 0)
        for statement in function.body:
            self._statement(statement)
        self.label(f".{function.name}_epilogue")
        self.emit("bx lr", 0)
        return ArmOutput(name=function.name, asm="\n".join(self.lines),
                         line_table=list(self.line_table),
                         var_homes=dict(self.homes))

    # -- statements ---------------------------------------------------------------

    def _statement(self, statement) -> None:
        if isinstance(statement, Assign):
            reg = self._expr(statement.value, statement.line)
            self.emit(f"mov {self.homes[statement.target]}, {reg}",
                      statement.line)
            self.free(reg)
        elif isinstance(statement, Store):
            value = self._expr(statement.value, statement.line)
            base = self.homes[statement.base]
            if isinstance(statement.index, Num):
                self.emit(f"str {value}, [{base}, "
                          f"#{4 * statement.index.value}]", statement.line)
            else:
                index = self._expr(statement.index, statement.line)
                self.emit(f"str {value}, [{base}, {index}, lsl #2]",
                          statement.line)
                self.free(index)
            self.free(value)
        elif isinstance(statement, ByteStore):
            value = self._expr(statement.value, statement.line)
            base = self.homes[statement.base]
            if isinstance(statement.index, Num):
                self.emit(f"strb {value}, [{base}, "
                          f"#{statement.index.value}]", statement.line)
            else:
                index = self._expr(statement.index, statement.line)
                self.emit(f"strb {value}, [{base}, {index}]",
                          statement.line)
                self.free(index)
            self.free(value)
        elif isinstance(statement, Return):
            reg = self._expr(statement.value, statement.line)
            if reg != "r0":
                self.emit(f"mov r0, {reg}", statement.line)
            self.emit(f"b .{self.function.name}_epilogue", statement.line)
            self.free(reg)
        elif isinstance(statement, If):
            else_label = self.new_label("else")
            end_label = self.new_label("endif")
            self._condition(statement.condition, else_label,
                            statement.line)
            for inner in statement.then_body:
                self._statement(inner)
            if statement.else_body:
                self.emit(f"b {end_label}", statement.line)
                self.label(else_label)
                for inner in statement.else_body:
                    self._statement(inner)
                self.label(end_label)
            else:
                self.label(else_label)
        elif isinstance(statement, While):
            head = self.new_label("loop")
            exit_label = self.new_label("endloop")
            self.label(head)
            self._condition(statement.condition, exit_label,
                            statement.line)
            for inner in statement.body:
                self._statement(inner)
            self.emit(f"b {head}", statement.line)
            self.label(exit_label)
        else:
            raise ReproError(f"toycc: unknown statement {statement}")

    def _condition(self, condition, false_label: str, line: int) -> None:
        if not isinstance(condition, Binary) or \
                condition.op not in _COND_BRANCHES:
            raise ReproError("toycc: conditions must be comparisons")
        left = self._expr(condition.left, line)
        right_text, right_free = self._operand(condition.right, line)
        self.emit(f"cmp {left}, {right_text}", line)
        _, branch_false = _COND_BRANCHES[condition.op]
        self.emit(f"{branch_false} {false_label}", line)
        self.free(left)
        if right_free:
            self.free(right_free)

    # -- expressions ------------------------------------------------------------------

    def _operand(self, expression, line: int) -> Tuple[str, str]:
        """Operand text for the flexible second operand; (text, reg-to-free)."""
        if isinstance(expression, Num) and \
                encode_arm_imm(expression.value & 0xFFFFFFFF) is not None:
            return f"#{expression.value}", ""
        if isinstance(expression, Var):
            return self.homes[expression.name], ""
        # Fold "var << k" / "var >> k" into the barrel shifter, and
        # "var * 2^k" into an lsl operand (what GCC/LLVM emit).
        if isinstance(expression, Binary) and \
                isinstance(expression.left, Var) and \
                isinstance(expression.right, Num):
            home = self.homes[expression.left.name]
            value = expression.right.value
            if expression.op == "<<":
                return f"{home}, lsl #{value}", ""
            if expression.op == ">>":
                return f"{home}, asr #{value}", ""
            if expression.op == "*" and value > 1 and \
                    (value & (value - 1)) == 0:
                return f"{home}, lsl #{value.bit_length() - 1}", ""
        reg = self._expr(expression, line)
        return reg, reg

    def _expr(self, expression, line: int) -> str:
        if isinstance(expression, Num):
            reg = self.alloc()
            self.emit(f"mov {reg}, #{expression.value}", line)
            return reg
        if isinstance(expression, Var):
            reg = self.alloc()
            self.emit(f"mov {reg}, {self.homes[expression.name]}", line)
            return reg
        if isinstance(expression, Index):
            base = self.homes[expression.base]
            if isinstance(expression.index, Num):
                reg = self.alloc()
                self.emit(f"ldr {reg}, [{base}, "
                          f"#{4 * expression.index.value}]", line)
                return reg
            index = self._expr(expression.index, line)
            self.emit(f"ldr {index}, [{base}, {index}, lsl #2]", line)
            return index
        if isinstance(expression, ByteIndex):
            base = self.homes[expression.base]
            if isinstance(expression.index, Num):
                reg = self.alloc()
                self.emit(f"ldrb {reg}, [{base}, "
                          f"#{expression.index.value}]", line)
                return reg
            index = self._expr(expression.index, line)
            self.emit(f"ldrb {index}, [{base}, {index}]", line)
            return index
        if isinstance(expression, Unary):
            reg = self._expr(expression.operand, line)
            if expression.op == "-":
                self.emit(f"rsb {reg}, {reg}, #0", line)
            else:
                self.emit(f"mvn {reg}, {reg}", line)
            return reg
        if isinstance(expression, Binary):
            return self._binary(expression, line)
        raise ReproError(f"toycc: unknown expression {expression}")

    def _binary(self, expression: Binary, line: int) -> str:
        op = expression.op
        if op == "*":
            return self._multiply(expression, line)
        left = self._expr(expression.left, line)
        if op in ("<<", ">>"):
            amount = expression.right
            if not isinstance(amount, Num):
                raise ReproError("toycc: shift amounts must be constants")
            kind = "lsl" if op == "<<" else "asr"
            self.emit(f"mov {left}, {left}, {kind} #{amount.value}", line)
            return left
        right_text, right_free = self._operand(expression.right, line)
        self.emit(f"{_BINOPS[op]} {left}, {left}, {right_text}", line)
        if right_free:
            self.free(right_free)
        return left

    def _multiply(self, expression: Binary, line: int) -> str:
        right = expression.right
        if isinstance(right, Num) and right.value > 0 and \
                (right.value & (right.value - 1)) == 0:
            # Strength-reduce multiplications by powers of two.
            left = self._expr(expression.left, line)
            shift = right.value.bit_length() - 1
            self.emit(f"mov {left}, {left}, lsl #{shift}", line)
            return left
        left = self._expr(expression.left, line)
        right_reg = self._expr(right, line)
        self.emit(f"mul {left}, {left}, {right_reg}", line)
        self.free(right_reg)
        return left


def compile_arm(function: Function) -> ArmOutput:
    return ArmCodegen(function).generate()
