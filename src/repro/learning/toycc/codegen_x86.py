"""toycc x86 back end.

Mirrors the ARM back end's structure (same homes-in-registers strategy,
same per-statement shape) so that line-grouped fragments from the two
back ends are semantically parallel — exactly the property the paper's
learning framework relies on when it pairs binaries compiled from the
same source.

Conventions: variables home in EBX, ESI, EDI, ECX, EBP (declaration
order), expressions evaluate in EAX/EDX, the result returns in EAX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...common.errors import ReproError
from ...host.builder import CodeBuilder
from ...host.isa import (EAX, EBP, EBX, ECX, EDI, EDX, ESI, Imm, Mem, Reg,
                         X86Cond, X86Insn, X86Op)
from .ast_nodes import (Assign, Binary, ByteIndex, ByteStore, Function, If,
                        Index, Num, Return, Store, Unary, Var, While)

HOME_REGS = [EBX, ESI, EDI, ECX, EBP]
SCRATCH_REGS = [EAX, EDX]

#: comparison -> jcc-if-false (signed)
_FALSE_COND = {"==": X86Cond.NE, "!=": X86Cond.E, "<": X86Cond.GE,
               ">": X86Cond.LE, "<=": X86Cond.G, ">=": X86Cond.L}

_BINOPS = {"+": X86Op.ADD, "-": X86Op.SUB, "&": X86Op.AND, "|": X86Op.OR,
           "^": X86Op.XOR}


@dataclass
class X86Output:
    name: str
    code: List[X86Insn] = field(default_factory=list)
    line_table: List[int] = field(default_factory=list)
    var_homes: Dict[str, int] = field(default_factory=dict)


class X86Codegen:
    def __init__(self, function: Function):
        self.function = function
        self.builder = CodeBuilder(default_tag="toycc")
        self.line_table: List[int] = []
        self.homes: Dict[str, int] = {}
        self.free_scratch = list(SCRATCH_REGS)

    # -- emission helpers -----------------------------------------------------

    def emit(self, op: X86Op, dst=None, src=None, line: int = 0,
             **kwargs) -> None:
        before = len(self.builder.insns)
        self.builder.emit(op, dst, src, **kwargs)
        self.line_table.extend([line] * (len(self.builder.insns) - before))

    def alloc(self) -> int:
        if not self.free_scratch:
            raise ReproError("toycc: expression too deep for the "
                             "scratch registers")
        return self.free_scratch.pop(0)

    def free(self, reg: int) -> None:
        if reg in SCRATCH_REGS and reg not in self.free_scratch:
            self.free_scratch.insert(0, reg)

    # -- top level ---------------------------------------------------------------

    def generate(self) -> X86Output:
        function = self.function
        variables = function.params + function.locals
        if len(variables) > len(HOME_REGS):
            raise ReproError(f"toycc: too many variables in "
                             f"{function.name}")
        self.homes = dict(zip(variables, HOME_REGS))
        for statement in function.body:
            self._statement(statement)
        self.builder.bind(f".{function.name}_epilogue")
        self.emit(X86Op.EXIT_TB, line=0)
        code = self.builder.finish()
        return X86Output(name=function.name, code=code,
                         line_table=list(self.line_table),
                         var_homes=dict(self.homes))

    # -- statements ------------------------------------------------------------------

    def _statement(self, statement) -> None:
        if isinstance(statement, Assign):
            reg = self._expr(statement.value, statement.line)
            self.emit(X86Op.MOV, Reg(self.homes[statement.target]),
                      Reg(reg), line=statement.line)
            self.free(reg)
        elif isinstance(statement, Store):
            value = self._expr(statement.value, statement.line)
            base = self.homes[statement.base]
            if isinstance(statement.index, Num):
                self.emit(X86Op.MOV,
                          Mem(base=base, disp=4 * statement.index.value),
                          Reg(value), line=statement.line)
            else:
                index = self._expr(statement.index, statement.line)
                self.emit(X86Op.MOV, Mem(base=base, index=index, scale=4),
                          Reg(value), line=statement.line)
                self.free(index)
            self.free(value)
        elif isinstance(statement, ByteStore):
            value = self._expr(statement.value, statement.line)
            base = self.homes[statement.base]
            if isinstance(statement.index, Num):
                self.emit(X86Op.MOV,
                          Mem(base=base, disp=statement.index.value,
                              size=1),
                          Reg(value), line=statement.line)
            else:
                index = self._expr(statement.index, statement.line)
                self.emit(X86Op.MOV,
                          Mem(base=base, index=index, size=1),
                          Reg(value), line=statement.line)
                self.free(index)
            self.free(value)
        elif isinstance(statement, Return):
            reg = self._expr(statement.value, statement.line)
            if reg != EAX:
                self.emit(X86Op.MOV, Reg(EAX), Reg(reg),
                          line=statement.line)
            self.emit(X86Op.JMP, label=f".{self.function.name}_epilogue",
                      line=statement.line)
            self.free(reg)
        elif isinstance(statement, If):
            else_label = self.builder.new_label("else")
            end_label = self.builder.new_label("endif")
            self._condition(statement.condition, else_label,
                            statement.line)
            for inner in statement.then_body:
                self._statement(inner)
            if statement.else_body:
                self.emit(X86Op.JMP, label=end_label, line=statement.line)
                self.builder.bind(else_label)
                for inner in statement.else_body:
                    self._statement(inner)
                self.builder.bind(end_label)
            else:
                self.builder.bind(else_label)
        elif isinstance(statement, While):
            head = self.builder.new_label("loop")
            exit_label = self.builder.new_label("endloop")
            self.builder.bind(head)
            self._condition(statement.condition, exit_label,
                            statement.line)
            for inner in statement.body:
                self._statement(inner)
            self.emit(X86Op.JMP, label=head, line=statement.line)
            self.builder.bind(exit_label)
        else:
            raise ReproError(f"toycc: unknown statement {statement}")

    def _condition(self, condition, false_label: str, line: int) -> None:
        if not isinstance(condition, Binary) or \
                condition.op not in _FALSE_COND:
            raise ReproError("toycc: conditions must be comparisons")
        left = self._expr(condition.left, line)
        right, right_free = self._operand(condition.right, line)
        self.emit(X86Op.CMP, Reg(left), right, line=line)
        self.emit(X86Op.JCC, cond=_FALSE_COND[condition.op],
                  label=false_label, line=line)
        self.free(left)
        if right_free is not None:
            self.free(right_free)

    # -- expressions --------------------------------------------------------------------

    def _operand(self, expression, line: int):
        if isinstance(expression, Num):
            return Imm(expression.value & 0xFFFFFFFF), None
        if isinstance(expression, Var):
            return Reg(self.homes[expression.name]), None
        reg = self._expr(expression, line)
        return Reg(reg), reg

    def _expr(self, expression, line: int) -> int:
        if isinstance(expression, Num):
            reg = self.alloc()
            self.emit(X86Op.MOV, Reg(reg),
                      Imm(expression.value & 0xFFFFFFFF), line=line)
            return reg
        if isinstance(expression, Var):
            reg = self.alloc()
            self.emit(X86Op.MOV, Reg(reg),
                      Reg(self.homes[expression.name]), line=line)
            return reg
        if isinstance(expression, Index):
            base = self.homes[expression.base]
            if isinstance(expression.index, Num):
                reg = self.alloc()
                self.emit(X86Op.MOV, Reg(reg),
                          Mem(base=base, disp=4 * expression.index.value),
                          line=line)
                return reg
            index = self._expr(expression.index, line)
            self.emit(X86Op.MOV, Reg(index),
                      Mem(base=base, index=index, scale=4), line=line)
            return index
        if isinstance(expression, ByteIndex):
            base = self.homes[expression.base]
            if isinstance(expression.index, Num):
                reg = self.alloc()
                self.emit(X86Op.MOVZX, Reg(reg),
                          Mem(base=base, disp=expression.index.value,
                              size=1), line=line)
                return reg
            index = self._expr(expression.index, line)
            self.emit(X86Op.MOVZX, Reg(index),
                      Mem(base=base, index=index, size=1), line=line)
            return index
        if isinstance(expression, Unary):
            reg = self._expr(expression.operand, line)
            self.emit(X86Op.NEG if expression.op == "-" else X86Op.NOT,
                      Reg(reg), line=line)
            return reg
        if isinstance(expression, Binary):
            return self._binary(expression, line)
        raise ReproError(f"toycc: unknown expression {expression}")

    def _binary(self, expression: Binary, line: int) -> int:
        op = expression.op
        if op == "*":
            return self._multiply(expression, line)
        left = self._expr(expression.left, line)
        if op in ("<<", ">>"):
            amount = expression.right
            if not isinstance(amount, Num):
                raise ReproError("toycc: shift amounts must be constants")
            host = X86Op.SHL if op == "<<" else X86Op.SAR
            self.emit(host, Reg(left), Imm(amount.value), line=line)
            return left
        right, right_free = self._operand(expression.right, line)
        self.emit(_BINOPS[op], Reg(left), right, line=line)
        if right_free is not None:
            self.free(right_free)
        return left

    def _multiply(self, expression: Binary, line: int) -> int:
        right = expression.right
        if isinstance(right, Num) and right.value > 0 and \
                (right.value & (right.value - 1)) == 0:
            left = self._expr(expression.left, line)
            shift = right.value.bit_length() - 1
            self.emit(X86Op.SHL, Reg(left), Imm(shift), line=line)
            return left
        left = self._expr(expression.left, line)
        right_operand, right_free = self._operand(right, line)
        self.emit(X86Op.IMUL, Reg(left), right_operand, line=line)
        if right_free is not None:
            self.free(right_free)
        return left


def compile_x86(function: Function) -> X86Output:
    return X86Codegen(function).generate()
