"""Lexer and recursive-descent parser for the toy training language."""

from __future__ import annotations

import re
from typing import List, Tuple

from ...common.errors import ReproError
from .ast_nodes import (Assign, Binary, ByteIndex, ByteStore, Expr,
                        Function, If, Index, Num, Return, Stmt, Store,
                        Unary, Var, While)


class ParseError(ReproError):
    pass


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<|>>|<=|>=|==|!=|[-+*&|^~<>=(){}\[\];,])
""", re.VERBOSE)

KEYWORDS = {"func", "var", "if", "else", "while", "return"}


def tokenize(source: str) -> List[Tuple[str, str, int]]:
    """Returns (kind, text, line) triples."""
    tokens = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if not match:
            raise ParseError(f"bad character {source[position]!r} "
                             f"at line {line}")
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
        elif kind == "name" and text in KEYWORDS:
            tokens.append(("kw", text, line))
        else:
            tokens.append((kind, text, line))
        position = match.end()
    tokens.append(("eof", "", line))
    return tokens


class Parser:
    """Parses a source file into a list of functions."""

    _PRECEDENCE = {"|": 1, "^": 2, "&": 3,
                   "==": 4, "!=": 4, "<": 5, ">": 5, "<=": 5, ">=": 5,
                   "<<": 6, ">>": 6, "+": 7, "-": 7, "*": 8}

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self):
        return self.tokens[self.position]

    def _next(self):
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, text: str):
        kind, value, line = self._next()
        if value != text:
            raise ParseError(f"expected {text!r}, got {value!r} "
                             f"at line {line}")
        return line

    def _accept(self, text: str) -> bool:
        if self._peek()[1] == text:
            self._next()
            return True
        return False

    # -- grammar --------------------------------------------------------------

    def parse(self) -> List[Function]:
        functions = []
        while self._peek()[0] != "eof":
            functions.append(self._function())
        return functions

    def _function(self) -> Function:
        self._expect("func")
        _, name, _ = self._next()
        self._expect("(")
        params = []
        if not self._accept(")"):
            while True:
                params.append(self._next()[1])
                if self._accept(")"):
                    break
                self._expect(",")
        self._expect("{")
        function = Function(name=name, params=params)
        while self._peek()[1] == "var":
            self._next()
            while True:
                function.locals.append(self._next()[1])
                if self._accept(";"):
                    break
                self._expect(",")
        function.body = self._block_body()
        return function

    def _block_body(self) -> List[Stmt]:
        statements = []
        while not self._accept("}"):
            statements.append(self._statement())
        return statements

    def _statement(self) -> Stmt:
        kind, text, line = self._peek()
        if text == "return":
            self._next()
            value = self._expression()
            self._expect(";")
            return Return(line=line, value=value)
        if text == "if":
            self._next()
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            self._expect("{")
            then_body = self._block_body()
            else_body = []
            if self._accept("else"):
                self._expect("{")
                else_body = self._block_body()
            return If(line=line, condition=condition, then_body=then_body,
                      else_body=else_body)
        if text == "while":
            self._next()
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            self._expect("{")
            body = self._block_body()
            return While(line=line, condition=condition, body=body)
        # Assignment or array store.
        _, name, line = self._next()
        if self._accept("["):
            byte_wide = self._accept("[")
            index = self._expression()
            self._expect("]")
            if byte_wide:
                self._expect("]")
            self._expect("=")
            value = self._expression()
            self._expect(";")
            if byte_wide:
                return ByteStore(line=line, base=name, index=index,
                                 value=value)
            return Store(line=line, base=name, index=index, value=value)
        self._expect("=")
        value = self._expression()
        self._expect(";")
        return Assign(line=line, target=name, value=value)

    def _expression(self, min_precedence: int = 1) -> Expr:
        left = self._unary()
        while True:
            _, text, line = self._peek()
            precedence = self._PRECEDENCE.get(text, 0)
            if precedence < min_precedence:
                return left
            self._next()
            right = self._expression(precedence + 1)
            left = Binary(line=line, op=text, left=left, right=right)

    def _unary(self) -> Expr:
        kind, text, line = self._peek()
        if text == "-":
            self._next()
            return Unary(line=line, op="-", operand=self._unary())
        if text == "~":
            self._next()
            return Unary(line=line, op="~", operand=self._unary())
        if text == "(":
            self._next()
            inner = self._expression()
            self._expect(")")
            return inner
        if kind == "num":
            self._next()
            return Num(line=line, value=int(text, 0))
        if kind == "name":
            self._next()
            if self._accept("["):
                byte_wide = self._accept("[")
                index = self._expression()
                self._expect("]")
                if byte_wide:
                    self._expect("]")
                    return ByteIndex(line=line, base=text, index=index)
                return Index(line=line, base=text, index=index)
            return Var(line=line, name=text)
        raise ParseError(f"unexpected token {text!r} at line {line}")


def parse(source: str) -> List[Function]:
    return Parser(source).parse()
