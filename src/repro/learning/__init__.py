"""The rule-learning pipeline: toycc, extraction, verification, rules."""

from .corpus import TRAINING_SOURCE
from .extract import CandidateRule, extract_all, extract_function
from .learn import LearnResult, learn
from .rules import LearnedRulebook, Rule, build_rulebook, insn_shape, \
    merge_rules, parameterize
from .verify import Verdict, verify

__all__ = [
    "CandidateRule", "LearnResult", "LearnedRulebook", "Rule",
    "TRAINING_SOURCE", "Verdict", "build_rulebook", "extract_all",
    "extract_function", "insn_shape", "learn", "merge_rules",
    "parameterize", "verify",
]
