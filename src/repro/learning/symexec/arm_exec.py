"""Symbolic executor for straight-line ARM fragments (toycc output)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...common.errors import RuleVerificationError
from ...guest.isa import (ArmInsn, COMPARE_OPS, Cond, DATA_PROCESSING_OPS,
                          Op, Operand2, ShiftKind)
from .expr import App, Sym, const

#: canonical comparison names keyed by the *false-branch* condition the
#: toycc back ends emit (both sides branch when the condition fails).
_FALSE_COND_NAME = {
    Cond.NE: "eq", Cond.EQ: "ne", Cond.GE: "lt", Cond.LE: "gt",
    Cond.GT: "le", Cond.LT: "ge", Cond.CS: "ltu", Cond.CC: "geu",
    Cond.HI: "leu", Cond.LS: "gtu",
}


@dataclass
class SymState:
    """Final symbolic state of a fragment."""

    regs: Dict[str, object] = field(default_factory=dict)
    stores: List[Tuple[object, int, object]] = field(default_factory=list)
    #: (canonical comparison, lhs, rhs) when the fragment ends in a
    #: compare + conditional branch (an if/while condition line)
    branch: Optional[Tuple[str, object, object]] = None
    #: True when the fragment ends with an unconditional jump (return)
    jumps: bool = False


class ArmSymExec:
    """Executes a fragment over symbolic register contents."""

    def __init__(self, initial: Dict[str, object]):
        self.regs: Dict[str, object] = dict(initial)
        self.stores: List[Tuple[object, int, object]] = []
        self.branch = None
        self.jumps = False
        self._compare: Optional[Tuple[object, object]] = None
        self._load_counter = 0

    def _reg(self, number: int):
        name = f"r{number}"
        if name not in self.regs:
            self.regs[name] = Sym(f"arm_{name}")
        return self.regs[name]

    def _set_reg(self, number: int, value) -> None:
        self.regs[f"r{number}"] = value

    def _operand2(self, op2: Operand2):
        if op2.is_imm:
            return const(op2.imm)
        value = self._reg(op2.rm)
        if op2.rs is not None:
            raise RuleVerificationError("register-shifted operands are "
                                        "not rule-learnable fragments")
        if op2.shift == ShiftKind.LSL and op2.shift_imm == 0:
            return value
        op_name = {ShiftKind.LSL: "shl", ShiftKind.LSR: "shr",
                   ShiftKind.ASR: "sar", ShiftKind.ROR: "ror"}[op2.shift]
        return App(op_name, (value, const(op2.shift_imm)))

    def execute(self, insns: List[ArmInsn]) -> SymState:
        for insn in insns:
            self._insn(insn)
        return SymState(regs=dict(self.regs), stores=list(self.stores),
                        branch=self.branch, jumps=self.jumps)

    def _insn(self, insn: ArmInsn) -> None:  # noqa: C901
        op = insn.op
        if insn.cond != Cond.AL and op is not Op.B:
            raise RuleVerificationError(
                "conditional bodies are not extracted as fragments")
        if op in COMPARE_OPS:
            if op is not Op.CMP:
                raise RuleVerificationError(f"unsupported compare {op}")
            self._compare = (self._reg(insn.rn),
                             self._operand2(insn.op2))
            return
        if op in DATA_PROCESSING_OPS:
            operand2 = self._operand2(insn.op2)
            if op is Op.MOV:
                result = operand2
            elif op is Op.MVN:
                result = App("not", (operand2,))
            else:
                operand1 = self._reg(insn.rn)
                result = _dp_expr(op, operand1, operand2)
            self._set_reg(insn.rd, result)
            return
        if op is Op.MUL:
            self._set_reg(insn.rd, App("mulv", (self._reg(insn.rm),
                                                self._reg(insn.rs))))
            return
        if op in (Op.LDR, Op.LDRB):
            address = self._address(insn)
            self._load_counter += 1
            size = 4 if op is Op.LDR else 1
            self._set_reg(insn.rd, App("load", (address, const(size))))
            return
        if op in (Op.STR, Op.STRB):
            address = self._address(insn)
            value = self._reg(insn.rd)
            if op is Op.STRB:
                value = App("and", (value, const(0xFF)))
            self.stores.append((address, 4 if op is Op.STR else 1, value))
            return
        if op is Op.B:
            if insn.cond == Cond.AL:
                self.jumps = True
                return
            if self._compare is None:
                raise RuleVerificationError("conditional branch without "
                                            "a preceding compare")
            name = _FALSE_COND_NAME.get(insn.cond)
            if name is None:
                raise RuleVerificationError(f"condition {insn.cond}")
            lhs, rhs = self._compare
            self.branch = (name, lhs, rhs)
            return
        if op is Op.BX:
            self.jumps = True
            return
        raise RuleVerificationError(f"unsupported instruction {insn}")

    def _address(self, insn: ArmInsn):
        base = self._reg(insn.rn)
        if insn.mem_offset_reg is not None:
            offset = self._reg(insn.mem_offset_reg)
            if insn.mem_shift_imm:
                offset = App("shl", (offset, const(insn.mem_shift_imm)))
            return App("add", (base, offset))
        if insn.mem_offset_imm:
            return App("add", (base, const(insn.mem_offset_imm)))
        return base


def _dp_expr(op: Op, a, b):
    if op is Op.ADD:
        return App("add", (a, b))
    if op is Op.SUB:
        return App("add", (a, App("mulv", (const(0xFFFFFFFF), b))))
    if op is Op.RSB:
        return App("add", (b, App("mulv", (const(0xFFFFFFFF), a))))
    if op is Op.AND:
        return App("and", (a, b))
    if op is Op.ORR:
        return App("or", (a, b))
    if op is Op.EOR:
        return App("xor", (a, b))
    if op is Op.BIC:
        return App("and", (a, App("not", (b,))))
    raise RuleVerificationError(f"unsupported data-processing op {op}")
