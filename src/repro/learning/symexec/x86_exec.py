"""Symbolic executor for straight-line x86 fragments (toycc output)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...common.errors import RuleVerificationError
from ...host.isa import (Imm, Mem, Reg, REG_NAMES, X86Cond, X86Insn, X86Op)
from .arm_exec import SymState
from .expr import App, Sym, const

#: canonical comparison names keyed by the false-branch host condition.
_FALSE_COND_NAME = {
    X86Cond.NE: "eq", X86Cond.E: "ne", X86Cond.GE: "lt", X86Cond.LE: "gt",
    X86Cond.G: "le", X86Cond.L: "ge", X86Cond.AE: "ltu", X86Cond.B: "geu",
    X86Cond.A: "leu", X86Cond.BE: "gtu",
}

_BIN_EXPR = {X86Op.ADD: "add", X86Op.AND: "and", X86Op.OR: "or",
             X86Op.XOR: "xor", X86Op.IMUL: "mulv"}


class X86SymExec:
    def __init__(self, initial: Dict[str, object]):
        self.regs: Dict[str, object] = dict(initial)
        self.stores: List[Tuple[object, int, object]] = []
        self.branch: Optional[Tuple[str, object, object]] = None
        self.jumps = False
        self._compare: Optional[Tuple[object, object]] = None

    def _reg(self, number: int):
        name = REG_NAMES[number]
        if name not in self.regs:
            self.regs[name] = Sym(f"x86_{name}")
        return self.regs[name]

    def _set_reg(self, number: int, value) -> None:
        self.regs[REG_NAMES[number]] = value

    def _value(self, operand):
        if isinstance(operand, Imm):
            return const(operand.value)
        if isinstance(operand, Reg):
            return self._reg(operand.number)
        if isinstance(operand, Mem):
            return App("load", (self._address(operand),
                                const(operand.size)))
        raise RuleVerificationError(f"bad operand {operand}")

    def _address(self, mem: Mem):
        parts = []
        if mem.base is not None:
            parts.append(self._reg(mem.base))
        if mem.index is not None:
            index = self._reg(mem.index)
            if mem.scale != 1:
                index = App("mulv", (const(mem.scale), index))
            parts.append(index)
        if mem.disp:
            parts.append(const(mem.disp))
        if not parts:
            return const(0)
        if len(parts) == 1:
            return parts[0]
        return App("add", tuple(parts))

    def execute(self, insns: List[X86Insn]) -> SymState:
        for insn in insns:
            self._insn(insn)
        return SymState(regs=dict(self.regs), stores=list(self.stores),
                        branch=self.branch, jumps=self.jumps)

    def _insn(self, insn: X86Insn) -> None:  # noqa: C901
        op = insn.op
        if op is X86Op.MOV:
            value = self._value(insn.src)
            if isinstance(insn.dst, Mem):
                if insn.dst.size == 1:
                    value = App("and", (value, const(0xFF)))
                self.stores.append((self._address(insn.dst), insn.dst.size,
                                    value))
            else:
                self._set_reg(insn.dst.number, value)
            return
        if op is X86Op.MOVZX:
            # toycc only uses movzx for byte loads from memory.
            value = self._value(insn.src)
            self._set_reg(insn.dst.number, value)
            return
        if op in _BIN_EXPR:
            value = App(_BIN_EXPR[op],
                        (self._value(insn.dst), self._value(insn.src)))
            self._set_reg(insn.dst.number, value)
            return
        if op is X86Op.SUB:
            value = App("add", (self._value(insn.dst),
                                App("mulv", (const(0xFFFFFFFF),
                                             self._value(insn.src)))))
            self._set_reg(insn.dst.number, value)
            return
        if op in (X86Op.SHL, X86Op.SHR, X86Op.SAR):
            name = {X86Op.SHL: "shl", X86Op.SHR: "shr",
                    X86Op.SAR: "sar"}[op]
            value = App(name, (self._value(insn.dst),
                               self._value(insn.src)))
            self._set_reg(insn.dst.number, value)
            return
        if op is X86Op.NEG:
            value = App("mulv", (const(0xFFFFFFFF), self._value(insn.dst)))
            self._set_reg(insn.dst.number, value)
            return
        if op is X86Op.NOT:
            self._set_reg(insn.dst.number,
                          App("not", (self._value(insn.dst),)))
            return
        if op is X86Op.CMP:
            self._compare = (self._value(insn.dst), self._value(insn.src))
            return
        if op is X86Op.JCC:
            if self._compare is None:
                raise RuleVerificationError("jcc without compare")
            name = _FALSE_COND_NAME.get(insn.cond)
            if name is None:
                raise RuleVerificationError(f"condition {insn.cond}")
            lhs, rhs = self._compare
            self.branch = (name, lhs, rhs)
            return
        if op in (X86Op.JMP, X86Op.EXIT_TB):
            self.jumps = True
            return
        raise RuleVerificationError(f"unsupported host instruction {insn}")
