"""Symbolic expression engine for translation-rule verification.

Expressions are 32-bit values over symbolic variables.  Two layers of
equivalence checking:

1. **Normalization** (:func:`normalize`): constant folding, a linear
   normal form over + / - / << / *constant (so ``x << 2`` and ``x * 4``
   canonicalize identically), and flattening/sorting of commutative
   bitwise operators.  Structurally equal normal forms are *proved*
   equivalent.
2. **Randomized differential evaluation** (:func:`probably_equal`):
   evaluation over random 32-bit vectors.  This is the fallback verdict
   for forms the normalizer cannot align; with 64 vectors over our
   operator set a false accept is vanishingly unlikely.  (The paper uses
   an offline symbolic-execution/SMT tool; DESIGN.md records this
   substitution.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Sym:
    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Const:
    value: int

    def __repr__(self):
        return f"{self.value:#x}"


@dataclass(frozen=True)
class App:
    op: str
    args: Tuple

    def __repr__(self):
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.op}({inner})"


def const(value: int) -> Const:
    return Const(value & MASK)


_COMMUTATIVE = {"and", "or", "xor", "mulv"}


def _signed(value: int) -> int:
    value &= MASK
    return value - 0x100000000 if value & 0x80000000 else value


def evaluate(expr, env: Dict[str, int]) -> int:
    """Concrete evaluation of an expression under *env*."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return env[expr.name] & MASK
    args = [evaluate(arg, env) for arg in expr.args]
    op = expr.op
    if op == "add":
        return sum(args) & MASK
    if op == "mulv":
        result = 1
        for arg in args:
            result = (result * arg) & MASK
        return result
    if op == "and":
        result = MASK
        for arg in args:
            result &= arg
        return result
    if op == "or":
        result = 0
        for arg in args:
            result |= arg
        return result
    if op == "xor":
        result = 0
        for arg in args:
            result ^= arg
        return result
    if op == "not":
        return ~args[0] & MASK
    if op == "shl":
        return (args[0] << (args[1] & 31)) & MASK
    if op == "shr":
        return (args[0] & MASK) >> (args[1] & 31)
    if op == "sar":
        return (_signed(args[0]) >> (args[1] & 31)) & MASK
    if op == "ror":
        amount = args[1] & 31
        value = args[0] & MASK
        return ((value >> amount) | (value << (32 - amount))) & MASK
    if op == "load":
        # Uninterpreted memory read: hash the address deterministically.
        return (args[0] * 2654435761 + args[1]) & MASK
    raise ValueError(f"unknown op {op}")


# ---------------------------------------------------------------------------
# Normalization: linear combination form.
# ---------------------------------------------------------------------------


def _linear(expr):
    """Decompose into (constant, {term: coefficient}) modulo 2**32.

    Terms are normalized non-linear expressions.
    """
    if isinstance(expr, Const):
        return expr.value, {}
    if isinstance(expr, Sym):
        return 0, {expr: 1}
    op = expr.op
    if op == "add":
        total, terms = 0, {}
        for arg in expr.args:
            arg_const, arg_terms = _linear(arg)
            total = (total + arg_const) & MASK
            for term, coefficient in arg_terms.items():
                terms[term] = (terms.get(term, 0) + coefficient) & MASK
        return total, {t: c for t, c in terms.items() if c}
    if op == "mulv":
        constant = 1
        symbolic = []
        for arg in expr.args:
            normalized = normalize(arg)
            if isinstance(normalized, Const):
                constant = (constant * normalized.value) & MASK
            else:
                symbolic.append(normalized)
        if not symbolic:
            return constant, {}
        if len(symbolic) == 1:
            inner_const, inner_terms = _linear(symbolic[0])
            return ((inner_const * constant) & MASK,
                    {t: (c * constant) & MASK
                     for t, c in inner_terms.items() if (c * constant) & MASK})
        term = App("mulv", tuple(sorted(symbolic, key=repr)))
        return 0, ({term: constant} if constant else {})
    if op == "shl":
        base, amount = expr.args
        amount_n = normalize(amount)
        if isinstance(amount_n, Const):
            coefficient = (1 << (amount_n.value & 31)) & MASK
            inner_const, inner_terms = _linear(base)
            return ((inner_const * coefficient) & MASK,
                    {t: (c * coefficient) & MASK
                     for t, c in inner_terms.items()
                     if (c * coefficient) & MASK})
    # Anything else is an opaque term.
    term = normalize(expr, as_term=True)
    if isinstance(term, Const):
        return term.value, {}
    return 0, {term: 1}


def normalize(expr, as_term: bool = False):
    """Canonical form; equal normal forms are provably equivalent."""
    if isinstance(expr, (Sym, Const)):
        return expr
    op = expr.op
    args = tuple(normalize(arg) for arg in expr.args)

    # Constant folding for fully-constant applications.
    if all(isinstance(arg, Const) for arg in args):
        return const(evaluate(App(op, args), {}))

    if op in ("add", "mulv", "shl") and not as_term:
        constant, terms = _linear(App(op, args))
        items = sorted(terms.items(), key=lambda item: repr(item[0]))
        parts = []
        if constant:
            parts.append(const(constant))
        for term, coefficient in items:
            if coefficient == 1:
                parts.append(term)
            else:
                parts.append(App("mulv", (const(coefficient), term)))
        if not parts:
            return const(0)
        if len(parts) == 1:
            return parts[0]
        return App("add", tuple(sorted(parts, key=repr)))

    if op in _COMMUTATIVE:
        flat = []
        for arg in args:
            if isinstance(arg, App) and arg.op == op:
                flat.extend(arg.args)
            else:
                flat.append(arg)
        constants = [arg for arg in flat if isinstance(arg, Const)]
        symbolic = sorted([arg for arg in flat
                           if not isinstance(arg, Const)], key=repr)
        if constants:
            folded = evaluate(App(op, tuple(constants)), {})
            identity = {"and": MASK, "or": 0, "xor": 0, "mulv": 1}[op]
            if folded != identity:
                symbolic.append(const(folded))
            if op == "and" and folded == 0:
                return const(0)
            if op == "or" and folded == MASK:
                return const(MASK)
            if op == "mulv" and folded == 0:
                return const(0)
        if not symbolic:
            return const({"and": MASK, "or": 0, "xor": 0,
                          "mulv": 1}[op])
        if len(symbolic) == 1:
            return symbolic[0]
        # xor: cancel duplicate pairs.
        if op == "xor":
            deduped = []
            for arg in symbolic:
                if deduped and deduped[-1] == arg:
                    deduped.pop()
                else:
                    deduped.append(arg)
            if not deduped:
                return const(0)
            if len(deduped) == 1:
                return deduped[0]
            symbolic = deduped
        return App(op, tuple(symbolic))

    if op == "not":
        inner = args[0]
        if isinstance(inner, App) and inner.op == "not":
            return inner.args[0]
        return App("not", args)

    return App(op, args)


# ---------------------------------------------------------------------------
# Equivalence.
# ---------------------------------------------------------------------------


def _symbols(expr, out):
    if isinstance(expr, Sym):
        out.add(expr.name)
    elif isinstance(expr, App):
        for arg in expr.args:
            _symbols(arg, out)


def proved_equal(a, b) -> bool:
    return repr(normalize(a)) == repr(normalize(b))


def probably_equal(a, b, trials: int = 64, seed: int = 0x5EED) -> bool:
    names = set()
    _symbols(a, names)
    _symbols(b, names)
    rng = random.Random(seed)
    corner = [0, 1, MASK, 0x80000000, 0x7FFFFFFF]
    for trial in range(trials):
        if trial < len(corner):
            env = {name: corner[trial] for name in names}
        else:
            env = {name: rng.getrandbits(32) for name in names}
        if evaluate(a, env) != evaluate(b, env):
            return False
    return True


def equivalent(a, b) -> Tuple[bool, bool]:
    """Returns (equivalent, proved)."""
    if proved_equal(a, b):
        return True, True
    if probably_equal(a, b):
        return True, False
    return False, False
