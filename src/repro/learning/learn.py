"""The end-to-end learning pipeline (paper Sec II-A).

``learn()`` compiles the training corpus with both toycc back ends,
extracts line-paired fragments, formally verifies each candidate with
the symbolic executors, parameterizes the survivors and assembles the
:class:`~repro.learning.rules.LearnedRulebook`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .corpus import TRAINING_SOURCE
from .extract import CandidateRule, extract_all
from .rules import LearnedRulebook, Rule, build_rulebook, merge_rules, \
    parameterize
from .toycc.parser import parse
from .verify import Verdict, verify


@dataclass
class LearnResult:
    rules: List[Rule] = field(default_factory=list)
    rulebook: LearnedRulebook = None
    candidates: int = 0
    verified: int = 0
    proved: int = 0
    rejected: List[str] = field(default_factory=list)
    #: the concrete candidates behind the rules, kept so the soundness
    #: checker (repro.analysis.rulecheck) can re-verify each rulebook
    #: entry symbolically and attribute verdicts back to rule origins.
    verified_candidates: List[CandidateRule] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.candidates} candidates -> {self.verified} verified "
                f"({self.proved} proved by normalization) -> "
                f"{len(self.rules)} parameterized rules")


def learn(source: str = TRAINING_SOURCE) -> LearnResult:
    functions = parse(source)
    candidates = extract_all(functions)
    result = LearnResult(candidates=len(candidates))
    verified_candidates: List[CandidateRule] = []
    raw_rules: List[Rule] = []
    for candidate in candidates:
        verdict: Verdict = verify(candidate)
        if not verdict.ok:
            result.rejected.append(
                f"{candidate.function}:{candidate.line}: {verdict.reason}")
            continue
        result.verified += 1
        if verdict.proved:
            result.proved += 1
        verified_candidates.append(candidate)
        raw_rules.append(parameterize(candidate, verdict.proved))
    result.rules = merge_rules(raw_rules)
    result.rulebook = build_rulebook(result.rules, verified_candidates)
    result.verified_candidates = verified_candidates
    return result
