"""Translation rules: parameterization and the learned rulebook.

Paper learning phase 2 (parameterization, following [2] "More with
Less"): verified fragments are abstracted so one rule covers a family of
concrete instruction sequences —

- **register parameterization**: home registers are replaced by
  placeholders assigned in first-use order, with the guest<->host
  correspondence taken from the variable-location (debug) tables;
- **immediate parameterization**: literal constants that appear on both
  sides are replaced by immediate placeholders;
- **opcode parameterization**: ALU rules that differ only in the
  (guest op, host op) pair are merged into one rule with an opcode
  class placeholder (add/add, sub/sub, and/and, orr/or, eor/xor).

The resulting :class:`LearnedRulebook` exposes the coverage predicate
the rule engine consumes: a guest instruction is covered iff its
abstract *shape* appears in some verified rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..guest.isa import ArmInsn, Op, ShiftKind
from .extract import CandidateRule

#: (guest mnemonic, host mnemonic) pairs merged by opcode
#: parameterization.
_ALU_CLASS = {("add", "add"), ("sub", "sub"), ("and", "and"),
              ("orr", "or"), ("eor", "xor")}


@dataclass
class Rule:
    """One parameterized, verified translation rule."""

    guest_pattern: Tuple[str, ...]
    host_pattern: Tuple[str, ...]
    proved: bool
    #: concrete origins merged into this rule: (function, line) pairs
    origins: List[Tuple[str, int]] = field(default_factory=list)
    opcode_class: bool = False

    @property
    def guest_length(self) -> int:
        return len(self.guest_pattern)

    def __str__(self) -> str:
        guest = "; ".join(self.guest_pattern)
        host = "; ".join(self.host_pattern)
        return f"{guest}  =>  {host}"


_REG_RE = re.compile(r"\b(r\d+|sp|lr|pc|eax|ebx|ecx|edx|esi|edi|ebp|esp)\b")
_IMM_RE = re.compile(r"(?<![\w])(?:#|\$)?(-?\d+|0x[0-9a-fA-F]+)\b")


def _parameterize_text(lines: List[str], shared_imms: Set[int]):
    """Replace registers/immediates with placeholders, first-use order."""
    reg_map: Dict[str, str] = {}
    imm_map: Dict[int, str] = {}
    out = []
    for line in lines:
        def reg_sub(match):
            name = match.group(1)
            if name in ("pc", "esp"):
                return name
            if name not in reg_map:
                reg_map[name] = f"R{len(reg_map)}"
            return reg_map[name]

        line = _REG_RE.sub(reg_sub, line)

        def imm_sub(match):
            text = match.group(1)
            value = int(text, 0) & 0xFFFFFFFF
            if value not in shared_imms:
                return match.group(0)
            if value not in imm_map:
                imm_map[value] = f"IMM{len(imm_map)}"
            prefix = match.group(0)[:-len(text)]
            return prefix.replace(text, "") + imm_map[value]

        line = _IMM_RE.sub(imm_sub, line)
        out.append(line)
    return tuple(out)


def _immediates(text_lines: List[str]) -> Set[int]:
    values = set()
    for line in text_lines:
        for match in _IMM_RE.finditer(line):
            values.add(int(match.group(1), 0) & 0xFFFFFFFF)
    return values


def parameterize(candidate: CandidateRule, proved: bool) -> Rule:
    guest_text = [str(insn) for insn in candidate.guest]
    host_text = [str(insn) for insn in candidate.host]
    shared = _immediates(guest_text) & _immediates(host_text)
    return Rule(
        guest_pattern=_parameterize_text(guest_text, shared),
        host_pattern=_parameterize_text(host_text, shared),
        proved=proved,
        origins=[(candidate.function, candidate.line)],
    )


def _opcode_classify(rule: Rule) -> Tuple:
    """Key that is identical for rules differing only in an ALU op pair."""
    guest = []
    ops = []
    for line in rule.guest_pattern:
        mnemonic = line.split()[0]
        if any(mnemonic == pair[0] for pair in _ALU_CLASS):
            ops.append(mnemonic)
            guest.append(line.replace(mnemonic, "<ALUOP>", 1))
        else:
            guest.append(line)
    host = []
    for line in rule.host_pattern:
        mnemonic = line.split()[0]
        if any(mnemonic == pair[1] for pair in _ALU_CLASS):
            host.append(line.replace(mnemonic, "<ALUOP>", 1))
        else:
            host.append(line)
    return tuple(guest), tuple(host)


def merge_rules(rules: List[Rule]) -> List[Rule]:
    """Dedupe identical patterns, then merge opcode families."""
    by_pattern: Dict[Tuple, Rule] = {}
    for rule in rules:
        key = (rule.guest_pattern, rule.host_pattern)
        if key in by_pattern:
            by_pattern[key].origins.extend(rule.origins)
        else:
            by_pattern[key] = rule
    deduped = list(by_pattern.values())

    by_class: Dict[Tuple, List[Rule]] = {}
    for rule in deduped:
        by_class.setdefault(_opcode_classify(rule), []).append(rule)
    merged = []
    for class_key, members in by_class.items():
        if len(members) == 1:
            merged.append(members[0])
            continue
        guest, host = class_key
        merged.append(Rule(
            guest_pattern=guest, host_pattern=host,
            proved=all(member.proved for member in members),
            origins=[origin for member in members
                     for origin in member.origins],
            opcode_class=True))
    return merged


# ---------------------------------------------------------------------------
# Coverage: abstract instruction shapes.
# ---------------------------------------------------------------------------


def insn_shape(insn: ArmInsn) -> Tuple:
    """The abstraction level at which learned rules generalize.

    The condition field is parameterized away (like registers and
    immediates): the rule application framework supplies the conditional
    wrapper, so a rule learned for ``add`` covers ``addeq`` too.
    """
    op = insn.op
    op2 = insn.op2
    if op2 is None:
        operand = None
    elif op2.is_imm:
        operand = "imm"
    elif op2.rs is not None:
        operand = "regshift"
    elif op2.shift == ShiftKind.LSL and op2.shift_imm == 0:
        operand = "reg"
    else:
        operand = f"shift-{op2.shift.name.lower()}"
    mem = None
    if insn.is_memory() and op not in (Op.LDM, Op.STM):
        mem = "regoff" if insn.mem_offset_reg is not None else "immoff"
    return (op.name, operand, insn.set_flags, mem)


class LearnedRulebook:
    """Coverage predicate backed by genuinely learned rules."""

    name = "learned"

    def __init__(self, rules: List[Rule],
                 shapes: Set[Tuple]):
        self.rules = rules
        self._shapes = shapes

    def covers(self, insn: ArmInsn) -> bool:
        return insn_shape(insn) in self._shapes

    def __len__(self) -> int:
        return len(self.rules)


def build_rulebook(rules: List[Rule],
                   verified_candidates: List[CandidateRule]) -> \
        LearnedRulebook:
    shapes: Set[Tuple] = set()
    for candidate in verified_candidates:
        for insn in candidate.guest:
            shapes.add(insn_shape(insn))
            if insn_shape(insn)[0] in ("ADD", "SUB", "AND", "ORR", "EOR"):
                # Opcode parameterization: one member of the ALU class
                # generalizes to all of them (paper [2]).
                for op_name in ("ADD", "SUB", "AND", "ORR", "EOR"):
                    shapes.add((op_name,) + insn_shape(insn)[1:])
    return LearnedRulebook(rules, shapes)
