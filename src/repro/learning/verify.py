"""Formal semantic-equivalence verification of candidate rules.

Paper learning step 3: symbolically execute both fragments of a
candidate and check that they compute the same observable state:

- final values of every source variable's home register,
- scratch-register outputs (the two back ends use the same evaluation
  order, so scratch *k* corresponds across ISAs),
- memory stores (address, size, value — in order),
- the branch condition, when the fragment is an if/while condition.

Candidates the executors cannot model (or that fail the check) are
rejected — they never become rules, exactly as in the paper.

This check gates what enters the rulebook; `repro.analysis.rulecheck`
independently re-classifies every candidate afterwards (BDD
bit-blasting, `proved`/`tested-only`/`refuted`) as part of
``repro check``, and refuted rules are auto-quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..common.errors import RuleVerificationError
from ..host.isa import EAX, EDX, REG_NAMES
from .extract import CandidateRule
from .symexec.arm_exec import ArmSymExec
from .symexec.expr import Sym, equivalent
from .symexec.x86_exec import X86SymExec

#: scratch-register correspondence between the two back ends.
_SCRATCH_PAIRS = [("r0", REG_NAMES[EAX]), ("r1", REG_NAMES[EDX])]


@dataclass
class Verdict:
    ok: bool
    proved: bool              # True when every check closed by normalization
    reason: str = ""


def verify(candidate: CandidateRule) -> Verdict:
    guest_init = {}
    host_init = {}
    for var, guest_reg in candidate.guest_vars.items():
        symbol = Sym(var)
        guest_init[guest_reg] = symbol
        host_init[REG_NAMES[candidate.host_vars[var]]] = symbol
    for guest_scratch, host_scratch in _SCRATCH_PAIRS:
        symbol = Sym(f"scratch_{guest_scratch}")
        guest_init.setdefault(guest_scratch, symbol)
        host_init.setdefault(host_scratch, symbol)

    try:
        guest_state = ArmSymExec(guest_init).execute(candidate.guest)
        host_state = X86SymExec(host_init).execute(candidate.host)
    except RuleVerificationError as exc:
        return Verdict(False, False, f"unmodelled: {exc}")

    proved_all = True

    # Variable home registers.
    for var, guest_reg in candidate.guest_vars.items():
        host_reg = REG_NAMES[candidate.host_vars[var]]
        guest_value = guest_state.regs.get(guest_reg, Sym(var))
        host_value = host_state.regs.get(host_reg, Sym(var))
        ok, proved = equivalent(guest_value, host_value)
        if not ok:
            return Verdict(False, False, f"variable {var} differs")
        proved_all &= proved

    # Scratch registers are dead at statement boundaries; the only
    # observable one is the return-value location (r0 <-> eax) in
    # fragments that jump to the epilogue.
    if guest_state.jumps and host_state.jumps and \
            guest_state.branch is None:
        guest_value = guest_state.regs.get("r0")
        host_value = host_state.regs.get(REG_NAMES[EAX])
        if (guest_value is None) != (host_value is None):
            return Verdict(False, False, "return value on one side only")
        if guest_value is not None:
            ok, proved = equivalent(guest_value, host_value)
            if not ok:
                return Verdict(False, False, "return values differ")
            proved_all &= proved

    # Stores.
    if len(guest_state.stores) != len(host_state.stores):
        return Verdict(False, False, "store counts differ")
    for (guest_addr, guest_size, guest_value), \
            (host_addr, host_size, host_value) in \
            zip(guest_state.stores, host_state.stores):
        if guest_size != host_size:
            return Verdict(False, False, "store sizes differ")
        ok, proved = equivalent(guest_addr, host_addr)
        if not ok:
            return Verdict(False, False, "store addresses differ")
        proved_all &= proved
        ok, proved = equivalent(guest_value, host_value)
        if not ok:
            return Verdict(False, False, "store values differ")
        proved_all &= proved

    # Branches.
    if (guest_state.branch is None) != (host_state.branch is None):
        return Verdict(False, False, "branch structure differs")
    if guest_state.branch is not None:
        guest_cond, guest_lhs, guest_rhs = guest_state.branch
        host_cond, host_lhs, host_rhs = host_state.branch
        if guest_cond != host_cond:
            return Verdict(False, False,
                           f"conditions differ: {guest_cond} vs {host_cond}")
        for a, b in ((guest_lhs, host_lhs), (guest_rhs, host_rhs)):
            ok, proved = equivalent(a, b)
            if not ok:
                return Verdict(False, False, "branch operands differ")
            proved_all &= proved
    if guest_state.jumps != host_state.jumps:
        return Verdict(False, False, "jump structure differs")

    return Verdict(True, proved_all)
