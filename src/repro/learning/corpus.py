"""Training corpus for the rule-learning pipeline.

Small functions chosen to exercise the instruction patterns the SPEC
analogs execute: ALU expressions, shifts and masks, comparisons of every
flavour, loops, array loads/stores.  The paper iterates its framework
over many source files; the corpus plays that role here.
"""

TRAINING_SOURCE = """
func poly(a, b, c) {
    var x, y;
    x = a * 4 + b;
    y = x - c;
    return y ^ b;
}

func bits(a, b) {
    var x;
    x = (a & 255) | (b << 4);
    x = x ^ (a >> 3);
    return ~x;
}

func maxdiff(a, b) {
    var d;
    if (a > b) {
        d = a - b;
    } else {
        d = b - a;
    }
    return d;
}

func sumto(n) {
    var s, i;
    s = 0;
    i = 1;
    while (i <= n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}

func dot(p, q) {
    var i, s, t;
    s = 0;
    i = 0;
    while (i < 48) {
        t = p[i] * q[i];
        s = s + t;
        i = i + 1;
    }
    return s;
}

func fill(p, n, v) {
    var i;
    i = 0;
    while (i < n) {
        p[i] = v + i;
        i = i + 1;
    }
    return n;
}

func clamp(a, lo, hi) {
    var r;
    r = a;
    if (a < lo) {
        r = lo;
    }
    if (a > hi) {
        r = hi;
    }
    return r;
}

func strideload(p, i) {
    return p[i * 2 + 1];
}

func mixer(a, b) {
    var x;
    x = a - 58;
    x = x * 3;
    x = x + (b * 8);
    return x;
}

func cmpchain(a, b, c) {
    var r;
    r = 0;
    if (a == b) {
        r = 1;
    }
    if (b != c) {
        r = r + 2;
    }
    if (a >= c) {
        r = r + 4;
    }
    return r;
}

func negate(a) {
    return -a;
}

func masks(a) {
    return (a | 240) & ~(a << 8);
}

func shifty(a, b) {
    return (a << 3) + (b >> 2);
}

func store2(p, i, v) {
    p[i] = v;
    p[i + 1] = v * 2;
    return v;
}

func wsum(p, n) {
    var i, s;
    s = 0;
    i = n - 1;
    while (i >= 0) {
        s = s + p[i];
        i = i - 1;
    }
    return s;
}

func hashstep(h, c) {
    var x;
    x = h * 16;
    x = x + c;
    x = x ^ (h >> 5);
    return x & 4080;
}

func absval(a) {
    var r;
    r = a;
    if (a < 0) {
        r = 0 - a;
    }
    return r;
}

func scale(p, n, k) {
    var i;
    i = 0;
    while (i < n) {
        p[i] = p[i] * k;
        i = i + 1;
    }
    return i;
}

func fieldswap(p) {
    var a, b;
    a = p[0];
    b = p[1];
    p[0] = b;
    p[1] = a;
    return a + b;
}

func nodecost(p) {
    var c, f;
    c = p[1];
    f = p[2];
    p[2] = f + 1;
    return c + f;
}

func bytesum(p, n) {
    var i, s;
    s = 0;
    i = 0;
    while (i < n) {
        s = s + p[[i]];
        i = i + 1;
    }
    return s;
}

func bytefill(p, n, v) {
    var i;
    i = 0;
    while (i < n) {
        p[[i]] = v + i;
        i = i + 1;
    }
    return n;
}

func bytehdr(p) {
    var t;
    t = p[[0]];
    p[[1]] = t * 2;
    return t;
}

func addressing(p, i, s) {
    var x;
    x = s + (i << 2);
    x = x - (i >> 1);
    x = x + i * 8;
    return x;
}

func scaled(a, b) {
    var r;
    r = a + b * 4;
    if (r > (a << 1)) {
        r = r - (b << 3);
    }
    return r;
}
"""
