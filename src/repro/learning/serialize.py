"""Rulebook serialization: save/load learned rule sets as JSON.

The paper's framework accumulates rules over many training iterations;
persisting the rule set lets a deployment ship pre-learned rules (the
way [2]'s parameterized rule set is reused by this paper) without
re-running the pipeline.
"""

from __future__ import annotations

import json
from .rules import LearnedRulebook, Rule

FORMAT_VERSION = 1


def rulebook_to_dict(rulebook: LearnedRulebook) -> dict:
    return {
        "format": FORMAT_VERSION,
        "rules": [
            {
                "guest": list(rule.guest_pattern),
                "host": list(rule.host_pattern),
                "proved": rule.proved,
                "origins": [list(origin) for origin in rule.origins],
                "opcode_class": rule.opcode_class,
            }
            for rule in rulebook.rules
        ],
        "shapes": sorted(
            [list(shape) for shape in rulebook._shapes],
            key=repr),
    }


def rulebook_from_dict(data: dict) -> LearnedRulebook:
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported rulebook format {data.get('format')}")
    rules = [
        Rule(guest_pattern=tuple(entry["guest"]),
             host_pattern=tuple(entry["host"]),
             proved=entry["proved"],
             origins=[tuple(origin) for origin in entry["origins"]],
             opcode_class=entry["opcode_class"])
        for entry in data["rules"]
    ]
    shapes = {tuple(shape) for shape in data["shapes"]}
    return LearnedRulebook(rules, shapes)


def save_rulebook(rulebook: LearnedRulebook, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(rulebook_to_dict(rulebook), handle, indent=1)


def load_rulebook(path: str) -> LearnedRulebook:
    with open(path) as handle:
        return rulebook_from_dict(json.load(handle))
