"""Fragment extraction: pair guest/host instruction sequences by line.

This is the paper's learning step 2: using the debug line information
emitted by both compilers, collect the guest and host instructions that
implement the same source statement.  Each pair is a *candidate rule*
that still has to survive formal verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..guest.asm import assemble
from ..guest.decoder import decode
from ..guest.isa import ArmInsn
from ..host.isa import X86Insn
from .toycc.ast_nodes import Function
from .toycc.codegen_arm import compile_arm
from .toycc.codegen_x86 import compile_x86


@dataclass
class CandidateRule:
    """A line-paired (guest, host) fragment before verification."""

    function: str
    line: int
    guest: List[ArmInsn] = field(default_factory=list)
    host: List[X86Insn] = field(default_factory=list)
    #: variable name -> guest home register name ("r4", ...)
    guest_vars: Dict[str, str] = field(default_factory=dict)
    #: variable name -> host home register number
    host_vars: Dict[str, int] = field(default_factory=dict)

    def __repr__(self):
        return (f"<candidate {self.function}:{self.line} "
                f"{len(self.guest)}g/{len(self.host)}h>")


def _assemble_arm(asm: str) -> List[ArmInsn]:
    program = assemble(asm, base=0)
    insns = []
    for offset in range(0, program.size, 4):
        word = int.from_bytes(program.data[offset:offset + 4], "little")
        insns.append(decode(word, offset))
    return insns


def extract_function(function: Function) -> List[CandidateRule]:
    """Compile *function* with both back ends and pair fragments by line."""
    arm = compile_arm(function)
    x86 = compile_x86(function)
    arm_insns = _assemble_arm(arm.asm)
    if len(arm_insns) != len(arm.line_table):
        raise AssertionError("ARM line table out of sync with assembly")

    guest_by_line: Dict[int, List[ArmInsn]] = {}
    for insn, line in zip(arm_insns, arm.line_table):
        if line:
            guest_by_line.setdefault(line, []).append(insn)
    host_by_line: Dict[int, List[X86Insn]] = {}
    for insn, line in zip(x86.code, x86.line_table):
        if line:
            host_by_line.setdefault(line, []).append(insn)

    candidates = []
    for line in sorted(set(guest_by_line) & set(host_by_line)):
        candidates.append(CandidateRule(
            function=function.name, line=line,
            guest=guest_by_line[line], host=host_by_line[line],
            guest_vars=dict(arm.var_homes), host_vars=dict(x86.var_homes)))
    return candidates


def extract_all(functions: List[Function]) -> List[CandidateRule]:
    candidates = []
    for function in functions:
        candidates.extend(extract_function(function))
    return candidates
