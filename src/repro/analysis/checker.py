"""Orchestration behind ``repro check``: rules phase + TB phase.

The checker has two halves, both reporting into one :class:`Report`:

**Rules phase** (:func:`check_rulebook`): run the learning pipeline,
re-verify every rulebook entry with the bounded symbolic classifier
(:mod:`.rulecheck`), and report every entry that is not ``proved``.  A
``refuted`` entry is an ERROR and — when a quarantine is supplied — is
auto-quarantined through the PR 1 degradation ladder, exactly as a
crashing rule would be at runtime.

**TB phase** (:func:`check_workloads`): boot a machine per (workload,
engine) pair, run the workload so the code cache fills with the real TB
population, then run the dataflow verifier (:mod:`.dataflow`) over every
rules-tier block.  When profiling is enabled each finding carries the
profiler-attributed cost of its TB, so findings sort by how much of the
run they taint.

A clean tree is expected to produce an empty report: every deliberate
imprecision is either waived inside the dataflow checker or reported at
``info`` only when explicitly requested (``include_waivers``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .dataflow import check_tb
from .findings import Finding, Report, Severity
from .rulecheck import (CLASS_PROVED, CLASS_REFUTED, CLASS_TESTED,
                        classify_candidates, quarantine_refuted,
                        rule_findings)

#: Default TB-phase matrix: one CPU-bound workload at the two extreme
#: optimization levels (base = parsed sync only, full = everything on).
DEFAULT_WORKLOADS = ("cpu-prime",)
DEFAULT_ENGINES = ("rules-base", "rules-full")

#: The ``--all`` matrix: representative workloads covering ALU, memory,
#: VFP, block I/O and network paths, at every optimization level.
ALL_CHECK_WORKLOADS = ("cpu-prime", "fileio", "fppoly", "untar",
                       "memcached")
ALL_CHECK_ENGINES = ("rules-base", "rules-reduction", "rules-elimination",
                     "rules-full")


def check_rulebook(report: Report, budget: int = 250_000,
                   quarantine=None, extra_candidates=()) -> None:
    """Classify every learned rule; report non-proved entries.

    *extra_candidates* lets tests smuggle in deliberately-broken
    fixtures (see :func:`.rulecheck.refutable_fixture`); they are
    classified and quarantined like real candidates but do not join the
    rulebook counts.
    """
    from ..learning import learn

    result = learn()
    candidates = list(result.verified_candidates) + list(extra_candidates)
    by_candidate = classify_candidates(candidates, budget=budget)
    report.extend(rule_findings(result.rules, by_candidate))
    counts = {CLASS_PROVED: 0, CLASS_TESTED: 0, CLASS_REFUTED: 0}
    for verdict in by_candidate.values():
        counts[verdict.classification] += 1
    report.meta["rules"] = len(result.rules)
    report.meta["candidates_proved"] = counts[CLASS_PROVED]
    report.meta["candidates_tested_only"] = counts[CLASS_TESTED]
    report.meta["candidates_refuted"] = counts[CLASS_REFUTED]
    if quarantine is not None:
        keys = quarantine_refuted(candidates, by_candidate, quarantine)
        if keys:
            report.meta["rules_quarantined"] = ",".join(keys)
    for candidate in extra_candidates:
        from .rulecheck import candidate_id
        verdict = by_candidate[candidate_id(candidate)]
        if verdict.refuted:
            witness = {k: f"0x{v:x}" if isinstance(v, int) else v
                       for k, v in (verdict.witness or {}).items()}
            report.findings.append(Finding(
                severity=Severity.ERROR, code="rule-refuted",
                message=f"fixture rule refuted: {verdict.reason}",
                rule=candidate_id(candidate), witness=witness or None))


def check_machine_tbs(machine, report: Report,
                      include_waivers: bool = False) -> int:
    """Dataflow-check every rules-tier TB in *machine*'s code cache.

    Returns the number of TBs checked.  Injected TBs are checked like
    any other — catching them is the point of the exercise.
    """
    engine = machine.engine
    profiler = machine.profiler
    checked = 0
    for tb in engine.cache.all_tbs():
        if tb.meta.get("tier") != "rules":
            continue
        checked += 1
        findings = check_tb(tb, engine.config,
                            live_in_of=engine.successor_live_in,
                            rulebook=engine.rulebook,
                            include_waivers=include_waivers)
        if profiler is not None and findings:
            cost = sum(profiler.tags_for((tb.pc, tb.mmu_idx)).values())
            for finding in findings:
                finding.cost = cost
        report.extend(findings)
    return checked


def check_workloads(report: Report,
                    workloads: Iterable[str] = DEFAULT_WORKLOADS,
                    engines: Iterable[str] = DEFAULT_ENGINES,
                    include_waivers: bool = False,
                    inject=None, profile: bool = False) -> None:
    """Run each (workload, engine) pair and check the resulting TBs."""
    from ..harness.runner import make_machine
    from ..observability import Profiler
    from ..workloads import ALL_WORKLOADS

    total_tbs = 0
    pairs = 0
    for name in workloads:
        workload = ALL_WORKLOADS[name]
        for engine in engines:
            profiler = Profiler() if profile else None
            machine = make_machine(workload, engine, inject=inject,
                                   profiler=profiler)
            machine.run(workload.max_insns)
            total_tbs += check_machine_tbs(machine, report,
                                           include_waivers=include_waivers)
            pairs += 1
    report.meta["tbs_checked"] = total_tbs
    report.meta["runs"] = pairs


def run_check(workloads: Iterable[str] = DEFAULT_WORKLOADS,
              engines: Iterable[str] = DEFAULT_ENGINES,
              rules: bool = True, include_waivers: bool = False,
              budget: int = 250_000, inject=None,
              profile: bool = False, quarantine=None) -> Report:
    """The full ``repro check`` pipeline; returns the aggregate report."""
    report = Report()
    if rules:
        check_rulebook(report, budget=budget, quarantine=quarantine)
    check_workloads(report, workloads=workloads, engines=engines,
                    include_waivers=include_waivers, inject=inject,
                    profile=profile)
    return report
