"""Symbolic classification of learned translation rules.

Strengthens :mod:`repro.learning.verify` from sampled concrete testing
to *bounded symbolic verification*: every comparison the verifier makes
(variable home registers, return values, store addresses/sizes/values,
branch operands) is decided with the BDD bit-blaster, and each rulebook
entry is classified:

``proved``
    every comparison closed by normalization or by the BDD decision
    procedure — the rule is equivalent for all 2^32 assignments;
``tested-only``
    at least one comparison exceeded the bit-blasting budget (or used
    an unsupported construct) and only the 64-vector sampled check
    vouches for it;
``refuted``
    some comparison provably differs; the verdict carries a concrete
    witness assignment (validated by concrete evaluation on both
    fragments, so a refutation is never a model artifact).

Refuted rules are unsound by construction and are auto-quarantined
through the PR 1 degradation ladder (:func:`quarantine_refuted`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.errors import RuleVerificationError
from ..host.isa import EAX, REG_NAMES
from ..learning.extract import CandidateRule
from ..learning.symexec.arm_exec import ArmSymExec
from ..learning.symexec.expr import (MASK, Sym, evaluate, probably_equal,
                                     proved_equal)
from ..learning.symexec.x86_exec import X86SymExec
from ..learning.verify import _SCRATCH_PAIRS
from .bitblast import BudgetExceeded, Unsupported, check_equivalent
from .findings import Finding, Severity

CLASS_PROVED = "proved"
CLASS_TESTED = "tested-only"
CLASS_REFUTED = "refuted"

_CLASS_RANK = {CLASS_PROVED: 0, CLASS_TESTED: 1, CLASS_REFUTED: 2}


@dataclass
class RuleVerdict:
    """Classification of one candidate (or one merged rule)."""

    classification: str
    reason: str = ""
    witness: Optional[Dict[str, int]] = None
    #: per-comparison detail: (what, classification)
    checks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def refuted(self) -> bool:
        return self.classification == CLASS_REFUTED


def _sampled_counterexample(a, b, trials: int = 256,
                            seed: int = 0x5EED) -> Optional[Dict[str, int]]:
    """Replay the sampled check, returning the refuting env if any."""
    names: set = set()
    for expr in (a, b):
        _collect(expr, names)
    rng = random.Random(seed)
    corner = [0, 1, MASK, 0x80000000, 0x7FFFFFFF]
    for trial in range(trials):
        if trial < len(corner):
            env = {name: corner[trial] for name in names}
        else:
            env = {name: rng.getrandbits(32) for name in names}
        if evaluate(a, env) != evaluate(b, env):
            return env
    return None


def _collect(expr, out: set) -> None:
    if isinstance(expr, Sym):
        out.add(expr.name)
    elif hasattr(expr, "args"):
        for arg in expr.args:
            _collect(arg, out)


def classify_equiv(a, b, budget: int = 250_000
                   ) -> Tuple[str, Optional[Dict[str, int]]]:
    """Classify one expression pair: proved / tested-only / refuted.

    A ``refuted`` result always carries a witness that has been
    *validated by concrete evaluation* of both expressions, so the
    uninterpreted-load over-approximation in the bit-blaster can only
    downgrade a verdict to ``tested-only``, never fabricate a
    refutation.
    """
    if proved_equal(a, b):
        return CLASS_PROVED, None
    try:
        equal, witness = check_equivalent(a, b, budget=budget)
        if equal:
            return CLASS_PROVED, None
        if witness is not None and evaluate(a, witness) != \
                evaluate(b, witness):
            return CLASS_REFUTED, witness
        # The BDD difference hinged on unconstrained load values the
        # concrete hash model does not realize: inconclusive.
    except (BudgetExceeded, Unsupported):
        pass
    if probably_equal(a, b):
        return CLASS_TESTED, None
    witness = _sampled_counterexample(a, b)
    if witness is not None:
        return CLASS_REFUTED, witness
    return CLASS_TESTED, None


def classify_candidate(candidate: CandidateRule,
                       budget: int = 250_000) -> RuleVerdict:
    """Re-verify one candidate symbolically, mirroring the comparisons
    of :func:`repro.learning.verify.verify`."""
    guest_init: Dict[str, object] = {}
    host_init: Dict[str, object] = {}
    for var, guest_reg in candidate.guest_vars.items():
        symbol = Sym(var)
        guest_init[guest_reg] = symbol
        host_init[REG_NAMES[candidate.host_vars[var]]] = symbol
    for guest_scratch, host_scratch in _SCRATCH_PAIRS:
        symbol = Sym(f"scratch_{guest_scratch}")
        guest_init.setdefault(guest_scratch, symbol)
        host_init.setdefault(host_scratch, symbol)

    try:
        guest_state = ArmSymExec(guest_init).execute(candidate.guest)
        host_state = X86SymExec(host_init).execute(candidate.host)
    except RuleVerificationError as exc:
        return RuleVerdict(CLASS_TESTED, reason=f"unmodelled: {exc}")

    verdict = RuleVerdict(CLASS_PROVED)

    def compare(what: str, a, b) -> bool:
        classification, witness = classify_equiv(a, b, budget=budget)
        verdict.checks.append((what, classification))
        if _CLASS_RANK[classification] > \
                _CLASS_RANK[verdict.classification]:
            verdict.classification = classification
            verdict.reason = f"{what} " + (
                "differs" if classification == CLASS_REFUTED
                else "not decidable within budget")
            verdict.witness = witness
        return classification != CLASS_REFUTED

    def refute_structural(reason: str,
                          witness: Optional[Dict] = None) -> RuleVerdict:
        verdict.classification = CLASS_REFUTED
        verdict.reason = reason
        verdict.witness = witness
        return verdict

    for var, guest_reg in candidate.guest_vars.items():
        host_reg = REG_NAMES[candidate.host_vars[var]]
        guest_value = guest_state.regs.get(guest_reg, Sym(var))
        host_value = host_state.regs.get(host_reg, Sym(var))
        if not compare(f"variable {var}", guest_value, host_value):
            return verdict

    if guest_state.jumps and host_state.jumps and \
            guest_state.branch is None:
        guest_value = guest_state.regs.get("r0")
        host_value = host_state.regs.get(REG_NAMES[EAX])
        if (guest_value is None) != (host_value is None):
            return refute_structural("return value on one side only")
        if guest_value is not None:
            if not compare("return value", guest_value, host_value):
                return verdict

    if len(guest_state.stores) != len(host_state.stores):
        return refute_structural(
            "store counts differ",
            {"guest_stores": len(guest_state.stores),
             "host_stores": len(host_state.stores)})
    for index, ((guest_addr, guest_size, guest_value),
                (host_addr, host_size, host_value)) in enumerate(
            zip(guest_state.stores, host_state.stores)):
        if guest_size != host_size:
            return refute_structural(
                f"store {index} sizes differ",
                {"guest_size": guest_size, "host_size": host_size})
        if not compare(f"store {index} address", guest_addr, host_addr):
            return verdict
        if not compare(f"store {index} value", guest_value, host_value):
            return verdict

    if (guest_state.branch is None) != (host_state.branch is None):
        return refute_structural("branch structure differs")
    if guest_state.branch is not None:
        guest_cond, guest_lhs, guest_rhs = guest_state.branch
        host_cond, host_lhs, host_rhs = host_state.branch
        if guest_cond != host_cond:
            return refute_structural(
                f"conditions differ: {guest_cond} vs {host_cond}")
        if not compare("branch lhs", guest_lhs, host_lhs):
            return verdict
        if not compare("branch rhs", guest_rhs, host_rhs):
            return verdict
    if guest_state.jumps != host_state.jumps:
        return refute_structural("jump structure differs")

    return verdict


# ---------------------------------------------------------------------------
# Rulebook-level classification.
# ---------------------------------------------------------------------------


def candidate_id(candidate: CandidateRule) -> str:
    return f"{candidate.function}:{candidate.line}"


def classify_candidates(candidates: List[CandidateRule],
                        budget: int = 250_000
                        ) -> Dict[str, RuleVerdict]:
    """Classify every candidate; keyed by ``function:line``."""
    return {candidate_id(c): classify_candidate(c, budget=budget)
            for c in candidates}


def aggregate_rule_verdict(rule, by_candidate: Dict[str, RuleVerdict]
                           ) -> RuleVerdict:
    """Fold the verdicts of a merged rule's origins into one.

    A rule is only as strong as its weakest origin: any refuted origin
    refutes the rule; any tested-only origin demotes ``proved``.
    """
    verdict = RuleVerdict(CLASS_PROVED)
    for function, line in rule.origins:
        origin = by_candidate.get(f"{function}:{line}")
        if origin is None:
            continue
        if _CLASS_RANK[origin.classification] > \
                _CLASS_RANK[verdict.classification]:
            verdict = RuleVerdict(origin.classification,
                                  reason=origin.reason,
                                  witness=origin.witness,
                                  checks=list(origin.checks))
    return verdict


def rule_findings(rules, by_candidate: Dict[str, RuleVerdict]
                  ) -> List[Finding]:
    """Findings for every non-proved rulebook entry."""
    findings = []
    for index, rule in enumerate(rules):
        verdict = aggregate_rule_verdict(rule, by_candidate)
        rule_id = f"rule{index}({rule.guest_pattern[0]})"
        if verdict.refuted:
            witness = dict(verdict.witness or {})
            findings.append(Finding(
                severity=Severity.ERROR, code="rule-refuted",
                message=f"learned rule refuted: {verdict.reason}",
                rule=rule_id,
                witness={k: f"0x{v:x}" if isinstance(v, int) else v
                         for k, v in witness.items()} or None))
        elif verdict.classification == CLASS_TESTED:
            findings.append(Finding(
                severity=Severity.INFO, code="rule-tested-only",
                message=("rule not closed symbolically "
                         f"({verdict.reason or 'sampled check only'})"),
                rule=rule_id))
    return findings


def quarantine_refuted(candidates: List[CandidateRule],
                       by_candidate: Dict[str, RuleVerdict],
                       quarantine) -> List[str]:
    """Quarantine every rule key a refuted candidate covers.

    *quarantine* is the PR 1 :class:`repro.core.rulebook.QuarantineFilter`
    (or anything with its ``quarantine(key, reason)`` signature).
    Returns the quarantined keys.
    """
    keys: List[str] = []
    for candidate in candidates:
        verdict = by_candidate.get(candidate_id(candidate))
        if verdict is None or not verdict.refuted:
            continue
        for insn in candidate.guest:
            key = insn.op.name
            if key not in keys:
                quarantine.quarantine(
                    key, f"refuted by symbolic verifier: {verdict.reason}")
                keys.append(key)
    return keys


# ---------------------------------------------------------------------------
# A deliberately-refutable fixture (for tests and demonstrations).
# ---------------------------------------------------------------------------


def refutable_fixture() -> CandidateRule:
    """A candidate whose host code computes the wrong value.

    Guest: ``add r4, r4, r5`` — host: ``sub ebx, esi``.  The sampled
    verifier and the symbolic classifier must both reject it; the
    classifier additionally produces a concrete witness.
    """
    from ..guest.asm import assemble
    from ..guest.decoder import decode
    from ..host.builder import CodeBuilder
    from ..host.isa import EBX, ESI, Reg

    program = assemble("    add r4, r4, r5", base=0)
    word = int.from_bytes(program.data[0:4], "little")
    guest = [decode(word, 0)]
    builder = CodeBuilder()
    builder.sub(Reg(EBX), Reg(ESI))
    host = list(builder.insns)
    return CandidateRule(
        function="__fixture_wrong_add", line=1,
        guest=guest, host=host,
        guest_vars={"a": "r4", "b": "r5"},
        host_vars={"a": EBX, "b": ESI})
