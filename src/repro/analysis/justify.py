"""Audit-event and justification-record schema for translated TBs.

The translator no longer applies eliminations and reorders blind: every
optimization decision leaves a machine-checkable record in ``tb.meta``.
Two kinds of record exist:

**Audit events** (``tb.meta["audit"]``) describe *what was emitted* —
flag sync-saves and restores (with their host instruction ranges and
mode), flag-producer bodies, and opaque fallback splices.  They let the
dataflow verifier anchor its abstract interpretation to the coordination
protocol without pattern-matching heuristically.

**Justification records** (``tb.meta["justifications"]``) describe *what
was deliberately NOT emitted* (or was moved): an elided sync-save, an
inter-TB chain edge whose end-of-block save was skipped, a scheduling
reorder, a relocated interrupt check.  Each carries the claim that made
the optimization legal; the checker re-derives the claim independently
and flags any record it cannot reproduce.

Both lists hold plain dicts (JSON-friendly apart from instruction
references, which stay in-memory only).  Host instruction ranges are
half-open ``[start, end)`` indices into ``tb.code``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

AUDIT_KEY = "audit"
JUSTIFY_KEY = "justifications"
ORIGINAL_INSNS_KEY = "original_insns"

# Audit event kinds.
EV_SAVE = "save"            # flag sync-save range
EV_RESTORE = "restore"      # flag sync-restore range
EV_PRODUCE = "produce"      # guest flag-producer body range
EV_FALLBACK = "fallback"    # opaque TCG fallback splice range
EV_TERMINAL = "terminal"    # helper call that never returns to the TB

# Justification kinds.
J_ELIDE_SAVE = "elide-save"   # Sec III-C-2: consecutive-site save elision
J_INTER_TB = "inter-tb"       # Sec III-C-3: chain-edge save elision
J_REORDER = "reorder"         # Sec III-D-1: define-before-use scheduling
J_IRQ_RELOC = "irq-reloc"     # Sec III-D-2: relocated interrupt check


def save_event(start: int, end: int, mode: str, reason: str) -> Dict[str, Any]:
    """A sync-save occupying host insns ``[start, end)``.

    ``mode`` is ``"packed"`` (one-word lazy save) or ``"parsed"``
    (per-bit fields).  ``reason`` names the emission site
    (``"clobber"``, ``"cond-join"``, ``"tb-end"``, ...).
    """
    return {"kind": EV_SAVE, "start": start, "end": end,
            "mode": mode, "reason": reason}


def restore_event(start: int, end: int, mode: str) -> Dict[str, Any]:
    return {"kind": EV_RESTORE, "start": start, "end": end, "mode": mode}


def produce_event(start: int, end: int, flags: int, live_after: int,
                  carry: Optional[str], partial: bool,
                  guest_addr: Optional[int]) -> Dict[str, Any]:
    """A guest flag-producer whose body occupies ``[start, end)``.

    ``flags`` is the NZCV mask the guest insn writes, ``live_after`` its
    flag liveness, ``carry`` the host carry convention afterwards
    (``"direct"`` / ``"inverted"`` / None when only N/Z change).
    """
    return {"kind": EV_PRODUCE, "start": start, "end": end,
            "flags": flags, "live_after": live_after, "carry": carry,
            "partial": partial, "guest_addr": guest_addr}


def fallback_event(start: int, end: int, reads: int, writes: int,
                   ended: bool) -> Dict[str, Any]:
    """An opaque spliced-TCG range with declared flag effect.

    ``ended`` marks splices that terminate the TB (every exit is inside
    the range, so control never falls out of its end).
    """
    return {"kind": EV_FALLBACK, "start": start, "end": end,
            "reads": reads, "writes": writes, "ended": ended}


def terminal_event(index: int) -> Dict[str, Any]:
    """The ``call`` at host index *index* never returns to this TB
    (SVC / exception-return helpers unwind into the cpu_exec loop)."""
    return {"kind": EV_TERMINAL, "start": index, "end": index + 1}


def elide_save_justification(index: int, packed_ok: bool,
                             parsed_ok: bool) -> Dict[str, Any]:
    """Claim: at host index *index* a save was skipped because env
    already held a current copy of the flags."""
    return {"kind": J_ELIDE_SAVE, "index": index,
            "packed_ok": packed_ok, "parsed_ok": parsed_ok}


def inter_tb_justification(index: int, target_pc: int,
                           live_in: int) -> Dict[str, Any]:
    """Claim: the chain edge at host index *index* targets a successor
    whose live-in flag requirement is *live_in* (must be 0)."""
    return {"kind": J_INTER_TB, "index": index,
            "target_pc": target_pc, "live_in": live_in}


def reorder_justification(original: List[Any],
                          scheduled: List[Any]) -> Dict[str, Any]:
    """Claim: *scheduled* is a dependence-preserving permutation of
    *original* (lists of guest instruction addresses)."""
    return {"kind": J_REORDER, "original": list(original),
            "scheduled": list(scheduled)}


def irq_reloc_justification(insn_index: int,
                            resume_pc: int) -> Dict[str, Any]:
    """Claim: the interrupt check was relocated past the first
    *insn_index* guest instructions; a pending IRQ resumes at
    *resume_pc*."""
    return {"kind": J_IRQ_RELOC, "insn_index": insn_index,
            "resume_pc": resume_pc}


def audit_of(meta: Dict[str, Any]) -> List[Dict[str, Any]]:
    return list(meta.get(AUDIT_KEY) or ())


def justifications_of(meta: Dict[str, Any]) -> List[Dict[str, Any]]:
    return list(meta.get(JUSTIFY_KEY) or ())


def shift_indices(records: List[Dict[str, Any]], at: int,
                  delta: int) -> List[Dict[str, Any]]:
    """Shift every host-index field at or above *at* by *delta*.

    Used by the fault injector when it removes instructions: remaining
    records must keep pointing at the right host instructions, otherwise
    the checker would flag the bookkeeping mismatch instead of the
    injected soundness violation.
    """
    out = []
    for rec in records:
        rec = dict(rec)
        for key in ("start", "end", "index"):
            value = rec.get(key)
            if isinstance(value, int) and value >= at:
                rec[key] = value + delta
        out.append(rec)
    return out
