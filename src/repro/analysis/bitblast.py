"""Bounded symbolic equivalence via BDD bit-blasting.

Strengthens the learning pipeline's rule verification from sampled
concrete testing (``symexec.expr.probably_equal``) to a *decision
procedure* over the same 32-bit semantics: each compared expression pair
is compiled to 32 reduced ordered BDDs (one per result bit) over the
rules' symbolic variables, and the pair is equivalent iff the XOR of the
two vectors reduces to the constant-false BDD.  A non-false difference
yields a concrete *witness* assignment refuting the rule.

The procedure is bounded: a node budget caps BDD growth (symbolic
multiplication and deeply nested shifts can blow up), and exceeding it
raises :class:`BudgetExceeded` so the caller falls back to the sampled
verdict (classification ``tested-only`` instead of ``proved``).

Semantics mirror :func:`repro.learning.symexec.expr.evaluate` exactly,
including the 5-bit shift-amount mask and the deterministic hash model
of uninterpreted memory loads — the BDD layer decides equivalence *of
that model*, which is precisely what the randomized tester samples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..learning.symexec.expr import App, Const, MASK, Sym

WIDTH = 32
MAX_LOAD_CLASSES = 64


class BudgetExceeded(Exception):
    """BDD node budget exhausted; fall back to sampled testing."""


class Unsupported(Exception):
    """Expression uses an operator the bit-blaster cannot compile."""


class BDD:
    """A reduced ordered BDD forest with hash-consing and an ITE cache.

    Node 0 is FALSE, node 1 is TRUE.  Variables are dense integers;
    smaller variables sit nearer the root.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, budget: int = 250_000):
        self.budget = budget
        # id -> (var, lo, hi); the two terminals have var = +inf sentinel.
        self._table: List[Tuple[int, int, int]] = [
            (1 << 30, 0, 0), (1 << 30, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_memo: Dict[Tuple[int, int, int], int] = {}

    @property
    def node_count(self) -> int:
        return len(self._table)

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            if len(self._table) >= self.budget:
                raise BudgetExceeded(
                    f"BDD budget of {self.budget} nodes exceeded")
            node = len(self._table)
            self._table.append(key)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        return self._mk(index, self.FALSE, self.TRUE)

    def _top(self, *nodes: int) -> int:
        return min(self._table[n][0] for n in nodes)

    def _cofactor(self, node: int, var: int, branch: int) -> int:
        nvar, lo, hi = self._table[node]
        if nvar != var:
            return node
        return hi if branch else lo

    def ite(self, f: int, g: int, h: int) -> int:
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        hit = self._ite_memo.get(key)
        if hit is not None:
            return hit
        var = self._top(f, g, h)
        lo = self.ite(self._cofactor(f, var, 0), self._cofactor(g, var, 0),
                      self._cofactor(h, var, 0))
        hi = self.ite(self._cofactor(f, var, 1), self._cofactor(g, var, 1),
                      self._cofactor(h, var, 1))
        result = self._mk(var, lo, hi)
        self._ite_memo[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def satisfying(self, f: int) -> Dict[int, bool]:
        """One satisfying assignment of *f* (must not be FALSE)."""
        if f == self.FALSE:
            raise ValueError("unsatisfiable")
        out: Dict[int, bool] = {}
        node = f
        while node > 1:
            var, lo, hi = self._table[node]
            if lo != self.FALSE:
                out[var] = False
                node = lo
            else:
                out[var] = True
                node = hi
        return out


# A bitvector is a list of WIDTH BDD node ids, index 0 = LSB.
BitVec = List[int]


class BitBlaster:
    """Compiles symbolic expressions to BDD bitvectors."""

    def __init__(self, symbols: Iterable[str], budget: int = 250_000):
        self.bdd = BDD(budget=budget)
        # Interleave the bits of all symbols (LSBs near the root): the
        # standard variable order for ripple-carry equivalence proofs.
        self.symbols = sorted(set(symbols))
        self._sym_index = {name: i for i, name in enumerate(self.symbols)}
        self._cache: Dict[int, BitVec] = {}
        # Equivalence classes of memory loads: (addr_vec, size_vec) ->
        # fresh output vector.  BDD vectors are canonical, so semantic
        # address equality is plain node-id equality.  Load-class
        # variables share the global bit-interleaved order with the
        # input symbols (slot = nsyms + class index): comparing any two
        # 32-bit entities then walks their bits pairwise instead of
        # remembering one side wholesale, which keeps equality/XOR BDDs
        # linear instead of exponential.
        self._loads: List[Tuple[BitVec, BitVec, BitVec]] = []
        self._stride = len(self.symbols) + MAX_LOAD_CLASSES

    # -- symbol/bit mapping --------------------------------------------------

    def _bit_var(self, name: str, bit: int) -> int:
        return bit * self._stride + self._sym_index[name]

    def symbol_vec(self, name: str) -> BitVec:
        return [self.bdd.var(self._bit_var(name, bit))
                for bit in range(WIDTH)]

    def const_vec(self, value: int) -> BitVec:
        value &= MASK
        return [self.bdd.TRUE if (value >> bit) & 1 else self.bdd.FALSE
                for bit in range(WIDTH)]

    def witness_values(self, assignment: Dict[int, bool]) -> Dict[str, int]:
        """Map a BDD satisfying assignment back to 32-bit symbol values
        (unconstrained bits default to 0)."""
        values = {name: 0 for name in self.symbols}
        for var, bit_set in assignment.items():
            if not bit_set:
                continue
            bit, slot = divmod(var, self._stride)
            if slot >= len(self.symbols):
                continue  # fresh load-class variables are not inputs
            values[self.symbols[slot]] |= 1 << bit
        return values

    # -- bitvector operators -------------------------------------------------

    def _add(self, a: BitVec, b: BitVec) -> BitVec:
        bdd = self.bdd
        carry = bdd.FALSE
        out = []
        for i in range(WIDTH):
            s = bdd.xor_(bdd.xor_(a[i], b[i]), carry)
            carry = bdd.or_(bdd.and_(a[i], b[i]),
                            bdd.and_(carry, bdd.or_(a[i], b[i])))
            out.append(s)
        return out

    def _neg(self, a: BitVec) -> BitVec:
        return self._add([self.bdd.not_(bit) for bit in a],
                         self.const_vec(1))

    def _mul_const(self, a: BitVec, value: int) -> BitVec:
        value &= MASK
        acc = self.const_vec(0)
        for bit in range(WIDTH):
            if (value >> bit) & 1:
                acc = self._add(acc, self._shift_left_const(a, bit))
        return acc

    def _mul(self, a: BitVec, b: BitVec) -> BitVec:
        const_b = self._as_const(b)
        if const_b is not None:
            return self._mul_const(a, const_b)
        const_a = self._as_const(a)
        if const_a is not None:
            return self._mul_const(b, const_a)
        # Symbolic x symbolic: 32 conditional shift-adds.  Usually blows
        # the budget, which is the intended bound (-> tested-only).
        bdd = self.bdd
        acc = self.const_vec(0)
        for bit in range(WIDTH):
            shifted = self._shift_left_const(a, bit)
            added = self._add(acc, shifted)
            acc = [bdd.ite(b[bit], added[i], acc[i]) for i in range(WIDTH)]
        return acc

    def _as_const(self, a: BitVec) -> Optional[int]:
        value = 0
        for bit in range(WIDTH):
            if a[bit] == self.bdd.TRUE:
                value |= 1 << bit
            elif a[bit] != self.bdd.FALSE:
                return None
        return value

    def _shift_left_const(self, a: BitVec, amount: int) -> BitVec:
        amount &= 31
        return [self.bdd.FALSE] * amount + a[:WIDTH - amount]

    def _shift_right_const(self, a: BitVec, amount: int,
                           arithmetic: bool) -> BitVec:
        amount &= 31
        fill = a[WIDTH - 1] if arithmetic else self.bdd.FALSE
        return a[amount:] + [fill] * amount

    def _rotate_right_const(self, a: BitVec, amount: int) -> BitVec:
        amount &= 31
        return a[amount:] + a[:amount]

    def _shift_var(self, a: BitVec, amount: BitVec, kind: str) -> BitVec:
        """Symbolic shift amount: mux over the 32 cases of amount & 31
        (mirroring evaluate()'s 5-bit mask)."""
        bdd = self.bdd
        out = self.const_vec(0)
        for k in range(32):
            if kind == "shl":
                case = self._shift_left_const(a, k)
            elif kind == "shr":
                case = self._shift_right_const(a, k, arithmetic=False)
            elif kind == "sar":
                case = self._shift_right_const(a, k, arithmetic=True)
            else:  # ror
                case = self._rotate_right_const(a, k)
            sel = bdd.TRUE
            for bit in range(5):
                lit = amount[bit]
                sel = bdd.and_(sel, lit if (k >> bit) & 1
                               else bdd.not_(lit))
            out = [bdd.ite(sel, case[i], out[i]) for i in range(WIDTH)]
        return out

    # -- expression compilation ----------------------------------------------

    def compile(self, expr) -> BitVec:
        key = id(expr)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        vec = self._compile(expr)
        self._cache[key] = vec
        return vec

    def _compile(self, expr) -> BitVec:
        bdd = self.bdd
        if isinstance(expr, Const):
            return self.const_vec(expr.value)
        if isinstance(expr, Sym):
            return self.symbol_vec(expr.name)
        if not isinstance(expr, App):
            raise Unsupported(f"cannot bit-blast {expr!r}")
        op = expr.op
        args = [self.compile(arg) for arg in expr.args]
        if op == "add":
            acc = self.const_vec(0)
            for arg in args:
                acc = self._add(acc, arg)
            return acc
        if op == "mulv":
            acc = self.const_vec(1)
            for arg in args:
                acc = self._mul(acc, arg)
            return acc
        if op == "and":
            acc = self.const_vec(MASK)
            for arg in args:
                acc = [bdd.and_(acc[i], arg[i]) for i in range(WIDTH)]
            return acc
        if op == "or":
            acc = self.const_vec(0)
            for arg in args:
                acc = [bdd.or_(acc[i], arg[i]) for i in range(WIDTH)]
            return acc
        if op == "xor":
            acc = self.const_vec(0)
            for arg in args:
                acc = [bdd.xor_(acc[i], arg[i]) for i in range(WIDTH)]
            return acc
        if op == "not":
            return [bdd.not_(bit) for bit in args[0]]
        if op in ("shl", "shr", "sar", "ror"):
            amount_const = self._as_const(args[1])
            if amount_const is not None:
                if op == "shl":
                    return self._shift_left_const(args[0], amount_const)
                if op == "shr":
                    return self._shift_right_const(args[0], amount_const,
                                                   arithmetic=False)
                if op == "sar":
                    return self._shift_right_const(args[0], amount_const,
                                                   arithmetic=True)
                return self._rotate_right_const(args[0], amount_const)
            return self._shift_var(args[0], args[1], op)
        if op == "load":
            return self._load_vec(args[0], args[1])
        raise Unsupported(f"cannot bit-blast operator {op!r}")

    def _load_vec(self, addr: BitVec, size: BitVec) -> BitVec:
        """Uninterpreted memory read.

        Two loads whose (address, size) vectors are BDD-identical get the
        *same* fresh output vector — canonical BDDs make this a semantic
        functional-consistency check, not a syntactic one.  Distinct
        loads get independent fresh variables, which can only make the
        checker report *more* differences; callers validate refutation
        witnesses concretely, so this over-approximation never produces
        a false ``refuted``.
        """
        for known_addr, known_size, vec in self._loads:
            if known_addr == addr and known_size == size:
                return vec
        if len(self._loads) >= MAX_LOAD_CLASSES:
            raise Unsupported("too many distinct memory loads")
        slot = len(self.symbols) + len(self._loads)
        vec = [self.bdd.var(bit * self._stride + slot)
               for bit in range(WIDTH)]
        self._loads.append((addr, size, vec))
        return vec

    @property
    def has_loads(self) -> bool:
        return bool(self._loads)


def check_equivalent(a, b, budget: int = 250_000
                     ) -> Tuple[bool, Optional[Dict[str, int]]]:
    """Decide ``a == b`` over all 32-bit assignments.

    Returns ``(True, None)`` when provably equal, or ``(False, witness)``
    with a concrete refuting assignment.  Raises :class:`BudgetExceeded`
    or :class:`Unsupported` when the bound is hit.
    """
    names: set = set()
    _collect_symbols(a, names)
    _collect_symbols(b, names)
    blaster = BitBlaster(names, budget=budget)
    va = blaster.compile(a)
    vb = blaster.compile(b)
    diff = blaster.bdd.FALSE
    for i in range(WIDTH):
        diff = blaster.bdd.or_(diff, blaster.bdd.xor_(va[i], vb[i]))
    if diff == blaster.bdd.FALSE:
        return True, None
    assignment = blaster.bdd.satisfying(diff)
    return False, blaster.witness_values(assignment)


def _collect_symbols(expr, out: set) -> None:
    if isinstance(expr, Sym):
        out.add(expr.name)
    elif isinstance(expr, App):
        for arg in expr.args:
            _collect_symbols(arg, out)
