"""Reorder legality checking for Sec III-D scheduling decisions.

The translator's define-before-use scheduler permutes a guest block's
instruction list before emission and records the original order as a
justification.  This module *replays* that decision against an
independently-built dependence graph and rejects any permutation that
crosses:

- a flag dependence (may-def/use/def over NZCV — conditional flag
  setters count as may-defs on both sides),
- a register dependence (RAW, WAR, WAW over guest registers),
- a memory ordering edge (store/store, load/store, store/load: the
  checker assumes nothing about aliasing),
- an I/O or side-effect barrier (system instructions, SVC, PC writers,
  branches — these also pin every conditional instruction in place, as
  the scheduler itself only moves unconditional ones).

It also reports (as an *info* waiver, not an error) the
fault-observability imprecision inherent to hoisting a memory access
above a register/flag writer: if the hoisted access faults, the guest
sees the exception before the effects of instructions that precede it
in program order.  The repro's workloads never fault on scheduled
blocks; the waiver documents the assumption instead of hiding it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.analysis import (flags_read, flags_written_may, regs_read,
                             regs_written)
from ..guest.isa import ArmInsn, Cond, Op


def _is_barrier(insn: ArmInsn) -> bool:
    return (insn.is_system() or insn.op is Op.SVC or insn.writes_pc() or
            insn.is_branch() or insn.cond != Cond.AL)


def _depends(first: ArmInsn, second: ArmInsn) -> str:
    """Why *second* must stay after *first* ('' when independent)."""
    if _is_barrier(first) or _is_barrier(second):
        return "barrier"
    if flags_written_may(first) & flags_read(second):
        return "flag-raw"
    if flags_read(first) & flags_written_may(second):
        return "flag-war"
    if flags_written_may(first) & flags_written_may(second):
        return "flag-waw"
    first_reads, first_writes = regs_read(first), regs_written(first)
    second_reads, second_writes = regs_read(second), regs_written(second)
    if first_writes & second_reads:
        return "reg-raw"
    if first_reads & second_writes:
        return "reg-war"
    if first_writes & second_writes:
        return "reg-waw"
    if first.is_memory() and second.is_memory() and \
            (first.is_store() or second.is_store()):
        return "memory-order"
    return ""


def check_reorder(original: List[ArmInsn],
                  scheduled: List[ArmInsn]) -> List[Dict[str, Any]]:
    """Replay a scheduling decision; returns violation records.

    Each record is a dict with ``code`` (``reorder-*``), ``message``,
    ``guest_addr`` and a ``witness`` describing the crossed edge.
    An empty list means the permutation is dependence-preserving.
    """
    violations: List[Dict[str, Any]] = []

    # Match scheduled instructions back to original positions.  The
    # scheduler permutes the very same objects, so identity matching is
    # exact; a mismatch in the multiset is itself a violation.
    remaining = list(original)
    position: Dict[int, int] = {}
    for sched_index, insn in enumerate(scheduled):
        found = next((i for i, orig in enumerate(remaining)
                      if orig is insn), None)
        if found is None:
            violations.append({
                "code": "reorder-not-permutation",
                "message": "scheduled block is not a permutation of the "
                           "original instructions",
                "guest_addr": getattr(insn, "addr", None),
                "witness": {"scheduled_index": sched_index},
            })
            return violations
        position[id(insn)] = sched_index
        remaining[found] = None
    if any(item is not None for item in remaining):
        violations.append({
            "code": "reorder-not-permutation",
            "message": "scheduled block drops original instructions",
            "guest_addr": None,
            "witness": {"missing": sum(1 for i in remaining
                                       if i is not None)},
        })
        return violations

    for i, first in enumerate(original):
        for second in original[i + 1:]:
            if position[id(first)] < position[id(second)]:
                continue  # order preserved
            kind = _depends(first, second)
            if kind:
                violations.append({
                    "code": f"reorder-{kind}",
                    "message": (f"scheduling moved {second.op.name.lower()}"
                                f"@{second.addr:#x} above "
                                f"{first.op.name.lower()}@{first.addr:#x} "
                                f"across a {kind} dependence"),
                    "guest_addr": second.addr,
                    "witness": {"first": str(first), "second": str(second),
                                "edge": kind},
                })
    return violations


def reorder_waivers(original: List[ArmInsn],
                    scheduled: List[ArmInsn]) -> List[Dict[str, Any]]:
    """Info-level fault-observability waivers for legal hoists."""
    position = {id(insn): i for i, insn in enumerate(scheduled)}
    waivers: List[Dict[str, Any]] = []
    for i, first in enumerate(original):
        for second in original[i + 1:]:
            if id(first) not in position or id(second) not in position:
                continue
            if position[id(first)] < position[id(second)]:
                continue
            if second.is_memory() and \
                    (regs_written(first) or flags_written_may(first)):
                waivers.append({
                    "code": "reorder-fault-observability",
                    "message": (f"{second.op.name.lower()}@{second.addr:#x} "
                                f"hoisted above {first.op.name.lower()}"
                                f"@{first.addr:#x}: a fault on the access "
                                "would observe pre-producer state"),
                    "guest_addr": second.addr,
                    "witness": None,
                })
    return waivers
