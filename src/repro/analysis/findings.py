"""Finding and report types for the translation soundness checker.

Every check in this package reports through one vocabulary: a
:class:`Finding` names the violated property (``code``), where it was
observed (TB pc, host instruction index, rule id), how bad it is
(``severity``), and — when the checker can produce one — a concrete
``witness`` (e.g. a variable assignment refuting a learned rule, or the
flag mask a forged inter-TB justification claimed was dead).

Severities:

``info``
    A deliberate, documented imprecision (e.g. the interrupt-observability
    waiver on a legitimate inter-TB elision).  Never fails CI.
``warning``
    Suspicious but not provably unsound (e.g. an audit record that does
    not match the emitted code shape but has no semantic consequence).
``error``
    A proven soundness violation: executing this TB (or applying this
    rule) can corrupt guest state.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


_SEVERITY_BY_NAME = {s.name.lower(): s for s in Severity}


def severity_from_name(name: str) -> Severity:
    try:
        return _SEVERITY_BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(f"unknown severity {name!r}") from None


@dataclass
class Finding:
    """One checker result."""

    severity: Severity
    code: str                         # stable machine-readable identifier
    message: str                      # human-readable explanation
    tb_pc: Optional[int] = None       # guest pc of the TB (TB-phase checks)
    mmu_idx: Optional[int] = None
    host_index: Optional[int] = None  # offending host instruction index
    guest_addr: Optional[int] = None  # guest instruction address, if known
    rule: Optional[str] = None        # rule id (rule-phase checks)
    witness: Optional[Dict[str, Any]] = None
    cost: Optional[float] = None      # profiler cost of the TB, if attached

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "severity": str(self.severity),
            "code": self.code,
            "message": self.message,
        }
        if self.tb_pc is not None:
            out["tb_pc"] = f"0x{self.tb_pc:x}"
        if self.mmu_idx is not None:
            out["mmu_idx"] = self.mmu_idx
        if self.host_index is not None:
            out["host_index"] = self.host_index
        if self.guest_addr is not None:
            out["guest_addr"] = f"0x{self.guest_addr:x}"
        if self.rule is not None:
            out["rule"] = self.rule
        if self.witness is not None:
            out["witness"] = self.witness
        if self.cost is not None:
            out["cost"] = self.cost
        return out


@dataclass
class Report:
    """The aggregate result of one ``repro check`` run."""

    findings: List[Finding] = field(default_factory=list)
    #: context counters: TBs checked, rules classified, etc.
    meta: Dict[str, Any] = field(default_factory=dict)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    def above(self, threshold: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity > threshold]

    def exit_code(self, threshold: Severity = Severity.INFO) -> int:
        """0 when nothing exceeds *threshold*, 1 otherwise."""
        return 1 if self.above(threshold) else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "counts": {str(s): self.count(s) for s in Severity},
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_table(self) -> str:
        lines = []
        header = f"{'SEVERITY':<9} {'CODE':<28} {'WHERE':<18} MESSAGE"
        lines.append(header)
        lines.append("-" * len(header))
        for f in sorted(self.findings, key=lambda f: -int(f.severity)):
            if f.tb_pc is not None:
                where = f"tb 0x{f.tb_pc:x}"
                if f.host_index is not None:
                    where += f"+{f.host_index}"
            elif f.rule is not None:
                where = f"rule {f.rule}"
            else:
                where = "-"
            lines.append(f"{str(f.severity):<9} {f.code:<28} "
                         f"{where:<18} {f.message}")
        if not self.findings:
            lines.append("(no findings)")
        counts = ", ".join(f"{self.count(s)} {s}" for s in
                           reversed(list(Severity)))
        lines.append("")
        lines.append(f"{len(self.findings)} finding(s): {counts}")
        for key in sorted(self.meta):
            lines.append(f"  {key}: {self.meta[key]}")
        return "\n".join(lines)
