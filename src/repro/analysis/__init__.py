"""Static soundness verification of the rule-based translator.

Three verifiers over one findings vocabulary (:mod:`.findings`):

- :mod:`.dataflow` — abstract interpretation over emitted host code,
  proving every QEMU handoff site sees a coordinated ``env`` and every
  elided sync is justified (paper Sec III-C);
- :mod:`.reorder` — dependence-graph replay of Sec III-D scheduling
  decisions;
- :mod:`.rulecheck` — bounded symbolic (BDD bit-blasting,
  :mod:`.bitblast`) classification of learned rules as
  ``proved`` / ``tested-only`` / ``refuted``.

:mod:`.checker` orchestrates them behind ``repro check`` and the
``--check`` (verify-before-enter) engine mode; :mod:`.justify` defines
the audit-event / justification-record schema the translator emits.

This ``__init__`` stays import-light on purpose: ``repro.core`` emits
justification records through :mod:`.justify`, so eagerly importing the
checker (which imports ``repro.core`` back) here would create an import
cycle.  The heavyweight entry points load lazily via ``__getattr__``.
"""

from .findings import Finding, Report, Severity, severity_from_name

__all__ = [
    "Finding", "Report", "Severity", "severity_from_name",
    "check_tb", "run_check", "classify_candidate", "check_reorder",
]

_LAZY = {
    "check_tb": ("repro.analysis.dataflow", "check_tb"),
    "run_check": ("repro.analysis.checker", "run_check"),
    "classify_candidate": ("repro.analysis.rulecheck",
                           "classify_candidate"),
    "check_reorder": ("repro.analysis.reorder", "check_reorder"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib
    return getattr(importlib.import_module(module_name), attr)
