"""Host-IR dataflow verification of CPU-state coordination.

This is the core of ``repro check``: a forward abstract interpretation
over the emitted host code of one translation block, proving that the
coordination protocol of Sec III-B/III-C was applied soundly:

- every point where control may reach QEMU (helper call, softmmu slow
  path, interrupt check, TB exit, chain edge) is dominated by a
  sync-save, *or* carries a justification record the checker can
  independently re-derive;
- no instruction destroys the live guest CCR while ``env`` holds only a
  stale copy ("lost-ccr");
- every sync-save/restore range has exactly the protocol shape (packed
  3-instruction save, parsed per-bit save, packed/parsed restores) and
  executes in a state where its source representation is current;
- the lazy-save validity marker (``env.packed_valid``) is never left
  claiming a stale packed word;
- guest registers cached in host registers are never written back to
  ``env`` after a helper may have updated their slots ("stale
  writeback" — the missing-``cache.invalidate()`` bug class).

The abstract state tracks:

``eflags``
    where the live CCR is: ``"junk"`` (not in EFLAGS), ``"direct"`` or
    ``"inverted"`` (in EFLAGS, in the named carry convention);
``packed_ok`` / ``parsed_ok``
    whether ``env``'s packed word / per-bit fields hold the live CCR;
``valid``
    abstract value of ``env.packed_valid`` (0, 1, or None = unknown);
``live``
    NZCV mask of flags whose *latest* values may exist only in EFLAGS
    (stale ``env`` is an error only when this is non-zero — flags the
    block definitely rewrites before any observation may go unsaved);
``regs``
    host-register residency: mappings established by loads from the
    env register file, invalidated on overwrite, marked *stale* when a
    helper may have rewritten env.

The walk is anchored by the translator's audit events
(:mod:`.justify`): save/restore/produce/fallback ranges are verified as
units against the expected emission shapes, so the checker never has to
guess which host flag-write is a guest flag *production* versus a
scratch clobber.  Everything the translator *claims* (elisions, chain
edges, relocations) is re-derived independently; a claim that cannot be
reproduced is a finding, never a waiver.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.analysis import F_ALL, analyze_block
from ..guest.isa import Cond
from ..host.isa import (EAX, EDX, ENV_REG, Imm, Mem, Reg, X86Cond, X86Insn,
                        X86Op)
from ..miniqemu.env import (ENV_CF, ENV_NF, ENV_PACKED_FLAGS,
                            ENV_PACKED_VALID, ENV_REGS, ENV_VF, ENV_ZF,
                            env_reg)
from .findings import Finding, Severity
from .justify import (EV_FALLBACK, EV_PRODUCE, EV_RESTORE, EV_SAVE,
                      EV_TERMINAL, J_ELIDE_SAVE, J_INTER_TB, J_IRQ_RELOC,
                      J_REORDER, ORIGINAL_INSNS_KEY, audit_of,
                      justifications_of)

# EFLAGS abstract locations.
JUNK = "junk"
DIRECT = "direct"
INVERTED = "inverted"

#: host ops that overwrite the EFLAGS condition bits
_CLOBBERS_EFLAGS = {
    X86Op.ADD, X86Op.ADC, X86Op.SUB, X86Op.SBB, X86Op.AND, X86Op.OR,
    X86Op.XOR, X86Op.CMP, X86Op.TEST, X86Op.NEG, X86Op.INC, X86Op.DEC,
    X86Op.IMUL, X86Op.SHL, X86Op.SHR, X86Op.SAR, X86Op.ROR, X86Op.ROL,
    X86Op.RCR, X86Op.BSR, X86Op.STC, X86Op.CLC, X86Op.SAHF, X86Op.POPFD,
}

#: host ops whose Reg dst is (fully or partially) rewritten
_WRITES_DST_REG = _CLOBBERS_EFLAGS | {
    X86Op.MOV, X86Op.MOVZX, X86Op.MOVSX, X86Op.LEA, X86Op.NOT, X86Op.POP,
}

_FLAG_FIELD_OFFSETS = frozenset(
    {ENV_NF, ENV_ZF, ENV_CF, ENV_VF, ENV_PACKED_FLAGS, ENV_PACKED_VALID})

_PARSED_SAVE_FIELDS = ((X86Cond.S, ENV_NF), (X86Cond.E, ENV_ZF),
                       (X86Cond.B, ENV_CF), (X86Cond.O, ENV_VF))

# Residency states.
_CLEAN = "clean"
_STALE = "stale"


class _State:
    """One abstract machine state (mutable; copied at CFG splits)."""

    __slots__ = ("eflags", "packed_ok", "parsed_ok", "valid", "live",
                 "regs", "waived")

    def __init__(self, eflags: str = JUNK, packed_ok: bool = False,
                 parsed_ok: bool = True, valid: Optional[int] = None,
                 live: int = F_ALL,
                 regs: Optional[Dict[int, Tuple[int, str]]] = None,
                 waived: bool = False):
        self.eflags = eflags
        self.packed_ok = packed_ok
        self.parsed_ok = parsed_ok
        self.valid = valid
        self.live = live
        #: host reg -> (guest reg, _CLEAN | _STALE)
        self.regs = regs if regs is not None else {}
        #: an already-validated chain-edge elision covers the EXIT_TB
        #: that backs up its GOTO_TB
        self.waived = waived

    @property
    def env_current(self) -> bool:
        return self.packed_ok or self.parsed_ok

    @property
    def in_eflags(self) -> bool:
        return self.eflags != JUNK

    def copy(self) -> "_State":
        return _State(self.eflags, self.packed_ok, self.parsed_ok,
                      self.valid, self.live, dict(self.regs), self.waived)

    def key(self) -> Tuple:
        return (self.eflags, self.packed_ok, self.parsed_ok, self.valid,
                self.live, tuple(sorted(self.regs.items())), self.waived)

    def join(self, other: "_State") -> "_State":
        """Least upper bound (conservative merge) of two path states."""
        eflags = self.eflags if self.eflags == other.eflags else JUNK
        regs: Dict[int, Tuple[int, str]] = {}
        for host, (guest, status) in self.regs.items():
            theirs = other.regs.get(host)
            if theirs is not None and theirs[0] == guest:
                merged = _STALE if _STALE in (status, theirs[1]) else _CLEAN
                regs[host] = (guest, merged)
        return _State(
            eflags=eflags,
            packed_ok=self.packed_ok and other.packed_ok,
            parsed_ok=self.parsed_ok and other.parsed_ok,
            valid=self.valid if self.valid == other.valid else None,
            live=self.live | other.live,
            regs=regs,
            waived=self.waived and other.waived)


def entry_state(config) -> _State:
    """The translator's TB-entry contract (FlagsState.__init__)."""
    return _State(eflags=JUNK, packed_ok=config.packed_sync,
                  parsed_ok=not config.packed_sync, valid=None, live=F_ALL)


def _is_env_mem(operand, offsets=None) -> bool:
    return (isinstance(operand, Mem) and operand.base == ENV_REG and
            operand.index is None and
            (offsets is None or operand.disp in offsets))


def _env_regfile_slot(operand) -> Optional[int]:
    """Guest register index when *operand* addresses the env reg file."""
    if isinstance(operand, Mem) and operand.base == ENV_REG and \
            operand.index is None and operand.size == 4 and \
            ENV_REGS <= operand.disp < ENV_REGS + 16 * 4 and \
            operand.disp % 4 == 0:
        return (operand.disp - ENV_REGS) // 4
    return None


class TbChecker:
    """Checks one translated TB; collect findings via :meth:`run`."""

    def __init__(self, tb, config,
                 live_in_of: Optional[Callable[[int], int]] = None,
                 rulebook=None, include_waivers: bool = False):
        self.tb = tb
        self.config = config
        self.live_in_of = live_in_of
        self.rulebook = rulebook
        self.include_waivers = include_waivers
        self.code: List[X86Insn] = tb.code
        self.findings: List[Finding] = []
        events = audit_of(tb.meta or {})
        self.range_at: Dict[int, Dict[str, Any]] = {}
        self.terminal_at: Set[int] = set()
        for event in events:
            if event["kind"] == EV_TERMINAL:
                self.terminal_at.add(event["start"])
            else:
                self.range_at[event["start"]] = event
        self.justify_at: Dict[int, List[Dict[str, Any]]] = {}
        self.block_justifications: List[Dict[str, Any]] = []
        for record in justifications_of(tb.meta or {}):
            if record["kind"] in (J_REORDER, J_IRQ_RELOC):
                self.block_justifications.append(record)
            else:
                self.justify_at.setdefault(record["index"], []).append(record)

    # -- reporting ---------------------------------------------------------

    def _report(self, severity: Severity, code: str, message: str,
                index: Optional[int] = None,
                witness: Optional[Dict[str, Any]] = None) -> None:
        self.findings.append(Finding(
            severity=severity, code=code, message=message,
            tb_pc=self.tb.pc, mmu_idx=self.tb.mmu_idx, host_index=index,
            witness=witness))

    def _error(self, code: str, message: str, index: Optional[int] = None,
               witness: Optional[Dict[str, Any]] = None) -> None:
        self._report(Severity.ERROR, code, message, index, witness)

    def _warn(self, code: str, message: str,
              index: Optional[int] = None) -> None:
        self._report(Severity.WARNING, code, message, index)

    # -- entry point -------------------------------------------------------

    def run(self) -> List[Finding]:
        self._check_block_justifications()
        self._check_irq_presence()
        self._walk()
        return self.findings

    # -- block-level justifications ---------------------------------------

    def _check_block_justifications(self) -> None:
        insns = self.tb.guest_insns
        original = (self.tb.meta or {}).get(ORIGINAL_INSNS_KEY)
        reorder_records = [r for r in self.block_justifications
                           if r["kind"] == J_REORDER]
        if original is not None:
            from .reorder import check_reorder, reorder_waivers
            if not reorder_records:
                self._error("undeclared-reorder",
                            "block was scheduled but carries no reorder "
                            "justification")
            for violation in check_reorder(original, insns):
                self._error(violation["code"], violation["message"],
                            witness=violation.get("witness"))
            if self.include_waivers:
                for waiver in reorder_waivers(original, insns):
                    self._report(Severity.INFO, waiver["code"],
                                 waiver["message"])
        elif reorder_records:
            self._error("bad-reorder-justification",
                        "reorder justification without the original "
                        "instruction order to validate it against")

        for record in self.block_justifications:
            if record["kind"] != J_IRQ_RELOC:
                continue
            self._check_irq_relocation(record, insns)

    def _check_irq_relocation(self, record: Dict[str, Any], insns) -> None:
        index = record["insn_index"]
        if not (0 <= index < len(insns)):
            self._error("bad-irq-relocation",
                        f"relocated interrupt check names guest insn "
                        f"{index}, block has {len(insns)}")
            return
        if not self.config.irq_scheduling:
            self._error("bad-irq-relocation",
                        "interrupt check relocated with irq scheduling "
                        "disabled")
            return
        target = insns[index]
        if record["resume_pc"] != target.addr:
            self._error("bad-irq-relocation",
                        f"relocation resume pc {record['resume_pc']:#x} "
                        f"!= guest insn address {target.addr:#x}")
            return
        info = analyze_block(list(insns), self.rulebook)
        if not target.is_memory():
            self._error("bad-irq-relocation",
                        "interrupt check relocated to a non-memory "
                        f"instruction @{target.addr:#x}")
            return
        for item in info.insns[:index]:
            insn = item.insn
            if insn.cond != Cond.AL or item.is_site or insn.writes_pc():
                self._error(
                    "bad-irq-relocation",
                    f"interrupt check relocated past "
                    f"{insn.op.name.lower()}@{insn.addr:#x}, which is a "
                    "site/conditional/pc-writer",
                    witness={"guest_addr": insn.addr})
                return

    def _check_irq_presence(self) -> None:
        if any(insn.tag == "irqcheck" and insn.op is X86Op.CMP
               for insn in self.code):
            return
        self._warn("missing-irq-check",
                   "no interrupt check found anywhere in the TB")

    # -- the walk ----------------------------------------------------------

    def _walk(self) -> None:
        if not self.code:
            return
        states: Dict[int, _State] = {}
        seen: Dict[int, set] = {}
        worklist: List[Tuple[int, _State]] = [(0, entry_state(self.config))]
        # Findings are deduplicated per (index, code): revisiting an
        # instruction under a worse joined state must not double-report.
        reported: Set[Tuple[Optional[int], str]] = set()
        guard = 0
        limit = 64 * (len(self.code) + 8)

        while worklist:
            guard += 1
            if guard > limit:  # join lattice is finite; this is a backstop
                self._warn("walk-divergence",
                           "abstract interpretation failed to converge")
                break
            index, state = worklist.pop()
            if index >= len(self.code):
                continue
            joined = states.get(index)
            if joined is not None:
                merged = joined.join(state)
                if merged.key() in seen.setdefault(index, set()):
                    continue
                state = merged
            states[index] = state
            seen.setdefault(index, set()).add(state.key())

            before = len(self.findings)
            successors = self._transfer(index, state)
            for finding in self.findings[before:]:
                dedup = (finding.host_index, finding.code)
                if dedup in reported:
                    self.findings.remove(finding)
                else:
                    reported.add(dedup)
            for succ_index, succ_state in successors:
                worklist.append((succ_index, succ_state))

    def _transfer(self, index: int,
                  state: _State) -> List[Tuple[int, _State]]:
        state = state.copy()
        for record in self.justify_at.get(index, ()):
            if record["kind"] == J_ELIDE_SAVE:
                if not state.env_current:
                    self._error(
                        "bad-elide-justification",
                        "save elided claiming env currency, but neither "
                        "representation holds the live CCR", index)

        event = self.range_at.get(index)
        if event is not None:
            return self._transfer_range(index, event, state)
        return self._transfer_insn(index, state)

    # -- audit ranges -------------------------------------------------------

    def _transfer_range(self, index: int, event: Dict[str, Any],
                        state: _State) -> List[Tuple[int, _State]]:
        end = event["end"]
        kind = event["kind"]
        if not (index < end <= len(self.code)):
            self._error("bad-audit-range",
                        f"{kind} event range [{index}, {end}) is outside "
                        f"the {len(self.code)}-instruction TB", index)
            return []
        body = self.code[index:end]

        if kind == EV_SAVE:
            self._verify_save(index, event, body, state)
        elif kind == EV_RESTORE:
            self._verify_restore(index, event, body, state)
        elif kind == EV_PRODUCE:
            self._verify_produce(index, event, state)
        elif kind == EV_FALLBACK:
            self._verify_fallback(index, event, state)
        else:
            self._error("bad-audit-range",
                        f"unknown audit event kind {kind!r}", index)

        if kind == EV_FALLBACK:
            # Spliced code invalidates all residency knowledge.
            state.regs = {}
        else:
            # Coordination/producer bodies contain register-cache traffic
            # (loads, evictions); track it so later mappings stay exact.
            for offset, insn in enumerate(body):
                self._residency(index + offset, insn, state)

        if kind == EV_FALLBACK and event.get("ended"):
            return []
        return [(end, state)]

    def _verify_save(self, index: int, event: Dict[str, Any],
                     body: List[X86Insn], state: _State) -> None:
        if not state.in_eflags:
            self._error("save-junk",
                        "sync-save while EFLAGS does not hold the live "
                        "CCR: the saved word is garbage", index)
        has_cmc = bool(body) and body[0].op is X86Op.CMC
        if state.in_eflags and has_cmc != (state.eflags == INVERTED):
            self._error("malformed-save",
                        "carry canonicalization mismatch: save "
                        f"{'has' if has_cmc else 'lacks'} a cmc but the "
                        f"CCR convention is {state.eflags}", index)
        shape = body[1:] if has_cmc else body
        mode = event["mode"]
        if mode == "packed":
            ok = (len(shape) == 3 and
                  shape[0].op is X86Op.PUSHFD and
                  shape[1].op is X86Op.POP and
                  _is_env_mem(shape[1].dst, {ENV_PACKED_FLAGS}) and
                  shape[2].op is X86Op.MOV and
                  _is_env_mem(shape[2].dst, {ENV_PACKED_VALID}) and
                  shape[2].src == Imm(1))
            if not ok:
                self._error("malformed-save",
                            "packed save is not the pushfd/pop/valid=1 "
                            "sequence", index,
                            witness={"insns": [str(i) for i in body]})
            state.packed_ok = True
            state.valid = 1
        elif mode == "parsed":
            setccs = shape[:4]
            ok = len(setccs) == 4 and all(
                insn.op is X86Op.SETCC and insn.cond is cond and
                _is_env_mem(insn.dst, {offset})
                for insn, (cond, offset) in zip(setccs, _PARSED_SAVE_FIELDS))
            rest = shape[4:]
            if self.config.packed_sync:
                ok = ok and len(rest) == 1 and rest[0].op is X86Op.MOV and \
                    _is_env_mem(rest[0].dst, {ENV_PACKED_VALID}) and \
                    rest[0].src == Imm(0)
            else:
                ok = ok and not rest
            if not ok:
                self._error("malformed-save",
                            "parsed save is not the 4-setcc per-bit "
                            "sequence", index,
                            witness={"insns": [str(i) for i in body]})
            state.parsed_ok = True
            if self.config.packed_sync:
                state.packed_ok = False
                state.valid = 0
        else:
            self._error("malformed-save", f"unknown save mode {mode!r}",
                        index)
        if state.in_eflags:
            state.eflags = DIRECT  # the cmc (if any) canonicalized

    def _verify_restore(self, index: int, event: Dict[str, Any],
                        body: List[X86Insn], state: _State) -> None:
        mode = event["mode"]
        if mode == "packed":
            if not state.packed_ok:
                self._error("restore-stale",
                            "packed restore reloads env.packed, which "
                            "does not hold the live CCR", index)
            ok = (len(body) == 2 and body[0].op is X86Op.PUSH and
                  _is_env_mem(body[0].src, {ENV_PACKED_FLAGS}) and
                  body[1].op is X86Op.POPFD)
            if not ok:
                self._error("malformed-restore",
                            "packed restore is not push/popfd", index,
                            witness={"insns": [str(i) for i in body]})
        elif mode == "parsed":
            if not state.parsed_ok:
                self._error("restore-stale",
                            "parsed restore rebuilds from per-bit fields "
                            "that do not hold the live CCR", index)
            ok = (len(body) == 12 and
                  body[0].op is X86Op.MOV and
                  _is_env_mem(body[0].src, {ENV_VF}) and
                  body[-2].op is X86Op.PUSH and
                  body[-1].op is X86Op.POPFD and
                  sum(1 for i in body if i.op is X86Op.SHL) == 3 and
                  sum(1 for i in body if i.op is X86Op.OR) == 3)
            if not ok:
                self._error("malformed-restore",
                            "parsed restore is not the 12-instruction "
                            "EFLAGS rebuild", index,
                            witness={"insns": [str(i) for i in body]})
        else:
            self._error("malformed-restore",
                        f"unknown restore mode {mode!r}", index)
        state.eflags = DIRECT

    def _verify_produce(self, index: int, event: Dict[str, Any],
                        state: _State) -> None:
        if event["partial"] and not state.in_eflags:
            self._error(
                "partial-producer-stale",
                "partial flag producer (N/Z only) executes over junk "
                "C/V in EFLAGS: untouched live flags are lost", index)
        carry = event["carry"]
        if carry is None:
            # N/Z-only producer: C/V keep their previous convention.
            state.eflags = state.eflags if state.in_eflags else DIRECT
        else:
            state.eflags = DIRECT if carry == "direct" else INVERTED
        state.packed_ok = False
        state.parsed_ok = False
        state.live = event["live_after"]

    def _verify_fallback(self, index: int, event: Dict[str, Any],
                         state: _State) -> None:
        reads, writes = event["reads"], event["writes"]
        if (reads or writes not in (0, F_ALL)) and not state.parsed_ok:
            self._error("fallback-stale",
                        "spliced QEMU-style code reads/partially updates "
                        "the per-bit flag fields, which are stale", index)
        self._clobber(index, state)
        if writes:
            state.parsed_ok = True
            state.packed_ok = False
            state.valid = 0

    # -- per-instruction transfer -------------------------------------------

    def _transfer_insn(self, index: int,
                       state: _State) -> List[Tuple[int, _State]]:
        insn = self.code[index]
        op = insn.op

        if op is X86Op.CMC:
            if state.eflags == DIRECT:
                state.eflags = INVERTED
            elif state.eflags == INVERTED:
                state.eflags = DIRECT
            return self._fallthrough(index, state)

        if op is X86Op.JMP:
            return [(insn.target_index, state)]
        if op is X86Op.JCC:
            # Deliberate gap: jcc *reads* of EFLAGS are not checked — the
            # probe/clz jcc's read scratch comparisons, and telling those
            # apart from guest condition tests needs the condmap replay
            # that skip_sequence already embodies.
            return [(insn.target_index, state.copy()),
                    (index + 1, state)]
        if op is X86Op.EXIT_TB:
            self._check_handoff(index, state, "exit_tb")
            return []
        if op is X86Op.GOTO_TB:
            self._check_chain_edge(index, state)
            return self._fallthrough(index, state)
        if op is X86Op.CALL_HELPER:
            self._transfer_helper(index, insn, state)
            if index in self.terminal_at:
                return []
            return self._fallthrough(index, state)

        if op in _CLOBBERS_EFLAGS:
            self._clobber(index, state)

        self._check_env_flag_write(index, insn)
        self._residency(index, insn, state)
        return self._fallthrough(index, state)

    def _fallthrough(self, index: int,
                     state: _State) -> List[Tuple[int, _State]]:
        if index + 1 < len(self.code):
            return [(index + 1, state)]
        return []

    def _clobber(self, index: int, state: _State) -> None:
        """EFLAGS is about to be overwritten by non-producer code."""
        if state.in_eflags and not state.env_current and state.live:
            self._error(
                "lost-ccr",
                "live guest CCR in EFLAGS destroyed without a sync-save "
                f"(live mask {state.live:#x})", index,
                witness={"insn": str(self.code[index])})
        state.eflags = JUNK
        state.waived = False

    def _transfer_helper(self, index: int, insn: X86Insn,
                         state: _State) -> None:
        self._check_handoff(index, state, f"helper ({insn.tag})")
        if insn.tag == "mmu":
            # softmmu slow path: reads/writes guest memory, leaves env
            # registers and flag fields alone.
            return
        # General helpers may rewrite any env field; repack_flags leaves
        # both flag representations current but marks packed invalid.
        state.eflags = JUNK
        state.packed_ok = True
        state.parsed_ok = True
        state.valid = 0
        state.regs = {host: (guest, _STALE)
                      for host, (guest, _) in state.regs.items()}

    def _check_handoff(self, index: int, state: _State, what: str) -> None:
        """Control may leave the TB here: env must be coordinated."""
        if state.valid == 1 and not state.packed_ok and state.live \
                and not state.waived:
            # A dead (live == 0) or waived (successor defines-before-use)
            # stale-but-valid packed word is benign: anything a helper
            # materializes from it is overwritten before the guest can
            # observe it (same waiver as the stale-env check below).
            self._error(
                "valid-stale",
                f"handoff to {what} with env.packed_valid=1 but a stale "
                "packed word: helpers would materialize garbage flags",
                index)
        if state.env_current or state.waived:
            return
        if state.live:
            self._error(
                "env-stale-handoff",
                f"handoff to {what} while env holds stale flags "
                f"(live mask {state.live:#x})", index)
        # live == 0: the block definitely rewrites these flags before
        # any in-block observation; the stale window is the documented
        # interrupt-observability imprecision (docs/soundness.md).

    def _check_chain_edge(self, index: int, state: _State) -> None:
        records = [r for r in self.justify_at.get(index, ())
                   if r["kind"] == J_INTER_TB]
        if state.env_current:
            return  # saved edge; a (redundant) justification is harmless
        if records:
            record = records[0]
            target_pc = record["target_pc"]
            if not self.config.inter_tb:
                self._error(
                    "bad-inter-tb-justification",
                    "chain-edge save elided with the inter-TB "
                    "optimization disabled", index)
                return
            actual = self._successor_live_in(target_pc)
            if actual is None:
                self._error(
                    "bad-inter-tb-justification",
                    f"cannot re-derive successor {target_pc:#x} live-in "
                    "to validate the elision", index)
            elif actual != 0:
                self._error(
                    "bad-inter-tb-justification",
                    f"successor {target_pc:#x} live-in is {actual:#x}, "
                    "not 0: it does not define every flag before use",
                    index,
                    witness={"claimed": record["live_in"],
                             "recomputed": actual})
            else:
                state.waived = True
            return
        if state.live:
            self._error(
                "unjustified-elision",
                "chain edge taken while env holds stale flags and no "
                "inter-TB justification was recorded", index)
        else:
            state.waived = True  # dead-flag edge; covers the backup exit

    def _successor_live_in(self, target_pc: int) -> Optional[int]:
        if self.live_in_of is None:
            return None
        try:
            return self.live_in_of(target_pc)
        except Exception:
            return None

    def _check_env_flag_write(self, index: int, insn: X86Insn) -> None:
        if insn.op in (X86Op.MOV, X86Op.SETCC, X86Op.POP) and \
                _is_env_mem(insn.dst, _FLAG_FIELD_OFFSETS):
            self._warn(
                "unexpected-flag-write",
                f"write to an env flag field outside any audited "
                f"coordination range: {insn}", index)

    # -- host-register residency ---------------------------------------------

    def _residency(self, index: int, insn: X86Insn, state: _State) -> None:
        op = insn.op
        if op is X86Op.MOV and isinstance(insn.dst, Reg):
            guest = _env_regfile_slot(insn.src)
            if guest is not None:
                state.regs[insn.dst.number] = (guest, _CLEAN)
                return
        if op is X86Op.MOV and isinstance(insn.src, Reg):
            guest = _env_regfile_slot(insn.dst)
            if guest is not None:
                mapping = state.regs.get(insn.src.number)
                if mapping is not None and mapping[1] == _STALE:
                    self._error(
                        "stale-writeback",
                        f"host {insn.src} written back to env r{guest} "
                        "after a helper may have updated the slot "
                        "(missing register-cache invalidate)", index)
                return
        if op in _WRITES_DST_REG and isinstance(insn.dst, Reg):
            state.regs.pop(insn.dst.number, None)


def check_tb(tb, config, live_in_of: Optional[Callable[[int], int]] = None,
             rulebook=None, include_waivers: bool = False) -> List[Finding]:
    """Verify one translated TB; returns the (possibly empty) findings."""
    return TbChecker(tb, config, live_in_of, rulebook,
                     include_waivers).run()
