"""ARM A32 binary encoder: :class:`~repro.guest.isa.ArmInsn` -> 32-bit word.

The encodings follow the ARMv7-A ARM (DDI 0406).  Only the subset in
:mod:`repro.guest.isa` is supported; anything else raises
:class:`~repro.common.errors.EncodingError`.
"""

from __future__ import annotations

from ..common.bitops import encode_arm_imm, u32
from ..common.errors import EncodingError
from .isa import (COMPARE_OPS, DATA_PROCESSING_OPS, LOAD_OPS, STORE_OPS,
                  UNARY_DP_OPS, VFP_ARITH_OPS, ArmInsn, Cond, Op, Operand2,
                  ShiftKind)


def _encode_operand2(op2: Operand2) -> int:
    """Encode the flexible operand into bits [25] << 25 | [11:0]."""
    if op2.is_imm:
        encoded = encode_arm_imm(op2.imm)
        if encoded is None:
            raise EncodingError(
                f"immediate {op2.imm:#x} is not an ARM modified-immediate")
        rotation, imm8 = encoded
        return (1 << 25) | (rotation << 8) | imm8
    if op2.shift == ShiftKind.RRX:
        return (ShiftKind.ROR << 5) | op2.rm  # ROR #0 encodes RRX
    if op2.rs is not None:
        return (op2.rs << 8) | (op2.shift << 5) | (1 << 4) | op2.rm
    shift_imm = op2.shift_imm
    if shift_imm == 32 and op2.shift in (ShiftKind.LSR, ShiftKind.ASR):
        shift_imm = 0  # LSR/ASR #32 encodes as a zero shift field
    if not 0 <= shift_imm <= 31:
        raise EncodingError(f"shift amount {op2.shift_imm} out of range")
    return (shift_imm << 7) | (op2.shift << 5) | op2.rm


def _encode_data_processing(insn: ArmInsn) -> int:
    if insn.op2 is None:
        raise EncodingError(f"{insn.op.name} requires an operand2")
    word = _encode_operand2(insn.op2)
    word |= insn.op.value << 21
    set_flags = insn.set_flags or insn.op in COMPARE_OPS
    if set_flags:
        word |= 1 << 20
    if insn.op in COMPARE_OPS:
        word |= insn.rn << 16
    elif insn.op in UNARY_DP_OPS:
        word |= insn.rd << 12
    else:
        word |= (insn.rn << 16) | (insn.rd << 12)
    return word


def _encode_multiply(insn: ArmInsn) -> int:
    word = (insn.rd << 16) | (insn.rs << 8) | 0x90 | insn.rm
    if insn.op is Op.MLA:
        word |= (1 << 21) | (insn.rn << 12)
    if insn.set_flags:
        word |= 1 << 20
    return word


def _encode_word_byte_transfer(insn: ArmInsn) -> int:
    word = (1 << 26) | (insn.rn << 16) | (insn.rd << 12)
    if insn.pre_indexed:
        word |= 1 << 24
    if insn.add_offset:
        word |= 1 << 23
    if insn.op in (Op.LDRB, Op.STRB):
        word |= 1 << 22
    if insn.writeback and insn.pre_indexed:
        word |= 1 << 21
    if insn.op in LOAD_OPS:
        word |= 1 << 20
    if insn.mem_offset_reg is not None:
        word |= 1 << 25
        word |= (insn.mem_shift_imm << 7) | (insn.mem_shift << 5)
        word |= insn.mem_offset_reg
    else:
        if not 0 <= insn.mem_offset_imm <= 0xFFF:
            raise EncodingError(
                f"ldr/str offset {insn.mem_offset_imm} out of range")
        word |= insn.mem_offset_imm
    return word


def _encode_halfword_transfer(insn: ArmInsn) -> int:
    sh = {Op.LDRH: 0xB, Op.STRH: 0xB, Op.LDRSB: 0xD, Op.LDRSH: 0xF}[insn.op]
    word = (insn.rn << 16) | (insn.rd << 12) | (sh << 4)
    if insn.pre_indexed:
        word |= 1 << 24
    if insn.add_offset:
        word |= 1 << 23
    if insn.writeback and insn.pre_indexed:
        word |= 1 << 21
    if insn.op is not Op.STRH:
        word |= 1 << 20
    if insn.mem_offset_reg is not None:
        word |= insn.mem_offset_reg
    else:
        if not 0 <= insn.mem_offset_imm <= 0xFF:
            raise EncodingError(
                f"halfword offset {insn.mem_offset_imm} out of range")
        word |= 1 << 22  # immediate form
        word |= ((insn.mem_offset_imm & 0xF0) << 4) | (insn.mem_offset_imm & 0xF)
    return word


def _encode_block_transfer(insn: ArmInsn) -> int:
    word = (1 << 27) | (insn.rn << 16)
    if insn.before:
        word |= 1 << 24
    if insn.increment:
        word |= 1 << 23
    if insn.writeback:
        word |= 1 << 21
    if insn.op is Op.LDM:
        word |= 1 << 20
    for reg in insn.reglist:
        word |= 1 << reg
    return word


def _encode_branch(insn: ArmInsn) -> int:
    # Branch offsets wrap modulo 2**32 (the PC is a 32-bit register).
    offset = u32(insn.target - (insn.addr + 8))
    offset = offset - 0x100000000 if offset & 0x80000000 else offset
    if offset & 3:
        raise EncodingError(f"branch target 0x{insn.target:x} is unaligned")
    offset >>= 2
    if not -(1 << 23) <= offset < (1 << 23):
        raise EncodingError("branch target out of range")
    word = (0b101 << 25) | (offset & 0xFFFFFF)
    if insn.op is Op.BL:
        word |= 1 << 24
    return word


def _split_sreg(number: int):
    """Single-precision Sx -> (Vx 4-bit field, low-bit flag)."""
    return (number >> 1) & 0xF, number & 1


def _encode_vfp(insn: ArmInsn) -> int:
    op = insn.op
    vd, d_bit = _split_sreg(insn.fd)
    if op in VFP_ARITH_OPS:
        vn, n_bit = _split_sreg(insn.fn)
        vm, m_bit = _split_sreg(insn.fm)
        base = {Op.VADD: 0x0E300A00, Op.VSUB: 0x0E300A40,
                Op.VMUL: 0x0E200A00}[op]
        return base | (d_bit << 22) | (vn << 16) | (vd << 12) | \
            (n_bit << 7) | (m_bit << 5) | vm
    if op is Op.VCMP:
        vm, m_bit = _split_sreg(insn.fm)
        return 0x0EB40A40 | (d_bit << 22) | (vd << 12) | (m_bit << 5) | vm
    if op in (Op.VLDR, Op.VSTR):
        if insn.mem_offset_imm & 3 or insn.mem_offset_imm > 1020:
            raise EncodingError(
                f"vldr/vstr offset {insn.mem_offset_imm} invalid")
        word = 0x0D000A00 | (d_bit << 22) | (insn.rn << 16) | (vd << 12) | \
            (insn.mem_offset_imm >> 2)
        if insn.add_offset:
            word |= 1 << 23
        if op is Op.VLDR:
            word |= 1 << 20
        return word
    # vmov between a core register and a single-precision register.
    vn, n_bit = _split_sreg(insn.fn)
    word = 0x0E000A10 | (vn << 16) | (insn.rd << 12) | (n_bit << 7)
    if op is Op.VMOVRS:
        word |= 1 << 20
    return word


def _encode_system(insn: ArmInsn) -> int:
    op = insn.op
    if op is Op.MRS:
        return 0x010F0000 | (int(insn.spsr) << 22) | (insn.rd << 12)
    if op is Op.MSR:
        return 0x0120F000 | (int(insn.spsr) << 22) | (insn.imm << 16) | insn.rm
    if op in (Op.MCR, Op.MRC):
        word = 0x0E000F10  # coprocessor 15
        word |= (insn.cp_op1 << 21) | (insn.cp_crn << 16) | (insn.rd << 12)
        word |= (insn.cp_op2 << 5) | insn.cp_crm
        if op is Op.MRC:
            word |= 1 << 20
        return word
    if op is Op.VMRS:
        return 0x0EF10A10 | (insn.rd << 12)
    if op is Op.VMSR:
        return 0x0EE10A10 | (insn.rd << 12)
    if op is Op.SVC:
        return 0x0F000000 | (insn.imm & 0xFFFFFF)
    if op is Op.WFI:
        return 0x0320F003
    if op is Op.NOP:
        return 0x0320F000
    if op is Op.CLZ:
        return 0x016F0F10 | (insn.rd << 12) | insn.rm
    raise EncodingError(f"cannot encode {op}")


def encode(insn: ArmInsn) -> int:
    """Encode *insn* to its 32-bit A32 machine word."""
    op = insn.op
    if op is Op.CPS:
        # CPS is an unconditional encoding (cond field == 0b1111).
        imod = 0b10 if insn.cps_enable else 0b11
        return u32(0xF1000000 | (imod << 18) | (1 << 7))  # IRQ mask bit
    if op in DATA_PROCESSING_OPS:
        word = _encode_data_processing(insn)
    elif op in (Op.MUL, Op.MLA):
        word = _encode_multiply(insn)
    elif op in LOAD_OPS | STORE_OPS and op not in (
            Op.LDRH, Op.STRH, Op.LDRSB, Op.LDRSH):
        word = _encode_word_byte_transfer(insn)
    elif op in (Op.LDRH, Op.STRH, Op.LDRSB, Op.LDRSH):
        word = _encode_halfword_transfer(insn)
    elif op in (Op.LDM, Op.STM):
        word = _encode_block_transfer(insn)
    elif op in (Op.B, Op.BL):
        word = _encode_branch(insn)
    elif op is Op.BX:
        word = 0x012FFF10 | insn.rm
    elif op in (Op.VADD, Op.VSUB, Op.VMUL, Op.VCMP, Op.VLDR, Op.VSTR,
                Op.VMOVSR, Op.VMOVRS):
        word = _encode_vfp(insn)
    else:
        word = _encode_system(insn)
    return u32(word | (insn.cond << 28))
