"""Architectural guest CPU state: registers, CPSR banking, cp15, exceptions.

This is the *architectural* state shared by every execution engine (the
reference interpreter, the TCG baseline and the rule-based DBT).  The DBT
engines additionally mirror parts of it into the in-memory ``env``
structure (:mod:`repro.miniqemu.env`); :meth:`GuestCpu.snapshot` is the
canonical comparison point for differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..common.bitops import bit, u32
from .isa import LR, PC, SP

# Processor modes (CPSR[4:0]).
MODE_USR = 0x10
MODE_FIQ = 0x11
MODE_IRQ = 0x12
MODE_SVC = 0x13
MODE_ABT = 0x17
MODE_UND = 0x1B
MODE_SYS = 0x1F

ALL_MODES = (MODE_USR, MODE_FIQ, MODE_IRQ, MODE_SVC, MODE_ABT, MODE_UND,
             MODE_SYS)

MODE_NAMES = {MODE_USR: "usr", MODE_FIQ: "fiq", MODE_IRQ: "irq",
              MODE_SVC: "svc", MODE_ABT: "abt", MODE_UND: "und",
              MODE_SYS: "sys"}

# CPSR bit positions.
CPSR_N = 31
CPSR_Z = 30
CPSR_C = 29
CPSR_V = 28
CPSR_I = 7  # IRQ mask (1 = masked)

# Exception vector offsets.
VECTOR_RESET = 0x00
VECTOR_UNDEF = 0x04
VECTOR_SVC = 0x08
VECTOR_PREFETCH_ABORT = 0x0C
VECTOR_DATA_ABORT = 0x10
VECTOR_IRQ = 0x18


def _bank_key(mode: int) -> int:
    """USR and SYS share one register bank; everyone else has their own."""
    return MODE_USR if mode == MODE_SYS else mode


@dataclass
class Cp15:
    """The cp15 system-control coprocessor subset the mini-kernel uses."""

    sctlr: int = 0      # c1,c0,0 — bit 0 is the MMU enable
    ttbr0: int = 0      # c2,c0,0 — translation table base
    dacr: int = 0       # c3,c0,0 — domain access control (stored, unused)
    dfsr: int = 0       # c5,c0,0 — data fault status
    dfar: int = 0       # c6,c0,0 — data fault address
    vbar: int = 0       # c12,c0,0 — vector base address
    context_id: int = 0  # c13,c0,1

    _BY_KEY = {
        (1, 0, 0, 0): "sctlr",
        (2, 0, 0, 0): "ttbr0",
        (3, 0, 0, 0): "dacr",
        (5, 0, 0, 0): "dfsr",
        (6, 0, 0, 0): "dfar",
        (12, 0, 0, 0): "vbar",
        (13, 0, 0, 1): "context_id",
    }

    #: keys whose writes require a TLB flush (TLBIALL is write-only).
    TLB_FLUSH_KEY = (8, 7, 0, 0)

    def read(self, crn: int, crm: int, op1: int, op2: int) -> int:
        name = self._BY_KEY.get((crn, crm, op1, op2))
        if name is None:
            return 0
        return getattr(self, name)

    def write(self, crn: int, crm: int, op1: int, op2: int,
              value: int) -> bool:
        """Write a cp15 register; returns True if the TLB must be flushed."""
        key = (crn, crm, op1, op2)
        if key == self.TLB_FLUSH_KEY:
            return True
        name = self._BY_KEY.get(key)
        if name is not None:
            setattr(self, name, u32(value))
            # Changing translation controls invalidates cached translations.
            return name in ("sctlr", "ttbr0")
        return False

    @property
    def mmu_enabled(self) -> bool:
        return bool(self.sctlr & 1)


class GuestCpu:
    """ARMv7 architectural register state with mode banking."""

    def __init__(self):
        self.regs = [0] * 16
        self.cpsr = MODE_SVC | (1 << CPSR_I)  # boots in SVC, IRQs masked
        self._banked_sp_lr: Dict[int, Tuple[int, int]] = {
            _bank_key(mode): (0, 0) for mode in ALL_MODES}
        self._spsr: Dict[int, int] = {mode: 0 for mode in ALL_MODES}
        self.cp15 = Cp15()
        self.fpscr = 0
        self.vfp = [0] * 32  # s0..s31 as binary32 bit patterns
        self.irq_line = False     # level-triggered external IRQ input
        self.halted = False       # set by wfi until an interrupt arrives

    # -- mode and banking ---------------------------------------------------

    @property
    def mode(self) -> int:
        return self.cpsr & 0x1F

    def flag(self, position: int) -> int:
        return bit(self.cpsr, position)

    def set_flag(self, position: int, value: int) -> None:
        if value:
            self.cpsr |= 1 << position
        else:
            self.cpsr &= ~(1 << position) & 0xFFFFFFFF

    def set_nzcv(self, n: int, z: int, c: int, v: int) -> None:
        self.cpsr = (self.cpsr & 0x0FFFFFFF) | (n << 31) | (z << 30) | \
            (c << 29) | (v << 28)

    @property
    def irqs_enabled(self) -> bool:
        return not self.flag(CPSR_I)

    def switch_mode(self, new_mode: int) -> None:
        old_key = _bank_key(self.mode)
        new_key = _bank_key(new_mode)
        if old_key != new_key:
            self._banked_sp_lr[old_key] = (self.regs[SP], self.regs[LR])
            self.regs[SP], self.regs[LR] = self._banked_sp_lr[new_key]
        self.cpsr = (self.cpsr & ~0x1F & 0xFFFFFFFF) | new_mode

    def write_cpsr(self, value: int) -> None:
        """Full CPSR write (msr cpsr_cxsf / exception return)."""
        new_mode = value & 0x1F
        if new_mode != self.mode:
            self.switch_mode(new_mode)
        self.cpsr = u32(value)

    @property
    def spsr(self) -> int:
        return self._spsr[self.mode if self.mode != MODE_USR else MODE_SVC]

    @spsr.setter
    def spsr(self, value: int) -> None:
        mode = self.mode if self.mode != MODE_USR else MODE_SVC
        self._spsr[mode] = u32(value)

    # -- exceptions ----------------------------------------------------------

    def take_exception(self, new_mode: int, vector_offset: int,
                       return_address: int) -> None:
        """Architectural exception entry (ARMv7 ARM B1.8.x, simplified)."""
        saved_cpsr = self.cpsr
        self.switch_mode(new_mode)
        self._spsr[new_mode] = saved_cpsr
        self.regs[LR] = u32(return_address)
        self.set_flag(CPSR_I, 1)
        self.regs[PC] = u32(self.cp15.vbar + vector_offset)
        self.halted = False

    def exception_return(self, target_pc: int) -> None:
        """``movs pc, ...`` / ``subs pc, lr, #n`` — restore CPSR from SPSR."""
        spsr = self.spsr
        self.write_cpsr(spsr)
        self.regs[PC] = u32(target_pc)

    # -- debugging / differential testing ------------------------------------

    def snapshot(self) -> dict:
        """Architecturally-visible state for differential comparison."""
        return {
            "regs": tuple(self.regs),
            "cpsr": self.cpsr,
            "spsr": dict(self._spsr),
            "banked": dict(self._banked_sp_lr),
            "sctlr": self.cp15.sctlr,
            "ttbr0": self.cp15.ttbr0,
            "vbar": self.cp15.vbar,
            "fpscr": self.fpscr,
            "vfp": tuple(self.vfp),
        }

    def __repr__(self) -> str:
        regs = " ".join(f"r{i}={self.regs[i]:08x}" for i in range(16))
        return (f"<GuestCpu {MODE_NAMES.get(self.mode, '?')} "
                f"cpsr={self.cpsr:08x} {regs}>")
