"""ARM condition-code arithmetic, shared by the reference interpreter.

These helpers implement the ARMv7 pseudo-code ``AddWithCarry`` and the
barrel-shifter carry-out rules.  Note the ARM carry convention for
subtraction: C is *NOT borrow* (1 when no borrow occurred), which is the
inverse of the x86 CF convention — the rule-based DBT's carry-tag machinery
in :mod:`repro.core.coordination` exists precisely because of this.
"""

from __future__ import annotations

from typing import Tuple

from ..common.bitops import MASK32, SIGN_BIT, bit, ror32, u32
from .isa import ShiftKind


def add_with_carry(a: int, b: int, carry_in: int) -> Tuple[int, int, int]:
    """ARM AddWithCarry: returns (result, carry_out, overflow)."""
    unsigned_sum = (a & MASK32) + (b & MASK32) + carry_in
    result = unsigned_sum & MASK32
    carry_out = 1 if unsigned_sum > MASK32 else 0
    overflow = 1 if (~(a ^ b) & (a ^ result)) & SIGN_BIT else 0
    return result, carry_out, overflow


def nz(result: int) -> Tuple[int, int]:
    """N and Z flags of a 32-bit result."""
    result = u32(result)
    return bit(result, 31), 1 if result == 0 else 0


def shift_with_carry(value: int, kind: ShiftKind, amount: int,
                     carry_in: int) -> Tuple[int, int]:
    """Apply a barrel-shifter operation, returning (result, carry_out).

    *amount* is the effective shift amount (already fetched from a register
    for register-specified shifts); it may exceed 32.  The carry-out rules
    follow the ARMv7 ARM Shift_C pseudo-code.
    """
    value = u32(value)
    if kind == ShiftKind.RRX:
        return ((value >> 1) | (carry_in << 31)) & MASK32, value & 1
    if amount == 0:
        return value, carry_in
    if kind == ShiftKind.LSL:
        if amount > 32:
            return 0, 0
        if amount == 32:
            return 0, value & 1
        return u32(value << amount), bit(value, 32 - amount)
    if kind == ShiftKind.LSR:
        if amount > 32:
            return 0, 0
        if amount == 32:
            return 0, bit(value, 31)
        return value >> amount, bit(value, amount - 1)
    if kind == ShiftKind.ASR:
        if amount >= 32:
            filled = MASK32 if value & SIGN_BIT else 0
            return filled, bit(value, 31)
        signed = value - 0x100000000 if value & SIGN_BIT else value
        return u32(signed >> amount), bit(value, amount - 1)
    if kind == ShiftKind.ROR:
        amount %= 32
        if amount == 0:
            return value, bit(value, 31)
        result = ror32(value, amount)
        return result, bit(result, 31)
    raise ValueError(f"unknown shift kind {kind}")
