"""A two-pass ARM assembler for the guest ISA subset.

The guest kernel and all workloads in this repository are written in this
assembly dialect (close to UAL) and assembled to real A32 machine words at
load time.  Supported, beyond plain instructions:

- labels (``name:``) and ``.equ name, expr`` constants,
- directives ``.word``, ``.space``, ``.align``, ``.asciz``, ``.org``,
  ``.ltorg`` (flush the literal pool),
- the ``ldr rd, =expr`` pseudo-instruction with an automatic literal pool,
- ``adr rd, label``, ``push {..}`` / ``pop {..}``,
- expressions with ``+ - * << >> & |`` and parentheses over integers,
  character literals and previously-defined symbols.

The assembler is deliberately strict: anything it does not understand is an
:class:`~repro.common.errors.AssemblerError` with the offending line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.bitops import encode_arm_imm, u32
from ..common.errors import AssemblerError, EncodingError
from .encoder import encode
from .isa import (COND_BY_NAME, DATA_PROCESSING_OPS, ArmInsn, Cond, Op,
                  Operand2, ShiftKind, SHIFT_BY_NAME, reg_number, PC, SP)

# ---------------------------------------------------------------------------
# Expression evaluation.
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(<<|>>|0x[0-9a-fA-F]+|0b[01]+|\d+|'(?:\\.|[^'])'|[A-Za-z_.$][\w.$]*"
    r"|[()+\-*&|~])")


class _ExprParser:
    """Recursive-descent parser for assembler expressions."""

    _PRECEDENCE = {"|": 1, "&": 2, "<<": 3, ">>": 3,
                   "+": 4, "-": 4, "*": 5}

    def __init__(self, text: str, symbols: Dict[str, int]):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.symbols = symbols

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens, index = [], 0
        while index < len(text):
            match = _TOKEN_RE.match(text, index)
            if not match:
                if text[index:].strip():
                    raise ValueError(f"bad expression near {text[index:]!r}")
                break
            tokens.append(match.group(1))
            index = match.end()
        return tokens

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._parse_binary(0)
        if self._peek() is not None:
            raise ValueError(f"trailing tokens: {self.tokens[self.pos:]}")
        return value

    def _parse_binary(self, min_precedence: int) -> int:
        left = self._parse_unary()
        while True:
            op = self._peek()
            precedence = self._PRECEDENCE.get(op or "", 0)
            if not precedence or precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            if op == "+":
                left += right
            elif op == "-":
                left -= right
            elif op == "*":
                left *= right
            elif op == "<<":
                left <<= right
            elif op == ">>":
                left >>= right
            elif op == "&":
                left &= right
            elif op == "|":
                left |= right

    def _parse_unary(self) -> int:
        token = self._next()
        if token == "-":
            return -self._parse_unary()
        if token == "~":
            return ~self._parse_unary()
        if token == "(":
            value = self._parse_binary(0)
            if self._next() != ")":
                raise ValueError("missing ')'")
            return value
        if token.startswith("0x"):
            return int(token, 16)
        if token.startswith("0b"):
            return int(token, 2)
        if token.isdigit():
            return int(token)
        if token.startswith("'"):
            body = token[1:-1]
            escapes = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\\\": "\\",
                       "\\'": "'"}
            body = escapes.get(body, body)
            return ord(body)
        if token in self.symbols:
            return self.symbols[token]
        raise ValueError(f"undefined symbol {token!r}")


# ---------------------------------------------------------------------------
# Program container.
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """An assembled guest program ready to load into guest memory."""

    base: int
    data: bytearray
    symbols: Dict[str, int] = field(default_factory=dict)
    listing: Dict[int, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    def entry(self, symbol: str = "_start") -> int:
        return self.symbols.get(symbol, self.base)


# ---------------------------------------------------------------------------
# Statement model (pass 1 output).
# ---------------------------------------------------------------------------


@dataclass
class _Statement:
    kind: str               # 'insn' | 'word' | 'bytes' | 'space' | 'pool'
    addr: int
    size: int
    line_no: int
    source: str
    mnemonic: str = ""
    operands: str = ""
    exprs: List[str] = field(default_factory=list)
    raw: bytes = b""


_BASE_MNEMONICS = sorted(
    ["and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "tst", "teq",
     "cmp", "cmn", "orr", "mov", "bic", "mvn", "mul", "mla",
     "ldrsb", "ldrsh", "ldrb", "ldrh", "ldr", "strb", "strh", "str",
     "ldm", "stm", "push", "pop", "bx", "bl", "b",
     "mrs", "msr", "mcr", "mrc", "vmrs", "vmsr", "cpsie", "cpsid",
     "svc", "wfi", "nop", "clz", "adr",
     "vadd", "vsub", "vmul", "vcmp", "vldr", "vstr", "vmov"],
    key=len, reverse=True)

_OPS_WITH_S = {"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
               "orr", "mov", "bic", "mvn", "mul", "mla"}

_LDM_MODES = {"ia": (False, True), "ib": (True, True),
              "da": (False, False), "db": (True, False),
              "fd": (False, True), "ed": (True, True)}  # ldm aliases
_STM_MODES = {"ia": (False, True), "ib": (True, True),
              "da": (False, False), "db": (True, False),
              "fd": (True, False), "ea": (False, True)}  # stm aliases

_DP_BY_NAME = {op.name.lower(): op for op in DATA_PROCESSING_OPS}


def _split_mnemonic(mnemonic: str):
    """Split a mnemonic into (base, cond, set_flags, ldm_mode).

    Returns None if the mnemonic is not recognized.
    """
    for base in _BASE_MNEMONICS:
        if not mnemonic.startswith(base):
            continue
        rest = mnemonic[len(base):]
        mode = None
        if base in ("ldm", "stm"):
            table = _LDM_MODES if base == "ldm" else _STM_MODES
            if rest[:2] in table:
                mode, rest = table[rest[:2]], rest[2:]
            else:
                mode = (False, True)  # plain ldm/stm == ia
        set_flags = False
        if rest.endswith("s") and base in _OPS_WITH_S:
            candidate = rest[:-1]
            if candidate == "" or candidate in COND_BY_NAME:
                rest, set_flags = candidate, True
        if rest == "":
            return base, Cond.AL, set_flags, mode
        if rest in COND_BY_NAME:
            return base, COND_BY_NAME[rest], set_flags, mode
        # Old-style <cond>s ordering (e.g. "addeqs").
        if rest[:-1] in COND_BY_NAME and rest.endswith("s") \
                and base in _OPS_WITH_S:
            return base, COND_BY_NAME[rest[:-1]], True, mode
        # UAL s<cond> ordering (e.g. "addseq").
        if rest.startswith("s") and rest[1:] in COND_BY_NAME \
                and base in _OPS_WITH_S:
            return base, COND_BY_NAME[rest[1:]], True, mode
    return None


_MSR_FIELD_BITS = {"c": 1, "x": 2, "s": 4, "f": 8}


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0):
        self.base = base
        self.symbols: Dict[str, int] = {}

    # -- public API --------------------------------------------------------

    def assemble(self, source: str, base: Optional[int] = None) -> Program:
        if base is not None:
            self.base = base
        statements = self._pass1(source)
        return self._pass2(statements)

    # -- pass 1: layout ------------------------------------------------------

    def _pass1(self, source: str) -> List[_Statement]:
        statements: List[_Statement] = []
        addr = self.base
        pending_literals: List[Tuple[str, int]] = []  # (expr, use count)

        def flush_pool(line_no: int):
            nonlocal addr
            if not pending_literals:
                return
            for expr, _ in pending_literals:
                statements.append(_Statement("word", addr, 4, line_no,
                                             f".word {expr}", exprs=[expr]))
                self._pool_slots.append((expr, addr))
                addr += 4
            pending_literals.clear()

        self._pool_slots: List[Tuple[str, int]] = []
        self._literal_requests: List[Tuple[int, str]] = []

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = re.split(r"@|//", raw_line, maxsplit=1)[0].strip()
            if not line:
                continue
            # Labels (possibly several on one line).
            while True:
                match = re.match(r"([A-Za-z_.$][\w.$]*):\s*", line)
                if not match:
                    break
                self.symbols[match.group(1)] = addr
                line = line[match.end():]
            if not line:
                continue
            if line.startswith("."):
                addr = self._pass1_directive(line, addr, line_no, statements,
                                             flush_pool)
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = parts[1] if len(parts) > 1 else ""
            statements.append(_Statement("insn", addr, 4, line_no, line,
                                         mnemonic=mnemonic,
                                         operands=operands))
            # Register literal-pool requests for "ldr rd, =expr".
            if mnemonic.startswith("ldr") and "=" in operands:
                expr = operands.split("=", 1)[1].strip()
                pending_literals.append((expr, 1))
            addr += 4
        flush_pool(0)
        return statements

    def _pass1_directive(self, line, addr, line_no, statements, flush_pool):
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".equ":
            try:
                sym, expr = (piece.strip() for piece in rest.split(",", 1))
            except ValueError:
                raise AssemblerError(".equ needs 'name, value'",
                                     line_no, line)
            self.symbols[sym] = self._eval(expr, line_no, line)
            return addr
        if name == ".word":
            exprs = [piece.strip() for piece in rest.split(",")]
            statements.append(_Statement("word", addr, 4 * len(exprs),
                                         line_no, line, exprs=exprs))
            return addr + 4 * len(exprs)
        if name == ".space":
            size = self._eval(rest, line_no, line)
            statements.append(_Statement("space", addr, size, line_no, line))
            return addr + size
        if name == ".align":
            alignment = 1 << (self._eval(rest, line_no, line) if rest else 2)
            padded = (addr + alignment - 1) & ~(alignment - 1)
            if padded != addr:
                statements.append(_Statement("space", addr, padded - addr,
                                             line_no, line))
            return padded
        if name == ".asciz" or name == ".ascii":
            match = re.match(r'"((?:\\.|[^"])*)"', rest)
            if not match:
                raise AssemblerError("bad string literal", line_no, line)
            text = match.group(1).encode().decode("unicode_escape")
            data = text.encode("latin-1") + (b"\0" if name == ".asciz" else b"")
            statements.append(_Statement("bytes", addr, len(data), line_no,
                                         line, raw=data))
            return addr + len(data)
        if name == ".org":
            target = self._eval(rest, line_no, line)
            if target < addr:
                raise AssemblerError(".org cannot move backwards",
                                     line_no, line)
            if target != addr:
                statements.append(_Statement("space", addr, target - addr,
                                             line_no, line))
            return target
        if name == ".ltorg":
            flush_pool(line_no)
            return self._relayout_tail(statements)
        raise AssemblerError(f"unknown directive {name}", line_no, line)

    @staticmethod
    def _relayout_tail(statements: List[_Statement]) -> int:
        last = statements[-1]
        return last.addr + last.size

    # -- pass 2: encoding ----------------------------------------------------

    def _pass2(self, statements: List[_Statement]) -> Program:
        if not statements:
            return Program(self.base, bytearray(), dict(self.symbols))
        end = max(s.addr + s.size for s in statements)
        data = bytearray(end - self.base)
        listing: Dict[int, str] = {}
        pool_by_expr: Dict[str, int] = {}
        for expr, slot_addr in self._pool_slots:
            pool_by_expr.setdefault(expr, slot_addr)

        for statement in statements:
            offset = statement.addr - self.base
            listing[statement.addr] = statement.source
            if statement.kind == "word":
                for i, expr in enumerate(statement.exprs):
                    value = u32(self._eval(expr, statement.line_no,
                                           statement.source))
                    data[offset + 4 * i:offset + 4 * i + 4] = \
                        value.to_bytes(4, "little")
            elif statement.kind == "bytes":
                data[offset:offset + len(statement.raw)] = statement.raw
            elif statement.kind == "space":
                pass
            elif statement.kind == "insn":
                insn = self._parse_insn(statement, pool_by_expr)
                try:
                    word = encode(insn)
                except EncodingError as exc:
                    raise AssemblerError(str(exc), statement.line_no,
                                         statement.source) from exc
                data[offset:offset + 4] = word.to_bytes(4, "little")
        return Program(self.base, data, dict(self.symbols), listing)

    def _eval(self, text: str, line_no: int, source: str) -> int:
        symbols = dict(self.symbols)
        try:
            return _ExprParser(text, symbols).parse()
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, source) from exc

    # -- instruction parsing -------------------------------------------------

    def _parse_insn(self, statement: _Statement,
                    pool_by_expr: Dict[str, int]) -> ArmInsn:
        mnemonic = statement.mnemonic
        if mnemonic.endswith(".f32"):
            statement.mnemonic = mnemonic[:-4]
        split = _split_mnemonic(statement.mnemonic)
        if split is None:
            raise AssemblerError(f"unknown mnemonic {statement.mnemonic!r}",
                                 statement.line_no, statement.source)
        base, cond, set_flags, ldm_mode = split
        try:
            insn = self._build(base, cond, set_flags, ldm_mode, statement,
                               pool_by_expr)
        except (ValueError, KeyError, IndexError) as exc:
            raise AssemblerError(f"bad operands: {exc}", statement.line_no,
                                 statement.source) from exc
        insn.cond = cond
        insn.addr = statement.addr
        return insn

    def _split_operands(self, text: str) -> List[str]:
        """Split on commas that are not inside brackets or braces."""
        pieces, depth, current = [], 0, ""
        for char in text:
            if char in "[{(":
                depth += 1
            elif char in "]})":
                depth -= 1
            if char == "," and depth == 0:
                pieces.append(current.strip())
                current = ""
            else:
                current += char
        if current.strip():
            pieces.append(current.strip())
        return pieces

    def _operand2(self, pieces: List[str], line_no: int,
                  source: str) -> Operand2:
        first = pieces[0]
        if first.startswith("#"):
            return Operand2.immediate(u32(self._eval(first[1:], line_no,
                                                     source)))
        rm = reg_number(first)
        if len(pieces) == 1:
            return Operand2.register(rm)
        shift_text = pieces[1].split()
        shift_name = shift_text[0].lower()
        if shift_name == "rrx":
            return Operand2.register(rm, ShiftKind.RRX)
        shift = SHIFT_BY_NAME[shift_name]
        amount = shift_text[1]
        if amount.startswith("#"):
            return Operand2.register(rm, shift,
                                     self._eval(amount[1:], line_no, source))
        return Operand2.register(rm, shift, rs=reg_number(amount))

    def _build(self, base, cond, set_flags, ldm_mode, statement,
               pool_by_expr) -> ArmInsn:  # noqa: C901
        line_no, source = statement.line_no, statement.source
        ops = self._split_operands(statement.operands)

        if base in _DP_BY_NAME:
            op = _DP_BY_NAME[base]
            if op in (Op.TST, Op.TEQ, Op.CMP, Op.CMN):
                return ArmInsn(op=op, rn=reg_number(ops[0]),
                               op2=self._operand2(ops[1:], line_no, source))
            if op in (Op.MOV, Op.MVN):
                return ArmInsn(op=op, set_flags=set_flags,
                               rd=reg_number(ops[0]),
                               op2=self._operand2(ops[1:], line_no, source))
            return ArmInsn(op=op, set_flags=set_flags, rd=reg_number(ops[0]),
                           rn=reg_number(ops[1]),
                           op2=self._operand2(ops[2:], line_no, source))
        if base == "mul":
            return ArmInsn(op=Op.MUL, set_flags=set_flags,
                           rd=reg_number(ops[0]), rm=reg_number(ops[1]),
                           rs=reg_number(ops[2]))
        if base == "mla":
            return ArmInsn(op=Op.MLA, set_flags=set_flags,
                           rd=reg_number(ops[0]), rm=reg_number(ops[1]),
                           rs=reg_number(ops[2]), rn=reg_number(ops[3]))
        if base in ("ldr", "str", "ldrb", "strb", "ldrh", "strh",
                    "ldrsb", "ldrsh"):
            op = Op[base.upper()]
            rd = reg_number(ops[0])
            rest = statement.operands.split(",", 1)[1].strip()
            if rest.startswith("="):
                return self._pool_load(op, rd, rest[1:].strip(),
                                       statement, pool_by_expr)
            return self._memory_operand(op, rd, rest, line_no, source)
        if base in ("ldm", "stm"):
            op = Op.LDM if base == "ldm" else Op.STM
            rn_text = ops[0]
            writeback = rn_text.endswith("!")
            rn = reg_number(rn_text.rstrip("!"))
            reglist = self._reglist(ops[1])
            before, increment = ldm_mode
            return ArmInsn(op=op, rn=rn, reglist=reglist, writeback=writeback,
                           before=before, increment=increment)
        if base == "push":
            return ArmInsn(op=Op.STM, rn=SP, reglist=self._reglist(ops[0]),
                           writeback=True, before=True, increment=False)
        if base == "pop":
            return ArmInsn(op=Op.LDM, rn=SP, reglist=self._reglist(ops[0]),
                           writeback=True, before=False, increment=True)
        if base in ("b", "bl"):
            target = self._eval(ops[0], line_no, source)
            return ArmInsn(op=Op.B if base == "b" else Op.BL, target=target)
        if base == "bx":
            return ArmInsn(op=Op.BX, rm=reg_number(ops[0]))
        if base == "mrs":
            return ArmInsn(op=Op.MRS, rd=reg_number(ops[0]),
                           spsr=ops[1].lower().startswith("spsr"))
        if base == "msr":
            target_text = ops[0].lower()
            spsr = target_text.startswith("spsr")
            fields = target_text.split("_", 1)[1] if "_" in target_text \
                else "cxsf"
            mask = sum(_MSR_FIELD_BITS[c] for c in fields)
            return ArmInsn(op=Op.MSR, rm=reg_number(ops[1]), imm=mask,
                           spsr=spsr)
        if base in ("mcr", "mrc"):
            # mcr p15, op1, rt, crn, crm, op2
            return ArmInsn(op=Op.MCR if base == "mcr" else Op.MRC,
                           cp_op1=self._eval(ops[1], line_no, source),
                           rd=reg_number(ops[2]),
                           cp_crn=int(ops[3].lstrip("cC")),
                           cp_crm=int(ops[4].lstrip("cC")),
                           cp_op2=self._eval(ops[5], line_no, source)
                           if len(ops) > 5 else 0)
        if base == "vmrs":
            return ArmInsn(op=Op.VMRS, rd=reg_number(ops[0]))
        if base == "vmsr":
            return ArmInsn(op=Op.VMSR, rd=reg_number(ops[1]))
        if base in ("cpsie", "cpsid"):
            return ArmInsn(op=Op.CPS, cps_enable=(base == "cpsie"))
        if base == "svc":
            return ArmInsn(op=Op.SVC,
                           imm=self._eval(ops[0].lstrip("#"), line_no, source))
        if base == "wfi":
            return ArmInsn(op=Op.WFI)
        if base == "nop":
            return ArmInsn(op=Op.NOP)
        if base == "clz":
            return ArmInsn(op=Op.CLZ, rd=reg_number(ops[0]),
                           rm=reg_number(ops[1]))
        if base in ("vadd", "vsub", "vmul"):
            op = {"vadd": Op.VADD, "vsub": Op.VSUB, "vmul": Op.VMUL}[base]
            return ArmInsn(op=op, fd=_sreg(ops[0]), fn=_sreg(ops[1]),
                           fm=_sreg(ops[2]))
        if base == "vcmp":
            return ArmInsn(op=Op.VCMP, fd=_sreg(ops[0]), fm=_sreg(ops[1]))
        if base in ("vldr", "vstr"):
            op = Op.VLDR if base == "vldr" else Op.VSTR
            rest = statement.operands.split(",", 1)[1].strip()
            shell = self._memory_operand(op, 0, rest, line_no, source)
            return ArmInsn(op=op, fd=_sreg(ops[0]), rn=shell.rn,
                           mem_offset_imm=shell.mem_offset_imm,
                           add_offset=shell.add_offset)
        if base == "vmov":
            if ops[0].lower().lstrip().startswith("s"):
                return ArmInsn(op=Op.VMOVSR, fn=_sreg(ops[0]),
                               rd=reg_number(ops[1]))
            return ArmInsn(op=Op.VMOVRS, rd=reg_number(ops[0]),
                           fn=_sreg(ops[1]))
        if base == "adr":
            target = self._eval(ops[1], line_no, source)
            delta = target - (statement.addr + 8)
            op = Op.ADD if delta >= 0 else Op.SUB
            return ArmInsn(op=op, rd=reg_number(ops[0]), rn=PC,
                           op2=Operand2.immediate(abs(delta)))
        raise AssemblerError(f"unhandled mnemonic {base}", line_no, source)

    def _pool_load(self, op, rd, expr, statement, pool_by_expr) -> ArmInsn:
        value = u32(self._eval(expr, statement.line_no, statement.source))
        # Prefer a plain mov/mvn when the constant is encodable.
        if encode_arm_imm(value) is not None:
            return ArmInsn(op=Op.MOV, rd=rd, op2=Operand2.immediate(value))
        if encode_arm_imm(u32(~value)) is not None:
            return ArmInsn(op=Op.MVN, rd=rd,
                           op2=Operand2.immediate(u32(~value)))
        slot = pool_by_expr.get(expr)
        if slot is None:
            raise AssemblerError(f"no literal pool slot for ={expr}",
                                 statement.line_no, statement.source)
        delta = slot - (statement.addr + 8)
        return ArmInsn(op=Op.LDR, rd=rd, rn=PC,
                       mem_offset_imm=abs(delta), add_offset=delta >= 0)

    def _memory_operand(self, op, rd, text, line_no, source) -> ArmInsn:
        text = text.strip()
        match = re.match(r"\[([^\]]*)\]\s*(!?)\s*(?:,\s*(.*))?$", text)
        if not match:
            raise AssemblerError(f"bad memory operand {text!r}", line_no,
                                 source)
        inner, bang, post = match.group(1), match.group(2), match.group(3)
        pieces = self._split_operands(inner)
        insn = ArmInsn(op=op, rd=rd, rn=reg_number(pieces[0]))
        offset_pieces = pieces[1:]
        if post:  # post-indexed: [rn], offset
            insn.pre_indexed = False
            offset_pieces = self._split_operands(post)
        else:
            insn.pre_indexed = True
            insn.writeback = bang == "!"
        if offset_pieces:
            first = offset_pieces[0]
            if first.startswith("#"):
                value = self._eval(first[1:], line_no, source)
                insn.add_offset = value > 0 or (
                    value == 0 and not first[1:].lstrip().startswith("-"))
                insn.mem_offset_imm = abs(value)
            else:
                negative = first.startswith("-")
                insn.add_offset = not negative
                insn.mem_offset_reg = reg_number(first.lstrip("+-"))
                if len(offset_pieces) > 1:
                    shift_text = offset_pieces[1].split()
                    insn.mem_shift = SHIFT_BY_NAME[shift_text[0].lower()]
                    insn.mem_shift_imm = self._eval(
                        shift_text[1].lstrip("#"), line_no, source)
        return insn

    @staticmethod
    def _reglist(text: str) -> List[int]:
        text = text.strip()
        if not (text.startswith("{") and text.endswith("}")):
            raise ValueError(f"bad register list {text!r}")
        regs: List[int] = []
        for piece in text[1:-1].split(","):
            piece = piece.strip()
            if not piece:
                continue
            if "-" in piece:
                lo_text, hi_text = piece.split("-")
                lo, hi = reg_number(lo_text.strip()), reg_number(hi_text.strip())
                regs.extend(range(lo, hi + 1))
            else:
                regs.append(reg_number(piece))
        return sorted(set(regs))


def _sreg(text: str) -> int:
    """Parse a single-precision VFP register name (s0..s31)."""
    text = text.strip().lower()
    if not text.startswith("s") or not text[1:].isdigit():
        raise ValueError(f"bad VFP register {text!r}")
    number = int(text[1:])
    if not 0 <= number <= 31:
        raise ValueError(f"VFP register out of range: {text}")
    return number


def assemble(source: str, base: int = 0,
             symbols: Optional[Dict[str, int]] = None) -> Program:
    """Assemble *source* at *base*; convenience wrapper over Assembler."""
    assembler = Assembler(base)
    if symbols:
        assembler.symbols.update(symbols)
    return assembler.assemble(source)
