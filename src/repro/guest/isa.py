"""ARMv7-A (A32) instruction model.

The emulated guest ISA is the subset of ARMv7-A that the paper's workloads
exercise: the full data-processing group (with condition codes and the
barrel shifter), multiplies, word/byte/halfword loads and stores with all
addressing modes, load/store multiple, branches, the system-level group
(mrs/msr/mcr/mrc/vmrs/vmsr/cps/svc/wfi) and clz.

Instructions are modelled as a single dataclass (:class:`ArmInsn`) whose
meaning is given by its :class:`Op`.  The binary encoder/decoder pair in
:mod:`repro.guest.encoder` / :mod:`repro.guest.decoder` maps these to real
ARM A32 machine words, so guest programs live in guest memory as bytes
exactly as they would on hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

# Register aliases -----------------------------------------------------------

SP = 13
LR = 14
PC = 15

REG_NAMES = [f"r{i}" for i in range(13)] + ["sp", "lr", "pc"]

_REG_ALIASES = {name: i for i, name in enumerate(REG_NAMES)}
_REG_ALIASES.update({f"r{i}": i for i in range(16)})
_REG_ALIASES.update({"fp": 11, "ip": 12, "r13": 13, "r14": 14, "r15": 15})


def reg_number(name: str) -> int:
    """Map a register name (``r0``..``r15``, ``sp``, ``lr``, ``pc``) to its number."""
    try:
        return _REG_ALIASES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register {name!r}") from None


def reg_name(number: int) -> str:
    """Canonical printable name for register *number*."""
    return REG_NAMES[number]


class Cond(enum.IntEnum):
    """ARM condition codes (the values are the cond field encodings)."""

    EQ = 0x0  # Z == 1
    NE = 0x1  # Z == 0
    CS = 0x2  # C == 1 (aka HS)
    CC = 0x3  # C == 0 (aka LO)
    MI = 0x4  # N == 1
    PL = 0x5  # N == 0
    VS = 0x6  # V == 1
    VC = 0x7  # V == 0
    HI = 0x8  # C == 1 and Z == 0
    LS = 0x9  # C == 0 or Z == 1
    GE = 0xA  # N == V
    LT = 0xB  # N != V
    GT = 0xC  # Z == 0 and N == V
    LE = 0xD  # Z == 1 or N != V
    AL = 0xE  # always


COND_NAMES = {
    Cond.EQ: "eq", Cond.NE: "ne", Cond.CS: "cs", Cond.CC: "cc",
    Cond.MI: "mi", Cond.PL: "pl", Cond.VS: "vs", Cond.VC: "vc",
    Cond.HI: "hi", Cond.LS: "ls", Cond.GE: "ge", Cond.LT: "lt",
    Cond.GT: "gt", Cond.LE: "le", Cond.AL: "",
}

COND_BY_NAME = {v: k for k, v in COND_NAMES.items() if v}
COND_BY_NAME.update({"al": Cond.AL, "hs": Cond.CS, "lo": Cond.CC})


class Op(enum.Enum):
    """Instruction mnemonic groups.

    The data-processing members carry their 4-bit A32 opcode field value in
    ``.value`` so the encoder can emit them directly.
    """

    # Data processing (value == A32 opcode field).
    AND = 0x0
    EOR = 0x1
    SUB = 0x2
    RSB = 0x3
    ADD = 0x4
    ADC = 0x5
    SBC = 0x6
    RSC = 0x7
    TST = 0x8
    TEQ = 0x9
    CMP = 0xA
    CMN = 0xB
    ORR = 0xC
    MOV = 0xD
    BIC = 0xE
    MVN = 0xF

    # Multiplies.
    MUL = "mul"
    MLA = "mla"

    # Loads and stores.
    LDR = "ldr"
    STR = "str"
    LDRB = "ldrb"
    STRB = "strb"
    LDRH = "ldrh"
    STRH = "strh"
    LDRSB = "ldrsb"
    LDRSH = "ldrsh"
    LDM = "ldm"
    STM = "stm"

    # Branches.
    B = "b"
    BL = "bl"
    BX = "bx"

    # System level.
    MRS = "mrs"
    MSR = "msr"
    MCR = "mcr"
    MRC = "mrc"
    VMRS = "vmrs"
    VMSR = "vmsr"
    CPS = "cps"
    SVC = "svc"
    WFI = "wfi"
    NOP = "nop"

    # Misc.
    CLZ = "clz"

    # VFP single-precision subset (the paper's footnote-3 extension).
    VADD = "vadd.f32"
    VSUB = "vsub.f32"
    VMUL = "vmul.f32"
    VCMP = "vcmp.f32"
    VLDR = "vldr"
    VSTR = "vstr"
    VMOVSR = "vmov_s_r"   # vmov sN, rT
    VMOVRS = "vmov_r_s"   # vmov rT, sN


DATA_PROCESSING_OPS = frozenset(op for op in Op if isinstance(op.value, int))

#: Data-processing ops that do not write Rd (they only set flags).
COMPARE_OPS = frozenset({Op.TST, Op.TEQ, Op.CMP, Op.CMN})

#: Data-processing ops with a single source operand (no Rn).
UNARY_DP_OPS = frozenset({Op.MOV, Op.MVN})

LOAD_OPS = frozenset({Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSB, Op.LDRSH})
STORE_OPS = frozenset({Op.STR, Op.STRB, Op.STRH})
MEMORY_OPS = LOAD_OPS | STORE_OPS | {Op.LDM, Op.STM, Op.VLDR, Op.VSTR}

#: VFP data-processing ops (single precision).
VFP_ARITH_OPS = frozenset({Op.VADD, Op.VSUB, Op.VMUL})
VFP_OPS = VFP_ARITH_OPS | frozenset({Op.VCMP, Op.VLDR, Op.VSTR,
                                     Op.VMOVSR, Op.VMOVRS})

#: Instructions that must be emulated by a QEMU helper (privileged or
#: coprocessor state); these are the paper's "system-level instructions".
SYSTEM_OPS = frozenset({Op.MRS, Op.MSR, Op.MCR, Op.MRC, Op.VMRS, Op.VMSR,
                        Op.CPS, Op.WFI})

BRANCH_OPS = frozenset({Op.B, Op.BL, Op.BX})


class ShiftKind(enum.IntEnum):
    """Barrel-shifter operation (values are the A32 shift-field encodings)."""

    LSL = 0
    LSR = 1
    ASR = 2
    ROR = 3
    RRX = 4  # encoded as ROR #0


SHIFT_NAMES = {ShiftKind.LSL: "lsl", ShiftKind.LSR: "lsr",
               ShiftKind.ASR: "asr", ShiftKind.ROR: "ror",
               ShiftKind.RRX: "rrx"}
SHIFT_BY_NAME = {v: k for k, v in SHIFT_NAMES.items()}


@dataclass
class Operand2:
    """The flexible second operand of data-processing instructions.

    Either an immediate (``is_imm`` true, value in ``imm``) or a register
    ``rm`` optionally shifted by an immediate amount or by register ``rs``.
    """

    is_imm: bool = False
    imm: int = 0
    rm: int = 0
    shift: ShiftKind = ShiftKind.LSL
    shift_imm: int = 0
    rs: Optional[int] = None  # register shift amount, if any

    @staticmethod
    def immediate(value: int) -> "Operand2":
        return Operand2(is_imm=True, imm=value)

    @staticmethod
    def register(rm: int, shift: ShiftKind = ShiftKind.LSL,
                 shift_imm: int = 0, rs: Optional[int] = None) -> "Operand2":
        return Operand2(is_imm=False, rm=rm, shift=shift,
                        shift_imm=shift_imm, rs=rs)

    def __str__(self) -> str:
        if self.is_imm:
            return f"#{self.imm}"
        text = reg_name(self.rm)
        if self.shift == ShiftKind.RRX:
            return f"{text}, rrx"
        if self.rs is not None:
            return f"{text}, {SHIFT_NAMES[self.shift]} {reg_name(self.rs)}"
        if self.shift_imm or self.shift != ShiftKind.LSL:
            return f"{text}, {SHIFT_NAMES[self.shift]} #{self.shift_imm}"
        return text


@dataclass
class ArmInsn:
    """One decoded/assembled ARM instruction.

    Only the fields relevant to ``op`` are meaningful; the rest keep their
    defaults.  ``addr`` is filled in by the assembler/decoder for
    diagnostics and branch-target computation.
    """

    op: Op
    cond: Cond = Cond.AL
    set_flags: bool = False
    rd: int = 0
    rn: int = 0
    rm: int = 0
    rs: int = 0
    op2: Optional[Operand2] = None

    # Memory addressing (ldr/str family): [rn, offset] with P/U/W.
    mem_offset_imm: int = 0          # unsigned magnitude; sign is `u`
    mem_offset_reg: Optional[int] = None
    mem_shift: ShiftKind = ShiftKind.LSL
    mem_shift_imm: int = 0
    pre_indexed: bool = True         # P bit
    add_offset: bool = True          # U bit
    writeback: bool = False          # W bit

    # ldm/stm.
    reglist: List[int] = field(default_factory=list)
    before: bool = False             # P bit (increment-before)
    increment: bool = True           # U bit

    # Branches.
    target: int = 0                  # absolute byte address

    # System level.
    imm: int = 0                     # svc number, msr mask, cps flags...
    spsr: bool = False               # mrs/msr use SPSR instead of CPSR
    cp_op1: int = 0
    cp_crn: int = 0
    cp_crm: int = 0
    cp_op2: int = 0
    cps_enable: bool = False         # cpsie vs cpsid

    # VFP single-precision register numbers (s0..s31).
    fd: int = 0
    fn: int = 0
    fm: int = 0

    addr: int = 0

    #: The machine word this instruction was decoded from (None for
    #: hand-built instructions).  Excluded from equality so decoded and
    #: assembled instructions still compare equal; the persistent
    #: translation cache uses it to record exact guest bytes.
    raw: Optional[int] = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Classification helpers used by both DBT engines.
    # ------------------------------------------------------------------

    def is_system(self) -> bool:
        """True for the paper's "system-level" category (helper-emulated)."""
        return self.op in SYSTEM_OPS or self.op is Op.SVC or (
            # Flag-setting writes to PC are exception returns.
            self.op in DATA_PROCESSING_OPS and self.set_flags and
            self.rd == PC and self.op not in COMPARE_OPS)

    def is_memory(self) -> bool:
        """True for instructions that access guest memory (need softmmu)."""
        return self.op in MEMORY_OPS

    def is_load(self) -> bool:
        return self.op in LOAD_OPS or self.op in (Op.LDM, Op.VLDR)

    def is_store(self) -> bool:
        return self.op in STORE_OPS or self.op in (Op.STM, Op.VSTR)

    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def writes_pc(self) -> bool:
        """True when executing this instruction may change the PC."""
        if self.op in BRANCH_OPS or self.op is Op.SVC:
            return True
        if self.op in DATA_PROCESSING_OPS and self.op not in COMPARE_OPS:
            return self.rd == PC
        if self.op in LOAD_OPS and self.rd == PC:
            return True
        if self.op is Op.LDM and PC in self.reglist:
            return True
        return False

    def sets_flags(self) -> bool:
        """True when this instruction writes any of N/Z/C/V."""
        if self.op in DATA_PROCESSING_OPS or self.op in (Op.MUL, Op.MLA):
            return self.set_flags
        if self.op is Op.MSR and not self.spsr:
            return bool(self.imm & 0x8)  # mask includes the flags byte
        return self.op is Op.VMRS and self.rd == PC  # vmrs apsr_nzcv

    def reads_flags(self) -> bool:
        """True when this instruction reads N/Z/C/V (condition or ADC/SBC)."""
        if self.cond != Cond.AL:
            return True
        return self.op in (Op.ADC, Op.SBC, Op.RSC) or (
            self.op is Op.MRS and not self.spsr)

    # ------------------------------------------------------------------
    # Pretty printing (the assembler parses this same syntax back).
    # ------------------------------------------------------------------

    def mnemonic(self) -> str:
        base = self.op.name.lower() if not isinstance(self.op.value, str) \
            else self.op.value
        if self.op is Op.CPS:
            base = "cpsie" if self.cps_enable else "cpsid"
        cond = COND_NAMES[self.cond]
        s = "s" if (self.set_flags and (self.op in DATA_PROCESSING_OPS or
                                        self.op in (Op.MUL, Op.MLA)) and
                    self.op not in COMPARE_OPS) else ""
        return f"{base}{cond}{s}"

    def _mem_operand(self) -> str:
        base = reg_name(self.rn)
        if self.mem_offset_reg is not None:
            sign = "" if self.add_offset else "-"
            off = f"{sign}{reg_name(self.mem_offset_reg)}"
            # ror #0 (RRX encoding) must not collapse to "no shift".
            if self.mem_shift_imm or self.mem_shift != ShiftKind.LSL:
                off += f", {SHIFT_NAMES[self.mem_shift]} #{self.mem_shift_imm}"
        else:
            sign = "" if self.add_offset else "-"
            # "#-0" (U clear, offset 0) must not collapse to "#0"/"".
            off = f"#{sign}{self.mem_offset_imm}" \
                if self.mem_offset_imm or not self.add_offset else ""
        if self.pre_indexed:
            inner = f"[{base}, {off}]" if off else f"[{base}]"
            return inner + ("!" if self.writeback else "")
        return f"[{base}], {off or '#0'}"

    def __str__(self) -> str:  # noqa: C901 - a printer is naturally branchy
        m = self.mnemonic()
        op = self.op
        if op in COMPARE_OPS:
            return f"{m} {reg_name(self.rn)}, {self.op2}"
        if op in UNARY_DP_OPS:
            return f"{m} {reg_name(self.rd)}, {self.op2}"
        if op in DATA_PROCESSING_OPS:
            return f"{m} {reg_name(self.rd)}, {reg_name(self.rn)}, {self.op2}"
        if op is Op.MUL:
            return f"{m} {reg_name(self.rd)}, {reg_name(self.rm)}, {reg_name(self.rs)}"
        if op is Op.MLA:
            return (f"{m} {reg_name(self.rd)}, {reg_name(self.rm)}, "
                    f"{reg_name(self.rs)}, {reg_name(self.rn)}")
        if op in LOAD_OPS or op in STORE_OPS:
            return f"{m} {reg_name(self.rd)}, {self._mem_operand()}"
        if op in (Op.LDM, Op.STM):
            suffix = {"ldm": {(False, True): "ia", (True, True): "ib",
                              (False, False): "da", (True, False): "db"},
                      "stm": {(False, True): "ia", (True, True): "ib",
                              (False, False): "da", (True, False): "db"}}
            mode = suffix[op.value][(self.before, self.increment)]
            regs = ", ".join(reg_name(r) for r in sorted(self.reglist))
            wb = "!" if self.writeback else ""
            cond = COND_NAMES[self.cond]
            return f"{op.value}{mode}{cond} {reg_name(self.rn)}{wb}, {{{regs}}}"
        if op in (Op.B, Op.BL):
            return f"{m} 0x{self.target:x}"
        if op is Op.BX:
            return f"{m} {reg_name(self.rm)}"
        if op is Op.MRS:
            src = "spsr" if self.spsr else "cpsr"
            return f"{m} {reg_name(self.rd)}, {src}"
        if op is Op.MSR:
            dst = "spsr" if self.spsr else "cpsr"
            fields = "".join(c for c, bitv in zip("cxsf", (1, 2, 4, 8))
                             if self.imm & bitv)
            return f"{m} {dst}_{fields}, {reg_name(self.rm)}"
        if op in (Op.MCR, Op.MRC):
            return (f"{m} p15, {self.cp_op1}, {reg_name(self.rd)}, "
                    f"c{self.cp_crn}, c{self.cp_crm}, {self.cp_op2}")
        if op is Op.VMRS:
            return f"{m} {reg_name(self.rd)}, fpscr"
        if op is Op.VMSR:
            return f"{m} fpscr, {reg_name(self.rd)}"
        if op is Op.CPS:
            return f"{m} i"
        if op is Op.SVC:
            return f"{m} #{self.imm}"
        if op is Op.CLZ:
            return f"{m} {reg_name(self.rd)}, {reg_name(self.rm)}"
        cond_text = COND_NAMES[self.cond]
        if op in VFP_ARITH_OPS:
            stem = op.value[:-4]  # "vadd.f32" -> "vadd"
            return (f"{stem}{cond_text}.f32 s{self.fd}, s{self.fn}, "
                    f"s{self.fm}")
        if op is Op.VCMP:
            return f"vcmp{cond_text}.f32 s{self.fd}, s{self.fm}"
        if op in (Op.VLDR, Op.VSTR):
            sign = "" if self.add_offset else "-"
            off = f", #{sign}{self.mem_offset_imm}" \
                if self.mem_offset_imm or not self.add_offset else ""
            return (f"{op.value}{cond_text} s{self.fd}, "
                    f"[{reg_name(self.rn)}{off}]")
        if op is Op.VMOVSR:
            return f"vmov{cond_text} s{self.fn}, {reg_name(self.rd)}"
        if op is Op.VMOVRS:
            return f"vmov{cond_text} {reg_name(self.rd)}, s{self.fn}"
        return m  # nop, wfi
