"""ARM A32 binary decoder: 32-bit word -> :class:`~repro.guest.isa.ArmInsn`.

Inverse of :mod:`repro.guest.encoder`; unknown words raise
:class:`~repro.common.errors.DecodingError`.
"""

from __future__ import annotations

from ..common.bitops import bit, bits, decode_arm_imm, sign_extend, u32
from ..common.errors import DecodingError
from .isa import (ArmInsn, Cond, Op, Operand2, ShiftKind)

_DP_BY_OPCODE = {op.value: op for op in Op if isinstance(op.value, int)}
_COMPARES = {0x8, 0x9, 0xA, 0xB}


def _decode_shift(word: int) -> Operand2:
    rm = bits(word, 3, 0)
    shift_kind = ShiftKind(bits(word, 6, 5))
    if bit(word, 4):
        return Operand2.register(rm, shift_kind, rs=bits(word, 11, 8))
    shift_imm = bits(word, 11, 7)
    if shift_kind == ShiftKind.ROR and shift_imm == 0:
        return Operand2.register(rm, ShiftKind.RRX)
    if shift_kind in (ShiftKind.LSR, ShiftKind.ASR) and shift_imm == 0:
        shift_imm = 32  # LSR/ASR #0 encodes a shift of 32
    return Operand2.register(rm, shift_kind, shift_imm)


def _decode_data_processing(word: int, insn_addr: int) -> ArmInsn:
    opcode = bits(word, 24, 21)
    op = _DP_BY_OPCODE[opcode]
    set_flags = bool(bit(word, 20))
    if opcode in _COMPARES and not set_flags:
        raise DecodingError(word, insn_addr)  # MRS/MSR space, handled earlier
    if bit(word, 25):
        op2 = Operand2.immediate(decode_arm_imm(bits(word, 11, 8),
                                                bits(word, 7, 0)))
    else:
        op2 = _decode_shift(word)
    # Compare ops have an SBZ Rd field, MOV/MVN an SBZ Rn: normalize.
    rd = 0 if opcode in _COMPARES else bits(word, 15, 12)
    rn = 0 if opcode in (0xD, 0xF) else bits(word, 19, 16)
    return ArmInsn(op=op, set_flags=set_flags and opcode not in _COMPARES,
                   rd=rd, rn=rn, op2=op2, addr=insn_addr)


def _decode_word_byte_transfer(word: int, insn_addr: int) -> ArmInsn:
    load = bool(bit(word, 20))
    byte = bool(bit(word, 22))
    op = (Op.LDRB if byte else Op.LDR) if load else (Op.STRB if byte else Op.STR)
    pre = bool(bit(word, 24))
    insn = ArmInsn(op=op, rd=bits(word, 15, 12), rn=bits(word, 19, 16),
                   pre_indexed=pre, add_offset=bool(bit(word, 23)),
                   # Post-indexed writeback is implicit (W=1 there encodes
                   # the unsupported LDRT/STRT user-mode variants).
                   writeback=bool(bit(word, 21)) and pre, addr=insn_addr)
    if bit(word, 25):
        insn.mem_offset_reg = bits(word, 3, 0)
        insn.mem_shift = ShiftKind(bits(word, 6, 5))
        insn.mem_shift_imm = bits(word, 11, 7)
    else:
        insn.mem_offset_imm = bits(word, 11, 0)
    return insn


def _decode_halfword_transfer(word: int, insn_addr: int) -> ArmInsn:
    load = bool(bit(word, 20))
    sh = (bit(word, 6) << 1) | bit(word, 5)  # S,H bits
    if load:
        op = {0b01: Op.LDRH, 0b10: Op.LDRSB, 0b11: Op.LDRSH}.get(sh)
    else:
        op = Op.STRH if sh == 0b01 else None
    if op is None:
        raise DecodingError(word, insn_addr)
    pre = bool(bit(word, 24))
    insn = ArmInsn(op=op, rd=bits(word, 15, 12), rn=bits(word, 19, 16),
                   pre_indexed=pre, add_offset=bool(bit(word, 23)),
                   writeback=bool(bit(word, 21)) and pre, addr=insn_addr)
    if bit(word, 22):
        insn.mem_offset_imm = (bits(word, 11, 8) << 4) | bits(word, 3, 0)
    else:
        insn.mem_offset_reg = bits(word, 3, 0)
    return insn


def _decode_block_transfer(word: int, insn_addr: int) -> ArmInsn:
    reglist = [r for r in range(16) if bit(word, r)]
    return ArmInsn(op=Op.LDM if bit(word, 20) else Op.STM,
                   rn=bits(word, 19, 16), reglist=reglist,
                   before=bool(bit(word, 24)), increment=bool(bit(word, 23)),
                   writeback=bool(bit(word, 21)), addr=insn_addr)


def _decode_misc(word: int, insn_addr: int) -> ArmInsn:
    """Decode the 000-group space that is not plain data processing."""
    if word & 0x0FFFFFF0 == 0x012FFF10:
        return ArmInsn(op=Op.BX, rm=bits(word, 3, 0), addr=insn_addr)
    if word & 0x0FFF0FF0 == 0x016F0F10:
        return ArmInsn(op=Op.CLZ, rd=bits(word, 15, 12), rm=bits(word, 3, 0),
                       addr=insn_addr)
    if word & 0x0FBF0FFF == 0x010F0000:
        return ArmInsn(op=Op.MRS, rd=bits(word, 15, 12),
                       spsr=bool(bit(word, 22)), addr=insn_addr)
    if word & 0x0FB0FFF0 == 0x0120F000:
        return ArmInsn(op=Op.MSR, rm=bits(word, 3, 0), imm=bits(word, 19, 16),
                       spsr=bool(bit(word, 22)), addr=insn_addr)
    if word & 0x0FC000F0 == 0x90:  # mul/mla (bit 21 selects accumulate)
        op = Op.MLA if bit(word, 21) else Op.MUL
        return ArmInsn(op=op, rd=bits(word, 19, 16),
                       rn=bits(word, 15, 12) if op is Op.MLA else 0,
                       rs=bits(word, 11, 8), rm=bits(word, 3, 0),
                       set_flags=bool(bit(word, 20)), addr=insn_addr)
    if word & 0x0FFFF0FF == 0x0320F003:
        return ArmInsn(op=Op.WFI, addr=insn_addr)
    if word & 0x0FFFF0FF == 0x0320F000:
        return ArmInsn(op=Op.NOP, addr=insn_addr)
    raise DecodingError(word, insn_addr)


def decode(word: int, insn_addr: int = 0) -> ArmInsn:
    """Decode the 32-bit machine word at *insn_addr*."""
    cond_field = bits(word, 31, 28)
    if cond_field == 0xF:
        if word & 0x0FF00000 == 0x01000000 and bit(word, 7):
            imod = bits(word, 19, 18)
            insn = ArmInsn(op=Op.CPS, cps_enable=(imod == 0b10),
                           addr=insn_addr)
            insn.cond = Cond.AL
            insn.raw = u32(word)
            return insn
        raise DecodingError(word, insn_addr)
    cond = Cond(cond_field)
    group = bits(word, 27, 25)

    insn = None
    if group in (0b000, 0b001):
        is_immediate = group == 0b001
        opcode = bits(word, 24, 21)
        no_s = not bit(word, 20)
        if not is_immediate and (bit(word, 4) and bit(word, 7)):
            if bits(word, 6, 5):
                insn = _decode_halfword_transfer(word, insn_addr)
            else:
                insn = _decode_misc(word, insn_addr)  # mul/mla
        elif opcode in _COMPARES and no_s:
            insn = _decode_misc(word, insn_addr)  # mrs/msr/bx/clz/hints
        else:
            insn = _decode_data_processing(word, insn_addr)
    elif group in (0b010, 0b011):
        if group == 0b011 and bit(word, 4):
            raise DecodingError(word, insn_addr)  # media instructions
        insn = _decode_word_byte_transfer(word, insn_addr)
    elif group == 0b100:
        insn = _decode_block_transfer(word, insn_addr)
    elif group == 0b101:
        offset = sign_extend(bits(word, 23, 0), 24) << 2
        insn = ArmInsn(op=Op.BL if bit(word, 24) else Op.B,
                       target=(insn_addr + 8 + offset) & 0xFFFFFFFF,
                       addr=insn_addr)
    elif group == 0b110:
        # VFP single-precision loads/stores (coprocessor 10).
        if bits(word, 11, 8) == 0b1010 and bit(word, 21) == 0 and \
                bit(word, 24):
            fd = (bits(word, 15, 12) << 1) | bit(word, 22)
            insn = ArmInsn(op=Op.VLDR if bit(word, 20) else Op.VSTR,
                           fd=fd, rn=bits(word, 19, 16),
                           mem_offset_imm=bits(word, 7, 0) << 2,
                           add_offset=bool(bit(word, 23)), addr=insn_addr)
    elif group == 0b111:
        if bit(word, 24):
            insn = ArmInsn(op=Op.SVC, imm=bits(word, 23, 0), addr=insn_addr)
        elif bit(word, 4):  # coprocessor register transfers
            if word & 0x0FF00FF0 == 0x0EF00A10:
                insn = ArmInsn(op=Op.VMRS, rd=bits(word, 15, 12),
                               addr=insn_addr)
            elif word & 0x0FF00FF0 == 0x0EE00A10:
                insn = ArmInsn(op=Op.VMSR, rd=bits(word, 15, 12),
                               addr=insn_addr)
            elif bits(word, 11, 8) == 0b1010 and \
                    word & 0x0FE00F7F == 0x0E000A10:
                fn = (bits(word, 19, 16) << 1) | bit(word, 7)
                op = Op.VMOVRS if bit(word, 20) else Op.VMOVSR
                insn = ArmInsn(op=op, fn=fn, rd=bits(word, 15, 12),
                               addr=insn_addr)
            else:
                op = Op.MRC if bit(word, 20) else Op.MCR
                insn = ArmInsn(op=op, cp_op1=bits(word, 23, 21),
                               cp_crn=bits(word, 19, 16),
                               rd=bits(word, 15, 12),
                               cp_op2=bits(word, 7, 5),
                               cp_crm=bits(word, 3, 0), addr=insn_addr)
        elif bits(word, 11, 9) == 0b101 and bit(word, 8) == 0:
            # VFP single-precision data processing.
            fd = (bits(word, 15, 12) << 1) | bit(word, 22)
            fn = (bits(word, 19, 16) << 1) | bit(word, 7)
            fm = (bits(word, 3, 0) << 1) | bit(word, 5)
            if word & 0x0FBF0FD0 == 0x0EB40A40:
                insn = ArmInsn(op=Op.VCMP, fd=fd, fm=fm, addr=insn_addr)
            elif word & 0x0FB00F50 == 0x0E300A00:
                insn = ArmInsn(op=Op.VADD, fd=fd, fn=fn, fm=fm,
                               addr=insn_addr)
            elif word & 0x0FB00F50 == 0x0E300A40:
                insn = ArmInsn(op=Op.VSUB, fd=fd, fn=fn, fm=fm,
                               addr=insn_addr)
            elif word & 0x0FB00F50 == 0x0E200A00:
                insn = ArmInsn(op=Op.VMUL, fd=fd, fn=fn, fm=fm,
                               addr=insn_addr)
    if insn is None:
        raise DecodingError(word, insn_addr)
    insn.cond = cond
    insn.raw = u32(word)
    return insn
