"""ARMv7-A guest ISA: model, assembler, codecs, CPU state, interpreter."""

from .asm import Assembler, Program, assemble
from .cpu import GuestCpu
from .decoder import decode
from .encoder import encode
from .interp import Interpreter, condition_passed
from .isa import ArmInsn, Cond, Op, Operand2, ShiftKind

__all__ = [
    "ArmInsn", "Assembler", "Cond", "GuestCpu", "Interpreter", "Op",
    "Operand2", "Program", "ShiftKind", "assemble", "condition_passed",
    "decode", "encode",
]
