"""Reference ARMv7 interpreter.

This interpreter defines the architectural semantics against which both
DBT engines are differentially tested, and it doubles as the "native
execution" baseline for Figure 18 (one guest instruction == one unit of
native time).

It executes against a :class:`~repro.guest.cpu.GuestCpu` and a *bus*
object providing::

    fetch(vaddr) -> int            # 32-bit instruction fetch
    load(vaddr, size) -> int       # 1/2/4-byte data read (zero-extended)
    store(vaddr, size, value)      # 1/2/4-byte data write
    tlb_flush()                    # invalidate cached translations

Memory errors are raised as :class:`~repro.common.errors.MemoryFault` and
turned into guest data/prefetch aborts here, exactly as the softmmu slow
path does for the DBT engines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..common.bitops import sign_extend, u32
from ..common.errors import DecodingError, MemoryFault, UndefinedInstruction
from .cpu import (CPSR_C, CPSR_I, CPSR_V, GuestCpu, MODE_ABT, MODE_IRQ,
                  MODE_SVC, MODE_UND, MODE_USR, VECTOR_DATA_ABORT,
                  VECTOR_IRQ, VECTOR_PREFETCH_ABORT, VECTOR_SVC,
                  VECTOR_UNDEF)
from .decoder import decode
from .flags import add_with_carry, nz, shift_with_carry
from .isa import (COMPARE_OPS, DATA_PROCESSING_OPS, VFP_OPS, ArmInsn,
                  Cond, Op, Operand2, PC, LR, ShiftKind)
from ..common.f32 import f32_add, f32_compare, f32_mul, f32_sub


def condition_passed(cond: Cond, cpsr: int) -> bool:
    """Evaluate an ARM condition code against CPSR NZCV."""
    n = (cpsr >> 31) & 1
    z = (cpsr >> 30) & 1
    c = (cpsr >> 29) & 1
    v = (cpsr >> 28) & 1
    if cond == Cond.AL:
        return True
    table = {
        Cond.EQ: z == 1, Cond.NE: z == 0,
        Cond.CS: c == 1, Cond.CC: c == 0,
        Cond.MI: n == 1, Cond.PL: n == 0,
        Cond.VS: v == 1, Cond.VC: v == 0,
        Cond.HI: c == 1 and z == 0, Cond.LS: c == 0 or z == 1,
        Cond.GE: n == v, Cond.LT: n != v,
        Cond.GT: z == 0 and n == v, Cond.LE: z == 1 or n != v,
    }
    return table[cond]


class Interpreter:
    """Executes guest instructions one at a time (the reference engine)."""

    def __init__(self, cpu: GuestCpu, bus):
        self.cpu = cpu
        self.bus = bus
        self.icount = 0
        self._decode_cache: Dict[Tuple[int, int], ArmInsn] = {}

    # ------------------------------------------------------------------
    # Top-level stepping.
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or take a pending interrupt)."""
        cpu = self.cpu
        if cpu.irq_line and cpu.irqs_enabled:
            # IRQ entry: LR_irq = address of next instruction + 4.
            cpu.take_exception(MODE_IRQ, VECTOR_IRQ, cpu.regs[PC] + 4)
            return
        if cpu.halted:
            return
        pc = cpu.regs[PC]
        try:
            word = self.bus.fetch(pc)
        except MemoryFault:
            cpu.take_exception(MODE_ABT, VECTOR_PREFETCH_ABORT, pc + 4)
            return
        key = (pc, word)
        insn = self._decode_cache.get(key)
        if insn is None:
            try:
                insn = decode(word, pc)
            except DecodingError:
                self.icount += 1
                cpu.take_exception(MODE_UND, VECTOR_UNDEF, pc + 4)
                return
            if len(self._decode_cache) > 65536:
                self._decode_cache.clear()
            self._decode_cache[key] = insn
        self.icount += 1
        if not condition_passed(insn.cond, cpu.cpsr):
            cpu.regs[PC] = u32(pc + 4)
            return
        try:
            self._execute(insn)
        except UndefinedInstruction:
            cpu.take_exception(MODE_UND, VECTOR_UNDEF, pc + 4)
        except MemoryFault as fault:
            cpu.cp15.dfar = fault.vaddr
            cpu.cp15.dfsr = 0x805 if fault.is_write else 0x5
            cpu.take_exception(MODE_ABT, VECTOR_DATA_ABORT, pc + 8)

    def run(self, max_insns: int) -> int:
        """Run up to *max_insns* instructions; returns how many executed."""
        start = self.icount
        while self.icount - start < max_insns and not self.cpu.halted:
            self.step()
        return self.icount - start

    # ------------------------------------------------------------------
    # Operand evaluation.
    # ------------------------------------------------------------------

    def _reg(self, number: int) -> int:
        """Register read; the PC reads as the instruction address + 8."""
        value = self.cpu.regs[number]
        return u32(value + 8) if number == PC else value

    def _operand2(self, op2: Operand2) -> Tuple[int, int]:
        """Evaluate a flexible operand, returning (value, shifter_carry)."""
        carry_in = self.cpu.flag(CPSR_C)
        if op2.is_imm:
            # Immediate carry-out: bit 31 for rotated immediates, else C.
            if op2.imm > 0xFF:
                return op2.imm, (op2.imm >> 31) & 1
            return op2.imm, carry_in
        value = self._reg(op2.rm)
        if op2.rs is not None:
            amount = self.cpu.regs[op2.rs] & 0xFF
            if amount == 0:
                return value, carry_in
            return shift_with_carry(value, op2.shift, amount, carry_in)
        return shift_with_carry(value, op2.shift, op2.shift_imm, carry_in)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _execute(self, insn: ArmInsn) -> None:  # noqa: C901
        op = insn.op
        if op in DATA_PROCESSING_OPS:
            self._exec_data_processing(insn)
        elif op in (Op.MUL, Op.MLA):
            self._exec_multiply(insn)
        elif op in (Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSB, Op.LDRSH,
                    Op.STR, Op.STRB, Op.STRH):
            self._exec_single_transfer(insn)
        elif op in (Op.LDM, Op.STM):
            self._exec_block_transfer(insn)
        elif op in (Op.B, Op.BL, Op.BX):
            self._exec_branch(insn)
        elif op is Op.SVC:
            self.cpu.take_exception(MODE_SVC, VECTOR_SVC, insn.addr + 4)
        elif op in VFP_OPS:
            self._exec_vfp(insn)
        else:
            self._exec_system(insn)

    def _advance(self) -> None:
        self.cpu.regs[PC] = u32(self.cpu.regs[PC] + 4)

    def _exec_data_processing(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        op = insn.op
        carry_in = cpu.flag(CPSR_C)
        operand2, shifter_carry = self._operand2(insn.op2)
        operand1 = self._reg(insn.rn)
        result, carry, overflow = 0, shifter_carry, cpu.flag(CPSR_V)

        if op in (Op.AND, Op.TST):
            result = operand1 & operand2
        elif op in (Op.EOR, Op.TEQ):
            result = operand1 ^ operand2
        elif op in (Op.SUB, Op.CMP):
            result, carry, overflow = add_with_carry(
                operand1, ~operand2, 1)
        elif op is Op.RSB:
            result, carry, overflow = add_with_carry(
                operand2, ~operand1, 1)
        elif op in (Op.ADD, Op.CMN):
            result, carry, overflow = add_with_carry(operand1, operand2, 0)
        elif op is Op.ADC:
            result, carry, overflow = add_with_carry(operand1, operand2,
                                                     carry_in)
        elif op is Op.SBC:
            result, carry, overflow = add_with_carry(operand1, ~operand2,
                                                     carry_in)
        elif op is Op.RSC:
            result, carry, overflow = add_with_carry(operand2, ~operand1,
                                                     carry_in)
        elif op is Op.ORR:
            result = operand1 | operand2
        elif op is Op.MOV:
            result = operand2
        elif op is Op.BIC:
            result = operand1 & ~operand2
        elif op is Op.MVN:
            result = ~operand2
        result = u32(result)

        if op in COMPARE_OPS:
            n, z = nz(result)
            cpu.set_nzcv(n, z, carry, overflow)
            self._advance()
            return

        if insn.rd == PC:
            if insn.set_flags:
                # Exception return: CPSR <- SPSR (privileged only).
                if cpu.mode == MODE_USR:
                    raise UndefinedInstruction("exception return in user mode")
                cpu.exception_return(result & ~1)
            else:
                cpu.regs[PC] = result & ~3 & 0xFFFFFFFF
            return

        cpu.regs[insn.rd] = result
        if insn.set_flags:
            n, z = nz(result)
            cpu.set_nzcv(n, z, carry, overflow)
        self._advance()

    def _exec_multiply(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        result = cpu.regs[insn.rm] * cpu.regs[insn.rs]
        if insn.op is Op.MLA:
            result += cpu.regs[insn.rn]
        result = u32(result)
        cpu.regs[insn.rd] = result
        if insn.set_flags:
            n, z = nz(result)
            cpu.set_nzcv(n, z, cpu.flag(CPSR_C), cpu.flag(CPSR_V))
        self._advance()

    def _mem_offset(self, insn: ArmInsn) -> int:
        if insn.mem_offset_reg is not None:
            value, _ = shift_with_carry(self.cpu.regs[insn.mem_offset_reg],
                                        insn.mem_shift, insn.mem_shift_imm,
                                        self.cpu.flag(CPSR_C))
            offset = value
        else:
            offset = insn.mem_offset_imm
        return offset if insn.add_offset else -offset

    def _exec_single_transfer(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        base = self._reg(insn.rn)
        offset = self._mem_offset(insn)
        address = u32(base + offset) if insn.pre_indexed else u32(base)

        size = {Op.LDR: 4, Op.STR: 4, Op.LDRB: 1, Op.STRB: 1, Op.LDRH: 2,
                Op.STRH: 2, Op.LDRSB: 1, Op.LDRSH: 2}[insn.op]
        if insn.op in (Op.STR, Op.STRB, Op.STRH):
            value = self._reg(insn.rd) & ((1 << (8 * size)) - 1)
            self.bus.store(address, size, value)
        else:
            value = self.bus.load(address, size)
            if insn.op in (Op.LDRSB, Op.LDRSH):
                value = u32(sign_extend(value, 8 * size))
        # Base writeback happens only after a successful access.
        if not insn.pre_indexed:
            cpu.regs[insn.rn] = u32(base + offset)
        elif insn.writeback:
            cpu.regs[insn.rn] = address
        if insn.op not in (Op.STR, Op.STRB, Op.STRH):
            if insn.rd == PC:
                cpu.regs[PC] = value & ~3 & 0xFFFFFFFF
                return
            cpu.regs[insn.rd] = value
        self._advance()

    def _exec_block_transfer(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        count = len(insn.reglist)
        base = cpu.regs[insn.rn]
        if insn.increment:
            start = base + 4 if insn.before else base
            new_base = base + 4 * count
        else:
            start = base - 4 * count + (0 if insn.before else 4)
            new_base = base - 4 * count
        address = u32(start)
        loaded_pc = None
        for reg in sorted(insn.reglist):
            if insn.op is Op.STM:
                self.bus.store(address, 4, self._reg(reg))
            else:
                value = self.bus.load(address, 4)
                if reg == PC:
                    loaded_pc = value
                else:
                    cpu.regs[reg] = value
            address = u32(address + 4)
        if insn.writeback:
            cpu.regs[insn.rn] = u32(new_base)
        if loaded_pc is not None:
            cpu.regs[PC] = loaded_pc & ~3 & 0xFFFFFFFF
            return
        self._advance()

    def _exec_branch(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        if insn.op is Op.BX:
            cpu.regs[PC] = cpu.regs[insn.rm] & ~1 & 0xFFFFFFFF
            return
        if insn.op is Op.BL:
            cpu.regs[LR] = u32(insn.addr + 4)
        cpu.regs[PC] = u32(insn.target)

    def _exec_vfp(self, insn: ArmInsn) -> None:
        cpu = self.cpu
        op = insn.op
        if op is Op.VADD:
            cpu.vfp[insn.fd] = f32_add(cpu.vfp[insn.fn], cpu.vfp[insn.fm])
        elif op is Op.VSUB:
            cpu.vfp[insn.fd] = f32_sub(cpu.vfp[insn.fn], cpu.vfp[insn.fm])
        elif op is Op.VMUL:
            cpu.vfp[insn.fd] = f32_mul(cpu.vfp[insn.fn], cpu.vfp[insn.fm])
        elif op is Op.VCMP:
            nzcv = f32_compare(cpu.vfp[insn.fd], cpu.vfp[insn.fm])
            cpu.fpscr = (cpu.fpscr & 0x0FFFFFFF) | (nzcv << 28)
        elif op is Op.VLDR or op is Op.VSTR:
            offset = insn.mem_offset_imm if insn.add_offset \
                else -insn.mem_offset_imm
            address = u32(self._reg(insn.rn) + offset)
            if op is Op.VLDR:
                cpu.vfp[insn.fd] = self.bus.load(address, 4)
            else:
                self.bus.store(address, 4, cpu.vfp[insn.fd])
        elif op is Op.VMOVSR:
            cpu.vfp[insn.fn] = cpu.regs[insn.rd]
        else:  # VMOVRS
            cpu.regs[insn.rd] = cpu.vfp[insn.fn]
        self._advance()

    def _exec_system(self, insn: ArmInsn) -> None:  # noqa: C901
        cpu = self.cpu
        op = insn.op
        privileged = cpu.mode != MODE_USR
        if op is Op.MRS:
            cpu.regs[insn.rd] = cpu.spsr if insn.spsr else cpu.cpsr
        elif op is Op.MSR:
            value = cpu.regs[insn.rm]
            if insn.spsr:
                cpu.spsr = self._merge_psr(cpu.spsr, value, insn.imm, True)
            else:
                merged = self._merge_psr(cpu.cpsr, value, insn.imm,
                                         privileged)
                cpu.write_cpsr(merged)
        elif op in (Op.MCR, Op.MRC):
            if not privileged:
                raise UndefinedInstruction("cp15 access in user mode")
            if op is Op.MRC:
                cpu.regs[insn.rd] = cpu.cp15.read(
                    insn.cp_crn, insn.cp_crm, insn.cp_op1, insn.cp_op2)
            else:
                flush = cpu.cp15.write(insn.cp_crn, insn.cp_crm, insn.cp_op1,
                                       insn.cp_op2, cpu.regs[insn.rd])
                if flush:
                    self.bus.tlb_flush()
        elif op is Op.VMRS:
            if insn.rd == PC:  # vmrs apsr_nzcv, fpscr
                cpu.cpsr = (cpu.cpsr & 0x0FFFFFFF) | (cpu.fpscr & 0xF0000000)
            else:
                cpu.regs[insn.rd] = cpu.fpscr
        elif op is Op.VMSR:
            cpu.fpscr = cpu.regs[insn.rd]
        elif op is Op.CPS:
            if privileged:
                cpu.set_flag(CPSR_I, 0 if insn.cps_enable else 1)
        elif op is Op.WFI:
            cpu.halted = True
        elif op is Op.CLZ:
            value = cpu.regs[insn.rm]
            cpu.regs[insn.rd] = 32 - value.bit_length()
        elif op is Op.NOP:
            pass
        else:
            raise UndefinedInstruction(str(insn))
        self._advance()

    @staticmethod
    def _merge_psr(old: int, new: int, mask: int, privileged: bool) -> int:
        """Apply an MSR field mask (c/x/s/f) to a PSR value."""
        byte_masks = [0x000000FF, 0x0000FF00, 0x00FF0000, 0xFF000000]
        merged = old
        for index, byte_mask in enumerate(byte_masks):
            if not mask & (1 << index):
                continue
            if index == 0 and not privileged:
                continue  # user mode cannot change the control byte
            merged = (merged & ~byte_mask & 0xFFFFFFFF) | (new & byte_mask)
        return merged
