"""Persistent cross-run translation cache (warm start).

Rules-tier translation blocks survive across runs: after a run the
engine's surviving TBs are serialized — host code, metadata, the PR 3
justification records and PR 2 coordination accounting included — to a
store keyed by a fingerprint of the translation context (rulebook,
OptConfig, cost-model version, format version).  The next run with the
same context loads them back instead of re-translating, after
re-validating each entry's exact guest bytes against live memory.

Usage::

    loader = attach_cache(machine, cache_dir)   # before machine.run()
    machine.run(...)
    if loader is not None:
        loader.save()                            # persist fresh TBs

See ``docs/caching.md`` for the design and invariants.
"""

from __future__ import annotations

from typing import Optional

from .fingerprint import (FORMAT_VERSION, context_fingerprint,
                          fingerprint_key)
from .loader import CacheLoader
from .store import (CacheStore, UnpersistableTB, clear_stores,
                    iter_store_dirs, serialize_tb, store_info, verify_store)

__all__ = [
    "FORMAT_VERSION", "CacheLoader", "CacheStore", "UnpersistableTB",
    "attach_cache", "clear_stores", "context_fingerprint",
    "fingerprint_key", "iter_store_dirs", "serialize_tb", "store_info",
    "verify_store",
]


def attach_cache(machine, cache_dir: str) -> Optional[CacheLoader]:
    """Wire a persistent translation cache into *machine*.

    Only engines with a rules tier persist anything; for interp/tcg
    machines this is a no-op returning ``None``.  The returned loader's
    :meth:`~CacheLoader.save` must be called after the run to persist
    freshly translated blocks.
    """
    engine = getattr(machine, "engine", None)
    if engine is None or "rules" not in getattr(engine, "tiers", ()):
        return None
    loader = CacheLoader(machine, engine, cache_dir)
    engine.persistent = loader
    engine.cache.add_evict_listener(loader.on_cache_evict)
    loader.load_index()
    return loader
