"""Context fingerprinting for the persistent translation cache.

A persisted rules-tier TB is only reusable when *everything* that went
into translating it is unchanged: the rulebook (learned rules +
structural restrictions), the optimization configuration (which decides
sync elision, scheduling, inter-TB behaviour), the cost model (persisted
blocks re-charge the same modelled translation cost, so the constants
are part of the contract), and the on-disk format itself.  The
fingerprint binds a store directory to that context plus the loaded
guest image; on top of that, the *guest code bytes* are bound per entry
(each entry records its exact machine words and is re-validated against
guest memory at load, see :mod:`repro.cache.loader`), which is what
makes runtime self-modification safe across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict

#: Bump on any incompatible change to the serialized entry layout.
FORMAT_VERSION = 1

#: Store manifest schema tag.
SCHEMA = "repro-tb-cache"


def cost_model_digest() -> str:
    """Digest of every cost-model constant (persisted TBs re-charge the
    modelled translation cost, so a recalibration invalidates stores)."""
    from ..common import costmodel

    constants = sorted(
        (name, value) for name, value in vars(costmodel).items()
        if name.isupper() and isinstance(value, (int, float)))
    return _digest(constants)[:16]


def rulebook_identity(rulebook: Any) -> str:
    """The static identity of a rulebook (filter chain included).

    Runtime quarantine state is deliberately excluded: it starts empty
    every run, and quarantined rules are re-checked per entry at load
    time (see ``CacheLoader.fetch``).
    """
    return str(getattr(rulebook, "name", type(rulebook).__name__))


def guest_image_digest(data: bytes) -> str:
    """Digest of the loaded guest image (initial RAM contents).

    Part of the store key: different programs loaded at overlapping
    addresses must not share per-pc entries.  *Runtime* self-modification
    is invisible here by design — it is caught by the per-entry guest
    byte validation at load time instead."""
    return hashlib.sha256(data).hexdigest()[:16]


def context_fingerprint(rulebook: Any, config: Any,
                        image: str = "") -> Dict[str, Any]:
    """The full store-keying context as a JSON-able dict."""
    return {
        "format_version": FORMAT_VERSION,
        "rulebook": rulebook_identity(rulebook),
        "opt_config": asdict(config),
        "cost_model": cost_model_digest(),
        "guest_image": image,
    }


def fingerprint_key(fp: Dict[str, Any]) -> str:
    """Stable directory name for one context fingerprint."""
    return _digest(fp)[:16]


def _digest(obj: Any) -> str:
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def entry_checksum(entry: Dict[str, Any]) -> str:
    """Integrity checksum over one serialized entry (minus the checksum
    field itself): ``repro cache verify`` and the load path both use it
    to reject tampered or corrupted stores."""
    scrubbed = {key: value for key, value in entry.items()
                if key != "sha256"}
    return _digest(scrubbed)
