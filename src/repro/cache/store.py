"""On-disk store for persisted rules-tier translation blocks.

Layout (one *store* per context fingerprint, see
:mod:`repro.cache.fingerprint`)::

    <cache-dir>/
        <fingerprint-key>/
            manifest.json     schema, format version, fingerprint, counts
            entries.json      serialized TBs keyed by (pc, mmu_idx)

Every entry carries its exact guest machine words (address-ordered) and
a per-entry integrity checksum; the manifest carries a whole-payload
checksum.  Writes are atomic (temp file + ``os.replace``), so a killed
run never leaves a half-written store — at worst a stale one, which the
next run's load-time validation evicts entry by entry.

Serialization notes:

- Host instructions are dicts of their non-default fields; ``helper``
  callables serialize as the ``persist`` spec stamped by the factories
  in :mod:`repro.miniqemu.helpers` — a TB whose code calls a helper
  without a spec (e.g. one injected by the fault injector) is simply
  not persistable.
- ``meta`` is persisted as-is (it is JSON-friendly by design: the PR 2
  sync-site counters and the PR 3 audit/justification records are plain
  dicts), except ``original_insns`` — the pre-scheduling instruction
  objects.  When scheduling reordered the block, the entry records the
  scheduled address order (``insn_order``); the loader re-decodes the
  words and rebuilds both the scheduled ``guest_insns`` list and the
  address-ordered ``original_insns``.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..host.isa import Imm, Mem, Reg, X86Cond, X86Insn, X86Op, Xmm
from .fingerprint import (FORMAT_VERSION, SCHEMA, entry_checksum,
                          fingerprint_key)

#: meta keys handled specially by (de)serialization.
ORIGINAL_INSNS_KEY = "original_insns"
PROVENANCE_KEY = "provenance"


class UnpersistableTB(Exception):
    """This TB cannot be represented in the store (not a data error)."""


# ---------------------------------------------------------------------------
# Host-code serialization.
# ---------------------------------------------------------------------------


def _encode_operand(operand: Any) -> Any:
    if operand is None:
        return None
    if isinstance(operand, Reg):
        return ["r", operand.number]
    if isinstance(operand, Imm):
        return ["i", operand.value]
    if isinstance(operand, Xmm):
        return ["x", operand.number]
    if isinstance(operand, Mem):
        return ["m", operand.base, operand.disp, operand.index,
                operand.scale, operand.size]
    if isinstance(operand, int):
        return ["n", operand]
    raise UnpersistableTB(f"operand {operand!r}")


def _decode_operand(blob: Any) -> Any:
    if blob is None:
        return None
    kind = blob[0]
    if kind == "r":
        return Reg(blob[1])
    if kind == "i":
        return Imm(blob[1])
    if kind == "x":
        return Xmm(blob[1])
    if kind == "m":
        return Mem(base=blob[1], disp=blob[2], index=blob[3],
                   scale=blob[4], size=blob[5])
    if kind == "n":
        return blob[1]
    raise ValueError(f"bad operand blob {blob!r}")


def _encode_insn(insn: X86Insn) -> Dict[str, Any]:
    blob: Dict[str, Any] = {"op": insn.op.name}
    if insn.dst is not None:
        blob["dst"] = _encode_operand(insn.dst)
    if insn.src is not None:
        blob["src"] = _encode_operand(insn.src)
    if insn.cond is not None:
        blob["cond"] = insn.cond.name
    if insn.label is not None:
        blob["label"] = insn.label
    if insn.helper is not None:
        spec = getattr(insn.helper, "persist", None)
        if spec is None:
            raise UnpersistableTB(
                f"helper {getattr(insn.helper, '__name__', '?')} has no "
                f"persist spec")
        blob["helper"] = list(spec)
    if insn.helper_args:
        blob["args"] = [_encode_operand(arg) for arg in insn.helper_args]
    if insn.imm:
        blob["imm"] = insn.imm
    if insn.tag != "code":
        blob["tag"] = insn.tag
    if insn.target_index != -1:
        blob["ti"] = insn.target_index
    return blob


#: Enum members by name, hoisted out of the per-instruction hot path
#: (the warm-start loader decodes tens of host insns per fetched TB).
_X86_OPS = {op.name: op for op in X86Op}
_X86_CONDS = {cond.name: cond for cond in X86Cond}


def decode_insn(blob: Dict[str, Any], resolve_helper) -> X86Insn:
    """Rebuild one host instruction; *resolve_helper* maps a persist
    spec (list) back to a live helper callable."""
    get = blob.get
    helper_spec = get("helper")
    args = get("args")
    cond = get("cond")
    return X86Insn(
        op=_X86_OPS[blob["op"]],
        dst=_decode_operand(get("dst")),
        src=_decode_operand(get("src")),
        cond=_X86_CONDS[cond] if cond is not None else None,
        label=get("label"),
        helper=resolve_helper(helper_spec) if helper_spec is not None
        else None,
        helper_args=tuple(_decode_operand(arg) for arg in args)
        if args else (),
        imm=get("imm", 0),
        tag=get("tag", "code"),
        target_index=get("ti", -1),
    )


# ---------------------------------------------------------------------------
# TB -> entry.
# ---------------------------------------------------------------------------


def serialize_tb(tb) -> Dict[str, Any]:
    """Serialize one rules-tier TB to a checksummed entry dict.

    Raises :class:`UnpersistableTB` for blocks the store cannot
    represent (non-rules tier, injected instrumentation, helpers
    without persist specs, instructions without raw words)."""
    meta = tb.meta
    if meta.get("tier") != "rules":
        raise UnpersistableTB(f"tier {meta.get('tier')!r}")
    if meta.get("injected"):
        raise UnpersistableTB("fault-injected TB")
    by_addr = sorted(tb.guest_insns, key=lambda insn: insn.addr)
    words: List[int] = []
    for index, insn in enumerate(by_addr):
        if insn.raw is None:
            raise UnpersistableTB(f"no raw word at 0x{insn.addr:08x}")
        if insn.addr != tb.pc + 4 * index:
            raise UnpersistableTB("non-contiguous guest block")
        words.append(insn.raw)
    entry: Dict[str, Any] = {
        "pc": tb.pc,
        "mmu_idx": tb.mmu_idx,
        "words": words,
        "code": [_encode_insn(insn) for insn in tb.code],
        "jmp_pc": list(tb.jmp_pc),
    }
    meta_blob = {key: value for key, value in meta.items()
                 if key not in (ORIGINAL_INSNS_KEY, PROVENANCE_KEY)}
    scheduled = [insn.addr for insn in tb.guest_insns]
    if scheduled != [insn.addr for insn in by_addr]:
        entry["insn_order"] = scheduled
    try:
        entry["meta"] = json.loads(json.dumps(meta_blob))
    except (TypeError, ValueError) as error:
        raise UnpersistableTB(f"non-JSON meta: {error}") from None
    entry["sha256"] = entry_checksum(entry)
    return entry


# ---------------------------------------------------------------------------
# The store.
# ---------------------------------------------------------------------------


class CacheStore:
    """One fingerprint-keyed store directory under ``--cache-dir``."""

    def __init__(self, root: str, fingerprint: Dict[str, Any]):
        self.root = root
        self.fingerprint = fingerprint
        self.key = fingerprint_key(fingerprint)
        self.directory = os.path.join(root, self.key)

    # -- reading ------------------------------------------------------------

    def load(self) -> Tuple[Dict[Tuple[int, int], Dict[str, Any]],
                            List[str]]:
        """Read all entries; returns ``(entries, problems)``.

        Unreadable or mismatched stores return no entries (the engine
        falls back to fresh translation); per-entry integrity is
        checked by the loader at attach (``CacheLoader.load_index``)."""
        manifest = _read_json(os.path.join(self.directory,
                                           "manifest.json"))
        if manifest is None:
            return {}, []
        problems = _check_manifest(manifest, expect_fingerprint=self.fingerprint)
        if problems:
            return {}, problems
        payload = _read_json(os.path.join(self.directory, "entries.json"))
        if payload is None or not isinstance(payload.get("entries"), list):
            return {}, ["entries.json missing or malformed"]
        entries: Dict[Tuple[int, int], Dict[str, Any]] = {}
        for entry in payload["entries"]:
            try:
                entries[(int(entry["pc"]), int(entry["mmu_idx"]))] = entry
            except (KeyError, TypeError, ValueError):
                problems.append("entry without pc/mmu_idx")
        return entries, problems

    # -- writing ------------------------------------------------------------

    def save(self, entries: Dict[Tuple[int, int], Dict[str, Any]]) -> None:
        """Atomically write the store (manifest + entries)."""
        os.makedirs(self.directory, exist_ok=True)
        ordered = [entries[key] for key in sorted(entries)]
        payload = {"entries": ordered}
        # The trailing newline is part of the checksummed text: verify
        # hashes the file exactly as read.
        payload_text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        manifest = {
            "schema": SCHEMA,
            "format_version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "entries": len(ordered),
            "payload_sha256": _sha256_text(payload_text),
        }
        _write_atomic(os.path.join(self.directory, "entries.json"),
                      payload_text)
        _write_atomic(os.path.join(self.directory, "manifest.json"),
                      json.dumps(manifest, sort_keys=True, indent=1)
                      + "\n")


# ---------------------------------------------------------------------------
# Store maintenance (the ``repro cache`` CLI verb).
# ---------------------------------------------------------------------------


def iter_store_dirs(root: str) -> List[str]:
    """Every store directory under *root* (a directory with a manifest)."""
    if not os.path.isdir(root):
        return []
    found = []
    for name in sorted(os.listdir(root)):
        directory = os.path.join(root, name)
        if os.path.isfile(os.path.join(directory, "manifest.json")):
            found.append(directory)
    return found


def store_info(directory: str) -> Dict[str, Any]:
    """Summary dict for one store (the ``cache info`` payload)."""
    manifest = _read_json(os.path.join(directory, "manifest.json")) or {}
    size = 0
    for name in ("manifest.json", "entries.json"):
        path = os.path.join(directory, name)
        if os.path.isfile(path):
            size += os.path.getsize(path)
    return {
        "key": os.path.basename(directory),
        "entries": manifest.get("entries", 0),
        "format_version": manifest.get("format_version"),
        "fingerprint": manifest.get("fingerprint", {}),
        "bytes": size,
    }


def verify_store(directory: str) -> List[str]:
    """Deep integrity check of one store; returns problem strings.

    Checks the manifest schema, the payload checksum, every entry's
    checksum, and that every entry structurally decodes (guest words
    through the ARM decoder, host code through the instruction
    deserializer).  A non-empty result means the store is tampered or
    corrupt; the engine's load path independently refuses such entries.
    """
    from ..common.errors import DecodingError
    from ..guest.decoder import decode

    problems: List[str] = []
    manifest = _read_json(os.path.join(directory, "manifest.json"))
    if manifest is None:
        return ["manifest.json missing or unreadable"]
    problems += _check_manifest(manifest)
    entries_path = os.path.join(directory, "entries.json")
    try:
        with open(entries_path) as handle:
            payload_text = handle.read()
        payload = json.loads(payload_text)
    except (OSError, ValueError) as error:
        return problems + [f"entries.json unreadable: {error}"]
    if manifest.get("payload_sha256") != _sha256_text(payload_text):
        problems.append("payload checksum mismatch (tampered store)")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        return problems + ["entries.json malformed"]
    if isinstance(manifest.get("entries"), int) and \
            manifest["entries"] != len(entries):
        problems.append(f"manifest says {manifest['entries']} entries, "
                        f"store has {len(entries)}")
    for entry in entries:
        label = f"entry 0x{entry.get('pc', 0):08x}"
        if entry.get("sha256") != entry_checksum(entry):
            problems.append(f"{label}: checksum mismatch")
            continue
        for index, word in enumerate(entry.get("words", ())):
            try:
                decode(word, int(entry["pc"]) + 4 * index)
            except DecodingError:
                problems.append(f"{label}: word {index} undecodable")
                break
        try:
            for blob in entry.get("code", ()):
                decode_insn(blob, resolve_helper=lambda spec: None)
        except (KeyError, ValueError, TypeError, IndexError) as error:
            problems.append(f"{label}: bad host code: {error}")
    return problems


def clear_stores(root: str) -> int:
    """Delete every store under *root*; returns the number removed."""
    import shutil

    removed = 0
    for directory in iter_store_dirs(root):
        shutil.rmtree(directory, ignore_errors=True)
        removed += 1
    return removed


# ---------------------------------------------------------------------------
# Internals.
# ---------------------------------------------------------------------------


def _check_manifest(manifest: Dict[str, Any],
                    expect_fingerprint: Optional[Dict[str, Any]] = None
                    ) -> List[str]:
    problems = []
    if manifest.get("schema") != SCHEMA:
        problems.append(f"schema {manifest.get('schema')!r} != {SCHEMA!r}")
    if manifest.get("format_version") != FORMAT_VERSION:
        problems.append(f"format version {manifest.get('format_version')!r}"
                        f" != {FORMAT_VERSION}")
    if expect_fingerprint is not None and \
            manifest.get("fingerprint") != expect_fingerprint:
        problems.append("fingerprint mismatch")
    return problems


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except (OSError, ValueError):
        return None
    return obj if isinstance(obj, dict) else None


def _sha256_text(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _write_atomic(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
