"""Warm-start loader: persisted store entries -> live translation blocks.

The loader sits between the engine's code cache and the on-disk store
(:mod:`repro.cache.store`).  On a code-cache miss the engine asks it for
a persisted rules-tier TB; the loader re-validates the entry before
handing anything back:

1. integrity — the per-entry checksum must match (tampered or corrupted
   entries are evicted, never executed).  This is validated once for
   the whole store at attach (:meth:`CacheLoader.load_index`): it is a
   per-run cost, not a per-TB one, so the per-TB warm path stays cheap;
2. guest bytes — every recorded machine word is compared against what
   guest memory holds *now* (self-modified or relinked code is stale:
   the entry is evicted and the engine translates fresh);
3. rule health — entries built from currently-quarantined rules are
   refused, exactly as the in-memory code cache refuses them.

Validation reads guest memory through the same ``bus.fetch`` path the
translator's ``fetch_block`` uses, so a warm run touches the TLB and
page tables identically to a cold one — the deterministic metrics stay
bit-identical and only the (real) translation work is saved.

The loader also subscribes to the code cache's eviction notifications:
an in-memory invalidation (rule quarantine, self-check failure,
``--check`` rejection) evicts the corresponding persisted entry too, so
a poisoned translation can never outlive the run that discovered it.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..common.errors import DecodingError, MemoryFault
from ..guest.decoder import decode
from ..guest.isa import ArmInsn
from ..miniqemu.helpers import (make_exception_return_helper, make_ld_helper,
                                make_st_helper, make_svc_helper,
                                make_sysreg_helper, make_undef_helper,
                                make_vfp_helper)
from ..miniqemu.tb import TranslationBlock
from .fingerprint import (context_fingerprint, entry_checksum,
                          guest_image_digest)
from .store import (ORIGINAL_INSNS_KEY, PROVENANCE_KEY, CacheStore,
                    UnpersistableTB, decode_insn, serialize_tb)

#: Fault-injection sites consulted once per persisted-entry fetch (see
#: repro.robustness.faultinject): ``cache-corrupt`` hands the real
#: checksum validation a bit-flipped entry, ``cache-stale-bytes`` hands
#: the real guest-byte validation words that no longer match memory.
SITE_CORRUPT = "cache-corrupt"
SITE_STALE = "cache-stale-bytes"

def _plain_copy(obj: Any) -> Any:
    """Deep-copy plain JSON data (dict/list/scalar).

    The revived TB's meta must not alias the store entry's — runtime
    mutation would corrupt the entry's checksum — but entries are
    freshly parsed JSON, so a structural copy beats ``copy.deepcopy``'s
    generic machinery on the warm path.
    """
    if isinstance(obj, dict):
        return {key: _plain_copy(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_plain_copy(item) for item in obj]
    return obj


_INSN_HELPER_FACTORIES = {
    "sysreg": make_sysreg_helper,
    "vfp": make_vfp_helper,
    "svc": make_svc_helper,
    "eret": make_exception_return_helper,
    "undef": make_undef_helper,
}


class CacheLoader:
    """Per-run warm-start state for one machine + store directory."""

    def __init__(self, machine, engine, root: str):
        self.machine = machine
        self.engine = engine
        # The image digest covers initial RAM, so the loader must be
        # attached after the guest program is loaded and before it runs.
        image = guest_image_digest(bytes(machine.ram.data))
        self.store = CacheStore(
            root, context_fingerprint(engine.rulebook, engine.config,
                                      image=image))
        self._entries: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: store-level problems found at attach (reported, not fatal)
        self.problems: List[str] = []
        # Warm-start accounting (the ``cache.`` stats group).
        self.loaded = 0         # entries turned into live TBs
        self.fresh = 0          # misses translated from scratch
        self.stale = 0          # guest bytes changed since persist
        self.corrupt = 0        # checksum / decode failures
        self.quarantined = 0    # refused: built from a quarantined rule
        self.evicted = 0        # persisted entries dropped this run
        self.saved = 0          # new entries written at save()
        self.unpersistable = 0  # rules-tier TBs the store cannot hold
        self._dirty = False

    # -- attach ------------------------------------------------------------

    def load_index(self) -> None:
        """Read the store's entries and validate their integrity
        checksums (called once, at attach).  Tampered or bit-rotted
        entries are evicted here — they must never reach execution."""
        self._entries, self.problems = self.store.load()
        for (pc, mmu_idx), entry in list(self._entries.items()):
            if entry.get("sha256") != entry_checksum(entry):
                self.corrupt += 1
                self._discard(pc, mmu_idx, "corrupt")

    def __len__(self) -> int:
        return len(self._entries)

    # -- the warm path (called by DbtEngineBase.get_tb on a miss) ----------

    def fetch(self, pc: int, mmu_idx: int) -> Optional[TranslationBlock]:
        """Re-validate and revive one persisted entry (or None)."""
        entry = self._entries.get((pc, mmu_idx))
        if entry is None:
            return None
        injector = self.machine.injector
        if injector.enabled:
            if injector.fires(SITE_CORRUPT):
                # Simulated on-disk corruption: flip a bit and let the
                # real checksum validation catch it.
                entry = dict(entry, words=[w ^ 1 for w in entry["words"]])
            if entry.get("sha256") != entry_checksum(entry):
                self.corrupt += 1
                self._discard(pc, mmu_idx, "corrupt")
                return None
        words = list(entry["words"])
        if injector.enabled and injector.fires(SITE_STALE):
            # Simulated stale store: the recorded words no longer match
            # guest memory; the byte validation below must notice.
            words = [w ^ 0x00100000 for w in words]
        for index, word in enumerate(words):
            try:
                current = self.machine.bus.fetch(pc + 4 * index)
            except MemoryFault:
                # The page is gone (or unmapped for this mode): let the
                # fresh-translation path raise the genuine guest fault.
                return None
            if current != word:
                self.stale += 1
                self._discard(pc, mmu_idx, "stale")
                return None
        tb = self._revive(entry, pc, mmu_idx, words)
        if tb is None:
            return None
        self.loaded += 1
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("cache.load", pc=pc,
                                     guest_insns=tb.guest_insn_count,
                                     host_insns=len(tb.code))
        return tb

    def _revive(self, entry: Dict[str, Any], pc: int, mmu_idx: int,
                words: List[int]) -> Optional[TranslationBlock]:
        meta = _plain_copy(entry.get("meta") or {})
        rules_used = meta.get("rules_used") or ()
        if set(self.engine.ladder.quarantined_rules).intersection(rules_used):
            self.quarantined += 1
            self._discard(pc, mmu_idx, "quarantined-rule")
            return None
        try:
            decoded = [decode(word, pc + 4 * index)
                       for index, word in enumerate(words)]
        except DecodingError:
            self.corrupt += 1
            self._discard(pc, mmu_idx, "undecodable")
            return None
        by_addr = {insn.addr: insn for insn in decoded}
        try:
            code = [decode_insn(blob,
                                lambda spec: self._helper(spec, by_addr))
                    for blob in entry["code"]]
            order = entry.get("insn_order")
            guest_insns = decoded if order is None \
                else [by_addr[addr] for addr in order]
        except (KeyError, ValueError, TypeError, IndexError):
            self.corrupt += 1
            self._discard(pc, mmu_idx, "malformed")
            return None
        if order is not None:
            # Scheduling reordered this block: guest_insns carries the
            # scheduled order, original_insns the address order (the
            # checker's view of the pre-scheduling program).
            meta[ORIGINAL_INSNS_KEY] = decoded
        meta[PROVENANCE_KEY] = "cached"
        tb = TranslationBlock(pc=pc, mmu_idx=mmu_idx,
                              guest_insns=guest_insns, code=code)
        tb.jmp_pc = list(entry.get("jmp_pc") or (None, None))
        tb.meta = meta
        return tb

    @staticmethod
    def _helper(spec: List[Any], by_addr: Dict[int, ArmInsn]):
        """Persist spec (see repro.miniqemu.helpers) -> live callable."""
        kind = spec[0]
        if kind == "ld":
            return make_ld_helper(int(spec[1]), bool(spec[2]),
                                  int(spec[3]), int(spec[4]))
        if kind == "st":
            return make_st_helper(int(spec[1]), int(spec[2]), int(spec[3]))
        factory = _INSN_HELPER_FACTORIES.get(kind)
        insn = by_addr.get(int(spec[1])) if len(spec) > 1 else None
        if factory is None or insn is None:
            raise ValueError(f"unresolvable helper spec {spec!r}")
        return factory(insn)

    # -- eviction ----------------------------------------------------------

    def _discard(self, pc: int, mmu_idx: int, reason: str) -> None:
        if self._entries.pop((pc, mmu_idx), None) is None:
            return
        self.evicted += 1
        self._dirty = True
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("cache.evict", pc=pc, reason=reason)

    def discard(self, pc: int, mmu_idx: int, reason: str) -> None:
        """Drop one persisted entry (e.g. a ``--check`` rejection)."""
        self._discard(pc, mmu_idx, reason)

    def on_cache_evict(self, victims, rules: Optional[Iterable[str]] = None
                       ) -> None:
        """Code-cache eviction listener: mirror every in-memory
        invalidation onto the persisted store."""
        for tb in victims:
            self._discard(tb.pc, tb.mmu_idx, "invalidated")
        if rules:
            wanted = set(rules)
            for (pc, mmu_idx), entry in list(self._entries.items()):
                used = (entry.get("meta") or {}).get("rules_used") or ()
                if wanted.intersection(used):
                    self._discard(pc, mmu_idx, "quarantined-rule")

    # -- persisting (called once, after the run) ---------------------------

    def save(self) -> int:
        """Merge this run's fresh rules-tier TBs into the store.

        Surviving loaded entries are kept as-is; every freshly
        translated, still-live rules-tier TB is serialized and added.
        Returns the number of newly persisted TBs.  The store is only
        rewritten when something actually changed.
        """
        new = 0
        for tb in self.engine.cache.all_tbs():
            if tb.meta.get("tier") != "rules":
                continue
            key = (tb.pc, tb.mmu_idx)
            if tb.meta.get(PROVENANCE_KEY) == "cached" \
                    and key in self._entries:
                continue
            try:
                entry = serialize_tb(tb)
            except UnpersistableTB:
                self.unpersistable += 1
                continue
            self._entries[key] = entry
            new += 1
        self.saved = new
        if new or self._dirty or not os.path.isdir(self.store.directory):
            self.store.save(self._entries)
            self._dirty = False
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("cache.save", new=new,
                                     entries=len(self._entries))
        return new

    # -- reporting (the ``cache.`` stats group) ----------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "store_entries": float(len(self._entries)),
            "tb_loaded": float(self.loaded),
            "tb_fresh": float(self.fresh),
            "tb_stale": float(self.stale),
            "tb_corrupt": float(self.corrupt),
            "tb_quarantined": float(self.quarantined),
            "tb_evicted": float(self.evicted),
            "tb_saved": float(self.saved),
            "tb_unpersistable": float(self.unpersistable),
        }
