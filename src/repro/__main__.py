"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — available workloads, engines and experiments.
- ``run WORKLOAD [--engine E]`` — run a named workload, print its guest
  console output and the cost metrics.
- ``exec FILE.s [--engine E]`` — assemble a user program (the body after
  the kernel's syscall prelude; must define ``main``) and run it under
  the mini guest OS.
- ``bench [EXPERIMENT]`` — with an experiment name, reproduce one paper
  table/figure (or ``all``); without one, run the continuous-benchmark
  suite: write a trajectory snapshot (``BENCH_<n>.json``), and with
  ``--compare BASELINE --fail-on regressed`` gate it against a blessed
  baseline, attributing any regression to the Sec III coordination-cost
  category that moved.  ``--quick`` keeps the SPEC-sweep experiments
  only; ``--inject seed=1,extra-sync=0.5`` turns the fault injector
  into a regression simulator the gate must catch.
- ``cache info|clear|verify DIR`` — inspect, delete or deep-verify the
  persistent translation cache at ``DIR`` (``--cache-dir``).  ``verify``
  exits 1 when any store is tampered or corrupt; such stores are also
  refused (entry by entry) by the engine's load path.
- ``learn [--save PATH]`` — run the rule-learning pipeline; optionally
  save the rulebook as JSON.
- ``compare WORKLOAD`` — run one workload on every engine and print a
  side-by-side cost comparison.
- ``faultsmoke [--seeds N]`` — the robustness smoke matrix: run a
  seeded fault-injection scenario grid and check every run still
  produces the correct guest output and exit code.
- ``check [--all]`` — the translation soundness checker: symbolically
  classify every learned rule (proved / tested-only / refuted) and run
  the dataflow verifier over the TB population of representative
  workloads.  ``--format json|table`` selects the output, ``--out``
  writes the findings JSON, and the exit code is 0 (clean), 1
  (findings above ``--fail-on``), or 2 (usage error).
- ``profile WORKLOAD [--engine E] [--top N]`` — run with tracing and
  profiling enabled, print the hot-TB table and the coordination-cost
  breakdown, and export profile + Chrome trace JSON under
  ``benchmarks/results/``.
- ``validate-trace FILE.json`` — check an exported trace against the
  Chrome trace-event schema (exit 1 on problems).

``run`` and ``exec`` accept ``--inject SPEC`` to enable deterministic
fault injection, e.g. ``--inject seed=7,mem=0.01,rule-corrupt=SUB``
(see ``repro.robustness.faultinject``), ``--trace PATH`` to record a
Chrome trace of the run, and ``--check`` to enable verify-before-enter:
every rules-tier TB is statically verified before entering the code
cache and demoted down the degradation ladder on an ERROR finding.
``run``, ``exec`` and ``bench`` also accept ``--cache-dir DIR`` to
warm-start translation from a persistent cross-run cache (see
``docs/caching.md``).
"""

from __future__ import annotations

import argparse
import sys

from .harness import ALL_EXPERIMENTS, ENGINE_SPECS, format_table, \
    run_workload
from .workloads import ALL_WORKLOADS


def cmd_list(_args) -> int:
    print("workloads:")
    for name, workload in sorted(ALL_WORKLOADS.items()):
        print(f"  {name:12s} [{workload.category}]")
    print("\nengines:", ", ".join(ENGINE_SPECS))
    print("\nexperiments:", ", ".join(sorted(ALL_EXPERIMENTS)), "| all")
    return 0


def _print_run(result) -> None:
    print(result.output, end="")
    print(f"--- {result.workload} on {result.engine} ---")
    print(f"guest instructions : {result.guest_icount}")
    print(f"host instructions  : {result.host_instructions:.0f}")
    print(f"host cost          : {result.host_cost:.0f}")
    print(f"device time        : {result.io_cost:.0f}")
    print(f"cost per guest insn: {result.cost_per_guest:.2f}")
    _print_robustness(result.stats)


def _print_robustness(stats) -> None:
    """Degradation-ladder report (quarantines, fallback tiers, faults)."""
    quarantined = stats.get("robust.quarantined_rules", 0)
    fallback = sum(count for key, count in stats.items()
                   if key.startswith("robust.tier_") and
                   key.endswith("_tbs") and key != "robust.tier_rules_tbs")
    injected = {key[len("robust.inj_"):]: int(count)
                for key, count in stats.items()
                if key.startswith("robust.inj_")}
    if not (quarantined or fallback or injected or
            stats.get("robust.recovered_faults") or
            stats.get("robust.watchdog_trips")):
        return
    print(f"quarantined rules  : {quarantined:.0f}")
    tiers = {key[len("robust.tier_"):-4]: int(count)
             for key, count in stats.items()
             if key.startswith("robust.tier_") and key.endswith("_tbs")}
    print("fallback tiers     : " +
          " ".join(f"{tier}={count}" for tier, count in tiers.items()))
    print(f"faults recovered   : "
          f"{stats.get('robust.recovered_faults', 0):.0f}"
          f" (transient {stats.get('robust.transient_faults', 0):.0f})")
    if injected:
        print("injected           : " +
              " ".join(f"{site}={count}"
                       for site, count in sorted(injected.items())))
    if stats.get("robust.watchdog_trips"):
        print(f"watchdog trips     : "
              f"{stats['robust.watchdog_trips']:.0f}")


def cmd_run(args) -> int:
    workload = ALL_WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    return _run_and_print(workload, args)


def cmd_exec(args) -> int:
    from .workloads.spec import Workload

    with open(args.file) as handle:
        body = handle.read()
    workload = Workload(name=args.file, body=body)
    return _run_and_print(workload, args)


def _run_and_print(workload, args) -> int:
    from .common.errors import ReproError

    tracer = None
    if getattr(args, "trace", None):
        from .observability import Tracer
        tracer = Tracer()
    try:
        result = run_workload(workload, args.engine, inject=args.inject,
                              tracer=tracer,
                              check=getattr(args, "check", False),
                              cache_dir=getattr(args, "cache_dir", None))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_run(result)
    if getattr(args, "cache_dir", None):
        stats = result.stats
        print("cache: "
              f"{stats.get('cache.tb_loaded', 0):.0f} loaded, "
              f"{stats.get('cache.tb_fresh', 0):.0f} fresh, "
              f"{stats.get('cache.tb_saved', 0):.0f} saved, "
              f"{stats.get('cache.tb_stale', 0):.0f} stale, "
              f"{stats.get('cache.tb_corrupt', 0):.0f} corrupt, "
              f"{stats.get('cache.tb_evicted', 0):.0f} evicted")
    if getattr(args, "check", False):
        stats = result.stats
        print(f"check: {stats.get('engine.check_tbs', 0):.0f} TB "
              f"verification(s), "
              f"{stats.get('engine.check_rejected', 0):.0f} rejected, "
              f"{stats.get('engine.check_findings', 0):.0f} finding(s)")
    if tracer is not None:
        from .observability import write_chrome_trace
        path = write_chrome_trace(args.trace, tracer.events())
        print(f"trace written to {path} ({tracer.emitted} events, "
              f"{tracer.dropped} dropped)")
    return 0


#: The fault-smoke scenario grid: (name, spec template).  Every scenario
#: must finish with the workload's expected output and exit code 0.
SMOKE_SCENARIOS = (
    ("fetch", "seed={seed},fetch=0.05"),
    ("mem", "seed={seed},mem=0.05"),
    ("helper", "seed={seed},helper=0.05"),
    ("irq-storm", "seed={seed},irq-storm=0.0002"),
    ("rule-crash", "seed={seed},rule-crash=0.02"),
    ("rule-corrupt", "seed={seed},rule-corrupt=SUB,rule-corrupt=EOR"),
    ("rule-wrong", "seed={seed},rule-wrong=SUB"),
)

SMOKE_WORKLOADS = ("cpu-prime", "fileio")


def cmd_faultsmoke(args) -> int:
    from .harness import format_table

    rows = []
    failures = 0
    for name, template in SMOKE_SCENARIOS:
        for seed in range(1, args.seeds + 1):
            for workload_name in SMOKE_WORKLOADS:
                spec = template.format(seed=seed)
                workload = ALL_WORKLOADS[workload_name]
                try:
                    result = run_workload(workload, args.engine,
                                          inject=spec)
                except Exception as error:  # noqa: BLE001 - report all
                    failures += 1
                    rows.append([name, seed, workload_name, "FAIL",
                                 "-", "-", "-", str(error)[:60]])
                    continue
                stats = result.stats
                injected = sum(int(count) for key, count in stats.items()
                               if key.startswith("robust.inj_"))
                fallback = sum(
                    int(count) for key, count in stats.items()
                    if key.startswith("robust.tier_") and
                    key.endswith("_tbs") and key != "robust.tier_rules_tbs")
                rows.append([
                    name, seed, workload_name, "ok", injected,
                    f"{stats.get('robust.quarantined_rules', 0):.0f}",
                    f"{stats.get('robust.recovered_faults', 0):.0f}",
                    f"fallback_tbs={fallback}",
                ])
    print(format_table(
        ["Scenario", "Seed", "Workload", "Result", "Injected",
         "Quarantined", "Recovered", "Notes"], rows,
        title=f"fault-injection smoke matrix ({args.engine})"))
    if failures:
        print(f"{failures} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"all {len(rows)} scenarios passed")
    return 0


def cmd_check(args) -> int:
    from .analysis.checker import (ALL_CHECK_ENGINES, ALL_CHECK_WORKLOADS,
                                   DEFAULT_ENGINES, DEFAULT_WORKLOADS,
                                   run_check)
    from .analysis.findings import severity_from_name
    from .common.errors import ReproError

    try:
        threshold = severity_from_name(args.fail_on)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.workload:
        unknown = [w for w in args.workload if w not in ALL_WORKLOADS]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return 2
        workloads = tuple(args.workload)
    else:
        workloads = ALL_CHECK_WORKLOADS if args.all else DEFAULT_WORKLOADS
    engines = ALL_CHECK_ENGINES if args.all else DEFAULT_ENGINES
    try:
        report = run_check(workloads=workloads, engines=engines,
                           rules=not args.no_rules,
                           include_waivers=args.waivers,
                           inject=args.inject, profile=args.profile)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out:
        import os
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_table())
    return report.exit_code(threshold)


#: Default export directory for ``repro profile`` artifacts.
RESULTS_DIR = "benchmarks/results"


def cmd_profile(args) -> int:
    import os

    from .common.errors import ReproError
    from .observability import (Profiler, Tracer, build_profile,
                                render_profile, write_chrome_trace,
                                write_profile_json)
    from .harness import make_machine

    workload = ALL_WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    tracer = Tracer()
    profiler = Profiler()
    machine = make_machine(workload, args.engine, inject=args.inject,
                           tracer=tracer, profiler=profiler)
    try:
        machine.run(workload.max_insns)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    profile = build_profile(machine, workload=args.workload,
                            engine=args.engine)
    print(render_profile(profile, top=args.top))

    slug = f"{args.workload}_{args.engine}".replace("-", "_")
    profile_path = args.json or os.path.join(
        RESULTS_DIR, f"profile_{slug}.json")
    trace_path = args.trace or os.path.join(
        RESULTS_DIR, f"trace_{slug}.json")
    write_profile_json(profile_path, profile)
    write_chrome_trace(trace_path, tracer.events())
    print(f"\nprofile written to {profile_path}")
    print(f"trace written to {trace_path} ({tracer.emitted} events, "
          f"{tracer.dropped} dropped) — load it in Perfetto or "
          f"chrome://tracing")
    return 0


def cmd_validate_trace(args) -> int:
    import json

    from .observability import validate_chrome_trace

    with open(args.file) as handle:
        try:
            obj = json.load(handle)
        except json.JSONDecodeError as error:
            print(f"{args.file}: not valid JSON: {error}",
                  file=sys.stderr)
            return 1
    problems = validate_chrome_trace(obj)
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    count = len(obj["traceEvents"])
    print(f"{args.file}: valid Chrome trace ({count} events)")
    return 0


def cmd_compare(args) -> int:
    workload = ALL_WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    rows = []
    baseline = None
    for engine in ("interp", "tcg", "rules-base", "rules-full"):
        result = run_workload(workload, engine)
        if engine == "tcg":
            baseline = result.runtime
        rows.append([engine, result.guest_icount,
                     f"{result.runtime:.0f}",
                     f"{result.cost_per_guest:.2f}", result.runtime])
    for row in rows:
        runtime = row.pop()
        row.append(f"{baseline / runtime:.2f}x" if row[0] != "interp"
                   else "--")
    print(format_table(
        ["Engine", "Guest insns", "Runtime", "Cost/guest",
         "Speedup vs QEMU"], rows,
        title=f"{args.workload}: engine comparison"))
    return 0


def cmd_cache(args) -> int:
    """The ``cache`` maintenance verb: info | clear | verify.

    Exit codes: 0 (ok — including an empty or missing cache dir),
    1 (``verify`` found problems), 2 (usage error, via argparse)."""
    import json
    import os

    from .cache import clear_stores, iter_store_dirs, store_info, \
        verify_store

    root = args.dir
    if args.action == "clear":
        removed = clear_stores(root)
        print(f"removed {removed} store(s) from {root}")
        return 0
    dirs = iter_store_dirs(root)
    if args.action == "info":
        infos = [store_info(directory) for directory in dirs]
        if args.format == "json":
            print(json.dumps({"root": root, "stores": infos},
                             indent=1, sort_keys=True))
        else:
            rows = [[info["key"], info["entries"],
                     info["format_version"], info["bytes"]]
                    for info in infos]
            print(format_table(["Store", "Entries", "Format", "Bytes"],
                               rows,
                               title=f"translation cache at {root}"))
        return 0
    reports = []
    bad = 0
    for directory in dirs:
        problems = verify_store(directory)
        bad += bool(problems)
        reports.append({"key": os.path.basename(directory),
                        "problems": problems})
    if args.format == "json":
        print(json.dumps({"root": root, "stores": reports,
                          "ok": not bad}, indent=1, sort_keys=True))
    else:
        for report in reports:
            print(f"{report['key']}: "
                  f"{'ok' if not report['problems'] else 'CORRUPT'}")
            for problem in report["problems"]:
                print(f"  - {problem}")
        print(f"{len(reports)} store(s), {bad} with problems")
    return 1 if bad else 0


def cmd_bench(args) -> int:
    if args.experiment is not None:
        return _bench_experiment(args)
    return _bench_suite(args)


def _bench_experiment(args) -> int:
    """Legacy mode: print one paper figure (or ``all``)."""
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        experiment = ALL_EXPERIMENTS.get(name)
        if experiment is None:
            print(f"unknown experiment {name!r} "
                  f"(one of: {', '.join(sorted(ALL_EXPERIMENTS))})",
                  file=sys.stderr)
            return 2
        print(experiment().text)
        print()
    return 0


def _bench_suite(args) -> int:
    """Suite mode: run the benchmark suite, write a trajectory snapshot,
    optionally compare against a blessed baseline and gate."""
    import json

    from .common.errors import ReproError
    from .observability import (IncomparableSnapshots, compare_snapshots,
                                load_snapshot, next_snapshot_path,
                                render_snapshot, run_suite,
                                validate_snapshot, write_snapshot)
    from .observability.regress import GATE_LEVELS

    if args.fail_on not in GATE_LEVELS:
        print(f"unknown --fail-on level {args.fail_on!r} "
              f"(one of: {', '.join(sorted(GATE_LEVELS))})",
              file=sys.stderr)
        return 2
    if args.workload:
        unknown = [w for w in args.workload if w not in ALL_WORKLOADS]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return 2
        mode = "custom"
        sweep = tuple(args.workload)
    else:
        mode = "quick" if args.quick else "full"
        sweep = None

    def progress(message: str) -> None:
        print(f"bench: {message}", file=sys.stderr)

    try:
        snapshot = run_suite(
            mode=mode, sweep_workloads=sweep, inject=args.inject,
            wallclock_samples=args.samples,
            results_dir=RESULTS_DIR if args.export_results else None,
            cache_dir=args.cache_dir,
            progress=progress)
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    problems = validate_snapshot(snapshot)
    if problems:
        for problem in problems:
            print(f"internal error: snapshot invalid: {problem}",
                  file=sys.stderr)
        return 2

    out = args.out or next_snapshot_path(".")
    write_snapshot(out, snapshot)
    print(f"snapshot written to {out}", file=sys.stderr)

    if args.compare is None:
        if args.format == "json":
            print(json.dumps(snapshot, indent=1, sort_keys=True))
        else:
            print(render_snapshot(snapshot))
        return 0

    try:
        baseline = load_snapshot(args.compare)
    except (OSError, ValueError) as error:
        print(f"error: cannot load baseline {args.compare!r}: {error}",
              file=sys.stderr)
        return 2
    try:
        report = compare_snapshots(baseline, snapshot,
                                   gate_wallclock=args.gate_wallclock)
    except IncomparableSnapshots as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_table())
    code = report.exit_code(args.fail_on)
    if code:
        failing = report.gating_verdicts(args.fail_on)
        print(f"perf gate FAILED: {len(failing)} metric(s) at or above "
              f"--fail-on {args.fail_on}", file=sys.stderr)
    return code


def cmd_learn(args) -> int:
    from .learning import learn
    from .learning.serialize import save_rulebook

    result = learn()
    print(result.summary())
    for reason in result.rejected:
        print("  rejected:", reason)
    if args.save:
        save_rulebook(result.rulebook, args.save)
        print(f"rulebook saved to {args.save} "
              f"({len(result.rules)} rules)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="System-level rule-based DBT reproduction (CGO 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/engines/experiments")

    run_parser = sub.add_parser("run", help="run a named workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--engine", default="rules-full",
                            choices=ENGINE_SPECS)
    run_parser.add_argument("--inject", metavar="SPEC", default=None,
                            help="fault-injection spec, e.g. "
                                 "seed=7,mem=0.01,rule-corrupt=SUB")
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="write a Chrome trace JSON of the run")
    run_parser.add_argument("--check", action="store_true",
                            help="verify every rules-tier TB before it "
                                 "enters the code cache")
    run_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                            help="persistent translation cache: warm-"
                                 "start from DIR and persist new "
                                 "rules-tier TBs there")

    exec_parser = sub.add_parser("exec", help="run a guest assembly file")
    exec_parser.add_argument("file")
    exec_parser.add_argument("--engine", default="rules-full",
                             choices=ENGINE_SPECS)
    exec_parser.add_argument("--inject", metavar="SPEC", default=None,
                             help="fault-injection spec")
    exec_parser.add_argument("--trace", metavar="PATH", default=None,
                             help="write a Chrome trace JSON of the run")
    exec_parser.add_argument("--check", action="store_true",
                             help="verify every rules-tier TB before it "
                                  "enters the code cache")
    exec_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                             help="persistent translation cache "
                                  "directory")

    cache_parser = sub.add_parser(
        "cache", help="inspect, clear or verify a persistent "
                      "translation cache directory")
    cache_parser.add_argument("action", choices=("info", "clear",
                                                 "verify"))
    cache_parser.add_argument("dir", help="the --cache-dir root")
    cache_parser.add_argument("--format", choices=("table", "json"),
                              default="table")

    check_parser = sub.add_parser(
        "check", help="run the translation soundness checker")
    check_parser.add_argument("--all", action="store_true",
                              help="full matrix: representative workloads "
                                   "at every optimization level")
    check_parser.add_argument("--workload", action="append", default=[],
                              metavar="NAME",
                              help="check this workload (repeatable; "
                                   "overrides the default set)")
    check_parser.add_argument("--no-rules", action="store_true",
                              help="skip the symbolic rulebook phase")
    check_parser.add_argument("--waivers", action="store_true",
                              help="also report info-level waivers "
                                   "(documented imprecisions)")
    check_parser.add_argument("--profile", action="store_true",
                              help="attach profiler cost to findings")
    check_parser.add_argument("--inject", metavar="SPEC", default=None,
                              help="fault-injection spec (the checker "
                                   "must flag what it corrupts)")
    check_parser.add_argument("--format", choices=("table", "json"),
                              default="table")
    check_parser.add_argument("--out", metavar="PATH", default=None,
                              help="write the findings report JSON here")
    check_parser.add_argument("--fail-on", metavar="SEVERITY",
                              default="info",
                              help="exit 1 when any finding exceeds this "
                                   "severity (info/warning/error; "
                                   "default info)")

    profile_parser = sub.add_parser(
        "profile", help="profile a workload (hot TBs + cost breakdown)")
    profile_parser.add_argument("workload")
    profile_parser.add_argument("--engine", default="rules-full",
                                choices=ENGINE_SPECS)
    profile_parser.add_argument("--top", type=int, default=20,
                                help="rows in the hot-TB table")
    profile_parser.add_argument("--inject", metavar="SPEC", default=None,
                                help="fault-injection spec")
    profile_parser.add_argument("--json", metavar="PATH", default=None,
                                help="profile JSON output path")
    profile_parser.add_argument("--trace", metavar="PATH", default=None,
                                help="Chrome trace JSON output path")

    validate_parser = sub.add_parser(
        "validate-trace",
        help="validate a Chrome trace JSON export")
    validate_parser.add_argument("file")

    smoke_parser = sub.add_parser(
        "faultsmoke", help="run the fault-injection smoke matrix")
    smoke_parser.add_argument("--engine", default="rules-full",
                              choices=ENGINE_SPECS)
    smoke_parser.add_argument("--seeds", type=int, default=2,
                              help="seeds per scenario (default 2)")

    compare_parser = sub.add_parser("compare",
                                    help="compare engines on a workload")
    compare_parser.add_argument("workload")

    bench_parser = sub.add_parser(
        "bench",
        help="run the benchmark suite (snapshot + regression gate), or "
             "print one paper figure")
    bench_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="legacy mode: print this experiment (or 'all') and exit; "
             "omit to run the suite")
    bench_parser.add_argument("--quick", action="store_true",
                              help="SPEC-sweep experiments only (skips "
                                   "ablation/fig19/footnote3)")
    bench_parser.add_argument("--workload", action="append", default=[],
                              metavar="NAME",
                              help="custom sweep over these workloads "
                                   "(repeatable; skips figure experiments)")
    bench_parser.add_argument("--inject", metavar="SPEC", default=None,
                              help="fault-injection spec threaded through "
                                   "the sweep (extra-sync simulates a "
                                   "perf regression)")
    bench_parser.add_argument("--out", metavar="PATH", default=None,
                              help="snapshot output path (default: next "
                                   "free BENCH_<n>.json in the repo root)")
    bench_parser.add_argument("--compare", metavar="BASELINE",
                              default=None,
                              help="compare against this baseline "
                                   "snapshot and gate")
    bench_parser.add_argument("--fail-on", metavar="LEVEL",
                              default="regressed",
                              help="gate level: regressed/changed/never "
                                   "(default regressed)")
    bench_parser.add_argument("--format", choices=("table", "json"),
                              default="table")
    bench_parser.add_argument("--export-results", action="store_true",
                              help="also write benchmarks/results/"
                                   "<name>.{txt,json} companions")
    bench_parser.add_argument("--samples", type=int, default=None,
                              help="wall-clock translation samples "
                                   "(default per mode)")
    bench_parser.add_argument("--gate-wallclock", action="store_true",
                              help="let wall-clock metrics fail the gate "
                                   "(off by default: CI jitter)")
    bench_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                              help="persistent translation cache threaded "
                                   "through the whole sweep (warm-start "
                                   "counts go to stderr, never into the "
                                   "snapshot)")

    learn_parser = sub.add_parser("learn", help="run the learning pipeline")
    learn_parser.add_argument("--save", metavar="PATH", default=None)

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "exec": cmd_exec,
                "compare": cmd_compare, "bench": cmd_bench,
                "cache": cmd_cache, "learn": cmd_learn,
                "faultsmoke": cmd_faultsmoke,
                "profile": cmd_profile, "check": cmd_check,
                "validate-trace": cmd_validate_trace}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
