"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — available workloads, engines and experiments.
- ``run WORKLOAD [--engine E]`` — run a named workload, print its guest
  console output and the cost metrics.
- ``exec FILE.s [--engine E]`` — assemble a user program (the body after
  the kernel's syscall prelude; must define ``main``) and run it under
  the mini guest OS.
- ``bench EXPERIMENT`` — reproduce one paper table/figure (or ``all``).
- ``learn [--save PATH]`` — run the rule-learning pipeline; optionally
  save the rulebook as JSON.
- ``compare WORKLOAD`` — run one workload on every engine and print a
  side-by-side cost comparison.
"""

from __future__ import annotations

import argparse
import sys

from .harness import ALL_EXPERIMENTS, ENGINE_SPECS, format_table, \
    run_workload
from .workloads import ALL_WORKLOADS


def cmd_list(_args) -> int:
    print("workloads:")
    for name, workload in sorted(ALL_WORKLOADS.items()):
        print(f"  {name:12s} [{workload.category}]")
    print("\nengines:", ", ".join(ENGINE_SPECS))
    print("\nexperiments:", ", ".join(sorted(ALL_EXPERIMENTS)), "| all")
    return 0


def _print_run(result) -> None:
    print(result.output, end="")
    print(f"--- {result.workload} on {result.engine} ---")
    print(f"guest instructions : {result.guest_icount}")
    print(f"host instructions  : {result.host_instructions:.0f}")
    print(f"host cost          : {result.host_cost:.0f}")
    print(f"device time        : {result.io_cost:.0f}")
    print(f"cost per guest insn: {result.cost_per_guest:.2f}")


def cmd_run(args) -> int:
    workload = ALL_WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    _print_run(run_workload(workload, args.engine))
    return 0


def cmd_exec(args) -> int:
    from .workloads.spec import Workload

    with open(args.file) as handle:
        body = handle.read()
    workload = Workload(name=args.file, body=body)
    _print_run(run_workload(workload, args.engine))
    return 0


def cmd_compare(args) -> int:
    workload = ALL_WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    rows = []
    baseline = None
    for engine in ("interp", "tcg", "rules-base", "rules-full"):
        result = run_workload(workload, engine)
        if engine == "tcg":
            baseline = result.runtime
        rows.append([engine, result.guest_icount,
                     f"{result.runtime:.0f}",
                     f"{result.cost_per_guest:.2f}", result.runtime])
    for row in rows:
        runtime = row.pop()
        row.append(f"{baseline / runtime:.2f}x" if row[0] != "interp"
                   else "--")
    print(format_table(
        ["Engine", "Guest insns", "Runtime", "Cost/guest",
         "Speedup vs QEMU"], rows,
        title=f"{args.workload}: engine comparison"))
    return 0


def cmd_bench(args) -> int:
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        experiment = ALL_EXPERIMENTS.get(name)
        if experiment is None:
            print(f"unknown experiment {name!r} "
                  f"(one of: {', '.join(sorted(ALL_EXPERIMENTS))})",
                  file=sys.stderr)
            return 2
        print(experiment().text)
        print()
    return 0


def cmd_learn(args) -> int:
    from .learning import learn
    from .learning.serialize import save_rulebook

    result = learn()
    print(result.summary())
    for reason in result.rejected:
        print("  rejected:", reason)
    if args.save:
        save_rulebook(result.rulebook, args.save)
        print(f"rulebook saved to {args.save} "
              f"({len(result.rules)} rules)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="System-level rule-based DBT reproduction (CGO 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/engines/experiments")

    run_parser = sub.add_parser("run", help="run a named workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--engine", default="rules-full",
                            choices=ENGINE_SPECS)

    exec_parser = sub.add_parser("exec", help="run a guest assembly file")
    exec_parser.add_argument("file")
    exec_parser.add_argument("--engine", default="rules-full",
                             choices=ENGINE_SPECS)

    compare_parser = sub.add_parser("compare",
                                    help="compare engines on a workload")
    compare_parser.add_argument("workload")

    bench_parser = sub.add_parser("bench", help="reproduce a paper figure")
    bench_parser.add_argument("experiment")

    learn_parser = sub.add_parser("learn", help="run the learning pipeline")
    learn_parser.add_argument("--save", metavar="PATH", default=None)

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "exec": cmd_exec,
                "compare": cmd_compare, "bench": cmd_bench,
                "learn": cmd_learn}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
