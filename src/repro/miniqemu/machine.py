"""The machine: board wiring, the cpu_exec loop, and execution engines.

One :class:`Machine` owns the guest CPU, physical memory and devices, the
softmmu, the host-side state (env, TLB bytes, host CPU/memory/interpreter)
and a pluggable *execution engine*:

- :class:`InterpEngine` — the reference ARM interpreter (architectural
  ground truth; also the "native execution" cost baseline for Fig 18),
- :class:`TcgEngine` — the MiniQEMU baseline (ARM -> IR -> x86),
- ``repro.core.RuleEngine`` — the paper's rule-based translator, which
  plugs into the same socket.

The physical memory map::

    0x0000_0000  RAM (default 8 MiB)
    0x1000_0000  UART
    0x1001_0000  timer
    0x1002_0000  interrupt controller
    0x1003_0000  block device
    0x1004_0000  NIC
    0x100F_0000  system controller (guest-initiated shutdown)
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.costmodel import (COST_INTERP_TIER_INSN, COST_TB_LOOKUP,
                                COST_TRANSLATE_PER_INSN)
from ..common.errors import (DecodingError, DiagContext, GuestHalt,
                             HostExecutionError, InjectedFault, MemoryFault,
                             ReproError, RuleApplicationError,
                             TranslationError, WatchdogTimeout)
from ..devices.blockdev import BlockDevice
from ..devices.intc import IRQ_TIMER, InterruptController
from ..devices.nic import Nic
from ..devices.syscon import SystemController
from ..devices.timer import Timer
from ..devices.uart import Uart
from ..guest.cpu import GuestCpu, MODE_IRQ, MODE_USR, VECTOR_IRQ
from ..guest.decoder import decode
from ..guest.interp import Interpreter
from ..guest.isa import PC
from ..host.cpu import HostCpu
from ..observability.stats import merge_stats
from ..observability.trace import FLIGHT_RECORDER_EVENTS, NULL_TRACER
from ..host.interp import HostInterpreter
from ..host.isa import ENV_REG
from ..host.memory import HostMemory
from ..robustness.degrade import (DegradationController, SelfCheck,
                                  tb_selfcheckable)
from ..robustness.faultinject import NullInjector
from ..robustness.guard import MachineSnapshot, fast_forward_halt
from ..softmmu.bus import GuestBus
from ..softmmu.memory import PhysicalMemoryMap
from ..softmmu.pagetable import PageWalker
from ..softmmu.tlb import MMU_IDX_KERNEL, MMU_IDX_USER, SoftTlb
from .backend import TcgBackend
from .env import (ENV_BASE, ENV_IRQ, RAM_HOST_BASE, STACK_BASE, STACK_SIZE,
                  TLB_BASE, Env, env_reg)
from .frontend import TcgFrontend
from .helpers import QemuRuntime
from .tb import (EXIT_EXCEPTION, EXIT_HALT, EXIT_INTERRUPT, EXIT_PC_UPDATED,
                 MAX_TB_INSNS, CodeCache, TbExitException, TranslationBlock)

UART_BASE = 0x10000000
TIMER_BASE = 0x10010000
INTC_BASE = 0x10020000
BLOCK_BASE = 0x10030000
NIC_BASE = 0x10040000
SYSCON_BASE = 0x100F0000

DEFAULT_RAM_SIZE = 8 * 1024 * 1024


class Machine:
    """A full guest system plus the host-side DBT state."""

    def __init__(self, ram_size: int = DEFAULT_RAM_SIZE,
                 engine: str = "tcg", rule_engine_factory=None,
                 fault_injector=None, watchdog=None,
                 selfcheck_interval: int = 0,
                 tracer=None, profiler=None):
        # Observability (defaults are the zero-cost disabled paths; see
        # repro.observability).  Set first so every subsystem built
        # below can capture the tracer.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler

        # Guest side.
        self.cpu = GuestCpu()
        self.memory = PhysicalMemoryMap()
        self.ram = self.memory.add_ram(0, ram_size)
        self.tlb = SoftTlb(RAM_HOST_BASE)
        self.bus = GuestBus(self.cpu, self.memory, self.tlb)

        # Devices.
        self.intc = InterruptController(self.cpu)
        self.uart = Uart(self)
        self.timer = Timer(self.intc)
        self.blockdev = BlockDevice(self.intc, self.memory, self)
        self.nic = Nic(self.intc, self)
        self.syscon = SystemController()
        self.memory.add_device(UART_BASE, 0x1000, self.uart, "uart")
        self.memory.add_device(TIMER_BASE, 0x1000, self.timer, "timer")
        self.memory.add_device(INTC_BASE, 0x1000, self.intc, "intc")
        self.memory.add_device(BLOCK_BASE, 0x1000, self.blockdev, "block")
        self.memory.add_device(NIC_BASE, 0x1000, self.nic, "nic")
        self.memory.add_device(SYSCON_BASE, 0x1000, self.syscon, "syscon")

        # Host side.
        self.env = Env()
        self.host_memory = HostMemory()
        self.host_memory.map_region(ENV_BASE, self.env.data, "env")
        self.host_memory.map_region(TLB_BASE, self.tlb.data, "tlb")
        self._stack = bytearray(STACK_SIZE)
        self.host_memory.map_region(STACK_BASE, self._stack, "stack")
        self.host_memory.map_region(RAM_HOST_BASE, self.ram.data, "ram")
        self.host_cpu = HostCpu(stack_top=STACK_BASE + STACK_SIZE)
        self.host_cpu.regs[ENV_REG] = ENV_BASE
        self.host = HostInterpreter(self.host_cpu, self.host_memory)
        self.runtime = QemuRuntime(self.cpu, self.env, self.memory, self.tlb,
                                   PageWalker(self.memory), self)
        self.runtime.host = self.host
        self.host.runtime = self.runtime
        self.host.tracer = self.tracer
        self.host.profiler = self.profiler
        if self.tracer.enabled:
            # The trace time axis: (modelled host cost, guest icount).
            self.tracer.set_clock(
                lambda: (float(self.host.cost), self.guest_icount))

        # Robustness: fault injection, watchdog, self-check sampling.
        # Set before the engine is built — engines read these to size
        # their degradation ladder.
        self.injector = fault_injector if fault_injector is not None \
            else NullInjector()
        self.watchdog = watchdog
        self.selfcheck_interval = selfcheck_interval
        self.host.watchdog = watchdog

        # Execution engine.
        if engine == "interp":
            self.engine = InterpEngine(self)
        elif engine == "tcg":
            self.engine = TcgEngine(self)
        elif engine == "rules":
            if rule_engine_factory is None:
                raise ValueError("rules engine requires a factory "
                                 "(use repro.core.make_rule_engine)")
            self.engine = rule_engine_factory(self)
        else:
            raise ValueError(f"unknown engine {engine!r}")

        # Statistics.
        self.guest_icount = 0        # guest instructions executed
        self.io_cost = 0             # modelled device time
        self.exit_code: Optional[int] = None
        self.irq_delivered = 0

    # -- device plumbing -----------------------------------------------------

    def charge_io(self, amount: int) -> None:
        """Charge modelled device latency (kept out of CPU cost)."""
        self.io_cost += amount

    def advance_time(self, guest_insns: int) -> None:
        self.guest_icount += guest_insns
        self.timer.advance(guest_insns)
        if self.injector.enabled and self.injector.fires("irq-storm"):
            # Spurious but *ackable* interrupt: the guest's IRQ handler
            # reads INTC STATUS and acks the timer, so storms exercise
            # delivery without wedging the machine.
            self.intc.raise_irq(IRQ_TIMER)
        self.runtime.update_irq()

    # -- program loading --------------------------------------------------------

    def load_program(self, program, entry: Optional[int] = None) -> None:
        self.memory.load_program(program)
        start = entry if entry is not None else program.entry()
        self.cpu.regs[PC] = start
        self.env.load_from_cpu(self.cpu)

    # -- running -------------------------------------------------------------------

    def run(self, max_guest_insns: int = 50_000_000) -> int:
        """Run until the guest halts; returns the exit code."""
        try:
            self.engine.run(max_guest_insns)
        except GuestHalt as halt:
            self.exit_code = halt.exit_code
            return halt.exit_code
        raise ReproError(
            f"guest did not halt within {max_guest_insns} instructions"
        ).attach_context(self.diag_context())

    # -- diagnostics -----------------------------------------------------------------

    def diag_context(self, **extra) -> DiagContext:
        """Machine-state snapshot for error reports (attach at raise time)."""
        engine = getattr(self, "engine", None)
        name = getattr(engine, "name", None)
        # The interpreter engine keeps the live pc in the guest CPU; the
        # DBT engines keep it in env.
        pc = self.cpu.regs[PC] if name == "interp" else self.env.pc
        return DiagContext(guest_pc=pc, mode=self.cpu.mode,
                           icount=self.guest_icount, engine=name,
                           extra=extra,
                           trace=self.tracer.tail(FLIGHT_RECORDER_EVENTS))

    # -- metrics ----------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """All counters, namespaced ``engine.`` / ``robust.`` / ``io.`` /
        ``trace.`` (collisions raise; see repro.observability.stats)."""
        engine_group = {
            "guest_icount": float(self.guest_icount),
            "irq_delivered": float(self.irq_delivered),
            "tlb_fills": float(self.tlb.fill_count),
        }
        engine_group.update(self.engine.stats())
        robust_group = {}
        for site, count in self.injector.counts_by_site().items():
            robust_group[f"inj_{site.replace('-', '_')}"] = float(count)
        if self.watchdog is not None:
            robust_group["watchdog_trips"] = float(self.watchdog.trips)
        robust_group.update(self.engine.robustness_stats())
        groups = {
            "engine": engine_group,
            "robust": robust_group,
            "io": {"cost": float(self.io_cost)},
        }
        loader = getattr(self.engine, "persistent", None)
        if loader is not None:
            # Kept in its own group: warm-start accounting differs
            # between cold and warm runs by design, while the
            # deterministic engine./robust./io. groups must not.
            groups["cache"] = loader.stats()
        if self.tracer.enabled:
            groups["trace"] = self.tracer.stats()
        return merge_stats(groups)


class InterpEngine:
    """Reference engine: the pure ARM interpreter (native-cost baseline)."""

    name = "interp"

    def __init__(self, machine: Machine):
        self.machine = machine
        self.interp = Interpreter(machine.cpu, machine.bus)

    def run(self, max_guest_insns: int) -> None:
        machine = self.machine
        cpu = machine.cpu
        interp = self.interp
        # Chunked stepping so devices advance deterministically.
        while interp.icount < max_guest_insns:
            before = interp.icount
            interp.step()
            machine.advance_time(max(interp.icount - before, 1))
            if cpu.halted and not cpu.irq_line:
                fast_forward_halt(
                    machine, lambda: not (cpu.halted and not cpu.irq_line))

    def stats(self) -> Dict[str, float]:
        return {"host_cost": float(self.interp.icount),
                "host_instructions": float(self.interp.icount)}

    def robustness_stats(self) -> Dict[str, float]:
        return {}


class DbtEngineBase:
    """Shared cpu_exec loop for the TCG and rule-based engines.

    The base class also owns the *degradation ladder* (see
    ``docs/internals.md``): every engine translates through an ordered
    list of tiers (:attr:`tiers`, strongest first) and falls down the
    ladder when a tier's translation or generated code misbehaves.  The
    last tier, ``interp``, executes the block with the reference ARM
    interpreter and cannot fail for codegen reasons.
    """

    name = "dbt"
    #: Translation tiers, strongest first (RuleEngine prepends "rules").
    tiers = ("tcg", "interp")

    def __init__(self, machine: Machine):
        self.machine = machine
        self.cache = CodeCache()
        self.translation_cost = 0
        #: Persistent cross-run translation cache (repro.cache); wired
        #: by attach_cache() when the run has a --cache-dir.
        self.persistent = None
        machine.host.on_tb_enter = self._on_tb_enter  # set below via attr
        self.ladder = DegradationController(self.tiers)
        self.selfcheck = SelfCheck(interval=machine.selfcheck_interval,
                                   tlb_size=len(machine.tlb.data))
        # Pre-execute snapshots are only worth taking when some fault
        # source can actually fire (keeps the normal path allocation-free).
        self._recovery = (machine.injector.enabled or
                          machine.watchdog is not None or
                          self.selfcheck.enabled)
        self._tier_interp = Interpreter(machine.cpu, machine.bus)

    # -- translation (the tier ladder) -------------------------------------------

    def translate(self, pc: int, mmu_idx: int) -> TranslationBlock:
        """Translate through the tier ladder, degrading on failure.

        Genuine guest conditions (fetch fault -> prefetch abort,
        undecodable first word -> undef) and transient injected faults
        propagate to the run loop; anything else a tier raises is
        treated as a codegen/rule bug: the offending rule is
        quarantined (when attributable) or the block's tier floor is
        lowered, and the next tier is tried.
        """
        ladder = self.ladder
        tier_index = ladder.start_tier(pc, mmu_idx)
        last_error = None
        while tier_index < len(self.tiers):
            tier = self.tiers[tier_index]
            try:
                tb = self._translate_tier(tier, pc, mmu_idx)
            except (MemoryFault, DecodingError, InjectedFault):
                raise
            except RuleApplicationError as error:
                last_error = error
                if ladder.quarantine_rule(error.rule,
                                          f"translate: {error}"):
                    # Newly quarantined: the same tier now routes the
                    # rule's instructions through the fallback, so retry
                    # it before degrading the whole block.
                    if self.machine.tracer.enabled:
                        self.machine.tracer.emit(
                            "ladder.quarantine", rule=error.rule,
                            phase="translate", pc=pc)
                    self.cache.invalidate_rules([error.rule])
                    continue
                tier_index += 1
                continue
            except Exception as error:  # noqa: BLE001 - the ladder exists
                last_error = error      # to absorb arbitrary codegen bugs
                if ladder.start_tier(pc, mmu_idx) == tier_index:
                    ladder.demote(pc, mmu_idx)
                    if self.machine.tracer.enabled:
                        self.machine.tracer.emit(
                            "ladder.demote", pc=pc, from_tier=tier,
                            reason=type(error).__name__)
                tier_index += 1
                continue
            tb.meta["tier"] = tier
            if tier == "rules":
                tb.meta["selfcheckable"] = tb_selfcheckable(tb)
            ladder.note_translated(tier_index)
            return tb
        raise TranslationError(
            f"all translation tiers failed for 0x{pc:08x}"
        ).attach_context(self.machine.diag_context(last_error=str(last_error)))

    def _translate_tier(self, tier: str, pc: int,
                        mmu_idx: int) -> TranslationBlock:
        if tier == "tcg":
            return self.translate_tcg(pc, mmu_idx)
        if tier == "interp":
            return self._make_interp_tb(pc, mmu_idx)
        raise TranslationError(f"engine {self.name} has no tier {tier!r}")

    def translate_tcg(self, pc: int, mmu_idx: int) -> TranslationBlock:
        """The MiniQEMU pipeline (ARM -> TCG IR -> x86); the shared
        fallback tier below the rules engine."""
        from ..guest.isa import Op
        from ..ir.opt import optimize

        insns = self.fetch_block(pc)
        frontend = TcgFrontend(mmu_idx)
        ir_insns, jmp_pcs = frontend.translate(pc, insns)
        ir_insns = optimize(ir_insns)
        backend = TcgBackend(mmu_idx)
        code = backend.lower(ir_insns)
        tb = TranslationBlock(pc=pc, mmu_idx=mmu_idx, guest_insns=insns,
                              code=code)
        tb.jmp_pc = list(jmp_pcs)
        tb.meta = {
            "n_memory": sum(1 for insn in insns if insn.is_memory()),
            "n_system": sum(1 for insn in insns
                            if insn.is_system() or insn.op is Op.SVC),
        }
        return tb

    def _make_interp_tb(self, pc: int, mmu_idx: int) -> TranslationBlock:
        """Last-resort tier: an empty TB executed by the reference
        interpreter (cannot fail for codegen reasons)."""
        from ..guest.isa import Op

        insns = self.fetch_block(pc)
        tb = TranslationBlock(pc=pc, mmu_idx=mmu_idx, guest_insns=insns,
                              code=[])
        tb.meta = {
            "n_memory": sum(1 for insn in insns if insn.is_memory()),
            "n_system": sum(1 for insn in insns
                            if insn.is_system() or insn.op is Op.SVC),
        }
        return tb

    # -- helpers ----------------------------------------------------------------

    def mmu_idx(self) -> int:
        return MMU_IDX_USER if self.machine.cpu.mode == MODE_USR \
            else MMU_IDX_KERNEL

    def fetch_block(self, pc: int):
        """Read a guest basic block's instructions at translation time."""
        machine = self.machine
        machine.injector.maybe_fault("fetch", f"pc=0x{pc:08x}")
        insns = []
        addr = pc
        while len(insns) < MAX_TB_INSNS:
            try:
                word = machine.bus.fetch(addr)
            except MemoryFault:
                if insns:
                    break
                raise
            try:
                insn = decode(word, addr)
            except DecodingError:
                # Ran into data (e.g. a literal pool): end the block; a
                # first-instruction failure is a genuine guest undef.
                if insns:
                    break
                raise
            insns.append(insn)
            if insn.writes_pc() or insn.is_system() or \
                    insn.op.name in ("SVC", "WFI"):
                break
            addr += 4
        if machine.tracer.enabled:
            machine.tracer.emit("decode.block", pc=pc, n_insns=len(insns))
        return insns

    def _vet_tb(self, tb: TranslationBlock) -> TranslationBlock:
        """Hook between instrumentation and cache insertion.

        Engines with a verify-before-enter mode (``--check``) override
        this to run the static soundness checker on the freshly
        translated block and degrade it before it can ever execute.
        Returns the block to insert (possibly a retranslation at a
        lower tier)."""
        return tb

    def get_tb(self, pc: int, mmu_idx: int) -> TranslationBlock:
        tb = self.cache.lookup(pc, mmu_idx)
        if tb is None:
            loaded = None
            if self.persistent is not None and \
                    self.ladder.start_tier(pc, mmu_idx) == 0:
                # Warm start: revive a persisted rules-tier translation
                # (validated against live guest bytes by the loader).
                loaded = self.persistent.fetch(pc, mmu_idx)
            if loaded is not None:
                tb = loaded
                self.ladder.note_translated(self.tiers.index("rules"))
            else:
                tb = self.translate(pc, mmu_idx)
                if self.persistent is not None:
                    self.persistent.fresh += 1
            self.machine.injector.instrument_tb(tb)
            vetted = self._vet_tb(tb)
            if loaded is not None and vetted is not tb:
                # --check rejected the revived block: the persisted
                # entry is unsound for this context, drop it too.
                self.persistent.discard(pc, mmu_idx, "check-reject")
            tb = vetted
            tb.meta.setdefault("provenance", "fresh")
            self.cache.insert(tb)
            host = self.machine.host
            # Loaded TBs re-charge the same modelled translation cost as
            # a fresh translation, so the deterministic metrics are
            # bit-identical cold vs warm; the warm win is wall-clock.
            cost = COST_TRANSLATE_PER_INSN * tb.guest_insn_count
            if host.profiler is not None:
                # Attribute the modelled translation cost to the new TB.
                host._profile_key = (tb.pc, tb.mmu_idx)
                host.profiler.register(tb)
            host.charge(cost, "translate")
            host._profile_key = None
            self.translation_cost += cost
            if self.machine.tracer.enabled:
                self.machine.tracer.emit(
                    "tb.translate", pc=pc, tier=tb.meta.get("tier", "?"),
                    provenance=tb.meta.get("provenance", "fresh"),
                    guest_insns=tb.guest_insn_count,
                    host_insns=len(tb.code))
        return tb

    # -- the cpu_exec loop -----------------------------------------------------------

    def run(self, max_guest_insns: int) -> None:
        machine = self.machine
        host = machine.host
        runtime = machine.runtime
        while machine.guest_icount < max_guest_insns:
            # Deliver a pending interrupt at the loop head (QEMU does the
            # same before entering the code cache).
            if machine.env.read(ENV_IRQ):
                if machine.tracer.enabled:
                    machine.tracer.emit("irq.deliver", pc=machine.env.pc)
                runtime.deliver_exception(MODE_IRQ, VECTOR_IRQ,
                                          machine.env.pc + 4)
                machine.irq_delivered += 1
            pc = machine.env.pc
            try:
                tb = self.get_tb(pc, self.mmu_idx())
            except MemoryFault:
                # Translation-time fetch fault: a guest prefetch abort.
                from ..guest.cpu import MODE_ABT, VECTOR_PREFETCH_ABORT
                runtime.deliver_exception(MODE_ABT, VECTOR_PREFETCH_ABORT,
                                          pc + 4)
                continue
            except DecodingError:
                # The guest jumped into undecodable bytes: undef.
                from ..guest.cpu import MODE_UND, VECTOR_UNDEF
                runtime.deliver_exception(MODE_UND, VECTOR_UNDEF, pc + 4)
                continue
            except InjectedFault as fault:
                # Transient translation-time fault: retry (bounded).
                if not self.ladder.note_transient():
                    raise fault.attach_context(machine.diag_context(
                        detail="transient-retry budget exhausted"))
                self.ladder.recovered_faults += 1
                continue
            if host.profiler is not None:
                # The lookup cost belongs to the block about to run.
                host._profile_key = (tb.pc, tb.mmu_idx)
            host.charge(COST_TB_LOOKUP, "runtime")
            if tb.meta.get("tier") == "interp":
                self._execute_interp_tier(tb)
                self.ladder.note_progress()
                continue
            snapshot = MachineSnapshot(machine) if self._recovery else None
            if self.selfcheck.should_check(tb) and \
                    not self.selfcheck.verify(tb, bytes(machine.env.data)):
                # Differential mismatch *before* the TB ran: quarantine
                # its rules and retranslate; live state is untouched.
                if machine.tracer.enabled:
                    machine.tracer.emit("ladder.selfcheck_fail", pc=tb.pc)
                self._condemn_tb(tb, "self-check mismatch")
                continue
            self._before_execute(tb)
            try:
                exit_info = host.execute(tb)
            except TbExitException:
                self.ladder.note_progress()
                continue  # helper delivered an exception; env.pc updated
            except RuleApplicationError as error:
                self._recover(tb, snapshot, error, rule=error.rule)
                continue
            except InjectedFault as fault:
                # Transient execute-time fault (softmmu/helper): roll
                # back to the TB boundary and replay.
                if snapshot is None or host.tb_side_effects or \
                        not self.ladder.note_transient():
                    raise fault.attach_context(machine.diag_context())
                snapshot.restore(machine)
                self.ladder.recovered_faults += 1
                continue
            except (WatchdogTimeout, HostExecutionError) as error:
                self._recover(tb, snapshot, error)
                continue
            self.ladder.note_progress()
            status = exit_info.status
            if exit_info.chain is not None and status == EXIT_PC_UPDATED \
                    and not self.selfcheck.paranoid:
                # Paranoid self-checking keeps every entry visible to the
                # run loop (a chained jump would bypass the check).
                self._chain(*exit_info.chain)
            if status in (EXIT_PC_UPDATED, EXIT_INTERRUPT, EXIT_EXCEPTION):
                continue
            if status == EXIT_HALT:
                self._fast_forward_halt()
                continue
            raise ReproError(
                f"unexpected TB exit status {status}"
            ).attach_context(machine.diag_context(tb_pc=hex(tb.pc)))

    # -- fault recovery (the execute-time half of the ladder) ------------------

    def _recover(self, tb: TranslationBlock, snapshot, error,
                 rule: Optional[str] = None) -> None:
        """Roll back a faulted TB execution and degrade its translation.

        Only safe when the partial execution performed no non-idempotent
        work (MMIO, exception delivery) — otherwise the error propagates
        with diagnostics attached.
        """
        machine = self.machine
        if snapshot is None or machine.host.tb_side_effects:
            raise error.attach_context(machine.diag_context(
                tb_pc=hex(tb.pc),
                side_effects=machine.host.tb_side_effects))
        snapshot.restore(machine)
        if machine.tracer.enabled:
            machine.tracer.emit("ladder.recover", pc=tb.pc,
                                rule=rule or "",
                                reason=type(error).__name__)
        if rule is not None:
            self.ladder.quarantine_rule(rule, f"execute: {error}")
            self.cache.invalidate_rules([rule])
        else:
            self.ladder.demote(tb.pc, tb.mmu_idx)
        if self.cache.lookup(tb.pc, tb.mmu_idx) is tb:
            self.cache.invalidate(tb, machine.diag_context())
        self.ladder.recovered_faults += 1

    def _condemn_tb(self, tb: TranslationBlock, reason: str) -> None:
        """Quarantine a TB's rules and evict it (self-check failure)."""
        rules = sorted(tb.meta.get("rules_used") or ())
        newly = [rule for rule in rules
                 if self.ladder.quarantine_rule(rule, reason)]
        if rules:
            self.cache.invalidate_rules(rules)
        if self.cache.lookup(tb.pc, tb.mmu_idx) is tb:
            self.cache.invalidate(tb, self.machine.diag_context())
        if not newly:
            # No rule left to blame: degrade the whole block instead.
            self.ladder.demote(tb.pc, tb.mmu_idx)
        self.ladder.recovered_faults += 1

    # -- the interp tier -------------------------------------------------------

    def _execute_interp_tier(self, tb: TranslationBlock) -> None:
        """Execute one block with the reference interpreter.

        Architectural state flows env -> cpu, the interpreter steps
        until control leaves the block (branch, exception, halt, or the
        block's own length), and the result flows cpu -> env so the
        cpu_exec loop continues exactly as after a translated TB.
        """
        machine = self.machine
        runtime = machine.runtime
        cpu = machine.cpu
        interp = self._tier_interp
        runtime.env_to_cpu()
        tb.exec_count += 1
        if machine.profiler is not None:
            machine.profiler.on_enter((tb.pc, tb.mmu_idx))
        if machine.tracer.enabled:
            machine.tracer.emit("tb.enter", pc=tb.pc, tier="interp")
        end = tb.pc + 4 * tb.guest_insn_count
        mode = cpu.mode
        steps = 0
        while (tb.pc <= cpu.regs[PC] < end and steps < tb.guest_insn_count
               and not cpu.halted and cpu.mode == mode):
            before = interp.icount
            interp.step()
            machine.advance_time(max(interp.icount - before, 1))
            machine.host.charge(COST_INTERP_TIER_INSN, "interp_tier")
            steps += 1
        machine.host._profile_key = None
        runtime.cpu_to_env()
        if cpu.halted and not cpu.irq_line:
            fast_forward_halt(
                machine, lambda: not (cpu.halted and not cpu.irq_line))
            runtime.cpu_to_env()

    def _before_execute(self, tb: TranslationBlock) -> None:
        """Pre-charge guest time for the first TB of an execute() call."""
        self._on_tb_enter(tb)

    def _on_tb_enter(self, tb: TranslationBlock) -> None:
        tb.exec_count += 1
        machine = self.machine
        if machine.profiler is not None:
            machine.profiler.on_enter((tb.pc, tb.mmu_idx))
        if machine.tracer.enabled:
            machine.tracer.emit("tb.enter", pc=tb.pc,
                                tier=tb.meta.get("tier", "?"))
        machine.advance_time(tb.guest_insn_count)

    def _chain(self, tb: TranslationBlock, slot: int) -> None:
        """Patch a goto_tb slot (block chaining)."""
        machine = self.machine
        target_pc = machine.env.pc  # the exit stub stored it
        if tb.jmp_pc[slot] is not None and tb.jmp_pc[slot] == target_pc:
            next_tb = self.cache.lookup(target_pc, self.mmu_idx())
            if next_tb is None:
                try:
                    next_tb = self.get_tb(target_pc, self.mmu_idx())
                except (MemoryFault, DecodingError):
                    # Chaining is an optimization: let the run loop take
                    # the genuine guest fault on the unchained path.
                    return
                except InjectedFault:
                    # Transient translation fault while chaining: drop
                    # the chain attempt (the run loop retries later).
                    self.ladder.transient_faults += 1
                    self.ladder.recovered_faults += 1
                    return
            if next_tb.meta.get("injected") or \
                    next_tb.meta.get("tier") == "interp":
                # Never chain into a corrupted TB (its entry trap must
                # surface at a rollback-safe TB boundary) or an
                # interp-tier block (it has no host code to jump into).
                return
            tb.jmp_target[slot] = next_tb
            if machine.tracer.enabled:
                machine.tracer.emit("tb.chain", from_pc=tb.pc, slot=slot,
                                    to_pc=next_tb.pc)

    def _fast_forward_halt(self) -> None:
        machine = self.machine
        fast_forward_halt(machine, lambda: machine.env.read(ENV_IRQ))

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        host = self.machine.host
        memory_dyn = system_dyn = check_dyn = 0
        for tb in self.cache.all_tbs():
            weight = tb.exec_count
            memory_dyn += weight * tb.meta.get("n_memory", 0)
            system_dyn += weight * tb.meta.get("n_system", 0)
            check_dyn += weight
        base = {
            "host_instructions": float(host.total),
            "host_cost": float(host.cost),
            "translation_cost": float(self.translation_cost),
            "tb_count": float(len(self.cache)),
            "static_guest_insns": float(self.cache.translated_guest_insns),
            "static_host_insns": float(self.cache.translated_host_insns),
            "memory_insns_dyn": float(memory_dyn),
            "system_insns_dyn": float(system_dyn),
            "interrupt_checks_dyn": float(check_dyn),
            "tb_invalidated": float(self.cache.invalidated),
            **{f"tag_{tag}": float(count)
               for tag, count in host.by_tag.items()},
        }
        return base

    def robustness_stats(self) -> Dict[str, float]:
        """Degradation-ladder / self-check counters (``robust.`` group).

        The machine itself publishes ``robust.watchdog_trips`` and the
        injection counters, so they are deliberately absent here."""
        base = self.ladder.stats()
        if self.selfcheck.enabled:
            base.update({
                "selfcheck_checks": float(self.selfcheck.checks),
                "selfcheck_failures": float(self.selfcheck.failures),
                "selfcheck_inconclusive":
                    float(self.selfcheck.inconclusive),
            })
        return base


class TcgEngine(DbtEngineBase):
    """The MiniQEMU baseline: ARM -> TCG IR -> x86."""

    name = "tcg"
