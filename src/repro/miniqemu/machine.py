"""The machine: board wiring, the cpu_exec loop, and execution engines.

One :class:`Machine` owns the guest CPU, physical memory and devices, the
softmmu, the host-side state (env, TLB bytes, host CPU/memory/interpreter)
and a pluggable *execution engine*:

- :class:`InterpEngine` — the reference ARM interpreter (architectural
  ground truth; also the "native execution" cost baseline for Fig 18),
- :class:`TcgEngine` — the MiniQEMU baseline (ARM -> IR -> x86),
- ``repro.core.RuleEngine`` — the paper's rule-based translator, which
  plugs into the same socket.

The physical memory map::

    0x0000_0000  RAM (default 8 MiB)
    0x1000_0000  UART
    0x1001_0000  timer
    0x1002_0000  interrupt controller
    0x1003_0000  block device
    0x1004_0000  NIC
    0x100F_0000  system controller (guest-initiated shutdown)
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.costmodel import COST_TB_LOOKUP, COST_TRANSLATE_PER_INSN
from ..common.errors import (DecodingError, GuestHalt, MemoryFault,
                             ReproError, TranslationError)
from ..devices.blockdev import BlockDevice
from ..devices.intc import InterruptController
from ..devices.nic import Nic
from ..devices.syscon import SystemController
from ..devices.timer import Timer
from ..devices.uart import Uart
from ..guest.cpu import GuestCpu, MODE_IRQ, MODE_USR, VECTOR_IRQ
from ..guest.decoder import decode
from ..guest.interp import Interpreter
from ..guest.isa import PC
from ..host.cpu import HostCpu
from ..host.interp import HostInterpreter
from ..host.isa import ENV_REG
from ..host.memory import HostMemory
from ..softmmu.bus import GuestBus
from ..softmmu.memory import PhysicalMemoryMap
from ..softmmu.pagetable import PageWalker
from ..softmmu.tlb import MMU_IDX_KERNEL, MMU_IDX_USER, SoftTlb
from .backend import TcgBackend
from .env import (ENV_BASE, ENV_IRQ, RAM_HOST_BASE, STACK_BASE, STACK_SIZE,
                  TLB_BASE, Env, env_reg)
from .frontend import TcgFrontend
from .helpers import QemuRuntime
from .tb import (EXIT_EXCEPTION, EXIT_HALT, EXIT_INTERRUPT, EXIT_PC_UPDATED,
                 MAX_TB_INSNS, CodeCache, TbExitException, TranslationBlock)

UART_BASE = 0x10000000
TIMER_BASE = 0x10010000
INTC_BASE = 0x10020000
BLOCK_BASE = 0x10030000
NIC_BASE = 0x10040000
SYSCON_BASE = 0x100F0000

DEFAULT_RAM_SIZE = 8 * 1024 * 1024


class Machine:
    """A full guest system plus the host-side DBT state."""

    def __init__(self, ram_size: int = DEFAULT_RAM_SIZE,
                 engine: str = "tcg", rule_engine_factory=None):
        # Guest side.
        self.cpu = GuestCpu()
        self.memory = PhysicalMemoryMap()
        self.ram = self.memory.add_ram(0, ram_size)
        self.tlb = SoftTlb(RAM_HOST_BASE)
        self.bus = GuestBus(self.cpu, self.memory, self.tlb)

        # Devices.
        self.intc = InterruptController(self.cpu)
        self.uart = Uart(self)
        self.timer = Timer(self.intc)
        self.blockdev = BlockDevice(self.intc, self.memory, self)
        self.nic = Nic(self.intc, self)
        self.syscon = SystemController()
        self.memory.add_device(UART_BASE, 0x1000, self.uart, "uart")
        self.memory.add_device(TIMER_BASE, 0x1000, self.timer, "timer")
        self.memory.add_device(INTC_BASE, 0x1000, self.intc, "intc")
        self.memory.add_device(BLOCK_BASE, 0x1000, self.blockdev, "block")
        self.memory.add_device(NIC_BASE, 0x1000, self.nic, "nic")
        self.memory.add_device(SYSCON_BASE, 0x1000, self.syscon, "syscon")

        # Host side.
        self.env = Env()
        self.host_memory = HostMemory()
        self.host_memory.map_region(ENV_BASE, self.env.data, "env")
        self.host_memory.map_region(TLB_BASE, self.tlb.data, "tlb")
        self._stack = bytearray(STACK_SIZE)
        self.host_memory.map_region(STACK_BASE, self._stack, "stack")
        self.host_memory.map_region(RAM_HOST_BASE, self.ram.data, "ram")
        self.host_cpu = HostCpu(stack_top=STACK_BASE + STACK_SIZE)
        self.host_cpu.regs[ENV_REG] = ENV_BASE
        self.host = HostInterpreter(self.host_cpu, self.host_memory)
        self.runtime = QemuRuntime(self.cpu, self.env, self.memory, self.tlb,
                                   PageWalker(self.memory), self)
        self.runtime.host = self.host
        self.host.runtime = self.runtime

        # Execution engine.
        if engine == "interp":
            self.engine = InterpEngine(self)
        elif engine == "tcg":
            self.engine = TcgEngine(self)
        elif engine == "rules":
            if rule_engine_factory is None:
                raise ValueError("rules engine requires a factory "
                                 "(use repro.core.make_rule_engine)")
            self.engine = rule_engine_factory(self)
        else:
            raise ValueError(f"unknown engine {engine!r}")

        # Statistics.
        self.guest_icount = 0        # guest instructions executed
        self.io_cost = 0             # modelled device time
        self.exit_code: Optional[int] = None
        self.irq_delivered = 0

    # -- device plumbing -----------------------------------------------------

    def charge_io(self, amount: int) -> None:
        """Charge modelled device latency (kept out of CPU cost)."""
        self.io_cost += amount

    def advance_time(self, guest_insns: int) -> None:
        self.guest_icount += guest_insns
        self.timer.advance(guest_insns)
        self.runtime.update_irq()

    # -- program loading --------------------------------------------------------

    def load_program(self, program, entry: Optional[int] = None) -> None:
        self.memory.load_program(program)
        start = entry if entry is not None else program.entry()
        self.cpu.regs[PC] = start
        self.env.load_from_cpu(self.cpu)

    # -- running -------------------------------------------------------------------

    def run(self, max_guest_insns: int = 50_000_000) -> int:
        """Run until the guest halts; returns the exit code."""
        try:
            self.engine.run(max_guest_insns)
        except GuestHalt as halt:
            self.exit_code = halt.exit_code
            return halt.exit_code
        raise ReproError(
            f"guest did not halt within {max_guest_insns} instructions")

    # -- metrics ----------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        base = {
            "guest_icount": self.guest_icount,
            "io_cost": self.io_cost,
            "irq_delivered": self.irq_delivered,
            "tlb_fills": self.tlb.fill_count,
        }
        base.update(self.engine.stats())
        return base


class InterpEngine:
    """Reference engine: the pure ARM interpreter (native-cost baseline)."""

    name = "interp"

    def __init__(self, machine: Machine):
        self.machine = machine
        self.interp = Interpreter(machine.cpu, machine.bus)

    def run(self, max_guest_insns: int) -> None:
        machine = self.machine
        cpu = machine.cpu
        interp = self.interp
        # Chunked stepping so devices advance deterministically.
        while interp.icount < max_guest_insns:
            before = interp.icount
            interp.step()
            machine.advance_time(max(interp.icount - before, 1))
            if cpu.halted and not cpu.irq_line:
                self._fast_forward_halt()

    def _fast_forward_halt(self) -> None:
        machine = self.machine
        if not machine.timer.enabled or machine.timer.reload == 0:
            raise ReproError("guest halted with no wakeup source (wfi)")
        while machine.cpu.halted and not machine.cpu.irq_line:
            machine.advance_time(max(machine.timer.value, 1))

    def stats(self) -> Dict[str, float]:
        return {"engine": 0.0, "host_cost": float(self.interp.icount),
                "host_instructions": float(self.interp.icount)}


class DbtEngineBase:
    """Shared cpu_exec loop for the TCG and rule-based engines."""

    name = "dbt"

    def __init__(self, machine: Machine):
        self.machine = machine
        self.cache = CodeCache()
        self.translation_cost = 0
        machine.host.on_tb_enter = self._on_tb_enter  # set below via attr

    # Each engine provides: translate(pc, mmu_idx) -> TranslationBlock.

    def translate(self, pc: int, mmu_idx: int) -> TranslationBlock:
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------------

    def mmu_idx(self) -> int:
        return MMU_IDX_USER if self.machine.cpu.mode == MODE_USR \
            else MMU_IDX_KERNEL

    def fetch_block(self, pc: int):
        """Read a guest basic block's instructions at translation time."""
        machine = self.machine
        insns = []
        addr = pc
        while len(insns) < MAX_TB_INSNS:
            try:
                word = machine.bus.fetch(addr)
            except MemoryFault:
                if insns:
                    break
                raise
            try:
                insn = decode(word, addr)
            except DecodingError:
                # Ran into data (e.g. a literal pool): end the block; a
                # first-instruction failure is a genuine guest undef.
                if insns:
                    break
                raise
            insns.append(insn)
            if insn.writes_pc() or insn.is_system() or \
                    insn.op.name in ("SVC", "WFI"):
                break
            addr += 4
        return insns

    def get_tb(self, pc: int, mmu_idx: int) -> TranslationBlock:
        tb = self.cache.lookup(pc, mmu_idx)
        if tb is None:
            tb = self.translate(pc, mmu_idx)
            self.cache.insert(tb)
            cost = COST_TRANSLATE_PER_INSN * tb.guest_insn_count
            self.machine.host.charge(cost, "translate")
            self.translation_cost += cost
        return tb

    # -- the cpu_exec loop -----------------------------------------------------------

    def run(self, max_guest_insns: int) -> None:
        machine = self.machine
        host = machine.host
        runtime = machine.runtime
        while machine.guest_icount < max_guest_insns:
            # Deliver a pending interrupt at the loop head (QEMU does the
            # same before entering the code cache).
            if machine.env.read(ENV_IRQ):
                runtime.deliver_exception(MODE_IRQ, VECTOR_IRQ,
                                          machine.env.pc + 4)
                machine.irq_delivered += 1
            pc = machine.env.pc
            try:
                tb = self.get_tb(pc, self.mmu_idx())
            except MemoryFault:
                # Translation-time fetch fault: a guest prefetch abort.
                from ..guest.cpu import MODE_ABT, VECTOR_PREFETCH_ABORT
                runtime.deliver_exception(MODE_ABT, VECTOR_PREFETCH_ABORT,
                                          pc + 4)
                continue
            except DecodingError:
                # The guest jumped into undecodable bytes: undef.
                from ..guest.cpu import MODE_UND, VECTOR_UNDEF
                runtime.deliver_exception(MODE_UND, VECTOR_UNDEF, pc + 4)
                continue
            host.charge(COST_TB_LOOKUP, "runtime")
            self._before_execute(tb)
            try:
                exit_info = host.execute(tb)
            except TbExitException:
                continue  # helper delivered an exception; env.pc updated
            status = exit_info.status
            if exit_info.chain is not None and status == EXIT_PC_UPDATED:
                self._chain(*exit_info.chain)
            if status in (EXIT_PC_UPDATED, EXIT_INTERRUPT, EXIT_EXCEPTION):
                continue
            if status == EXIT_HALT:
                self._fast_forward_halt()
                continue
            raise ReproError(f"unexpected TB exit status {status}")

    def _before_execute(self, tb: TranslationBlock) -> None:
        """Pre-charge guest time for the first TB of an execute() call."""
        self._on_tb_enter(tb)

    def _on_tb_enter(self, tb: TranslationBlock) -> None:
        tb.exec_count += 1
        self.machine.advance_time(tb.guest_insn_count)

    def _chain(self, tb: TranslationBlock, slot: int) -> None:
        """Patch a goto_tb slot (block chaining)."""
        machine = self.machine
        target_pc = machine.env.pc  # the exit stub stored it
        if tb.jmp_pc[slot] is not None and tb.jmp_pc[slot] == target_pc:
            next_tb = self.cache.lookup(target_pc, self.mmu_idx())
            if next_tb is None:
                next_tb = self.get_tb(target_pc, self.mmu_idx())
            tb.jmp_target[slot] = next_tb

    def _fast_forward_halt(self) -> None:
        machine = self.machine
        if not machine.timer.enabled or machine.timer.reload == 0:
            raise ReproError("guest halted with no wakeup source (wfi)")
        while not machine.env.read(ENV_IRQ):
            machine.advance_time(max(machine.timer.value, 1))
            if not machine.cpu.irq_line and not machine.timer.enabled:
                raise ReproError("halted guest cannot wake up")

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        host = self.machine.host
        memory_dyn = system_dyn = check_dyn = 0
        for tb in self.cache.all_tbs():
            weight = tb.exec_count
            memory_dyn += weight * tb.meta.get("n_memory", 0)
            system_dyn += weight * tb.meta.get("n_system", 0)
            check_dyn += weight
        return {
            "host_instructions": float(host.total),
            "host_cost": float(host.cost),
            "translation_cost": float(self.translation_cost),
            "tb_count": float(len(self.cache)),
            "static_guest_insns": float(self.cache.translated_guest_insns),
            "static_host_insns": float(self.cache.translated_host_insns),
            "memory_insns_dyn": float(memory_dyn),
            "system_insns_dyn": float(system_dyn),
            "interrupt_checks_dyn": float(check_dyn),
            **{f"tag_{tag}": float(count)
               for tag, count in host.by_tag.items()},
        }


class TcgEngine(DbtEngineBase):
    """The MiniQEMU baseline: ARM -> TCG IR -> x86."""

    name = "tcg"

    def translate(self, pc: int, mmu_idx: int) -> TranslationBlock:
        from ..ir.opt import optimize

        insns = self.fetch_block(pc)
        frontend = TcgFrontend(mmu_idx)
        ir_insns, jmp_pcs = frontend.translate(pc, insns)
        ir_insns = optimize(ir_insns)
        backend = TcgBackend(mmu_idx)
        code = backend.lower(ir_insns)
        tb = TranslationBlock(pc=pc, mmu_idx=mmu_idx, guest_insns=insns,
                              code=code)
        tb.jmp_pc = list(jmp_pcs)
        from ..guest.isa import Op
        tb.meta = {
            "n_memory": sum(1 for insn in insns if insn.is_memory()),
            "n_system": sum(1 for insn in insns
                            if insn.is_system() or insn.op is Op.SVC),
        }
        return tb
