"""TCG backend: IR -> host x86.

A small linear register allocator in the spirit of TCG's: temps are
allocated to host registers on first definition, reloaded from spill
slots when evicted, and freed at their last use.  EBP is reserved for the
env pointer; EAX/EDX are clobbered by the inline softmmu sequences and by
helper calls (callee side of the cdecl convention), so temps living in
them are spilled around those points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..common.errors import TranslationError
from ..ir.ops import IRCond, IRInsn, IROp, Temp
from ..host.builder import CodeBuilder
from ..host.isa import (EAX, EBX, ECX, EDI, EDX, ENV_REG, ESI, ESP, Imm,
                        Mem, Reg, X86Cond, X86Op)
from . import mmu_codegen
from .env import ENV_SPILL

#: Registers available for temps (EBP = env pointer, ESP = stack).
_ALLOCATABLE = (EBX, ESI, EDI, ECX, EDX, EAX)

#: Registers a CALL or softmmu sequence clobbers.
_CALL_CLOBBERED = (EAX, ECX, EDX)

_COND_MAP = {
    IRCond.EQ: X86Cond.E, IRCond.NE: X86Cond.NE,
    IRCond.LTU: X86Cond.B, IRCond.GEU: X86Cond.AE,
    IRCond.LEU: X86Cond.BE, IRCond.GTU: X86Cond.A,
    IRCond.LT: X86Cond.L, IRCond.GE: X86Cond.GE,
    IRCond.LE: X86Cond.LE, IRCond.GT: X86Cond.G,
}

_BINOP_MAP = {
    IROp.ADD: X86Op.ADD, IROp.SUB: X86Op.SUB, IROp.AND: X86Op.AND,
    IROp.OR: X86Op.OR, IROp.XOR: X86Op.XOR, IROp.MUL: X86Op.IMUL,
}

_SHIFT_MAP = {IROp.SHL: X86Op.SHL, IROp.SHR: X86Op.SHR,
              IROp.SAR: X86Op.SAR, IROp.ROR: X86Op.ROR}

_NUM_SPILL_SLOTS = 8


class RegisterAllocator:
    """Tracks temp locations (register or spill slot) during lowering."""

    def __init__(self, builder: CodeBuilder, last_use: Dict[Temp, int]):
        self.builder = builder
        self.last_use = last_use
        self.reg_owner: Dict[int, Optional[Temp]] = \
            {reg: None for reg in _ALLOCATABLE}
        self.temp_reg: Dict[Temp, int] = {}
        self.temp_slot: Dict[Temp, int] = {}
        self.free_slots = list(range(_NUM_SPILL_SLOTS))
        self.position = 0

    # -- spill bookkeeping -------------------------------------------------

    def _spill(self, reg: int) -> None:
        temp = self.reg_owner[reg]
        if temp is None:
            return
        if temp not in self.temp_slot:
            if not self.free_slots:
                raise TranslationError("out of spill slots")
            slot = self.free_slots.pop()
            self.temp_slot[temp] = slot
            self.builder.mov(Mem(base=ENV_REG, disp=ENV_SPILL + 4 * slot),
                             Reg(reg))
        self.reg_owner[reg] = None
        self.temp_reg.pop(temp, None)

    def _release_temp(self, temp: Temp) -> None:
        reg = self.temp_reg.pop(temp, None)
        if reg is not None:
            self.reg_owner[reg] = None
        slot = self.temp_slot.pop(temp, None)
        if slot is not None:
            self.free_slots.append(slot)

    def kill_dead(self, position: int) -> None:
        for temp in list(self.temp_reg) + list(self.temp_slot):
            if self.last_use.get(temp, -1) <= position:
                self._release_temp(temp)

    # -- allocation ---------------------------------------------------------

    def _pick_reg(self, forbidden: Set[int]) -> int:
        for reg in _ALLOCATABLE:
            if reg in forbidden:
                continue
            if self.reg_owner[reg] is None:
                return reg
        # Evict the owner whose next use is farthest (approximated by
        # last_use, which is what we have).
        candidates = [reg for reg in _ALLOCATABLE if reg not in forbidden]
        if not candidates:
            raise TranslationError("no allocatable register")
        victim = max(candidates,
                     key=lambda reg: self.last_use.get(self.reg_owner[reg],
                                                       1 << 30))
        self._spill(victim)
        return victim

    def ensure_reg(self, temp: Temp, forbidden: Set[int] = frozenset()) -> int:
        """Place *temp* in a register (reloading if spilled)."""
        reg = self.temp_reg.get(temp)
        if reg is not None:
            if reg in forbidden:
                new_reg = self._pick_reg(forbidden | {reg})
                self.builder.mov(Reg(new_reg), Reg(reg))
                self.reg_owner[reg] = None
                self.reg_owner[new_reg] = temp
                self.temp_reg[temp] = new_reg
                return new_reg
            return reg
        reg = self._pick_reg(set(forbidden))
        if temp in self.temp_slot:
            slot = self.temp_slot[temp]
            self.builder.mov(Reg(reg),
                             Mem(base=ENV_REG, disp=ENV_SPILL + 4 * slot))
        self.reg_owner[reg] = temp
        self.temp_reg[temp] = reg
        return reg

    def alloc_dst(self, temp: Temp, forbidden: Set[int] = frozenset(),
                  prefer: Optional[int] = None) -> int:
        """Allocate a register for a fresh definition of *temp*."""
        if prefer is not None and prefer not in forbidden and \
                self.reg_owner.get(prefer) is None:
            reg = prefer
        else:
            reg = self._pick_reg(set(forbidden))
        self.reg_owner[reg] = temp
        self.temp_reg[temp] = reg
        return reg

    def bind(self, temp: Temp, reg: int) -> None:
        """Record that *temp* now lives in *reg* (e.g. a helper result)."""
        self._spill(reg)
        self.reg_owner[reg] = temp
        self.temp_reg[temp] = reg

    def spill_regs(self, regs) -> None:
        for reg in regs:
            self._spill(reg)

    def dies_here(self, temp, position: int) -> bool:
        return isinstance(temp, Temp) and \
            self.last_use.get(temp, -1) <= position


class TcgBackend:
    """Lowers one TB's IR to host code."""

    def __init__(self, mmu_idx: int):
        self.mmu_idx = mmu_idx

    def lower(self, ir_insns: List[IRInsn], tag: str = "code") -> List:
        builder = CodeBuilder(default_tag=tag)
        last_use: Dict[Temp, int] = {}
        for position, insn in enumerate(ir_insns):
            for temp in insn.sources():
                last_use[temp] = position
        alloc = RegisterAllocator(builder, last_use)

        for position, insn in enumerate(ir_insns):
            self._lower_insn(builder, alloc, insn, position)
            alloc.kill_dead(position)
        return builder.finish()

    # -- operand helpers ---------------------------------------------------------

    @staticmethod
    def _src_operand(alloc, value, forbidden=frozenset()):
        if isinstance(value, Temp):
            return Reg(alloc.ensure_reg(value, forbidden))
        return Imm(value)

    # -- lowering ------------------------------------------------------------------

    def _lower_insn(self, builder, alloc, insn: IRInsn,
                    position: int) -> None:  # noqa: C901
        op = insn.op

        if op is IROp.LABEL:
            builder.bind(insn.label)
            return
        if op is IROp.MOVI:
            reg = alloc.alloc_dst(insn.dst)
            builder.movi(Reg(reg), insn.args[0])
            return
        if op is IROp.MOV:
            src = self._src_operand(alloc, insn.args[0])
            reg = alloc.alloc_dst(insn.dst,
                                  forbidden={src.number}
                                  if isinstance(src, Reg) else frozenset())
            builder.mov(Reg(reg), src)
            return
        if op in _BINOP_MAP:
            self._binop(builder, alloc, insn, _BINOP_MAP[op], position)
            return
        if op in _SHIFT_MAP:
            self._shift(builder, alloc, insn, _SHIFT_MAP[op], position)
            return
        if op in (IROp.NOT, IROp.NEG):
            a = insn.args[0]
            src = self._src_operand(alloc, a)
            if isinstance(src, Reg) and alloc.dies_here(a, position):
                alloc._release_temp(a)
                alloc.bind(insn.dst, src.number)
                reg = src.number
            else:
                reg = alloc.alloc_dst(insn.dst,
                                      forbidden={src.number}
                                      if isinstance(src, Reg) else frozenset())
                builder.mov(Reg(reg), src)
            builder.emit(X86Op.NOT if op is IROp.NOT else X86Op.NEG,
                         Reg(reg))
            return
        if op is IROp.SETCOND:
            a_op = self._src_operand(alloc, insn.args[0])
            b_op = self._src_operand(alloc, insn.args[1],
                                     {a_op.number}
                                     if isinstance(a_op, Reg) else frozenset())
            builder.cmp(a_op, b_op)
            forbidden = {operand.number for operand in (a_op, b_op)
                         if isinstance(operand, Reg)}
            reg = alloc.alloc_dst(insn.dst, forbidden=forbidden)
            builder.movi(Reg(reg), 0)
            builder.setcc(_COND_MAP[insn.cond], Reg(reg))
            return
        if op is IROp.LD_ENV:
            reg = alloc.alloc_dst(insn.dst)
            builder.mov(Reg(reg), Mem(base=ENV_REG, disp=insn.offset))
            return
        if op is IROp.ST_ENV:
            src = self._src_operand(alloc, insn.args[0])
            builder.mov(Mem(base=ENV_REG, disp=insn.offset), src)
            return
        if op is IROp.QEMU_LD:
            addr_reg = alloc.ensure_reg(insn.args[0], {EAX, EDX})
            alloc.spill_regs((EAX, EDX))
            mmu_codegen.emit_load(builder, addr_reg, insn.size, insn.signed,
                                  self.mmu_idx, insn.imm)
            alloc.bind(insn.dst, EAX)
            return
        if op is IROp.QEMU_ST:
            value, addr = insn.args
            addr_reg = alloc.ensure_reg(addr, {EAX, EDX})
            if isinstance(value, Temp):
                value_reg = alloc.ensure_reg(value, {EAX, EDX, addr_reg})
            else:
                value_reg = alloc._pick_reg({EAX, EDX, addr_reg})
                builder.movi(Reg(value_reg), value)
            alloc.spill_regs((EAX, EDX))
            mmu_codegen.emit_store(builder, addr_reg, value_reg, insn.size,
                                   self.mmu_idx, insn.imm)
            return
        if op is IROp.BRCOND:
            a_op = self._src_operand(alloc, insn.args[0])
            b_op = self._src_operand(alloc, insn.args[1],
                                     {a_op.number}
                                     if isinstance(a_op, Reg) else frozenset())
            builder.cmp(a_op, b_op)
            builder.jcc(_COND_MAP[insn.cond], insn.label)
            return
        if op is IROp.BR:
            builder.jmp(insn.label)
            return
        if op is IROp.CALL:
            arg_operands = []
            for arg in reversed(insn.args):
                src = self._src_operand(alloc, arg)
                builder.push(src, tag="helper")
            for index in range(len(insn.args)):
                arg_operands.append(Mem(base=ESP, disp=4 * index))
            # Our helper stubs preserve host registers (that cost is folded
            # into HELPER_CALL_OVERHEAD); only EAX (the result) is clobbered.
            alloc.spill_regs((EAX,))
            builder.call_helper(insn.helper, args=arg_operands, tag="helper")
            if insn.args:
                builder.add(Reg(ESP), Imm(4 * len(insn.args)), tag="helper")
            if insn.dst is not None:
                alloc.bind(insn.dst, EAX)
            return
        if op is IROp.GOTO_TB:
            builder.goto_tb(insn.imm, tag="chain")
            return
        if op is IROp.EXIT_TB:
            builder.exit_tb(insn.imm, tag="chain")
            return
        raise TranslationError(f"cannot lower IR op {op}")

    def _binop(self, builder, alloc, insn: IRInsn, host_op: X86Op,
               position: int) -> None:
        a, b = insn.args
        b_forbid = set()
        # Reuse a's register when a dies here (classic two-address lowering).
        if isinstance(a, Temp) and alloc.dies_here(a, position) and \
                a in alloc.temp_reg and a != b:
            reg = alloc.temp_reg[a]
            alloc._release_temp(a)
            alloc.bind(insn.dst, reg)
        else:
            a_src = self._src_operand(alloc, a)
            if isinstance(a_src, Reg):
                b_forbid.add(a_src.number)
            b_probe = self._src_operand(alloc, b, frozenset(b_forbid))
            forbidden = set(b_forbid)
            if isinstance(b_probe, Reg):
                forbidden.add(b_probe.number)
            reg = alloc.alloc_dst(insn.dst, forbidden=forbidden)
            builder.mov(Reg(reg), a_src)
        b_src = self._src_operand(alloc, b, {reg})
        builder.emit(host_op, Reg(reg), b_src)

    def _shift(self, builder, alloc, insn: IRInsn, host_op: X86Op,
               position: int) -> None:
        a, b = insn.args
        if isinstance(b, Temp):
            # Variable shift amounts must be in CL.
            if alloc.temp_reg.get(b) != ECX:
                alloc.spill_regs((ECX,))
                src = self._src_operand(alloc, b, {ECX})
                builder.mov(Reg(ECX), src)
            shift_src = Reg(ECX)
        else:
            shift_src = Imm(b & 31)
        if isinstance(a, Temp) and alloc.dies_here(a, position) and \
                a in alloc.temp_reg and alloc.temp_reg[a] != ECX:
            reg = alloc.temp_reg[a]
            alloc._release_temp(a)
            alloc.bind(insn.dst, reg)
        else:
            a_src = self._src_operand(alloc, a, {ECX})
            reg = alloc.alloc_dst(insn.dst,
                                  forbidden={ECX} |
                                  ({a_src.number}
                                   if isinstance(a_src, Reg) else set()))
            builder.mov(Reg(reg), a_src)
        builder.emit(host_op, Reg(reg), shift_src)
