"""Translation blocks and the code cache.

A TB is one guest basic block translated to host code; the code cache
maps ``(guest pc, mmu_idx)`` to a TB.  Block chaining works as in QEMU:
each TB has two ``GOTO_TB`` slots that the cpu_exec loop patches to point
directly at the successor TB once it is translated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..common.errors import ReproError
from ..guest.isa import ArmInsn

# TB exit statuses (the EXIT_TB immediate).
EXIT_PC_UPDATED = 0   # env.pc holds the next guest pc
EXIT_INTERRUPT = 1    # the TB-entry (or scheduled) interrupt check fired
EXIT_HALT = 2         # wfi executed
EXIT_EXCEPTION = 3    # a helper delivered an exception; env.pc is the vector

#: Maximum guest instructions per TB (QEMU caps TBs similarly).
MAX_TB_INSNS = 32


@dataclass
class TranslationBlock:
    pc: int
    mmu_idx: int
    guest_insns: List[ArmInsn] = field(default_factory=list)
    code: List = field(default_factory=list)      # host X86Insn list
    jmp_target: List[Optional["TranslationBlock"]] = \
        field(default_factory=lambda: [None, None])
    #: guest pc each GOTO_TB slot leads to (for chaining lookups)
    jmp_pc: List[Optional[int]] = field(default_factory=lambda: [None, None])
    exec_count: int = 0
    #: engine-specific metadata (static coordination counts, analysis, ...)
    meta: dict = field(default_factory=dict)

    @property
    def guest_insn_count(self) -> int:
        return len(self.guest_insns)

    def __repr__(self) -> str:
        return (f"<TB 0x{self.pc:08x} mmu{self.mmu_idx} "
                f"{self.guest_insn_count} guest insns, "
                f"{len(self.code)} host insns>")


class CodeCache:
    """The translated-code cache, keyed by (guest pc, mmu_idx)."""

    def __init__(self):
        self._tbs: Dict[Tuple[int, int], TranslationBlock] = {}
        self.translated_guest_insns = 0   # static translation statistics
        self.translated_host_insns = 0
        self.invalidated = 0              # TBs evicted by the ladder
        #: Eviction observers: ``fn(victims, rules)`` called after any
        #: invalidation, with the evicted TBs and the quarantined rule
        #: keys (None unless this was a rule-quarantine eviction).  The
        #: rule engine uses this to drop stale successor live-in entries
        #: and the persistent cache uses it to evict on-disk entries.
        self._evict_listeners: List = []

    def add_evict_listener(self, listener) -> None:
        self._evict_listeners.append(listener)

    def _notify_evict(self, victims, rules=None) -> None:
        for listener in self._evict_listeners:
            listener(victims, rules)

    def lookup(self, pc: int, mmu_idx: int) -> Optional[TranslationBlock]:
        return self._tbs.get((pc, mmu_idx))

    def insert(self, tb: TranslationBlock) -> None:
        self._tbs[(tb.pc, tb.mmu_idx)] = tb
        self.translated_guest_insns += tb.guest_insn_count
        self.translated_host_insns += len(tb.code)

    def flush(self) -> None:
        victims = list(self._tbs.values())
        self._tbs.clear()
        if victims:
            self._notify_evict(victims)

    # -- invalidation (the degradation ladder's eviction path) -------------

    def invalidate(self, tb: TranslationBlock,
                   context=None) -> None:
        """Evict one TB and unlink every chain pointing at it."""
        key = (tb.pc, tb.mmu_idx)
        if self._tbs.get(key) is not tb:
            raise ReproError(
                f"cannot invalidate unknown TB 0x{tb.pc:08x} "
                f"mmu{tb.mmu_idx}").attach_context(context)
        del self._tbs[key]
        self.invalidated += 1
        self._unlink({id(tb)})
        self._notify_evict([tb])

    def invalidate_rules(self, rules: Iterable[str]) -> int:
        """Evict every TB translated with any of the given rule keys.

        Used when a learned rule is quarantined: all code generated from
        it is suspect, not just the TB that crashed.  Returns the number
        of TBs evicted.
        """
        wanted = set(rules)
        victims = [tb for tb in self._tbs.values()
                   if wanted.intersection(tb.meta.get("rules_used", ()))]
        for tb in victims:
            del self._tbs[(tb.pc, tb.mmu_idx)]
        self.invalidated += len(victims)
        self._unlink({id(tb) for tb in victims})
        self._notify_evict(victims, wanted)
        return len(victims)

    def _unlink(self, removed_ids: set) -> None:
        """Clear chain slots that point at evicted TBs (by identity)."""
        for tb in self._tbs.values():
            for slot in (0, 1):
                if id(tb.jmp_target[slot]) in removed_ids:
                    tb.jmp_target[slot] = None

    def __len__(self) -> int:
        return len(self._tbs)

    def all_tbs(self):
        return self._tbs.values()


class TbExitException(Exception):
    """Raised by helpers to unwind out of TB execution (QEMU's longjmp)."""

    def __init__(self, status: int = EXIT_EXCEPTION):
        self.status = status
        super().__init__(f"tb exit {status}")
