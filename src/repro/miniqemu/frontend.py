"""TCG frontend: ARM guest instructions -> IR.

This reproduces how QEMU's ARM target translates: guest registers live in
``env`` and are loaded/stored around every operation; condition codes are
computed *eagerly* into the four per-bit env fields on every flag-setting
instruction; conditionally-executed instructions branch over their body
after loading the flags from env; system-level instructions become helper
calls; loads/stores become ``QEMU_LD``/``QEMU_ST`` (softmmu).
"""

from __future__ import annotations

from typing import List, Optional

from ..common.bitops import u32
from ..guest.isa import (COMPARE_OPS, DATA_PROCESSING_OPS, VFP_ARITH_OPS,
                         ArmInsn, Cond, Op, Operand2, PC, ShiftKind)
from ..ir.ops import IRBuilder, IRCond, Temp
from .env import (ENV_CF, ENV_IRQ, ENV_NF, ENV_VF, ENV_ZF, env_reg,
                  env_vfp)
from .helpers import (make_exception_return_helper, make_svc_helper,
                      make_sysreg_helper, make_undef_helper,
                      make_vfp_helper)
from .tb import EXIT_INTERRUPT, EXIT_PC_UPDATED

#: condition -> list of (env_offset_a, env_offset_b_or_None, IRCond) tests
#: that, when *true*, mean the condition FAILS (branch to skip).  For the
#: OR-style conditions a second structure is used (see _emit_cond_skip).

_SIMPLE_SKIP = {
    Cond.EQ: (ENV_ZF, IRCond.EQ),    # execute if Z==1 -> skip if Z==0
    Cond.NE: (ENV_ZF, IRCond.NE),
    Cond.CS: (ENV_CF, IRCond.EQ),
    Cond.CC: (ENV_CF, IRCond.NE),
    Cond.MI: (ENV_NF, IRCond.EQ),
    Cond.PL: (ENV_NF, IRCond.NE),
    Cond.VS: (ENV_VF, IRCond.EQ),
    Cond.VC: (ENV_VF, IRCond.NE),
}


class TcgFrontend:
    """Translates one guest basic block to IR."""

    def __init__(self, mmu_idx: int):
        self.mmu_idx = mmu_idx
        self.builder: Optional[IRBuilder] = None
        self.jmp_pcs: List[Optional[int]] = [None, None]

    # ------------------------------------------------------------------
    # TB-level entry point.
    # ------------------------------------------------------------------

    def translate(self, pc: int, insns: List[ArmInsn]):
        """Translate the block; returns (ir_insns, jmp_pcs)."""
        build = self.builder = IRBuilder()
        self.jmp_pcs = [None, None]
        self._ended = False

        # QEMU system mode: interrupt check at the start of every TB.
        irq_exit = build.new_label("irq")
        irq_flag = build.ld_env(ENV_IRQ)
        build.brcond(IRCond.NE, irq_flag, 0, irq_exit)

        for insn in insns:
            self._insn(insn)
            if self._ended:
                break
        if not self._ended:
            # Block fell through its size cap: chain to the next pc.
            last = insns[-1]
            self._end_goto_tb(0, u32(last.addr + 4))

        build.label(irq_exit)
        build.st_env(pc, env_reg(PC))
        build.exit_tb(EXIT_INTERRUPT)
        return build.insns, self.jmp_pcs

    # ------------------------------------------------------------------
    # Per-instruction translation.
    # ------------------------------------------------------------------

    def _insn(self, insn: ArmInsn) -> None:
        build = self.builder
        build.current_pc = insn.addr
        skip_label = None
        if insn.cond != Cond.AL:
            skip_label = build.new_label("skip")
            self._emit_cond_skip(insn.cond, skip_label)

        self._body(insn)

        if skip_label is not None:
            if self._ended:
                # A conditional block-ender (b<cond>, conditional pc write):
                # the skip path continues at the next instruction, which is
                # a new TB reached through goto_tb slot 1.
                build.label(skip_label)
                self._ended = False
                self._end_goto_tb(1, u32(insn.addr + 4))
            else:
                build.label(skip_label)

    def _body(self, insn: ArmInsn) -> None:  # noqa: C901
        op = insn.op
        if insn.is_system() or op is Op.SVC:
            self._system(insn)
        elif op in DATA_PROCESSING_OPS:
            self._data_processing(insn)
        elif op in (Op.MUL, Op.MLA):
            self._multiply(insn)
        elif op in (Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSB, Op.LDRSH, Op.STR,
                    Op.STRB, Op.STRH):
            self._single_transfer(insn)
        elif op in (Op.LDM, Op.STM):
            self._block_transfer(insn)
        elif op in (Op.B, Op.BL):
            self._direct_branch(insn)
        elif op is Op.BX:
            value = self.builder.ld_env(env_reg(insn.rm))
            masked = self.builder.and_(value, 0xFFFFFFFE)
            self._end_indirect(masked)
        elif op is Op.CLZ:
            self._clz(insn)
        elif op in VFP_ARITH_OPS or op is Op.VCMP:
            # Floating point goes through softfloat helpers, as in QEMU.
            self.builder.call(make_vfp_helper(insn))
        elif op in (Op.VLDR, Op.VSTR):
            self._vfp_transfer(insn)
        elif op is Op.VMOVSR:
            value = self.builder.ld_env(env_reg(insn.rd)) \
                if insn.rd != PC else self.builder.movi(insn.addr + 8)
            self.builder.st_env(value, env_vfp(insn.fn))
        elif op is Op.VMOVRS:
            value = self.builder.ld_env(env_vfp(insn.fn))
            self.builder.st_env(value, env_reg(insn.rd))
        elif op is Op.NOP:
            pass
        else:
            self._system(insn)  # anything else is helper territory

    # -- conditions --------------------------------------------------------

    def _emit_cond_skip(self, cond: Cond, skip_label: str) -> None:
        """Branch to *skip_label* when *cond* fails (QEMU-style)."""
        build = self.builder
        if cond in _SIMPLE_SKIP:
            offset, ircond = _SIMPLE_SKIP[cond]
            flag = build.ld_env(offset)
            build.brcond(ircond, flag, 0, skip_label)
            return
        if cond == Cond.GE:
            n, v = build.ld_env(ENV_NF), build.ld_env(ENV_VF)
            build.brcond(IRCond.NE, n, v, skip_label)
        elif cond == Cond.LT:
            n, v = build.ld_env(ENV_NF), build.ld_env(ENV_VF)
            build.brcond(IRCond.EQ, n, v, skip_label)
        elif cond == Cond.HI:  # C==1 && Z==0
            c, z = build.ld_env(ENV_CF), build.ld_env(ENV_ZF)
            build.brcond(IRCond.EQ, c, 0, skip_label)
            build.brcond(IRCond.NE, z, 0, skip_label)
        elif cond == Cond.LS:  # C==0 || Z==1; skip when C==1 && Z==0
            c, z = build.ld_env(ENV_CF), build.ld_env(ENV_ZF)
            execute = build.new_label("exec")
            build.brcond(IRCond.EQ, c, 0, execute)
            build.brcond(IRCond.NE, z, 0, execute)
            build.br(skip_label)
            build.label(execute)
        elif cond == Cond.GT:  # Z==0 && N==V
            z = build.ld_env(ENV_ZF)
            build.brcond(IRCond.NE, z, 0, skip_label)
            n, v = build.ld_env(ENV_NF), build.ld_env(ENV_VF)
            build.brcond(IRCond.NE, n, v, skip_label)
        elif cond == Cond.LE:  # Z==1 || N!=V; skip when Z==0 && N==V
            z = build.ld_env(ENV_ZF)
            execute = build.new_label("exec")
            build.brcond(IRCond.NE, z, 0, execute)
            n, v = build.ld_env(ENV_NF), build.ld_env(ENV_VF)
            build.brcond(IRCond.NE, n, v, execute)
            build.br(skip_label)
            build.label(execute)
        else:
            raise ValueError(f"unexpected condition {cond}")

    # -- operand helpers ------------------------------------------------------

    def _read_reg(self, number: int, insn: ArmInsn) -> Temp:
        if number == PC:
            return self.builder.movi(u32(insn.addr + 8))
        return self.builder.ld_env(env_reg(number))

    def _shifter(self, op2: Operand2, insn: ArmInsn, want_carry: bool):
        """Evaluate operand2; returns (value, carry_temp_or_None).

        carry is returned only when *want_carry*; None means "the C flag
        is unchanged by the shifter".
        """
        build = self.builder
        if op2.is_imm:
            if want_carry and op2.imm > 0xFF:
                return op2.imm, build.movi((op2.imm >> 31) & 1)
            return op2.imm, None
        value = self._read_reg(op2.rm, insn)
        if op2.rs is not None:
            return self._register_shift(value, op2, insn, want_carry)
        return self._immediate_shift(value, op2, want_carry)

    def _immediate_shift(self, value: Temp, op2: Operand2, want_carry: bool):
        build = self.builder
        kind, amount = op2.shift, op2.shift_imm
        carry = None
        if kind == ShiftKind.LSL:
            if amount == 0:
                return value, None
            if want_carry:
                bit_index = 32 - amount
                carry = build.and_(build.shr(value, bit_index), 1)
            return build.shl(value, amount), carry
        if kind == ShiftKind.LSR:
            if want_carry:
                carry = build.and_(build.shr(value, amount - 1), 1)
            if amount == 32:
                return build.movi(0), carry
            return build.shr(value, amount), carry
        if kind == ShiftKind.ASR:
            if want_carry:
                carry = build.and_(build.shr(value, min(amount, 31)
                                             if amount != 32 else 31), 1) \
                    if amount == 32 else \
                    build.and_(build.shr(value, amount - 1), 1)
            if amount == 32:
                return build.sar(value, 31), carry
            return build.sar(value, amount), carry
        if kind == ShiftKind.ROR:
            result = build.ror(value, amount)
            if want_carry:
                carry = build.and_(build.shr(result, 31), 1)
            return result, carry
        # RRX: result = (C << 31) | (value >> 1); carry-out = bit 0.
        old_c = build.ld_env(ENV_CF)
        high = build.shl(old_c, 31)
        result = build.or_(build.shr(value, 1), high)
        if want_carry:
            carry = build.and_(value, 1)
        return result, carry

    def _register_shift(self, value: Temp, op2: Operand2, insn: ArmInsn,
                        want_carry: bool):
        """Shift by a register amount (0..255), ARM semantics for >=32."""
        build = self.builder
        amount = build.and_(build.ld_env(env_reg(op2.rs)), 0xFF)
        kind = op2.shift
        if kind in (ShiftKind.LSL, ShiftKind.LSR):
            shifted = build.shl(value, amount) if kind == ShiftKind.LSL \
                else build.shr(value, amount)
            # Zero the result when amount >= 32 (x86 masks to 5 bits).
            in_range = build.setcond(IRCond.LTU, amount, 32)
            mask = build.sub(0, in_range)            # 0xffffffff or 0
            result = build.and_(shifted, mask)
            carry = None
            if want_carry:
                # Approximation documented in DESIGN.md: correct for
                # amounts 0..31 (compilers do not emit larger S-shifts).
                edge = build.sub(amount, 1)
                probe = build.shr(value, edge) if kind == ShiftKind.LSR \
                    else build.shr(value, build.sub(32, amount))
                carry = build.and_(probe, 1)
            return result, carry
        if kind == ShiftKind.ASR:
            clamp = build.setcond(IRCond.GEU, amount, 32)
            over = build.sub(0, clamp)
            clamped = build.or_(build.and_(amount, build.not_(over)),
                                build.and_(31, over))
            result = build.sar(value, clamped)
            carry = None
            if want_carry:
                carry = build.and_(build.shr(result, 31), 1)
            return result, carry
        # ROR by register: amount mod 32.
        result = build.ror(value, build.and_(amount, 31))
        carry = build.and_(build.shr(result, 31), 1) if want_carry else None
        return result, carry

    # -- flag stores ---------------------------------------------------------------

    def _store_nz(self, result: Temp) -> None:
        build = self.builder
        build.st_env(build.and_(build.shr(result, 31), 1), ENV_NF)
        build.st_env(build.setcond(IRCond.EQ, result, 0), ENV_ZF)

    def _store_add_cv(self, a, b, result) -> None:
        build = self.builder
        build.st_env(build.setcond(IRCond.LTU, result, a), ENV_CF)
        overflow = build.and_(build.xor(a, result),
                              build.not_(build.xor(a, b)))
        build.st_env(build.and_(build.shr(overflow, 31), 1), ENV_VF)

    def _store_sub_cv(self, a, b, result) -> None:
        build = self.builder
        build.st_env(build.setcond(IRCond.GEU, a, b), ENV_CF)
        overflow = build.and_(build.xor(a, result), build.xor(a, b))
        build.st_env(build.and_(build.shr(overflow, 31), 1), ENV_VF)

    # -- instruction families ---------------------------------------------------------

    def _data_processing(self, insn: ArmInsn) -> None:  # noqa: C901
        build = self.builder
        op = insn.op
        logical = op in (Op.AND, Op.EOR, Op.TST, Op.TEQ, Op.ORR, Op.MOV,
                         Op.BIC, Op.MVN)
        want_carry = logical and (insn.set_flags or op in COMPARE_OPS)
        operand2, shifter_carry = self._shifter(insn.op2, insn, want_carry)
        needs_rn = op not in (Op.MOV, Op.MVN)
        operand1 = self._read_reg(insn.rn, insn) if needs_rn else None

        carry_in = None
        if op in (Op.ADC, Op.SBC, Op.RSC):
            carry_in = build.ld_env(ENV_CF)

        if op in (Op.AND, Op.TST):
            result = build.and_(operand1, operand2)
        elif op in (Op.EOR, Op.TEQ):
            result = build.xor(operand1, operand2)
        elif op in (Op.SUB, Op.CMP):
            result = build.sub(operand1, operand2)
        elif op is Op.RSB:
            result = build.sub(operand2, operand1)
        elif op in (Op.ADD, Op.CMN):
            result = build.add(operand1, operand2)
        elif op is Op.ADC:
            result = build.add(build.add(operand1, operand2), carry_in)
        elif op is Op.SBC:
            borrow = build.xor(carry_in, 1)
            result = build.sub(build.sub(operand1, operand2), borrow)
        elif op is Op.RSC:
            borrow = build.xor(carry_in, 1)
            result = build.sub(build.sub(operand2, operand1), borrow)
        elif op is Op.ORR:
            result = build.or_(operand1, operand2)
        elif op is Op.MOV:
            result = operand2 if isinstance(operand2, Temp) \
                else build.movi(operand2)
        elif op is Op.BIC:
            result = build.and_(operand1, build.not_(
                operand2 if isinstance(operand2, Temp)
                else build.movi(operand2)))
        else:  # MVN
            result = build.not_(operand2 if isinstance(operand2, Temp)
                                else build.movi(operand2))

        if insn.set_flags or op in COMPARE_OPS:
            self._store_nz(result)
            if logical:
                if shifter_carry is not None:
                    build.st_env(shifter_carry, ENV_CF)
            elif op in (Op.ADD, Op.CMN):
                self._store_add_cv(operand1, operand2, result)
            elif op in (Op.SUB, Op.CMP):
                self._store_sub_cv(operand1, operand2, result)
            elif op is Op.RSB:
                self._store_sub_cv(operand2, operand1, result)
            else:
                # ADC/SBC/RSC: full AddWithCarry flag semantics.
                self._store_carry_chain(op, operand1, operand2, carry_in,
                                        result)

        if op in COMPARE_OPS:
            return
        if insn.rd == PC:
            masked = build.and_(result, 0xFFFFFFFC)
            self._end_indirect(masked)
            return
        build.st_env(result, env_reg(insn.rd))

    def _store_carry_chain(self, op, a, b, carry_in, result) -> None:
        """C/V for ADC/SBC/RSC (a 64-bit-free formulation)."""
        build = self.builder
        if op is Op.ADC:
            # C = (result < a) || (carry_in && result == a)
            low = build.setcond(IRCond.LTU, result, a)
            same = build.setcond(IRCond.EQ, result, a)
            build.st_env(build.or_(low, build.and_(same, carry_in)), ENV_CF)
            overflow = build.and_(build.xor(a, result),
                                  build.not_(build.xor(a, b)))
        else:
            if op is Op.RSC:
                a, b = b, a
            # a - b - (1-c): no-borrow iff a >= b + (1-c) in 33-bit space:
            # C = (a > b) || (a == b && carry_in)
            greater = build.setcond(IRCond.GTU, a, b)
            equal = build.setcond(IRCond.EQ, a, b)
            build.st_env(build.or_(greater, build.and_(equal, carry_in)),
                         ENV_CF)
            overflow = build.and_(build.xor(a, result), build.xor(a, b))
        build.st_env(build.and_(build.shr(overflow, 31), 1), ENV_VF)

    def _multiply(self, insn: ArmInsn) -> None:
        build = self.builder
        product = build.mul(self._read_reg(insn.rm, insn),
                            self._read_reg(insn.rs, insn))
        if insn.op is Op.MLA:
            product = build.add(product, self._read_reg(insn.rn, insn))
        build.st_env(product, env_reg(insn.rd))
        if insn.set_flags:
            self._store_nz(product)

    def _clz(self, insn: ArmInsn) -> None:
        build = self.builder
        value = self._read_reg(insn.rm, insn)
        # clz(x) = 31 - bsr(x), with clz(0) = 32.  Express via IR ops the
        # backend lowers to bsr + arithmetic.
        zero = build.setcond(IRCond.EQ, value, 0)
        # Set bit 0 so bsr is defined, then correct: clz(x|1) == clz(x)
        # for x != 0, and the zero case is patched with +1.
        safe = build.or_(value, 1)
        low = build.movi(0)
        index = low
        for shift in (16, 8, 4, 2, 1):
            # binary search for the top bit: if (safe >> (index+shift)) != 0
            probe = build.shr(safe, build.add(index, shift))
            nonzero = build.setcond(IRCond.NE, probe, 0)
            index = build.add(index, build.mul(nonzero, shift))
        clz = build.sub(31, index)
        clz = build.add(clz, zero)
        build.st_env(clz, env_reg(insn.rd))

    def _mem_address(self, insn: ArmInsn):
        build = self.builder
        base = self._read_reg(insn.rn, insn)
        if insn.mem_offset_reg is not None:
            offset, _ = self._immediate_shift(
                self._read_reg(insn.mem_offset_reg, insn),
                Operand2.register(insn.mem_offset_reg, insn.mem_shift,
                                  insn.mem_shift_imm), False)
            combine = build.add if insn.add_offset else build.sub
            offset_temp = offset
        elif insn.mem_offset_imm:
            combine = build.add if insn.add_offset else build.sub
            offset_temp = insn.mem_offset_imm
        else:
            return base, base
        new_base = combine(base, offset_temp)
        address = new_base if insn.pre_indexed else base
        return address, new_base

    def _single_transfer(self, insn: ArmInsn) -> None:
        build = self.builder
        size = {Op.LDR: 4, Op.STR: 4, Op.LDRB: 1, Op.STRB: 1, Op.LDRH: 2,
                Op.STRH: 2, Op.LDRSB: 1, Op.LDRSH: 2}[insn.op]
        signed = insn.op in (Op.LDRSB, Op.LDRSH)
        address, new_base = self._mem_address(insn)
        writeback = (not insn.pre_indexed) or insn.writeback
        if insn.op in (Op.STR, Op.STRB, Op.STRH):
            value = self._read_reg(insn.rd, insn)
            build.qemu_st(value, address, size)
        else:
            value = build.qemu_ld(address, size, signed)
        if writeback and insn.rn != insn.rd:
            build.st_env(new_base, env_reg(insn.rn))
        if insn.op not in (Op.STR, Op.STRB, Op.STRH):
            if insn.rd == PC:
                masked = build.and_(value, 0xFFFFFFFC)
                self._end_indirect(masked)
                return
            build.st_env(value, env_reg(insn.rd))

    def _block_transfer(self, insn: ArmInsn) -> None:
        build = self.builder
        count = len(insn.reglist)
        base = build.ld_env(env_reg(insn.rn))
        if insn.increment:
            start = build.add(base, 4) if insn.before else base
            new_base = build.add(base, 4 * count)
        else:
            delta = -4 * count + (0 if insn.before else 4)
            start = build.add(base, delta & 0xFFFFFFFF)
            new_base = build.add(base, (-4 * count) & 0xFFFFFFFF)
        pc_value = None
        address = start
        for position, reg in enumerate(sorted(insn.reglist)):
            if position:
                address = build.add(address, 4)
            if insn.op is Op.STM:
                build.qemu_st(self._read_reg(reg, insn), address, 4)
            else:
                value = build.qemu_ld(address, 4)
                if reg == PC:
                    pc_value = value
                else:
                    build.st_env(value, env_reg(reg))
        if insn.writeback:
            build.st_env(new_base, env_reg(insn.rn))
        if pc_value is not None:
            masked = build.and_(pc_value, 0xFFFFFFFC)
            self._end_indirect(masked)

    def _vfp_transfer(self, insn: ArmInsn) -> None:
        build = self.builder
        base = self._read_reg(insn.rn, insn)
        offset = insn.mem_offset_imm
        if offset:
            address = build.add(base, offset) if insn.add_offset \
                else build.sub(base, offset)
        else:
            address = base
        if insn.op is Op.VLDR:
            value = build.qemu_ld(address, 4)
            build.st_env(value, env_vfp(insn.fd))
        else:
            value = build.ld_env(env_vfp(insn.fd))
            build.qemu_st(value, address, 4)

    def _direct_branch(self, insn: ArmInsn) -> None:
        build = self.builder
        if insn.op is Op.BL:
            build.st_env(u32(insn.addr + 4), env_reg(14))
        self._end_goto_tb(0, insn.target)

    # -- system level ------------------------------------------------------------------

    def _system(self, insn: ArmInsn) -> None:
        build = self.builder
        op = insn.op
        if op is Op.SVC:
            build.call(make_svc_helper(insn))
            self._ended = True  # helper never returns (raises TbExit)
            return
        if insn.op in DATA_PROCESSING_OPS and insn.set_flags and \
                insn.rd == PC:
            # Exception return: compute the target with normal DP rules,
            # then hand CPSR<-SPSR to the helper.
            saved = insn.set_flags
            insn.set_flags = False
            operand2, _ = self._shifter(insn.op2, insn, False)
            insn.set_flags = saved
            if op is Op.MOV:
                target = operand2 if isinstance(operand2, Temp) \
                    else build.movi(operand2)
            elif op is Op.SUB:
                target = build.sub(self._read_reg(insn.rn, insn), operand2)
            elif op is Op.ADD:
                target = build.add(self._read_reg(insn.rn, insn), operand2)
            else:
                build.call(make_undef_helper(insn))
                self._ended = True
                return
            build.call(make_exception_return_helper(insn), args=(target,))
            self._ended = True
            return
        # mrs/msr/mcr/mrc/vmrs/vmsr/cps/wfi: one helper call, then end the
        # TB (the helper may have changed the mode, MMU or interrupt state).
        build.call(make_sysreg_helper(insn))
        build.st_env(u32(insn.addr + 4), env_reg(PC))
        build.exit_tb(EXIT_PC_UPDATED)
        self._ended = True

    # -- TB terminators -------------------------------------------------------------------

    def _end_goto_tb(self, slot: int, target_pc: int) -> None:
        build = self.builder
        build.goto_tb(slot)
        build.st_env(u32(target_pc), env_reg(PC))
        build.exit_tb(EXIT_PC_UPDATED)
        self.jmp_pcs[slot] = u32(target_pc)
        self._ended = True

    def _end_indirect(self, pc_temp: Temp) -> None:
        build = self.builder
        build.st_env(pc_temp, env_reg(PC))
        build.exit_tb(EXIT_PC_UPDATED)
        self._ended = True
