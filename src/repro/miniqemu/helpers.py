"""The QEMU runtime: helper functions and the env<->cpu synchronization.

Helpers are what the paper's coordination story revolves around: they are
C functions in real QEMU (Python here) that run *outside* the translated
code, read and write the guest CPU state in memory (``env``), and clobber
host registers.  Generated code reaches them through ``CALL_HELPER``
instructions; their bodies are charged modelled costs from
:mod:`repro.common.costmodel`.

The lazy condition-code protocol (Sec III-B) lives here too:
:meth:`QemuRuntime.materialize_flags` parses the packed FLAGS word into
QEMU's four per-bit fields only when a helper (or interrupt delivery)
actually needs them.
"""

from __future__ import annotations

from ..common.bitops import u32
from ..common.costmodel import (COST_EXCEPTION_ENTRY, COST_LAZY_FLAGS_PARSE,
                                COST_MMIO_ACCESS, COST_PAGE_WALK,
                                COST_SYSREG_HELPER)
from ..common.errors import MemoryFault, UndefinedInstruction
from ..guest.cpu import (CPSR_I, MODE_ABT, MODE_SVC, MODE_UND, MODE_USR,
                         VECTOR_DATA_ABORT, VECTOR_SVC, VECTOR_UNDEF)
from ..guest.isa import ArmInsn, Op, PC
from ..host.isa import FLAG_CF, FLAG_OF, FLAG_SF, FLAG_ZF
from ..softmmu.pagetable import PAGE_SIZE
from ..softmmu.tlb import ACCESS_READ, ACCESS_WRITE, MMU_IDX_USER
from .env import (ENV_CF, ENV_IRQ, ENV_NF, ENV_PACKED_FLAGS,
                  ENV_PACKED_VALID, ENV_VF, ENV_ZF, Env)
from .tb import EXIT_EXCEPTION, EXIT_HALT, TbExitException


def _pack_arm_flags(n: int, z: int, c: int, v: int) -> int:
    """Encode ARM-convention NZCV into the x86 EFLAGS bit layout."""
    return ((n << FLAG_SF) | (z << FLAG_ZF) | (c << FLAG_CF) |
            (v << FLAG_OF) | 0x2)


class QemuRuntime:
    """Shared services for helpers: env sync, MMU slow path, exceptions."""

    def __init__(self, cpu, env: Env, memory, tlb, walker, machine):
        self.cpu = cpu
        self.env = env
        self.memory = memory
        self.tlb = tlb
        self.walker = walker
        self.machine = machine
        self.host = None  # HostInterpreter, wired by the machine
        # Statistics.
        self.flag_parse_count = 0
        self.slow_path_count = 0

    # -- cost accounting --------------------------------------------------------

    def charge(self, amount: int, tag: str) -> None:
        self.host.charge(amount, tag)

    # -- condition-code representations ------------------------------------------

    def materialize_flags(self) -> None:
        """Parse the packed CCR save into per-bit fields if pending.

        This is the deferred "one-to-many" parse of Sec III-B; it is
        charged only when QEMU genuinely reads the condition codes.
        """
        env = self.env
        if not env.read(ENV_PACKED_VALID):
            return
        packed = env.read(ENV_PACKED_FLAGS)
        env.write(ENV_NF, (packed >> FLAG_SF) & 1)
        env.write(ENV_ZF, (packed >> FLAG_ZF) & 1)
        env.write(ENV_CF, (packed >> FLAG_CF) & 1)
        env.write(ENV_VF, (packed >> FLAG_OF) & 1)
        env.write(ENV_PACKED_VALID, 0)
        self.flag_parse_count += 1
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("sync.lazy_parse")
        self.charge(COST_LAZY_FLAGS_PARSE, "sync")

    def repack_flags(self) -> None:
        """Refresh the packed word from per-bit fields (helper wrote flags)."""
        env = self.env
        env.write(ENV_PACKED_FLAGS,
                  _pack_arm_flags(env.read(ENV_NF) & 1, env.read(ENV_ZF) & 1,
                                  env.read(ENV_CF) & 1, env.read(ENV_VF) & 1))
        env.write(ENV_PACKED_VALID, 0)

    # -- architectural sync --------------------------------------------------------

    def env_to_cpu(self) -> None:
        self.materialize_flags()
        self.env.store_to_cpu(self.cpu)

    def cpu_to_env(self) -> None:
        self.env.load_from_cpu(self.cpu)
        self.repack_flags()
        self.update_irq()

    def update_irq(self) -> None:
        """Recompute the deliverable-interrupt flag the TB checks read."""
        deliverable = self.cpu.irq_line and not (self.cpu.cpsr >> CPSR_I) & 1
        self.env.write(ENV_IRQ, 1 if deliverable else 0)

    # -- exceptions -----------------------------------------------------------------

    def deliver_exception(self, mode: int, vector: int,
                          return_address: int) -> None:
        """Full exception entry: env -> cpu, take exception, cpu -> env."""
        if self.host is not None:
            # Mode/banked-register switches are not replayable by the
            # fault-recovery rollback: mark the execute() call dirty.
            self.host.note_side_effect("exception")
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("exception.enter", mode=mode,
                                     vector=vector)
        self.env_to_cpu()  # reads CPSR (incl. NZCV) into SPSR: needs flags
        self.cpu.take_exception(mode, vector, return_address)
        self.cpu_to_env()
        self.charge(COST_EXCEPTION_ENTRY, "runtime")

    def data_abort(self, fault: MemoryFault, insn_pc: int) -> None:
        self.cpu.cp15.dfar = fault.vaddr
        self.cpu.cp15.dfsr = 0x805 if fault.is_write else 0x5
        self.deliver_exception(MODE_ABT, VECTOR_DATA_ABORT, insn_pc + 8)
        raise TbExitException(EXIT_EXCEPTION)

    # -- softmmu slow path -------------------------------------------------------------

    def translate_slow(self, vaddr: int, access: int, mmu_idx: int,
                       insn_pc: int) -> int:
        """Page-walk translation with TLB refill (the TLB-miss path)."""
        self.slow_path_count += 1
        if self.machine.tracer.enabled:
            self.machine.tracer.emit("mmu.slowpath", vaddr=vaddr,
                                     access=access, pc=insn_pc)
        if not self.cpu.cp15.mmu_enabled:
            # MMU off: identity mapping; cache it like QEMU does so that
            # subsequent accesses hit the inline fast path.
            from ..softmmu.pagetable import (PERM_EXEC, PERM_READ, PERM_USER,
                                             PERM_WRITE, Translation)
            page = vaddr & ~(PAGE_SIZE - 1)
            translation = Translation(page, page,
                                      PERM_READ | PERM_WRITE | PERM_EXEC |
                                      PERM_USER)
        else:
            try:
                self.charge(COST_PAGE_WALK, "mmu")
                translation = self.walker.walk(self.cpu.cp15.ttbr0, vaddr,
                                               access == ACCESS_WRITE,
                                               mmu_idx == MMU_IDX_USER)
            except MemoryFault as fault:
                self.data_abort(fault, insn_pc)
        region = self.memory.find(translation.paddr_page)
        if region is not None and region.is_ram:
            self.tlb.fill(mmu_idx, translation)
        return translation.paddr_page | (vaddr & (PAGE_SIZE - 1))

    def memory_access(self, vaddr: int, size: int, mmu_idx: int,
                      insn_pc: int, value=None, signed: bool = False):
        """Slow-path load (value is None) or store (value given)."""
        # Fault injection: transient softmmu failures, but only while
        # the current execute() is still cleanly replayable.
        if not self.host.tb_side_effects:
            self.machine.injector.maybe_fault(
                "mem", f"vaddr=0x{vaddr:08x} pc=0x{insn_pc:08x}")
        access = ACCESS_READ if value is None else ACCESS_WRITE
        if (vaddr & (PAGE_SIZE - 1)) + size > PAGE_SIZE:
            # Page-crossing access: split byte-wise (always slow path).
            if value is None:
                result = 0
                for i in range(size):
                    result |= self.memory_access(vaddr + i, 1, mmu_idx,
                                                 insn_pc) << (8 * i)
                return self._sign(result, size, signed)
            for i in range(size):
                self.memory_access(vaddr + i, 1, mmu_idx, insn_pc,
                                   value=(value >> (8 * i)) & 0xFF)
            return None
        paddr = self.translate_slow(vaddr, access, mmu_idx, insn_pc)
        region = self.memory.find(paddr)
        if region is None:
            self.data_abort(MemoryFault(vaddr, value is not None, "bus"),
                            insn_pc)
        if not region.is_ram:
            self.charge(COST_MMIO_ACCESS, "mmio")
            self.host.note_side_effect("mmio")
        try:
            if value is None:
                result = region.read(paddr - region.base, size)
            else:
                region.write(paddr - region.base, size, value)
                result = None
        finally:
            # Device access may have raised or lowered interrupt lines.
            if not region.is_ram:
                self.update_irq()
        if value is None:
            return self._sign(result, size, signed)
        return None

    @staticmethod
    def _sign(value: int, size: int, signed: bool) -> int:
        if signed and size < 4:
            sign = 1 << (8 * size - 1)
            return u32((value & (sign - 1)) - (value & sign))
        return value


# ---------------------------------------------------------------------------
# Helper factories (one helper per call site, capturing the guest insn).
#
# Each factory stamps a ``persist`` spec on the closure it returns: a
# JSON-able tuple from which the persistent translation cache
# (:mod:`repro.cache`) can rebuild an equivalent helper when a TB is
# loaded from disk in a later run.  Helpers without a spec (e.g. the
# fault injector's) make their TB unpersistable.
# ---------------------------------------------------------------------------


def make_ld_helper(size: int, signed: bool, mmu_idx: int, insn_pc: int):
    """Slow-path load helper: args = (vaddr,), returns the loaded value."""

    def helper_ld(runtime: QemuRuntime, vaddr: int) -> int:
        return runtime.memory_access(vaddr, size, mmu_idx, insn_pc,
                                     signed=signed)

    helper_ld.__name__ = f"helper_ld{size}"
    helper_ld.persist = ("ld", size, bool(signed), mmu_idx, insn_pc)
    return helper_ld


def make_st_helper(size: int, mmu_idx: int, insn_pc: int):
    """Slow-path store helper: args = (vaddr, value)."""

    def helper_st(runtime: QemuRuntime, vaddr: int, value: int) -> None:
        runtime.memory_access(vaddr, size, mmu_idx, insn_pc, value=value)

    helper_st.__name__ = f"helper_st{size}"
    helper_st.persist = ("st", size, mmu_idx, insn_pc)
    return helper_st


def make_sysreg_helper(insn: ArmInsn):
    """System-register instruction emulation (mrs/msr/mcr/mrc/vmrs/vmsr/cps/wfi)."""

    def helper_sysreg(runtime: QemuRuntime) -> None:
        if not runtime.host.tb_side_effects:
            runtime.machine.injector.maybe_fault(
                "helper", f"sysreg {insn.mnemonic()} @0x{insn.addr:08x}")
        runtime.charge(COST_SYSREG_HELPER, "helper")
        cpu = runtime.cpu
        runtime.env_to_cpu()
        # Reuse the reference interpreter's system-op semantics for exact
        # architectural behaviour.
        from ..guest.interp import Interpreter

        interp = Interpreter(cpu, _HelperBus(runtime))
        saved_pc = cpu.regs[PC]
        cpu.regs[PC] = insn.addr
        try:
            interp._exec_system(insn)
        except UndefinedInstruction:
            cpu.regs[PC] = saved_pc
            runtime.deliver_exception(MODE_UND, VECTOR_UNDEF,
                                      insn.addr + 4)
            raise TbExitException(EXIT_EXCEPTION)
        cpu.regs[PC] = saved_pc
        runtime.cpu_to_env()
        if cpu.halted:
            raise TbExitException(EXIT_HALT)

    helper_sysreg.__name__ = f"helper_{insn.mnemonic()}"
    helper_sysreg.persist = ("sysreg", insn.addr)
    return helper_sysreg


def make_vfp_helper(insn: ArmInsn):
    """Softfloat-style helper for VFP arithmetic/compare (as in QEMU)."""
    from ..common.costmodel import COST_SOFTFLOAT
    from ..common.f32 import f32_add, f32_compare, f32_mul, f32_sub
    from .env import ENV_FPSCR, env_vfp

    def helper_vfp(runtime: QemuRuntime) -> None:
        if not runtime.host.tb_side_effects:
            runtime.machine.injector.maybe_fault(
                "helper", f"vfp {insn.op.value} @0x{insn.addr:08x}")
        runtime.charge(COST_SOFTFLOAT, "helper")
        env = runtime.env
        if insn.op is Op.VCMP:
            nzcv = f32_compare(env.read(env_vfp(insn.fd)),
                               env.read(env_vfp(insn.fm)))
            fpscr = (env.read(ENV_FPSCR) & 0x0FFFFFFF) | (nzcv << 28)
            env.write(ENV_FPSCR, fpscr)
            runtime.cpu.fpscr = fpscr
            return
        table = {Op.VADD: f32_add, Op.VSUB: f32_sub, Op.VMUL: f32_mul}
        result = table[insn.op](env.read(env_vfp(insn.fn)),
                                env.read(env_vfp(insn.fm)))
        env.write(env_vfp(insn.fd), result)
        runtime.cpu.vfp[insn.fd] = result

    helper_vfp.__name__ = f"helper_{insn.op.value.replace('.', '_')}"
    helper_vfp.persist = ("vfp", insn.addr)
    return helper_vfp


def make_svc_helper(insn: ArmInsn):
    def helper_svc(runtime: QemuRuntime) -> None:
        runtime.deliver_exception(MODE_SVC, VECTOR_SVC, insn.addr + 4)
        raise TbExitException(EXIT_EXCEPTION)

    helper_svc.__name__ = "helper_svc"
    helper_svc.persist = ("svc", insn.addr)
    return helper_svc


def make_exception_return_helper(insn: ArmInsn):
    """``movs pc, ...`` / ``subs pc, lr, #n``: CPSR <- SPSR, branch.

    The target value is computed by generated code and passed as the
    single argument.
    """

    def helper_eret(runtime: QemuRuntime, target: int) -> None:
        runtime.env_to_cpu()
        cpu = runtime.cpu
        if cpu.mode == MODE_USR:
            runtime.deliver_exception(MODE_UND, VECTOR_UNDEF,
                                      insn.addr + 4)
        else:
            cpu.exception_return(target & ~1)
            runtime.cpu_to_env()
            runtime.charge(COST_SYSREG_HELPER, "helper")
        raise TbExitException(EXIT_EXCEPTION)

    helper_eret.__name__ = "helper_exception_return"
    helper_eret.persist = ("eret", insn.addr)
    return helper_eret


def make_undef_helper(insn: ArmInsn):
    def helper_undef(runtime: QemuRuntime) -> None:
        runtime.deliver_exception(MODE_UND, VECTOR_UNDEF,
                                  insn.addr + 4)
        raise TbExitException(EXIT_EXCEPTION)

    helper_undef.__name__ = "helper_undef"
    helper_undef.persist = ("undef", insn.addr)
    return helper_undef




class _HelperBus:
    """Minimal bus facade for interpreter-based system-op semantics."""

    def __init__(self, runtime: QemuRuntime):
        self.runtime = runtime

    def tlb_flush(self) -> None:
        self.runtime.tlb.flush()

    def fetch(self, vaddr: int) -> int:  # pragma: no cover - never used
        raise NotImplementedError

    def load(self, vaddr: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def store(self, vaddr, size, value) -> None:  # pragma: no cover
        raise NotImplementedError
