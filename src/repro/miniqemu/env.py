"""The in-memory guest CPU state structure ("env") and host address map.

QEMU keeps the guest CPU state in a C struct in memory; generated code
addresses it relative to a reserved host register (EBP here, as in TCG's
x86 backend).  Crucially for this paper, the four guest condition codes
are kept in *separate word-sized fields* (``NF``/``ZF``/``CF``/``VF``) —
exactly like QEMU's ARM target — which is what makes the host FLAGS
register a "one-to-many" CPU state during coordination (Sec III-B).

The lazy coordination optimization adds two more fields: a single slot
for the packed host FLAGS word (``PACKED_FLAGS``, always stored in the
ARM carry convention — sync-saves canonicalize with ``cmc``) and a
validity marker (``PACKED_VALID``) that tells helpers whether the packed
word or the per-bit fields hold the live condition codes.
"""

from __future__ import annotations

from ..common.bitops import u32

# --- host virtual address map of the emulator process ----------------------

ENV_BASE = 0x01000000        # the env structure
TLB_BASE = 0x01100000        # packed softmmu TLB (SoftTlb.data)
STACK_BASE = 0x01200000      # host stack (pushfd/popfd live here)
STACK_SIZE = 0x10000
RAM_HOST_BASE = 0x40000000   # guest physical RAM, host-visible

# --- env field offsets -------------------------------------------------------

ENV_REGS = 0x00                      # r0..r15, 4 bytes each
ENV_NF = 0x40                        # guest N flag (0/1)
ENV_ZF = 0x44                        # guest Z flag
ENV_CF = 0x48                        # guest C flag (ARM convention)
ENV_VF = 0x4C                        # guest V flag
ENV_CPSR_REST = 0x50                 # CPSR without NZCV (mode, I bit, ...)
ENV_PACKED_FLAGS = 0x54              # lazily-saved host EFLAGS word
ENV_PACKED_KIND = 0x58               # reserved (kind is tracked statically)
ENV_PACKED_VALID = 0x5C              # 1 -> PACKED_FLAGS holds the live CCR
ENV_IRQ = 0x60                       # deliverable-interrupt request flag
ENV_SPILL = 0x64                     # 8 spill slots for the code generators
ENV_VFP = 0x84                       # s0..s31 (binary32 bit patterns)
ENV_FPSCR = 0x104
ENV_SIZE = 0x108

def env_reg(index: int) -> int:
    """Env offset of guest register r<index>."""
    return ENV_REGS + 4 * index


def env_vfp(index: int) -> int:
    """Env offset of VFP single-precision register s<index>."""
    return ENV_VFP + 4 * index


ENV_FLAG_OFFSETS = {"N": ENV_NF, "Z": ENV_ZF, "C": ENV_CF, "V": ENV_VF}


class Env:
    """Python-side accessor over the env bytearray (aliased into host memory)."""

    def __init__(self):
        self.data = bytearray(ENV_SIZE)

    # -- raw field access ---------------------------------------------------

    def read(self, offset: int) -> int:
        return int.from_bytes(self.data[offset:offset + 4], "little")

    def write(self, offset: int, value: int) -> None:
        self.data[offset:offset + 4] = u32(value).to_bytes(4, "little")

    # -- named accessors ------------------------------------------------------

    def get_reg(self, index: int) -> int:
        return self.read(env_reg(index))

    def set_reg(self, index: int, value: int) -> None:
        self.write(env_reg(index), value)

    @property
    def pc(self) -> int:
        return self.get_reg(15)

    @pc.setter
    def pc(self, value: int) -> None:
        self.set_reg(15, value)

    # -- synchronization with the architectural GuestCpu object ----------------

    def load_from_cpu(self, cpu) -> None:
        """Copy the architectural state into env (QEMU-visible form)."""
        for index in range(16):
            self.set_reg(index, cpu.regs[index])
        self.write(ENV_NF, (cpu.cpsr >> 31) & 1)
        self.write(ENV_ZF, (cpu.cpsr >> 30) & 1)
        self.write(ENV_CF, (cpu.cpsr >> 29) & 1)
        self.write(ENV_VF, (cpu.cpsr >> 28) & 1)
        self.write(ENV_CPSR_REST, cpu.cpsr & 0x0FFFFFFF)
        self.write(ENV_PACKED_VALID, 0)
        for index in range(32):
            self.write(env_vfp(index), cpu.vfp[index])
        self.write(ENV_FPSCR, cpu.fpscr)

    def store_to_cpu(self, cpu) -> None:
        """Copy env back into the architectural state object.

        On a (defensive) mode change the switch happens BEFORE the
        register copy, so the old mode's banked sp/lr keep their previous
        values and env's registers land in the new mode's view.
        """
        nzcv = ((self.read(ENV_NF) & 1) << 31) | \
               ((self.read(ENV_ZF) & 1) << 30) | \
               ((self.read(ENV_CF) & 1) << 29) | \
               ((self.read(ENV_VF) & 1) << 28)
        new_cpsr = (self.read(ENV_CPSR_REST) & 0x0FFFFFFF) | nzcv
        if (new_cpsr & 0x1F) != cpu.mode:
            cpu.switch_mode(new_cpsr & 0x1F)
        for index in range(16):
            cpu.regs[index] = self.get_reg(index)
        cpu.cpsr = new_cpsr
        for index in range(32):
            cpu.vfp[index] = self.read(env_vfp(index))
        cpu.fpscr = self.read(ENV_FPSCR)
