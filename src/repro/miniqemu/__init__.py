"""MiniQEMU: the baseline system emulator (ARM -> TCG IR -> x86)."""

from .env import Env, ENV_BASE, RAM_HOST_BASE, TLB_BASE, env_reg
from .machine import (DbtEngineBase, InterpEngine, Machine, TcgEngine,
                      UART_BASE, TIMER_BASE, INTC_BASE, BLOCK_BASE,
                      NIC_BASE, SYSCON_BASE)
from .tb import (CodeCache, EXIT_EXCEPTION, EXIT_HALT, EXIT_INTERRUPT,
                 EXIT_PC_UPDATED, MAX_TB_INSNS, TbExitException,
                 TranslationBlock)

__all__ = [
    "BLOCK_BASE", "CodeCache", "DbtEngineBase", "ENV_BASE",
    "EXIT_EXCEPTION", "EXIT_HALT", "EXIT_INTERRUPT", "EXIT_PC_UPDATED",
    "Env", "INTC_BASE", "InterpEngine", "MAX_TB_INSNS", "Machine",
    "NIC_BASE", "RAM_HOST_BASE", "SYSCON_BASE", "TIMER_BASE", "TLB_BASE",
    "TbExitException", "TcgEngine", "TranslationBlock", "UART_BASE",
    "env_reg",
]
