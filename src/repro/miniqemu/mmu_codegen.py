"""Inline softmmu fast path, shared by both code generators.

Every guest load/store in system mode becomes: a TLB probe (a handful of
host ALU ops and a compare), the access itself on a hit, and a helper
call on a miss.  The paper measures ~20 host instructions per memory
access in QEMU system mode; this sequence plus the surrounding address
computation reproduces that.  Note that the probe's ``cmp`` clobbers the
host FLAGS register — which is exactly why every memory access is a
coordination site for the rule-based engine (Sec II-C).

The generated sequence (load shown; EDX/EAX are the scratch pair):

    mov  edx, <addr>                 ; entry offset = ((va >> 12) & 255)*16
    shr  edx, 8
    and  edx, 0xff0
    lea  edx, [edx + tlb_base + mmu*4096]   ; entry pointer
    mov  eax, <addr>                 ; tag = va & (page_mask | align_bits)
    and  eax, 0xfffff000 | (size-1)
    cmp  eax, [edx + access*4]
    jne  slow
    mov  eax, [edx + 12]             ; addend
    add  eax, <addr>
    mov/movzx/movsx  eax, [eax]      ; the access (or store to [eax])
    jmp  done
  slow:
    push <addr>  (push <value>)      ; cdecl args
    call helper_ld/st
    add  esp, 4/8
  done:
"""

from __future__ import annotations

from ..host.builder import CodeBuilder
from ..host.isa import EAX, EDX, ESP, Imm, Mem, Reg, X86Cond
from ..softmmu.tlb import SoftTlb
from .env import TLB_BASE
from .helpers import make_ld_helper, make_st_helper

_MMU_STRIDE = SoftTlb.SIZE * SoftTlb.ENTRY_SIZE  # 4096 bytes per mmu index


def emit_load(builder: CodeBuilder, addr_reg: int, size: int, signed: bool,
              mmu_idx: int, insn_pc: int, tag: str = "mmu") -> int:
    """Emit a guest load from the address in *addr_reg*.

    The loaded value ends up in EAX (which the sequence clobbers, together
    with EDX).  *addr_reg* must not be EAX or EDX and is preserved.
    Returns the register holding the result (EAX).
    """
    _emit_probe(builder, addr_reg, size, access_offset=0, mmu_idx=mmu_idx,
                tag=tag)
    slow, done = builder.new_label("slow"), builder.new_label("done")
    builder.jcc(X86Cond.NE, slow, tag=tag)
    builder.mov(Reg(EAX), Mem(base=EDX, disp=12), tag=tag)
    builder.add(Reg(EAX), Reg(addr_reg), tag=tag)
    target = Mem(base=EAX, size=size)
    if size == 4:
        builder.mov(Reg(EAX), target, tag=tag)
    elif signed:
        builder.movsx(Reg(EAX), target, tag=tag)
    else:
        builder.movzx(Reg(EAX), target, tag=tag)
    builder.jmp(done, tag=tag)
    builder.bind(slow)
    helper = make_ld_helper(size, signed, mmu_idx, insn_pc)
    builder.push(Reg(addr_reg), tag=tag)
    builder.call_helper(helper, args=(Mem(base=ESP, disp=0),), tag=tag)
    builder.add(Reg(ESP), Imm(4), tag=tag)  # add esp, 4
    builder.bind(done)
    return EAX


def emit_store(builder: CodeBuilder, addr_reg: int, value_reg: int,
               size: int, mmu_idx: int, insn_pc: int,
               tag: str = "mmu") -> None:
    """Emit a guest store of *value_reg* to the address in *addr_reg*.

    Clobbers EAX and EDX; *addr_reg* and *value_reg* must not be either
    of those and are preserved.
    """
    _emit_probe(builder, addr_reg, size, access_offset=4, mmu_idx=mmu_idx,
                tag=tag)
    slow, done = builder.new_label("slow"), builder.new_label("done")
    builder.jcc(X86Cond.NE, slow, tag=tag)
    builder.mov(Reg(EAX), Mem(base=EDX, disp=12), tag=tag)
    builder.add(Reg(EAX), Reg(addr_reg), tag=tag)
    builder.mov(Mem(base=EAX, size=size), Reg(value_reg), tag=tag)
    builder.jmp(done, tag=tag)
    builder.bind(slow)
    helper = make_st_helper(size, mmu_idx, insn_pc)
    builder.push(Reg(value_reg), tag=tag)
    builder.push(Reg(addr_reg), tag=tag)
    builder.call_helper(
        helper, args=(Mem(base=ESP, disp=0), Mem(base=ESP, disp=4)),
        tag=tag)
    builder.add(Reg(ESP), Imm(8), tag=tag)  # add esp, 8
    builder.bind(done)


def _tlb_mem(mmu_idx: int, field_offset: int, index_reg: int) -> Mem:
    return Mem(base=index_reg,
               disp=TLB_BASE + mmu_idx * _MMU_STRIDE + field_offset)


def _emit_probe(builder: CodeBuilder, addr_reg: int, size: int,
                access_offset: int, mmu_idx: int, tag: str) -> None:
    builder.mov(Reg(EDX), Reg(addr_reg), tag=tag)
    builder.shr(Reg(EDX), Imm(8), tag=tag)
    builder.and_(Reg(EDX), Imm(0xFF0), tag=tag)
    # Materialize the entry pointer (QEMU adds the per-mmu-idx table base
    # held in env; modelled as a lea on the index register).
    builder.lea(Reg(EDX), Mem(base=EDX,
                              disp=TLB_BASE + mmu_idx * _MMU_STRIDE),
                tag=tag)
    builder.mov(Reg(EAX), Reg(addr_reg), tag=tag)
    builder.and_(Reg(EAX), Imm(0xFFFFF000 | (size - 1)), tag=tag)
    builder.cmp(Reg(EAX), Mem(base=EDX, disp=access_offset), tag=tag)
