"""TCG-like IR: instruction set, builder, optimizer."""

from .ops import IRBuilder, IRCond, IRInsn, IROp, Temp
from .opt import eliminate_dead_env_stores, eliminate_dead_temps, optimize

__all__ = [
    "IRBuilder", "IRCond", "IRInsn", "IROp", "Temp",
    "eliminate_dead_env_stores", "eliminate_dead_temps", "optimize",
]
