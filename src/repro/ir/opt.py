"""IR optimization passes for the TCG baseline.

Real QEMU eliminates dead condition-code computation with liveness
analysis over its IR; implementing the same here keeps the baseline
honest (its 17-ish host instructions per guest instruction already
include this optimization, per the paper's Figure 15).

Two passes, both conservative across control flow and calls:

- :func:`eliminate_dead_env_stores`: a ``ST_ENV`` to an offset that is
  overwritten by a later ``ST_ENV`` before any possible read is dead.
  Helper calls, guest memory ops (they can fault and expose state),
  branches and TB exits are treated as reads of everything.
- :func:`eliminate_dead_temps`: classic backward DCE over pure ops.
"""

from __future__ import annotations

from typing import List, Set

from .ops import IRInsn, IROp, Temp

#: Ops with no side effect other than writing their dst temp.
_PURE_OPS = frozenset({
    IROp.MOVI, IROp.MOV, IROp.ADD, IROp.SUB, IROp.AND, IROp.OR, IROp.XOR,
    IROp.SHL, IROp.SHR, IROp.SAR, IROp.ROR, IROp.MUL, IROp.NOT, IROp.NEG,
    IROp.SETCOND, IROp.LD_ENV,
})

#: Ops after which every env slot must be considered observable.
_BARRIERS = frozenset({
    IROp.CALL, IROp.QEMU_LD, IROp.QEMU_ST, IROp.EXIT_TB, IROp.GOTO_TB,
    IROp.BRCOND, IROp.BR, IROp.LABEL,
})


def eliminate_dead_env_stores(insns: List[IRInsn]) -> List[IRInsn]:
    """Drop ST_ENV instructions whose value is overwritten before any read."""
    dead: Set[int] = set()
    overwritten: Set[int] = set()  # env offsets stored later, unread since
    for index in range(len(insns) - 1, -1, -1):
        insn = insns[index]
        if insn.op in _BARRIERS:
            overwritten.clear()
        elif insn.op is IROp.LD_ENV:
            overwritten.discard(insn.offset)
        elif insn.op is IROp.ST_ENV:
            if insn.offset in overwritten:
                dead.add(index)
            else:
                overwritten.add(insn.offset)
    return [insn for index, insn in enumerate(insns) if index not in dead]


def eliminate_dead_temps(insns: List[IRInsn]) -> List[IRInsn]:
    """Remove pure ops whose destination temp is never used."""
    while True:
        used: Set[Temp] = set()
        for insn in insns:
            used.update(insn.sources())
        kept = [insn for insn in insns
                if not (insn.op in _PURE_OPS and insn.dst is not None and
                        insn.dst not in used)]
        if len(kept) == len(insns):
            return kept
        insns = kept


def optimize(insns: List[IRInsn]) -> List[IRInsn]:
    """The full baseline optimization pipeline."""
    return eliminate_dead_temps(eliminate_dead_env_stores(insns))
