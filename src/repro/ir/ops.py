"""TCG-like intermediate representation.

MiniQEMU's baseline engine translates guest instructions to this IR and
the backend lowers IR to host x86 — the classic two-step
"many-to-many" translation the paper contrasts with rule-based one-step
translation.

Values are *temps* (``t0``, ``t1``, ...), created per-TB.  Guest CPU state
lives in the in-memory ``env`` structure and is accessed with
``LD_ENV``/``ST_ENV``; guest memory is accessed with ``QEMU_LD``/
``QEMU_ST`` which the backend expands into the inline softmmu fast path
plus a slow-path helper call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union


class IROp(enum.Enum):
    MOVI = "movi"          # dst <- imm
    MOV = "mov"            # dst <- src
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    ROR = "ror"
    MUL = "mul"
    NOT = "not"
    NEG = "neg"
    SETCOND = "setcond"    # dst <- (a cond b) ? 1 : 0
    LD_ENV = "ld_env"      # dst <- env[offset]
    ST_ENV = "st_env"      # env[offset] <- src
    QEMU_LD = "qemu_ld"    # dst <- guest_mem[addr]  (softmmu)
    QEMU_ST = "qemu_st"    # guest_mem[addr] <- src  (softmmu)
    BRCOND = "brcond"      # if (a cond b) goto label
    BR = "br"
    LABEL = "label"
    CALL = "call"          # runtime helper call
    GOTO_TB = "goto_tb"    # chainable direct jump slot
    EXIT_TB = "exit_tb"


class IRCond(enum.Enum):
    """Comparison conditions (signed/unsigned split as in TCG)."""

    EQ = "eq"
    NE = "ne"
    LTU = "ltu"
    GEU = "geu"
    LEU = "leu"
    GTU = "gtu"
    LT = "lt"
    GE = "ge"
    LE = "le"
    GT = "gt"


@dataclass(frozen=True)
class Temp:
    """An SSA-ish IR value."""

    index: int

    def __str__(self) -> str:
        return f"t{self.index}"


#: Binary-op source operands may be temps or Python int immediates.
Src = Union[Temp, int]


@dataclass
class IRInsn:
    op: IROp
    dst: Optional[Temp] = None
    args: Tuple = ()
    cond: Optional[IRCond] = None
    offset: int = 0                  # env offset for LD_ENV/ST_ENV
    size: int = 4                    # access size for QEMU_LD/ST
    signed: bool = False             # sign-extend sub-word loads
    label: Optional[str] = None
    helper: Optional[Callable] = None
    imm: int = 0                     # goto_tb slot / exit_tb status

    def sources(self) -> List[Temp]:
        return [arg for arg in self.args if isinstance(arg, Temp)]

    def __str__(self) -> str:
        if self.op is IROp.LABEL:
            return f"{self.label}:"
        parts = [self.op.value]
        if self.cond:
            parts.append(self.cond.value)
        if self.dst is not None:
            parts.append(str(self.dst))
        parts.extend(str(arg) for arg in self.args)
        if self.op in (IROp.LD_ENV, IROp.ST_ENV):
            parts.append(f"env[{self.offset:#x}]")
        if self.label and self.op is not IROp.LABEL:
            parts.append(self.label)
        if self.helper is not None:
            parts.append(getattr(self.helper, "__name__", "helper"))
        return " ".join(parts)


class IRBuilder:
    """Builds an IR instruction list for one translation block."""

    def __init__(self):
        self.insns: List[IRInsn] = []
        self._next_temp = 0
        self._next_label = 0
        #: guest pc of the instruction being translated; stamped onto
        #: QEMU_LD/QEMU_ST for precise fault reporting.
        self.current_pc = 0

    def temp(self) -> Temp:
        temp = Temp(self._next_temp)
        self._next_temp += 1
        return temp

    def new_label(self, stem: str = "l") -> str:
        label = f".{stem}{self._next_label}"
        self._next_label += 1
        return label

    def _push(self, insn: IRInsn) -> Optional[Temp]:
        self.insns.append(insn)
        return insn.dst

    # -- emitters ----------------------------------------------------------

    def movi(self, value: int) -> Temp:
        return self._push(IRInsn(IROp.MOVI, dst=self.temp(),
                                 args=(value & 0xFFFFFFFF,)))

    def mov(self, src: Temp) -> Temp:
        return self._push(IRInsn(IROp.MOV, dst=self.temp(), args=(src,)))

    def binop(self, op: IROp, a: Src, b: Src) -> Temp:
        return self._push(IRInsn(op, dst=self.temp(), args=(a, b)))

    def add(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.ADD, a, b)

    def sub(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.SUB, a, b)

    def and_(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.AND, a, b)

    def or_(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.OR, a, b)

    def xor(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.XOR, a, b)

    def shl(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.SHL, a, b)

    def shr(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.SHR, a, b)

    def sar(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.SAR, a, b)

    def ror(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.ROR, a, b)

    def mul(self, a: Src, b: Src) -> Temp:
        return self.binop(IROp.MUL, a, b)

    def not_(self, a: Temp) -> Temp:
        return self._push(IRInsn(IROp.NOT, dst=self.temp(), args=(a,)))

    def neg(self, a: Temp) -> Temp:
        return self._push(IRInsn(IROp.NEG, dst=self.temp(), args=(a,)))

    def setcond(self, cond: IRCond, a: Src, b: Src) -> Temp:
        return self._push(IRInsn(IROp.SETCOND, dst=self.temp(), args=(a, b),
                                 cond=cond))

    def ld_env(self, offset: int) -> Temp:
        return self._push(IRInsn(IROp.LD_ENV, dst=self.temp(),
                                 offset=offset))

    def st_env(self, src: Src, offset: int) -> None:
        self._push(IRInsn(IROp.ST_ENV, args=(src,), offset=offset))

    def qemu_ld(self, addr: Temp, size: int = 4,
                signed: bool = False) -> Temp:
        return self._push(IRInsn(IROp.QEMU_LD, dst=self.temp(), args=(addr,),
                                 size=size, signed=signed,
                                 imm=self.current_pc))

    def qemu_st(self, value: Src, addr: Temp, size: int = 4) -> None:
        self._push(IRInsn(IROp.QEMU_ST, args=(value, addr), size=size,
                          imm=self.current_pc))

    def brcond(self, cond: IRCond, a: Src, b: Src, label: str) -> None:
        self._push(IRInsn(IROp.BRCOND, args=(a, b), cond=cond, label=label))

    def br(self, label: str) -> None:
        self._push(IRInsn(IROp.BR, label=label))

    def label(self, name: str) -> None:
        self._push(IRInsn(IROp.LABEL, label=name))

    def call(self, helper: Callable, args: Tuple = (),
             want_result: bool = False) -> Optional[Temp]:
        dst = self.temp() if want_result else None
        self._push(IRInsn(IROp.CALL, dst=dst, args=tuple(args),
                          helper=helper))
        return dst

    def goto_tb(self, slot: int) -> None:
        self._push(IRInsn(IROp.GOTO_TB, imm=slot))

    def exit_tb(self, status: int) -> None:
        self._push(IRInsn(IROp.EXIT_TB, imm=status))
