"""Per-TB / per-guest-PC / per-rule profiling and cost attribution.

The :class:`Profiler` attributes every unit of modelled host cost — per
executed host instruction and per modelled charge — to the translation
block that incurred it, keyed by ``(guest_pc, mmu_idx)`` and split by
the instruction tag.  Cost the cpu_exec loop spends outside any TB
(IRQ delivery at the loop head, TB-cache lookups before attribution is
armed) lands in the ``unattributed`` bucket, so the per-TB sums plus
the unattributed bucket always equal the run's ``host_cost`` exactly.

:func:`coordination_breakdown` folds the engine's ``tag_*`` counters
into the paper's Sec III cost categories; because every executed
instruction and every charge increments exactly one tag counter, the
category totals sum to ``host_cost`` by construction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: The paper's Sec III cost accounting: tag -> category.
#:
#: - ``body``: the translated guest computation itself (rule-emitted
#:   code, TCG-emitted code, inline fallback, interp-tier execution).
#: - ``coordination``: sync-save/restore/reg-flush + interrupt checks —
#:   the overhead Figs 8/16/17 measure.
#: - ``mmu``: softmmu probes, page walks and MMIO dispatch.
#: - ``helper``: helper-call glue and modelled helper bodies.
#: - ``chaining``: goto_tb / exit_tb block-linking glue.
#: - ``runtime``: cpu_exec loop work (TB lookup, exception entry).
#: - ``translate``: modelled translation cost (static * per-insn).
COORDINATION_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "body": ("rule", "code", "fallback", "interp_tier"),
    "coordination": ("sync", "irqcheck"),
    "mmu": ("mmu", "mmio"),
    "helper": ("helper",),
    "chaining": ("chain",),
    "runtime": ("runtime",),
    "translate": ("translate",),
}

_TAG_TO_CATEGORY: Dict[str, str] = {
    tag: category
    for category, tags in COORDINATION_CATEGORIES.items()
    for tag in tags
}


def category_for(tag: str) -> str:
    """Cost category for an instruction tag (unknown tags -> 'other')."""
    return _TAG_TO_CATEGORY.get(tag, "other")


ProfileKey = Tuple[int, int]  # (guest_pc, mmu_idx)


class Profiler:
    """Aggregates execution counts and tagged cost per translation block.

    The hot-loop contract: the host interpreter fetches the per-TB tag
    counter dict once per TB entry via :meth:`tags_for` and increments
    it inline, so the per-instruction overhead is one dict increment.
    Charges route through :meth:`on_charge` with the interpreter's
    current attribution key (or ``None`` outside any TB).
    """

    def __init__(self):
        #: key -> tag -> attributed cost units.
        self._tags: Dict[ProfileKey, Dict[str, float]] = {}
        #: key -> TB entry count (run-loop entries + chained entries).
        self.execs: Dict[ProfileKey, int] = defaultdict(int)
        #: key -> static snapshot taken at translate time (survives
        #: cache eviction; retranslation overwrites with the new tier).
        self.static: Dict[ProfileKey, Dict[str, object]] = {}
        #: tag -> cost charged while no TB was executing.
        self.unattributed: Dict[str, float] = defaultdict(float)

    # -- hot-path hooks ----------------------------------------------------

    def tags_for(self, key: ProfileKey) -> Dict[str, float]:
        tags = self._tags.get(key)
        if tags is None:
            tags = self._tags[key] = defaultdict(float)
        return tags

    def on_enter(self, key: ProfileKey) -> None:
        self.execs[key] += 1

    def on_charge(self, key: Optional[ProfileKey], tag: str,
                  amount: float) -> None:
        if key is None:
            self.unattributed[tag] += amount
        else:
            self.tags_for(key)[tag] += amount

    # -- translate-time hooks ----------------------------------------------

    def register(self, tb) -> None:
        """Snapshot a freshly-translated TB's static metadata."""
        meta = tb.meta
        self.static[(tb.pc, tb.mmu_idx)] = {
            "tier": meta.get("tier", "?"),
            "guest_insns": tb.guest_insn_count,
            "host_insns": len(tb.code),
            "sync_saves": meta.get("sync_saves", 0),
            "sync_restores": meta.get("sync_restores", 0),
            "sync_elisions": meta.get("sync_elisions", 0),
            "inter_tb_elisions": meta.get("inter_tb_elisions", 0),
            "rules_used": tuple(meta.get("rules_used") or ()),
        }

    # -- aggregation -------------------------------------------------------

    def attributed_cost(self) -> float:
        return sum(sum(tags.values()) for tags in self._tags.values())

    def tb_rows(self) -> List[Dict[str, object]]:
        """One row per profiled TB, sorted by attributed cost descending."""
        rows = []
        categories = tuple(COORDINATION_CATEGORIES) + ("other",)
        for key, tags in self._tags.items():
            pc, mmu_idx = key
            static = self.static.get(key, {})
            split = {category: 0.0 for category in categories}
            for tag, amount in tags.items():
                split[category_for(tag)] += amount
            rows.append({
                "pc": f"0x{pc:08x}",
                "mmu_idx": mmu_idx,
                "tier": static.get("tier", "?"),
                "execs": self.execs.get(key, 0),
                "guest_insns": static.get("guest_insns", 0),
                "cost": sum(tags.values()),
                "by_category": split,
                "sync_saves": static.get("sync_saves", 0),
                "sync_restores": static.get("sync_restores", 0),
                "sync_elisions": static.get("sync_elisions", 0),
                "rules_used": list(static.get("rules_used", ())),
            })
        rows.sort(key=lambda row: (-row["cost"], row["pc"]))
        return rows

    def pc_rows(self) -> List[Dict[str, object]]:
        """Per-guest-PC aggregation (mmu contexts of one pc merged)."""
        merged: Dict[int, Dict[str, float]] = {}
        for (pc, _mmu_idx), tags in self._tags.items():
            entry = merged.setdefault(pc, {"cost": 0.0, "execs": 0.0})
            entry["cost"] += sum(tags.values())
            entry["execs"] += self.execs.get((pc, _mmu_idx), 0)
        rows = [{"pc": f"0x{pc:08x}", "cost": entry["cost"],
                 "execs": int(entry["execs"])}
                for pc, entry in merged.items()]
        rows.sort(key=lambda row: (-row["cost"], row["pc"]))
        return rows

    def rule_rows(self) -> List[Dict[str, object]]:
        """Per-rule profile.

        A TB's cost counts toward *every* rule applied in it (rule
        applications overlap inside a block), so rule costs do not sum
        to ``host_cost`` — they rank which rules sit in expensive blocks.
        """
        per_rule: Dict[str, Dict[str, float]] = {}
        for key, static in self.static.items():
            tags = self._tags.get(key)
            cost = sum(tags.values()) if tags else 0.0
            execs = self.execs.get(key, 0)
            for rule in static.get("rules_used", ()):
                entry = per_rule.setdefault(
                    rule, {"tbs": 0.0, "execs": 0.0, "cost": 0.0})
                entry["tbs"] += 1
                entry["execs"] += execs
                entry["cost"] += cost
        rows = [{"rule": rule, "tbs": int(entry["tbs"]),
                 "execs": int(entry["execs"]), "cost": entry["cost"]}
                for rule, entry in per_rule.items()]
        rows.sort(key=lambda row: (-row["cost"], row["rule"]))
        return rows


def coordination_breakdown(stats: Dict[str, float]) -> Dict[str, float]:
    """Fold namespaced ``engine.tag_*`` counters into cost categories.

    Every executed host instruction and every modelled charge increments
    exactly one ``tag_*`` counter, so the returned category totals sum
    to ``engine.host_cost`` exactly.
    """
    breakdown = {category: 0.0 for category in COORDINATION_CATEGORIES}
    breakdown["other"] = 0.0
    for key, value in stats.items():
        if key.startswith("engine.tag_"):
            breakdown[category_for(key[len("engine.tag_"):])] += value
    return breakdown


def build_profile(machine, workload: str = "",
                  engine: str = "") -> Dict[str, object]:
    """Machine-readable profile for one finished run (JSON-safe)."""
    stats = machine.stats()
    breakdown = coordination_breakdown(stats)
    profiler = machine.profiler
    runtime = machine.runtime
    profile: Dict[str, object] = {
        "workload": workload,
        "engine": engine,
        "totals": {
            "guest_icount": stats.get("engine.guest_icount", 0.0),
            "host_instructions":
                stats.get("engine.host_instructions", 0.0),
            "host_cost": stats.get("engine.host_cost", 0.0),
            "io_cost": stats.get("io.cost", 0.0),
        },
        "breakdown": breakdown,
        "sync_sites": {
            "sync_ops_dyn": stats.get("engine.sync_ops_dyn", 0.0),
            "sync_insns_weighted":
                stats.get("engine.sync_insns_weighted", 0.0),
            "sync_elisions_dyn":
                stats.get("engine.sync_elisions_dyn", 0.0),
            "lazy_flag_parses": stats.get("engine.flag_parses", 0.0),
            "mmu_slow_paths": float(runtime.slow_path_count),
            "interrupt_checks_dyn":
                stats.get("engine.interrupt_checks_dyn", 0.0),
        },
        "stats": dict(stats),
    }
    if profiler is not None:
        profile["tbs"] = profiler.tb_rows()
        profile["per_pc"] = profiler.pc_rows()
        profile["rules"] = profiler.rule_rows()
        profile["unattributed"] = dict(profiler.unattributed)
    return profile


def render_profile(profile: Dict[str, object], top: int = 20) -> str:
    """The ``repro profile`` report: hot-TB table + cost breakdown."""
    from ..harness import format_table  # local import: avoids a cycle

    totals = profile["totals"]
    host_cost = totals["host_cost"] or 1.0
    sections = []

    breakdown = profile["breakdown"]
    rows = [[category, f"{cost:.0f}", f"{100 * cost / host_cost:.1f}%"]
            for category, cost in sorted(breakdown.items(),
                                         key=lambda item: -item[1])
            if cost]
    rows.append(["total", f"{sum(breakdown.values()):.0f}", "100.0%"])
    sections.append(format_table(
        ["Category", "Host cost", "Share"], rows,
        title=f"coordination-cost breakdown "
              f"({profile['workload']} on {profile['engine']}, "
              f"host_cost={totals['host_cost']:.0f})"))

    tbs = profile.get("tbs")
    if tbs:
        hot = []
        for row in tbs[:top]:
            split = row["by_category"]
            hot.append([
                row["pc"], row["tier"], row["execs"],
                row["guest_insns"], f"{row['cost']:.0f}",
                f"{split['body']:.0f}", f"{split['coordination']:.0f}",
                f"{split['mmu']:.0f}", f"{split['helper']:.0f}",
                f"{split['chaining']:.0f}",
            ])
        sections.append(format_table(
            ["TB pc", "Tier", "Execs", "Guest", "Cost", "Body",
             "Coord", "MMU", "Helper", "Chain"], hot,
            title=f"hot TBs (top {min(top, len(tbs))} of {len(tbs)} "
                  f"by attributed cost)"))
        unattributed = sum(profile.get("unattributed", {}).values())
        attributed = sum(row["cost"] for row in tbs)
        sections.append(
            f"attributed {attributed:.0f} + unattributed "
            f"{unattributed:.0f} = {attributed + unattributed:.0f} "
            f"host cost")

    rules = profile.get("rules")
    if rules:
        rule_rows = [[row["rule"], row["tbs"], row["execs"],
                      f"{row['cost']:.0f}"] for row in rules[:top]]
        sections.append(format_table(
            ["Rule", "TBs", "Execs", "TB cost"], rule_rows,
            title="hottest rules (cost of every TB the rule appears in)"))

    sync = profile["sync_sites"]
    sections.append(format_table(
        ["Site", "Count"],
        [[name, f"{value:.0f}"] for name, value in sync.items()],
        title="coordination sites (dynamic)"))
    return "\n\n".join(sections)
