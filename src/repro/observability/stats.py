"""Namespaced ``Machine.stats()`` merging.

Historically ``Machine.stats()`` merged flat dicts from the machine,
the engine and the robustness layer with ``dict.update`` — a key
published by two producers (``watchdog_trips`` genuinely was, three
times) silently kept whichever writer ran last.  Stats now live in
namespaced groups and are merged through :func:`merge_stats`, which
raises on any collision instead of hiding it:

- ``engine.*``  — performance counters: guest/host instruction counts,
  cost-by-tag, translation statics, sync/coordination dynamics.
- ``robust.*``  — degradation ladder, quarantine, self-check, watchdog
  and fault-injection counters.
- ``io.*``      — device/IO time.
- ``cache.*``   — persistent translation-cache warm-start accounting
  (only present when a ``--cache-dir`` loader is attached; differs
  between cold and warm runs by design, unlike the groups above).
- ``trace.*``   — tracer bookkeeping (only present when tracing is on).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..common.errors import ReproError

#: The only legal top-level stat namespaces.
STAT_NAMESPACES: Tuple[str, ...] = ("engine", "robust", "io", "cache",
                                    "trace")


def merge_stats(groups: Mapping[str, Mapping[str, float]]) \
        -> Dict[str, float]:
    """Merge ``{namespace: {key: value}}`` into one flat dotted dict.

    Raises :class:`ReproError` for an unknown namespace, a key that
    already contains a dot (would fake a nested namespace), or a
    duplicate dotted key.
    """
    merged: Dict[str, float] = {}
    for namespace, group in groups.items():
        if namespace not in STAT_NAMESPACES:
            raise ReproError(
                f"unknown stats namespace {namespace!r} "
                f"(expected one of {', '.join(STAT_NAMESPACES)})")
        for key, value in group.items():
            if "." in key:
                raise ReproError(
                    f"stats key {key!r} in namespace {namespace!r} "
                    f"must not contain '.'")
            dotted = f"{namespace}.{key}"
            if dotted in merged:
                raise ReproError(f"duplicate stats key {dotted!r}")
            merged[dotted] = value
    return merged


def namespace_group(stats: Mapping[str, float], namespace: str) \
        -> Dict[str, float]:
    """Extract one namespace's keys from a merged dict, prefix stripped."""
    prefix = namespace + "."
    return {key[len(prefix):]: value for key, value in stats.items()
            if key.startswith(prefix)}
