"""Continuous-benchmarking orchestrator behind ``repro bench``.

One call to :func:`run_suite` replaces the thirteen one-off
``benchmarks/bench_*.py`` invocations: it drives the paper experiments
through the shared sweep cache (:mod:`repro.harness.runner`), folds the
sweep into per-engine-tier totals, Sec III coordination breakdowns,
sync-site counters and rule-coverage fractions, samples the
translator's wall-clock throughput, and returns one schema-validated
snapshot dict (see :mod:`.baseline`) ready to be written as
``BENCH_<n>.json`` and gated by :mod:`.regress`.

The suite accepts an ``--inject`` fault plan, threaded through every
cached run: the injector's ``extra-sync`` site turns the harness into a
regression *simulator*, so the gate's detection path is testable end to
end (`repro bench --inject seed=1,extra-sync=0.5 --compare BENCH_0.json`
must exit nonzero and attribute the damage to the coordination
category).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .baseline import SCHEMA, SCHEMA_VERSION, fingerprint
from .profile import coordination_breakdown

# NOTE: the harness imports the machine, which imports this package's
# trace/stats submodules — so every harness import below is deferred
# into the function bodies to keep the package import acyclic.

#: Engine tiers whose totals every snapshot records (the sweep the
#: figure experiments already need, so tier totals cost zero extra runs).
TIER_ENGINES = ("tcg", "rules-base", "rules-reduction",
                "rules-elimination", "rules-full")

#: Experiments a ``--quick`` run keeps: everything computable from the
#: SPEC sweep alone (the cache makes them nearly free once the sweep
#: ran).  Skipped relative to full: fig19 (real-world workloads),
#: footnote3 (SPEC CFP analogs) and the ablation grid.
QUICK_EXPERIMENTS = ("coordination", "fig8", "fig14", "fig15", "fig16",
                     "fig17", "fig18", "table1")

FULL_EXPERIMENTS = QUICK_EXPERIMENTS + ("ablation", "fig19", "footnote3")

#: benchmarks/results file stem when it differs from the experiment id.
RESULT_NAMES = {"fig8": "fig08"}

#: Wall-clock samples per mode.
WALLCLOCK_SAMPLES = {"full": 30, "quick": 10, "custom": 5}

#: The fixed block the translator-throughput sampler times (mirrors
#: ``benchmarks/bench_translation.py``).
_WALLCLOCK_BLOCK = """
    add r0, r1, r2
    subs r3, r0, #17
    and r4, r3, r0, lsl #2
    ldr r5, [r4, #8]
    str r5, [r4, #12]
    cmp r5, r0
    bne target
target:
    bx lr
"""
_WALLCLOCK_BASE = 0x40000


def _wallclock_machine():
    from ..core import OptLevel
    from ..core.engine import RuleEngine
    from ..guest.asm import assemble
    from ..miniqemu.machine import Machine

    machine = Machine(engine="tcg")
    machine.memory.load_program(assemble(_WALLCLOCK_BLOCK,
                                         base=_WALLCLOCK_BASE))
    return machine, RuleEngine(machine, level=OptLevel.FULL)


def _sample_translation_wallclock(samples: int) -> Dict[str, Any]:
    """Time rule-based translation of a fixed block *samples* times."""
    machine, engine = _wallclock_machine()
    times: List[float] = []
    for _ in range(samples):
        start = time.perf_counter()
        tb = engine.translate(_WALLCLOCK_BASE, 0)
        times.append(max(time.perf_counter() - start, 1e-9))
    return {"samples": times, "unit": "seconds",
            "block_guest_insns": tb.guest_insn_count}


def _sample_warmstart_wallclock(samples: int) -> Dict[str, Any]:
    """Time reviving the same block from a persistent store.

    The warm-start counterpart of :func:`_sample_translation_wallclock`:
    the block is translated once, persisted, and then fetched
    (guest-byte validation + host-code deserialization) *samples*
    times through a freshly attached loader.  The index read and the
    store-wide integrity validation are kept outside the timed region —
    they are per-run costs, not per-TB ones."""
    import shutil
    import tempfile

    from ..cache import CacheLoader
    from ..common.errors import ReproError

    machine, engine = _wallclock_machine()
    root = tempfile.mkdtemp(prefix="repro-warmclock-")
    try:
        seed = CacheLoader(machine, engine, root)
        tb = engine.translate(_WALLCLOCK_BASE, 0)
        engine.cache.insert(tb)
        seed.save()
        times: List[float] = []
        for _ in range(samples):
            loader = CacheLoader(machine, engine, root)
            loader.load_index()
            start = time.perf_counter()
            loaded = loader.fetch(_WALLCLOCK_BASE, 0)
            times.append(max(time.perf_counter() - start, 1e-9))
            if loaded is None:
                raise ReproError("warm-start sampler failed to revive "
                                 "its own persisted block")
        return {"samples": times, "unit": "seconds",
                "block_guest_insns": tb.guest_insn_count}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _sum_stat(runs: List[Any], key: str) -> float:
    return float(sum(run.stats.get(key, 0.0) for run in runs))


def run_suite(mode: str = "full",
              experiments: Optional[Tuple[str, ...]] = None,
              sweep_workloads: Optional[Tuple[str, ...]] = None,
              engines: Tuple[str, ...] = TIER_ENGINES,
              inject: Optional[str] = None,
              wallclock_samples: Optional[int] = None,
              name: str = "bench",
              results_dir: Optional[str] = None,
              cache_dir: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run the benchmark suite and return one snapshot dict.

    *mode* is ``full`` / ``quick`` / ``custom``; ``custom`` (used with a
    *sweep_workloads* override) runs no figure experiments — they are
    hard-wired to the full SPEC analog set — and records only the
    tier/coordination/sync/coverage sections over the given workloads.
    When *results_dir* is set, each experiment's rendered table and
    metric payload are also written there (the
    ``benchmarks/results/<name>.{txt,json}`` companions).

    *cache_dir* threads ``--cache-dir`` through the whole sweep: every
    run warm-starts from (and persists to) that directory.  Warm-start
    accounting goes to *progress* only — never into the snapshot, whose
    deterministic metrics must be bit-identical cold vs warm.
    """
    from ..harness.experiments import ALL_EXPERIMENTS, SPEC_ORDER
    from ..harness.runner import (cached_results, run_cached,
                                  set_cache_dir, set_cache_inject)
    from ..workloads import ALL_WORKLOADS

    if experiments is None:
        experiments = {"full": FULL_EXPERIMENTS,
                       "quick": QUICK_EXPERIMENTS}.get(mode, ())
    if sweep_workloads is None:
        sweep_workloads = tuple(SPEC_ORDER)
    unknown = [w for w in sweep_workloads if w not in ALL_WORKLOADS]
    if unknown:
        raise ValueError(f"unknown sweep workload(s): {unknown}")
    say = progress or (lambda _message: None)

    plan = set_cache_inject(inject)
    set_cache_dir(cache_dir)
    try:
        figures: Dict[str, Dict[str, Any]] = {}
        for experiment in experiments:
            say(f"experiment {experiment}")
            result = ALL_EXPERIMENTS[experiment]()
            figures[experiment] = {"rows": list(result.rows),
                                   "summary": dict(result.summary)}
            if results_dir is not None:
                _export_result(results_dir,
                               RESULT_NAMES.get(experiment, experiment),
                               result)

        tiers: Dict[str, Dict[str, float]] = {}
        coordination: Dict[str, Dict[str, float]] = {}
        sync: Dict[str, Dict[str, float]] = {}
        coverage: Dict[str, Dict[str, float]] = {}
        for engine in engines:
            say(f"sweep {engine}")
            runs = [run_cached(ALL_WORKLOADS[w], engine)
                    for w in sweep_workloads]
            tiers[engine] = {
                "guest_icount": float(sum(r.guest_icount for r in runs)),
                "host_instructions":
                    float(sum(r.host_instructions for r in runs)),
                "host_cost": float(sum(r.host_cost for r in runs)),
                "io_cost": float(sum(r.io_cost for r in runs)),
                "runtime": float(sum(r.runtime for r in runs)),
                "translation_cost":
                    _sum_stat(runs, "engine.translation_cost"),
            }
            tag_totals: Dict[str, float] = {}
            for run in runs:
                for key, value in run.stats.items():
                    if key.startswith("engine.tag_"):
                        tag_totals[key] = tag_totals.get(key, 0.0) + value
            breakdown = coordination_breakdown(tag_totals)
            breakdown["total"] = sum(breakdown.values())
            coordination[engine] = breakdown
            if any("engine.sync_ops_dyn" in run.stats for run in runs):
                ops = _sum_stat(runs, "engine.sync_ops_dyn")
                insns = _sum_stat(runs, "engine.sync_insns_weighted")
                sync[engine] = {
                    "sync_ops_dyn": ops,
                    "sync_insns_weighted": insns,
                    "insns_per_sync": insns / max(ops, 1.0),
                    "sync_elisions_dyn":
                        _sum_stat(runs, "engine.sync_elisions_dyn"),
                    "interrupt_checks_dyn":
                        _sum_stat(runs, "engine.interrupt_checks_dyn"),
                }
            if any("engine.rule_covered_insns_dyn" in run.stats
                   for run in runs):
                covered = _sum_stat(runs, "engine.rule_covered_insns_dyn")
                uncovered = _sum_stat(runs,
                                      "engine.rule_uncovered_insns_dyn")
                coverage[engine] = {
                    "covered_insns_dyn": covered,
                    "uncovered_insns_dyn": uncovered,
                    "covered_fraction":
                        covered / max(covered + uncovered, 1.0),
                }

        if cache_dir:
            runs = cached_results()
            summary = {key: sum(r.stats.get(f"cache.{key}", 0.0)
                                for r in runs)
                       for key in ("tb_loaded", "tb_fresh", "tb_saved",
                                   "tb_stale", "tb_evicted")}
            say("persistent cache: loaded {tb_loaded:.0f} TBs, "
                "translated {tb_fresh:.0f} fresh, saved {tb_saved:.0f}, "
                "stale {tb_stale:.0f}, evicted {tb_evicted:.0f}"
                .format(**summary))

        say("wall-clock translation sampling")
        samples = wallclock_samples if wallclock_samples is not None \
            else WALLCLOCK_SAMPLES.get(mode, 5)
        wallclock = {"translate_block":
                     _sample_translation_wallclock(samples),
                     "translate_block_warm":
                     _sample_warmstart_wallclock(samples)}

        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "mode": mode,
            "figures": figures,
            "tiers": tiers,
            "coordination": coordination,
            "sync": sync,
            "coverage": coverage,
            "wallclock": wallclock,
            "fingerprint": fingerprint(
                mode, tuple(sweep_workloads), tuple(engines),
                tuple(experiments),
                inject=plan.describe() if plan is not None else None),
        }
    finally:
        set_cache_inject(None)
        set_cache_dir(None)


def _export_result(results_dir: str, name: str, result: Any) -> None:
    """Write one experiment's ``<name>.txt`` / ``<name>.json`` pair in
    the same validated format ``benchmarks/conftest.save_result`` uses."""
    import json

    from .baseline import validate_result_payload

    payload = {"name": name, "rows": list(result.rows),
               "summary": dict(result.summary)}
    problems = validate_result_payload(payload)
    if problems:
        raise ValueError(f"experiment {name!r} produced an invalid "
                         f"payload: " + "; ".join(problems))
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
        handle.write(result.text + "\n")
    with open(os.path.join(results_dir, f"{name}.json"), "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Snapshot rendering (the ``repro bench --format table`` view).
# ---------------------------------------------------------------------------


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable summary of one snapshot."""
    from ..harness.report import format_table

    sections = []
    tiers = snapshot.get("tiers", {})
    rows = []
    for engine, totals in tiers.items():
        guest = max(totals.get("guest_icount", 0.0), 1.0)
        rows.append([engine, f"{totals.get('guest_icount', 0):.0f}",
                     f"{totals.get('host_cost', 0):.0f}",
                     f"{totals.get('io_cost', 0):.0f}",
                     f"{totals.get('host_cost', 0) / guest:.2f}"])
    sections.append(format_table(
        ["Engine", "Guest insns", "Host cost", "IO cost", "Cost/guest"],
        rows, title=f"benchmark snapshot '{snapshot.get('name')}' "
                    f"({snapshot.get('mode')} mode)"))

    coordination = snapshot.get("coordination", {})
    if coordination:
        categories = sorted({category for breakdown
                             in coordination.values()
                             for category in breakdown
                             if category != "total"})
        rows = [[engine] + [f"{breakdown.get(c, 0.0):.0f}"
                            for c in categories] +
                [f"{breakdown.get('total', 0.0):.0f}"]
                for engine, breakdown in coordination.items()]
        sections.append(format_table(
            ["Engine"] + categories + ["total"], rows,
            title="Sec III coordination-cost attribution "
                  "(sums exactly to host_cost)"))

    sync = snapshot.get("sync", {})
    if sync:
        rows = [[engine, f"{m['sync_ops_dyn']:.0f}",
                 f"{m['insns_per_sync']:.2f}",
                 f"{m['sync_elisions_dyn']:.0f}"]
                for engine, m in sync.items()]
        sections.append(format_table(
            ["Engine", "Sync ops (dyn)", "Insns/sync", "Elisions (dyn)"],
            rows, title="coordination sites (Fig 8 trajectory)"))

    coverage = snapshot.get("coverage", {})
    if coverage:
        rows = [[engine, f"{100 * m['covered_fraction']:.1f}%"]
                for engine, m in coverage.items()]
        sections.append(format_table(
            ["Engine", "Rule coverage (dyn)"], rows,
            title="learned-rule dynamic coverage"))

    figures = snapshot.get("figures", {})
    if figures:
        rows = []
        for figure, payload in sorted(figures.items()):
            for key, value in sorted(payload.get("summary", {}).items()):
                rows.append([f"{figure}.{key}", f"{value:.4g}"])
        sections.append(format_table(
            ["Figure metric", "Value"], rows,
            title="per-figure summary scalars"))

    wallclock = snapshot.get("wallclock", {})
    for name, entry in wallclock.items():
        samples = entry.get("samples", [])
        if samples:
            mean = sum(samples) / len(samples)
            sections.append(f"wall-clock {name}: mean "
                            f"{1e6 * mean:.1f}us over {len(samples)} "
                            f"samples")
    return "\n\n".join(sections)
