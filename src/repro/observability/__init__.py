"""Observability: structured tracing, per-TB profiling, stat namespacing.

The subsystem has four pieces, all zero-cost when disabled:

- :mod:`~repro.observability.trace` — a ring-buffered :class:`Tracer`
  with named probe points threaded through the decoder, the rule
  translator, the coordination emitter, the softmmu slow path, helper
  entry, IRQ delivery, TB chaining and the robustness degradation
  ladder.  :data:`NULL_TRACER` is the disabled singleton every probe
  site checks first.
- :mod:`~repro.observability.profile` — a :class:`Profiler` that
  attributes dynamic host cost to individual TBs (split by the paper's
  accounting tags) plus per-guest-PC and per-rule aggregation, and the
  coordination-cost breakdown whose categories sum to ``host_cost``.
- :mod:`~repro.observability.export` — Chrome trace-event JSON
  (Perfetto-loadable) and machine-readable profile JSON exporters, plus
  the schema validator the CI smoke step runs.
- :mod:`~repro.observability.stats` — the namespaced
  ``Machine.stats()`` merge (``engine.`` / ``robust.`` / ``io.`` /
  ``trace.``) that makes silent key collisions impossible.

Continuous benchmarking (``repro bench``) builds on all four:

- :mod:`~repro.observability.bench` — the suite orchestrator that runs
  the paper experiments through the shared sweep cache and folds them
  into one trajectory snapshot.
- :mod:`~repro.observability.baseline` — the canonical snapshot format
  (``BENCH_<n>.json``), its schema validator, and the schema of the
  ``benchmarks/results/<name>.json`` payloads.
- :mod:`~repro.observability.regress` — the snapshot comparator:
  exact gating for deterministic cost-model metrics, bootstrap CIs for
  wall-clock samples, and Sec III category attribution of regressions.
"""

from .baseline import (iter_metrics, load_snapshot, next_snapshot_path,
                       validate_result_payload, validate_snapshot,
                       write_snapshot)
from .bench import (FULL_EXPERIMENTS, QUICK_EXPERIMENTS, TIER_ENGINES,
                    render_snapshot, run_suite)
from .export import (chrome_trace, validate_chrome_trace,
                     write_chrome_trace, write_profile_json)
from .profile import (COORDINATION_CATEGORIES, Profiler, build_profile,
                      coordination_breakdown, render_profile)
from .regress import (ComparisonReport, GATE_LEVELS,
                      IncomparableSnapshots, MetricVerdict,
                      bootstrap_ratio_ci, compare_snapshots)
from .stats import STAT_NAMESPACES, merge_stats, namespace_group
from .trace import (FLIGHT_RECORDER_EVENTS, NULL_TRACER, NullTracer,
                    TraceEvent, Tracer)

__all__ = [
    "COORDINATION_CATEGORIES", "ComparisonReport", "FLIGHT_RECORDER_EVENTS",
    "FULL_EXPERIMENTS", "GATE_LEVELS", "IncomparableSnapshots",
    "MetricVerdict", "NULL_TRACER", "NullTracer", "Profiler",
    "QUICK_EXPERIMENTS", "STAT_NAMESPACES", "TIER_ENGINES", "TraceEvent",
    "Tracer", "bootstrap_ratio_ci", "build_profile", "chrome_trace",
    "compare_snapshots", "coordination_breakdown", "iter_metrics",
    "load_snapshot", "merge_stats", "namespace_group",
    "next_snapshot_path", "render_profile", "render_snapshot",
    "run_suite", "validate_chrome_trace", "validate_result_payload",
    "validate_snapshot", "write_chrome_trace", "write_profile_json",
    "write_snapshot",
]
