"""Observability: structured tracing, per-TB profiling, stat namespacing.

The subsystem has four pieces, all zero-cost when disabled:

- :mod:`~repro.observability.trace` — a ring-buffered :class:`Tracer`
  with named probe points threaded through the decoder, the rule
  translator, the coordination emitter, the softmmu slow path, helper
  entry, IRQ delivery, TB chaining and the robustness degradation
  ladder.  :data:`NULL_TRACER` is the disabled singleton every probe
  site checks first.
- :mod:`~repro.observability.profile` — a :class:`Profiler` that
  attributes dynamic host cost to individual TBs (split by the paper's
  accounting tags) plus per-guest-PC and per-rule aggregation, and the
  coordination-cost breakdown whose categories sum to ``host_cost``.
- :mod:`~repro.observability.export` — Chrome trace-event JSON
  (Perfetto-loadable) and machine-readable profile JSON exporters, plus
  the schema validator the CI smoke step runs.
- :mod:`~repro.observability.stats` — the namespaced
  ``Machine.stats()`` merge (``engine.`` / ``robust.`` / ``io.`` /
  ``trace.``) that makes silent key collisions impossible.
"""

from .export import (chrome_trace, validate_chrome_trace,
                     write_chrome_trace, write_profile_json)
from .profile import (COORDINATION_CATEGORIES, Profiler, build_profile,
                      coordination_breakdown, render_profile)
from .stats import STAT_NAMESPACES, merge_stats, namespace_group
from .trace import (FLIGHT_RECORDER_EVENTS, NULL_TRACER, NullTracer,
                    TraceEvent, Tracer)

__all__ = [
    "COORDINATION_CATEGORIES", "FLIGHT_RECORDER_EVENTS", "NULL_TRACER",
    "NullTracer", "Profiler", "STAT_NAMESPACES", "TraceEvent", "Tracer",
    "build_profile", "chrome_trace", "coordination_breakdown",
    "merge_stats", "namespace_group", "render_profile",
    "validate_chrome_trace", "write_chrome_trace", "write_profile_json",
]
