"""Trace and profile exporters + the Chrome trace-event validator.

:func:`chrome_trace` converts a tracer's event ring into the Chrome
trace-event JSON format (the ``traceEvents`` array form), loadable in
Perfetto / ``chrome://tracing``.  The time axis is the modelled host
cost, mapped 1 cost unit -> 1 microsecond; each probe subsystem (the
``tb.`` / ``sync.`` / ``mmu.`` ... prefixes) gets its own named thread
row.  ``tb.enter`` events become ``"X"`` complete events whose duration
runs to the next TB entry, so the top row reads as a flame of block
executions; every other probe is an ``"I"`` instant event.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence

from .trace import TraceEvent

_PH_VALUES = ("X", "I", "M", "B", "E", "C")
_PID = 1


def _subsystem(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Build a Chrome trace-event JSON object from tracer events."""
    events = list(events)
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro system-level DBT"},
    }]

    def tid_for(subsystem: str) -> int:
        tid = tids.get(subsystem)
        if tid is None:
            tid = tids[subsystem] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": subsystem},
            })
        return tid

    enter_ts = [event.ts for event in events if event.name == "tb.enter"]
    last_ts = events[-1].ts if events else 0.0
    enter_index = 0
    for event in events:
        args = {"icount": event.icount}
        for key, value in event.args:
            args[key] = value if isinstance(value, (int, float, str, bool)) \
                else str(value)
        record: Dict[str, object] = {
            "name": event.name,
            "pid": _PID,
            "tid": tid_for(_subsystem(event.name)),
            "ts": float(event.ts),
            "args": args,
        }
        if event.name == "tb.enter":
            enter_index += 1
            end = enter_ts[enter_index] if enter_index < len(enter_ts) \
                else last_ts
            record["ph"] = "X"
            record["dur"] = max(float(end - event.ts), 1.0)
        else:
            record["ph"] = "I"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"timeUnit": "host-cost units as microseconds"}}


def validate_chrome_trace(obj: object) -> List[str]:
    """Validate an object against the Chrome trace-event schema.

    Returns a list of human-readable problems (empty = valid).  Checks
    the subset of the spec Perfetto's JSON importer requires: a
    ``traceEvents`` array whose entries have a string ``name``, a known
    ``ph`` phase, integer ``pid``/``tid``, a non-negative numeric ``ts``
    (metadata events may omit it) and, for ``"X"`` events, a
    non-negative numeric ``dur``.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing string 'name'")
        phase = event.get("ph")
        if phase not in _PH_VALUES:
            problems.append(f"{where}: bad phase {phase!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: '{field}' must be an integer")
        ts = event.get("ts")
        if phase != "M" or ts is not None:
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def _write_json(path: str, payload: object) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, default=str)
        handle.write("\n")
    return path


def write_chrome_trace(path: str,
                       events: Iterable[TraceEvent]) -> str:
    """Serialize tracer events as Chrome trace JSON; returns the path."""
    return _write_json(path, chrome_trace(list(events)))


def write_profile_json(path: str, profile: Dict[str, object]) -> str:
    """Serialize a :func:`build_profile` result; returns the path."""
    return _write_json(path, profile)
