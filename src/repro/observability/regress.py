"""Snapshot comparator: the ``repro bench --compare`` regression gate.

Deterministic cost-model metrics are gated *exactly* — the simulated
stack has no noise, so any drift is a real change in emitted code or
accounting.  Wall-clock translation samples (the only nondeterministic
section) get a tolerance band plus a bootstrap confidence interval on
the ratio of means, so a loaded CI runner cannot fail the gate on
jitter alone.

Every metric receives a verdict:

``improved`` / ``flat`` / ``regressed``
    Directional metrics (``up``/``down`` in :mod:`.baseline`).
``changed``
    Neutral metrics whose value moved (workload characteristics such as
    Table I percentages — deterministic, so a move means the guest-side
    behaviour changed, which is worth flagging but is not a slowdown).
``added`` / ``removed``
    Present on only one side (when both snapshots ran the same suite
    sections; sections a ``--quick`` run skips are ``skipped``).
``invalid``
    A non-finite or non-numeric value — data corruption fails the gate.

Regressions are *attributed*: the per-engine Sec III coordination
breakdowns of both snapshots are differenced, and the category whose
cost grew the most is named, so "the gate went red" always comes with
"because coordination-save cost went up", mirroring the paper's Fig 8
argument structure.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .baseline import NEUTRAL, iter_metrics

#: Relative drift tolerated on "exact" metrics (float-formatting head
#: room only; the cost model itself is bit-deterministic).
EXACT_EPSILON = 1e-9

#: Default relative tolerance band for wall-clock means.
WALLCLOCK_TOLERANCE = 0.25

#: Bootstrap resamples for the wall-clock confidence interval.
BOOTSTRAP_RESAMPLES = 1000
BOOTSTRAP_SEED = 0x5EC3

VERDICT_IMPROVED = "improved"
VERDICT_FLAT = "flat"
VERDICT_REGRESSED = "regressed"
VERDICT_CHANGED = "changed"
VERDICT_ADDED = "added"
VERDICT_REMOVED = "removed"
VERDICT_SKIPPED = "skipped"
VERDICT_INVALID = "invalid"

#: Which verdicts fail the gate at each ``--fail-on`` level.
GATE_LEVELS: Dict[str, Tuple[str, ...]] = {
    "never": (),
    "regressed": (VERDICT_REGRESSED, VERDICT_INVALID),
    "changed": (VERDICT_REGRESSED, VERDICT_INVALID, VERDICT_CHANGED,
                VERDICT_ADDED, VERDICT_REMOVED),
}


class IncomparableSnapshots(ValueError):
    """The two snapshots measured different things (usage error)."""


@dataclass
class MetricVerdict:
    metric: str
    verdict: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    direction: str = NEUTRAL
    rel_change: Optional[float] = None
    attribution: Optional[str] = None
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric, "verdict": self.verdict,
            "baseline": self.baseline, "current": self.current,
            "direction": self.direction, "rel_change": self.rel_change,
            "attribution": self.attribution, "note": self.note,
        }


@dataclass
class ComparisonReport:
    baseline_name: str
    current_name: str
    verdicts: List[MetricVerdict] = field(default_factory=list)
    #: Sec III category -> summed host-cost delta across engine tiers.
    category_deltas: Dict[str, float] = field(default_factory=dict)
    #: The category whose cost grew the most (None if nothing grew).
    top_category: Optional[str] = None
    gate_wallclock: bool = False

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.verdict] = counts.get(verdict.verdict, 0) + 1
        return counts

    def gating_verdicts(self, fail_on: str) -> List[MetricVerdict]:
        failing = GATE_LEVELS[fail_on]
        picked = [v for v in self.verdicts if v.verdict in failing]
        if not self.gate_wallclock:
            picked = [v for v in picked
                      if not v.metric.startswith("wallclock.")]
        return picked

    def exit_code(self, fail_on: str) -> int:
        return 1 if self.gating_verdicts(fail_on) else 0

    def to_json(self) -> str:
        return json.dumps({
            "baseline": self.baseline_name,
            "current": self.current_name,
            "counts": self.counts(),
            "category_deltas": self.category_deltas,
            "top_category": self.top_category,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }, indent=1, sort_keys=True)

    def render_table(self) -> str:
        from ..harness.report import format_table  # avoid a cycle

        interesting = [v for v in self.verdicts
                       if v.verdict != VERDICT_FLAT]
        rows = []
        for v in sorted(interesting,
                        key=lambda v: (v.verdict != VERDICT_REGRESSED,
                                       v.metric)):
            rows.append([
                v.metric, v.verdict,
                "-" if v.baseline is None else f"{v.baseline:.4g}",
                "-" if v.current is None else f"{v.current:.4g}",
                "-" if v.rel_change is None
                else f"{100 * v.rel_change:+.2f}%",
                v.attribution or v.note or "",
            ])
        counts = self.counts()
        summary = ", ".join(f"{count} {verdict}" for verdict, count
                            in sorted(counts.items()))
        sections = [format_table(
            ["Metric", "Verdict", "Baseline", "Current", "Delta",
             "Attribution"], rows,
            title=f"bench compare: {self.current_name} vs baseline "
                  f"{self.baseline_name} ({summary})")]
        if self.top_category is not None:
            deltas = ", ".join(
                f"{category}={delta:+.0f}" for category, delta in sorted(
                    self.category_deltas.items(), key=lambda kv: -kv[1])
                if delta)
            sections.append(
                f"cost moved in Sec III category '{self.top_category}' "
                f"({deltas})")
        elif not interesting:
            sections.append("no metric moved — snapshots are identical "
                            "up to wall-clock noise")
        return "\n\n".join(sections)


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def _rel_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None
    return (current - baseline) / abs(baseline)


def _exact_verdict(metric: str, baseline: Any, current: Any,
                   direction: str) -> MetricVerdict:
    if not _finite(baseline) or not _finite(current):
        return MetricVerdict(
            metric, VERDICT_INVALID,
            baseline if _finite(baseline) else None,
            current if _finite(current) else None, direction,
            note=f"non-finite value (baseline={baseline!r}, "
                 f"current={current!r})")
    rel = _rel_change(baseline, current)
    moved = abs(current - baseline) > EXACT_EPSILON * max(
        1.0, abs(baseline), abs(current))
    if not moved:
        return MetricVerdict(metric, VERDICT_FLAT, baseline, current,
                             direction, rel_change=0.0)
    if direction == NEUTRAL:
        return MetricVerdict(metric, VERDICT_CHANGED, baseline, current,
                             direction, rel_change=rel)
    got_bigger = current > baseline
    better = got_bigger == (direction == "up")
    return MetricVerdict(
        metric, VERDICT_IMPROVED if better else VERDICT_REGRESSED,
        baseline, current, direction, rel_change=rel)


# ---------------------------------------------------------------------------
# Wall-clock statistics.
# ---------------------------------------------------------------------------


def bootstrap_ratio_ci(baseline: Sequence[float], current: Sequence[float],
                       resamples: int = BOOTSTRAP_RESAMPLES,
                       confidence: float = 0.95,
                       seed: int = BOOTSTRAP_SEED) -> Tuple[float, float]:
    """Bootstrap CI for ``mean(current) / mean(baseline)``.

    Deterministic (fixed seed) so a compare is reproducible.
    """
    rng = random.Random(seed)
    ratios = []
    for _ in range(resamples):
        b = [baseline[rng.randrange(len(baseline))]
             for _ in range(len(baseline))]
        c = [current[rng.randrange(len(current))]
             for _ in range(len(current))]
        mean_b = sum(b) / len(b)
        if mean_b <= 0:
            continue
        ratios.append((sum(c) / len(c)) / mean_b)
    if not ratios:
        return (math.inf, math.inf)
    ratios.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = ratios[int(alpha * (len(ratios) - 1))]
    hi = ratios[int((1.0 - alpha) * (len(ratios) - 1))]
    return (lo, hi)


def _wallclock_verdict(name: str, base_entry: Any, cur_entry: Any,
                       tolerance: float) -> MetricVerdict:
    metric = f"wallclock.{name}.mean"
    base_samples = (base_entry or {}).get("samples") or []
    cur_samples = (cur_entry or {}).get("samples") or []
    if not base_samples or not cur_samples:
        return MetricVerdict(metric, VERDICT_INVALID,
                             note="missing wall-clock samples")
    mean_b = sum(base_samples) / len(base_samples)
    mean_c = sum(cur_samples) / len(cur_samples)
    lo, hi = bootstrap_ratio_ci(base_samples, cur_samples)
    rel = _rel_change(mean_b, mean_c)
    # Regressed only when the whole confidence interval sits above the
    # tolerance band (and mirrored for improvements): point noise or a
    # wide CI stays flat.
    if lo > 1.0 + tolerance:
        verdict = VERDICT_REGRESSED
    elif hi < 1.0 - tolerance:
        verdict = VERDICT_IMPROVED
    else:
        verdict = VERDICT_FLAT
    return MetricVerdict(
        metric, verdict, mean_b, mean_c, "down", rel_change=rel,
        attribution="host-wallclock" if verdict == VERDICT_REGRESSED
        else None,
        note=f"95% CI of mean ratio [{lo:.3f}, {hi:.3f}], "
             f"band ±{tolerance:.0%}")


# ---------------------------------------------------------------------------
# Attribution.
# ---------------------------------------------------------------------------


def _category_deltas(base: Dict[str, Any],
                     cur: Dict[str, Any]) -> Dict[str, float]:
    """Summed per-category host-cost delta across shared engine tiers."""
    deltas: Dict[str, float] = {}
    base_coord = base.get("coordination", {})
    cur_coord = cur.get("coordination", {})
    for engine in set(base_coord) & set(cur_coord):
        base_breakdown = base_coord[engine]
        cur_breakdown = cur_coord[engine]
        for category in set(base_breakdown) | set(cur_breakdown):
            if category == "total":
                continue
            delta = cur_breakdown.get(category, 0.0) - \
                base_breakdown.get(category, 0.0)
            deltas[category] = deltas.get(category, 0.0) + delta
    return deltas


def _attribution_for(metric: str, top_category: Optional[str]) -> \
        Optional[str]:
    if metric.startswith("coordination."):
        return metric.rsplit(".", 1)[1]
    return top_category


# ---------------------------------------------------------------------------
# The comparator.
# ---------------------------------------------------------------------------

# ``inject`` is deliberately NOT a comparability key: comparing an
# injected run against a clean baseline is the regression-simulator
# use case (``--inject seed=1,extra-sync=0.5 --compare BENCH_0.json``).
_COMPARABILITY_KEYS = ("sweep_workloads", "engines")


def check_comparable(base: Dict[str, Any], cur: Dict[str, Any]) -> None:
    """Raise :class:`IncomparableSnapshots` when the snapshots measured
    different (workload, engine) universes — exact gating would be
    meaningless noise."""
    base_fp = base.get("fingerprint", {})
    cur_fp = cur.get("fingerprint", {})
    for key in _COMPARABILITY_KEYS:
        if base_fp.get(key) != cur_fp.get(key):
            raise IncomparableSnapshots(
                f"snapshots are not comparable: fingerprint.{key} "
                f"differs ({base_fp.get(key)!r} vs {cur_fp.get(key)!r}) "
                f"— bless a new baseline instead of comparing")


def compare_snapshots(base: Dict[str, Any], cur: Dict[str, Any],
                      wallclock_tolerance: float = WALLCLOCK_TOLERANCE,
                      gate_wallclock: bool = False) -> ComparisonReport:
    """Compare *cur* against the *base* baseline snapshot."""
    check_comparable(base, cur)
    report = ComparisonReport(
        baseline_name=str(base.get("name", "?")),
        current_name=str(cur.get("name", "?")),
        gate_wallclock=gate_wallclock)
    report.category_deltas = _category_deltas(base, cur)
    growing = [(delta, category) for category, delta
               in report.category_deltas.items() if delta > 0]
    report.top_category = max(growing)[1] if growing else None

    base_metrics = {metric: (value, direction)
                    for metric, value, direction in iter_metrics(base)}
    cur_metrics = {metric: (value, direction)
                   for metric, value, direction in iter_metrics(cur)}
    # A --quick run omits whole suite sections the full baseline has;
    # those are skipped, not "removed" — removal only means something
    # when both snapshots ran the same sections.
    base_sections = set((base.get("fingerprint", {})
                         .get("experiments")) or ())
    cur_sections = set((cur.get("fingerprint", {})
                        .get("experiments")) or ())

    for metric in sorted(set(base_metrics) | set(cur_metrics)):
        if metric in base_metrics and metric in cur_metrics:
            (base_value, direction) = base_metrics[metric]
            (cur_value, _) = cur_metrics[metric]
            verdict = _exact_verdict(metric, base_value, cur_value,
                                     direction)
        elif metric in base_metrics:
            value, direction = base_metrics[metric]
            figure = metric.split(".")[1] if metric.startswith(
                "figures.") else None
            if figure is not None and figure in base_sections and \
                    figure not in cur_sections:
                verdict = MetricVerdict(
                    metric, VERDICT_SKIPPED, baseline=value,
                    direction=direction,
                    note="section not run in current mode")
            else:
                verdict = MetricVerdict(
                    metric, VERDICT_REMOVED, baseline=value,
                    direction=direction,
                    note="metric present in baseline only")
        else:
            value, direction = cur_metrics[metric]
            verdict = MetricVerdict(
                metric, VERDICT_ADDED, current=value,
                direction=direction,
                note="metric absent from baseline — bless a new one "
                     "to start tracking it")
        report.verdicts.append(verdict)

    for name in sorted(set(base.get("wallclock", {})) |
                       set(cur.get("wallclock", {}))):
        base_entry = base.get("wallclock", {}).get(name)
        cur_entry = cur.get("wallclock", {}).get(name)
        report.verdicts.append(_wallclock_verdict(
            name, base_entry, cur_entry, wallclock_tolerance))

    top = report.top_category
    for verdict in report.verdicts:
        if verdict.verdict == VERDICT_REGRESSED and \
                verdict.attribution is None:
            verdict.attribution = _attribution_for(verdict.metric, top)
    return report
