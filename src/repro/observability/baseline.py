"""Canonical benchmark-snapshot format (``BENCH_<n>.json``).

A *snapshot* is one point on the reproduction's benchmark trajectory:
the per-figure metric rows and summaries, per-engine-tier host-cost
totals, the profiler's coordination breakdown folded to the paper's
Sec III categories, dynamic rule coverage, wall-clock translation
samples, and an environment/configuration fingerprint.  Snapshots are
written to the repo root as ``BENCH_0.json``, ``BENCH_1.json``, ... and
compared by :mod:`repro.observability.regress`; the committed
``BENCH_0.json`` is the regression-gate baseline CI compares against.

Everything in a snapshot except the ``wallclock`` section is produced
by the deterministic cost model, so two snapshots of the same tree must
match *exactly*; the comparator gates them with equality, and only the
wall-clock samples get tolerance bands and bootstrap CIs.

This module also owns the schema of the per-benchmark result payloads
``benchmarks/results/<name>.json`` (written by ``benchmarks/conftest``
and by the ``repro bench`` orchestrator), so a benchmark can no longer
silently persist an empty or non-numeric document.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple

SCHEMA = "repro-bench-snapshot"
SCHEMA_VERSION = 1

#: Snapshot filename stem at the repo root.
SNAPSHOT_STEM = "BENCH_"

#: Metric direction: is a larger value better, worse, or neither?
UP, DOWN, NEUTRAL = "up", "down", "neutral"

#: Gate semantics of each figure-summary scalar.  ``*`` is the figure's
#: default; anything not listed is ``neutral`` (a change is reported but
#: only gated under ``--fail-on changed``).
SUMMARY_DIRECTIONS: Dict[str, Dict[str, str]] = {
    "table1": {"*": NEUTRAL},
    "fig8": {"parsed_insns_per_sync": DOWN, "packed_insns_per_sync": DOWN,
             "saving_pct": UP},
    "fig14": {"*": UP},
    "fig15": {"qemu": NEUTRAL, "rules_full": DOWN, "reduction_pct": UP},
    "fig16": {"*": UP},
    "fig17": {"*": DOWN},
    "fig18": {"qemu_geomean": NEUTRAL, "rules_geomean": DOWN},
    "fig19": {"*": UP},
    "coordination": {"sites_pct": NEUTRAL, "base_coordination_pct": DOWN,
                     "full_coordination_pct": DOWN},
    "footnote3": {"*": UP},
    "ablation": {"*": UP},
}

#: Per-engine-tier total directions (``tiers.<engine>.<key>``).
TIER_DIRECTIONS = {
    "host_cost": DOWN,
    "host_instructions": DOWN,
    "runtime": DOWN,
    "io_cost": NEUTRAL,
    "guest_icount": NEUTRAL,   # guest work is deterministic: any change
                               # is a behavioural change, not a speedup
    "translation_cost": DOWN,
}

#: ``sync.<engine>.<key>`` directions (the Fig 8 / Fig 17 site counters).
SYNC_DIRECTIONS = {
    "sync_ops_dyn": DOWN,
    "sync_insns_weighted": DOWN,
    "insns_per_sync": DOWN,
    "sync_elisions_dyn": UP,
    "interrupt_checks_dyn": DOWN,
}

#: ``coverage.<engine>.<key>`` directions (learned-rule coverage).
COVERAGE_DIRECTIONS = {
    "covered_fraction": UP,
    "covered_insns_dyn": UP,
    "uncovered_insns_dyn": DOWN,
}


def _is_finite_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


# ---------------------------------------------------------------------------
# Per-benchmark result payloads (benchmarks/results/<name>.json).
# ---------------------------------------------------------------------------

_ROW_SCALARS = (str, int, float, bool)


def validate_result_payload(payload: Any) -> List[str]:
    """Schema-check one ``benchmarks/results/<name>.json`` document.

    Returns human-readable problems (empty = valid): a string ``name``,
    ``rows`` as a list of flat dicts with scalar values, and a
    ``summary`` dict of finite numbers with at least one entry — an
    all-empty payload is exactly the silent failure mode this guards
    against.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append("missing string 'name'")
    rows = payload.get("rows")
    if not isinstance(rows, list):
        problems.append("'rows' must be a list")
        rows = []
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"rows[{index}]: not an object")
            continue
        for key, value in row.items():
            if not isinstance(value, _ROW_SCALARS) or (
                    isinstance(value, float) and not math.isfinite(value)):
                problems.append(f"rows[{index}].{key}: non-scalar or "
                                f"non-finite value {value!r}")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("'summary' must be an object")
        summary = {}
    for key, value in summary.items():
        if not _is_finite_number(value):
            problems.append(f"summary.{key}: not a finite number "
                            f"({value!r})")
    if not summary and not rows:
        problems.append("both 'rows' and 'summary' are empty — pass an "
                        "ExperimentResult or an explicit summary=")
    return problems


# ---------------------------------------------------------------------------
# Snapshot construction helpers.
# ---------------------------------------------------------------------------


def fingerprint(mode: str, sweep_workloads: Tuple[str, ...],
                engines: Tuple[str, ...], experiments: Tuple[str, ...],
                rulebook: str = "mature",
                inject: Optional[str] = None) -> Dict[str, Any]:
    """The snapshot's environment/configuration identity.

    The deterministic keys (``sweep_workloads``/``engines``/``inject``)
    decide whether two snapshots are comparable at all; the rest
    (python/platform) is informational.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "platform": sys.platform,
        "sweep_workloads": list(sweep_workloads),
        "engines": list(engines),
        "experiments": list(experiments),
        "rulebook": rulebook,
        "inject": inject,
    }


def next_snapshot_path(directory: str = ".") -> str:
    """First free ``BENCH_<n>.json`` path under *directory*."""
    n = 0
    while os.path.exists(os.path.join(directory,
                                      f"{SNAPSHOT_STEM}{n}.json")):
        n += 1
    return os.path.join(directory, f"{SNAPSHOT_STEM}{n}.json")


def write_snapshot(path: str, snapshot: Dict[str, Any]) -> str:
    """Validate and serialize *snapshot*; raises ``ValueError`` on a
    schema violation so an invalid trajectory point is never committed."""
    problems = validate_snapshot(snapshot)
    if problems:
        raise ValueError("refusing to write schema-invalid snapshot: " +
                         "; ".join(problems))
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read and validate a snapshot; raises ``ValueError`` on problems."""
    with open(path) as handle:
        snapshot = json.load(handle)
    problems = validate_snapshot(snapshot)
    if problems:
        raise ValueError(f"{path}: invalid snapshot: " +
                         "; ".join(problems))
    return snapshot


# ---------------------------------------------------------------------------
# Snapshot validation.
# ---------------------------------------------------------------------------


def validate_snapshot(snapshot: Any) -> List[str]:
    """Schema-check a snapshot; returns problems (empty = valid).

    Beyond structure this enforces the accounting invariant the whole
    Sec III attribution rests on: for every engine tier, the
    coordination-category costs sum *exactly* to that tier's total
    ``host_cost``.
    """
    if not isinstance(snapshot, dict):
        return [f"snapshot must be an object, got "
                f"{type(snapshot).__name__}"]
    problems: List[str] = []
    if snapshot.get("schema") != SCHEMA:
        problems.append(f"'schema' must be {SCHEMA!r}")
    if snapshot.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"'schema_version' must be {SCHEMA_VERSION}")
    figures = snapshot.get("figures")
    if not isinstance(figures, dict):
        problems.append("'figures' must be an object")
        figures = {}
    for name, payload in figures.items():
        for problem in validate_result_payload(
                {"name": name, **payload} if isinstance(payload, dict)
                else payload):
            problems.append(f"figures.{name}: {problem}")
    tiers = snapshot.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        problems.append("'tiers' must be a non-empty object")
        tiers = {}
    for engine, totals in tiers.items():
        if not isinstance(totals, dict):
            problems.append(f"tiers.{engine}: not an object")
            continue
        for key, value in totals.items():
            if not _is_finite_number(value):
                problems.append(f"tiers.{engine}.{key}: not a finite "
                                f"number ({value!r})")
    coordination = snapshot.get("coordination")
    if not isinstance(coordination, dict):
        problems.append("'coordination' must be an object")
        coordination = {}
    for engine, breakdown in coordination.items():
        if not isinstance(breakdown, dict):
            problems.append(f"coordination.{engine}: not an object")
            continue
        bad = [key for key, value in breakdown.items()
               if not _is_finite_number(value)]
        if bad:
            problems.append(f"coordination.{engine}: non-finite "
                            f"categories {bad}")
            continue
        total = breakdown.get("total")
        if total is None:
            problems.append(f"coordination.{engine}: missing 'total'")
            continue
        category_sum = sum(value for key, value in breakdown.items()
                           if key != "total")
        if abs(category_sum - total) > 1e-6 * max(1.0, abs(total)):
            problems.append(
                f"coordination.{engine}: categories sum to "
                f"{category_sum} but total is {total}")
        host_cost = (tiers.get(engine) or {}).get("host_cost") \
            if isinstance(tiers.get(engine), dict) else None
        if _is_finite_number(host_cost) and \
                abs(total - host_cost) > 1e-6 * max(1.0, abs(host_cost)):
            problems.append(
                f"coordination.{engine}: total {total} != "
                f"tiers.{engine}.host_cost {host_cost}")
    for section in ("sync", "coverage"):
        table = snapshot.get(section, {})
        if not isinstance(table, dict):
            problems.append(f"'{section}' must be an object")
            continue
        for engine, metrics in table.items():
            if not isinstance(metrics, dict):
                problems.append(f"{section}.{engine}: not an object")
                continue
            for key, value in metrics.items():
                if not _is_finite_number(value):
                    problems.append(f"{section}.{engine}.{key}: not a "
                                    f"finite number ({value!r})")
    wallclock = snapshot.get("wallclock", {})
    if not isinstance(wallclock, dict):
        problems.append("'wallclock' must be an object")
        wallclock = {}
    for name, entry in wallclock.items():
        samples = entry.get("samples") if isinstance(entry, dict) else None
        if not isinstance(samples, list) or not samples or \
                not all(_is_finite_number(s) and s > 0 for s in samples):
            problems.append(f"wallclock.{name}: 'samples' must be a "
                            f"non-empty list of positive numbers")
    if not isinstance(snapshot.get("fingerprint"), dict):
        problems.append("'fingerprint' must be an object")
    return problems


# ---------------------------------------------------------------------------
# Metric enumeration (the comparator's view of a snapshot).
# ---------------------------------------------------------------------------


def summary_direction(figure: str, key: str) -> str:
    table = SUMMARY_DIRECTIONS.get(figure, {})
    return table.get(key, table.get("*", NEUTRAL))


def iter_metrics(snapshot: Dict[str, Any]) -> Iterator[
        Tuple[str, Any, str]]:
    """Yield ``(metric_id, value, direction)`` for every gated scalar.

    Metric ids are dotted paths (``figures.fig8.summary.saving_pct``,
    ``tiers.rules-full.host_cost``, ``coordination.rules-full.sync``),
    stable across snapshots so the comparator can align them.  Figure
    *rows* and the wall-clock samples are deliberately not enumerated:
    rows are informational detail, and wall-clock data needs the
    statistical treatment in :mod:`.regress`.
    """
    for figure, payload in sorted(snapshot.get("figures", {}).items()):
        summary = payload.get("summary", {}) \
            if isinstance(payload, dict) else {}
        for key, value in sorted(summary.items()):
            yield (f"figures.{figure}.summary.{key}", value,
                   summary_direction(figure, key))
    for engine, totals in sorted(snapshot.get("tiers", {}).items()):
        if not isinstance(totals, dict):
            continue
        for key, value in sorted(totals.items()):
            yield (f"tiers.{engine}.{key}", value,
                   TIER_DIRECTIONS.get(key, NEUTRAL))
    for engine, breakdown in sorted(snapshot.get("coordination",
                                                 {}).items()):
        if not isinstance(breakdown, dict):
            continue
        for key, value in sorted(breakdown.items()):
            yield (f"coordination.{engine}.{key}", value, DOWN)
    for engine, metrics in sorted(snapshot.get("sync", {}).items()):
        if not isinstance(metrics, dict):
            continue
        for key, value in sorted(metrics.items()):
            yield (f"sync.{engine}.{key}", value,
                   SYNC_DIRECTIONS.get(key, NEUTRAL))
    for engine, metrics in sorted(snapshot.get("coverage", {}).items()):
        if not isinstance(metrics, dict):
            continue
        for key, value in sorted(metrics.items()):
            yield (f"coverage.{engine}.{key}", value,
                   COVERAGE_DIRECTIONS.get(key, NEUTRAL))
