"""Structured tracing: ring-buffered probe events with cost timestamps.

Probe points throughout the translator/runtime call
``tracer.emit(name, **args)`` guarded by ``if tracer.enabled:``.  The
disabled path is the :data:`NULL_TRACER` singleton whose ``enabled``
attribute is ``False``, so a probe site costs one attribute load and a
branch — it never allocates, never charges modelled host cost, and
leaves every cost counter bit-identical to a build without probes.

Timestamps are the machine's two monotonic clocks: the modelled host
cost (``host.cost``, the paper's dynamic host-instruction metric) and
the guest instruction count.  Both are deterministic, so traces from
the same workload/seed are reproducible byte-for-byte.

Event name convention is ``<subsystem>.<action>`` — e.g. ``tb.enter``,
``sync.save``, ``mmu.slowpath``, ``ladder.demote``.  The full probe
catalogue is documented in ``docs/internals.md``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, NamedTuple, Tuple

#: How many trailing events the flight recorder attaches to a
#: ``ReproError`` diagnostic context (see ``Machine.diag_context``).
FLIGHT_RECORDER_EVENTS = 32

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_CAPACITY = 65536


class TraceEvent(NamedTuple):
    """One probe firing.

    ``ts`` is the modelled host cost at emit time (the trace's time
    axis), ``icount`` the guest instruction count, ``name`` the probe
    name and ``args`` a tuple of ``(key, value)`` pairs.
    """

    ts: float
    icount: int
    name: str
    args: Tuple[Tuple[str, object], ...]

    def arg(self, key: str, default=None):
        for name, value in self.args:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        rendered = " ".join(f"{key}={value}" for key, value in self.args)
        return (f"[cost={self.ts:.0f} ic={self.icount}] "
                f"{self.name} {rendered}".rstrip())


class NullTracer:
    """The disabled tracer.  ``enabled`` is False; everything is a no-op.

    Probe sites must check ``tracer.enabled`` before building event
    arguments, so with the null tracer no argument dict is ever
    constructed.  The no-op methods exist only as a safety net for
    unguarded calls.
    """

    enabled = False

    def emit(self, name: str, **args) -> None:  # pragma: no cover - guard
        pass

    def events(self) -> Tuple[TraceEvent, ...]:
        return ()

    def tail(self, count: int = FLIGHT_RECORDER_EVENTS) \
            -> Tuple[TraceEvent, ...]:
        return ()

    def stats(self) -> Dict[str, float]:
        return {}


#: Shared disabled singleton — the default ``Machine.tracer``.
NULL_TRACER = NullTracer()


class Tracer:
    """Ring-buffered structured tracer.

    The buffer is a bounded deque: when full, the oldest events are
    dropped (counted in ``dropped``) so long runs keep the most recent
    window — the behaviour a flight recorder wants.  ``set_clock`` binds
    the owning machine's ``(host_cost, guest_icount)`` sampler; until a
    machine adopts the tracer, events are stamped at time zero.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0
        self._clock: Callable[[], Tuple[float, int]] = lambda: (0.0, 0)

    def set_clock(self, clock: Callable[[], Tuple[float, int]]) -> None:
        self._clock = clock

    def emit(self, name: str, **args) -> None:
        ts, icount = self._clock()
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        self._ring.append(TraceEvent(ts, icount, name,
                                     tuple(args.items())))

    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._ring)

    def tail(self, count: int = FLIGHT_RECORDER_EVENTS) \
            -> Tuple[TraceEvent, ...]:
        if count <= 0:
            return ()
        return tuple(self._ring)[-count:]

    def counts_by_name(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def stats(self) -> Dict[str, float]:
        return {
            "events": float(self.emitted),
            "dropped": float(self.dropped),
            "buffered": float(len(self._ring)),
        }


def render_events(events: Iterable[TraceEvent]) -> List[str]:
    """Human-readable lines for a slice of trace events."""
    return [str(event) for event in events]
