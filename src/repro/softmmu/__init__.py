"""Softmmu: physical memory map, TLB, page walker, guest bus."""

from .bus import GuestBus
from .memory import PhysicalMemoryMap, RamRegion
from .pagetable import (PAGE_MASK, PAGE_SIZE, PageWalker, Translation,
                        PERM_EXEC, PERM_READ, PERM_USER, PERM_WRITE)
from .tlb import (ACCESS_CODE, ACCESS_READ, ACCESS_WRITE, MMU_IDX_KERNEL,
                  MMU_IDX_USER, SoftTlb)

__all__ = [
    "ACCESS_CODE", "ACCESS_READ", "ACCESS_WRITE", "GuestBus",
    "MMU_IDX_KERNEL", "MMU_IDX_USER", "PAGE_MASK", "PAGE_SIZE",
    "PERM_EXEC", "PERM_READ", "PERM_USER", "PERM_WRITE",
    "PageWalker", "PhysicalMemoryMap", "RamRegion", "SoftTlb", "Translation",
]
