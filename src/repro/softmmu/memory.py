"""Guest physical memory: RAM regions and MMIO dispatch.

The machine owns one :class:`PhysicalMemoryMap`; both execution engines and
the DMA-capable devices access guest physical memory through it.  RAM is a
plain ``bytearray`` (little-endian, byte-addressed); device regions forward
to the device model's ``mmio_read``/``mmio_write``.
"""

from __future__ import annotations

from typing import List

from ..common.bitops import u32
from ..common.errors import BusError


class RamRegion:
    """A block of guest RAM at a fixed physical base address."""

    def __init__(self, base: int, size: int, name: str = "ram"):
        self.base = base
        self.size = size
        self.name = name
        self.data = bytearray(size)
        self.is_ram = True

    def read(self, offset: int, size: int) -> int:
        return int.from_bytes(self.data[offset:offset + size], "little")

    def write(self, offset: int, size: int, value: int) -> None:
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")


class MmioRegion:
    """A device-backed region; accesses call into the device model."""

    def __init__(self, base: int, size: int, device, name: str):
        self.base = base
        self.size = size
        self.device = device
        self.name = name
        self.is_ram = False

    def read(self, offset: int, size: int) -> int:
        return u32(self.device.mmio_read(offset, size))

    def write(self, offset: int, size: int, value: int) -> None:
        self.device.mmio_write(offset, size, value)


class PhysicalMemoryMap:
    """The guest physical address space: sorted, non-overlapping regions."""

    def __init__(self):
        self._regions: List = []

    def add_ram(self, base: int, size: int, name: str = "ram") -> RamRegion:
        region = RamRegion(base, size, name)
        self._insert(region)
        return region

    def add_device(self, base: int, size: int, device, name: str) -> None:
        self._insert(MmioRegion(base, size, device, name))

    def _insert(self, region) -> None:
        for existing in self._regions:
            if (region.base < existing.base + existing.size and
                    existing.base < region.base + region.size):
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)

    def find(self, paddr: int):
        """Return the region containing *paddr*, or None."""
        for region in self._regions:
            if region.base <= paddr < region.base + region.size:
                return region
        return None

    def region_for(self, paddr: int):
        region = self.find(paddr)
        if region is None:
            raise BusError(paddr)
        return region

    # -- scalar access -------------------------------------------------------

    def read(self, paddr: int, size: int) -> int:
        region = self.region_for(paddr)
        return region.read(paddr - region.base, size)

    def write(self, paddr: int, size: int, value: int) -> None:
        region = self.region_for(paddr)
        region.write(paddr - region.base, size, value)

    # -- bulk access (program loading, DMA) -----------------------------------

    def read_bytes(self, paddr: int, length: int) -> bytes:
        region = self.region_for(paddr)
        if not region.is_ram:
            raise BusError(paddr)
        offset = paddr - region.base
        return bytes(region.data[offset:offset + length])

    def write_bytes(self, paddr: int, data: bytes) -> None:
        region = self.region_for(paddr)
        if not region.is_ram:
            raise BusError(paddr)
        offset = paddr - region.base
        region.data[offset:offset + len(data)] = data

    def load_program(self, program) -> None:
        """Copy an assembled :class:`~repro.guest.asm.Program` into RAM."""
        self.write_bytes(program.base, bytes(program.data))
