"""ARMv7 short-descriptor page-table walker (sections + small pages).

This is the softmmu *slow path*: it is invoked by the TLB-miss helper of
both DBT engines and directly by the reference interpreter's bus.  The
format is the ARMv7-A short-descriptor subset the mini-kernel emits:

Level 1 (16 KiB at TTBR0, 4096 word entries, one per MiB):
  bits[1:0] == 0b10 : 1 MiB section; base = entry[31:20], AP = entry[11:10]
  bits[1:0] == 0b01 : page-table pointer; L2 base = entry[31:10]
  bits[1:0] == 0b00 : translation fault

Level 2 (1 KiB, 256 word entries, one per 4 KiB page):
  bits[1:0] == 0b10 : 4 KiB small page; base = entry[31:12], AP = entry[5:4]
  bits[1:0] == 0b00 : translation fault

AP encoding (simplified AP[1:0]): 0b01 = privileged read/write only,
0b10 = privileged RW + user read-only, 0b11 = read/write for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = ~(PAGE_SIZE - 1) & 0xFFFFFFFF

SECTION_SHIFT = 20
SECTION_SIZE = 1 << SECTION_SHIFT

# Permission bits used throughout the softmmu.
PERM_READ = 1
PERM_WRITE = 2
PERM_EXEC = 4
PERM_USER = 8


@dataclass
class Translation:
    """Result of a successful page walk (page-aligned)."""

    vaddr_page: int
    paddr_page: int
    perms: int


def _ap_to_perms(ap: int) -> int:
    """Map the AP[1:0] field to our permission bits."""
    if ap == 0b01:
        return PERM_READ | PERM_WRITE | PERM_EXEC
    if ap == 0b10:
        return PERM_READ | PERM_WRITE | PERM_EXEC | PERM_USER
    if ap == 0b11:
        return PERM_READ | PERM_WRITE | PERM_EXEC | PERM_USER
    return 0


class PageWalker:
    """Walks guest page tables held in guest physical memory."""

    def __init__(self, physical_memory):
        self.memory = physical_memory
        self.walk_count = 0  # statistics: number of slow-path walks

    def walk(self, ttbr0: int, vaddr: int, is_write: bool,
             is_user: bool) -> Translation:
        """Translate *vaddr*; raises :class:`MemoryFault` on any fault."""
        self.walk_count += 1
        l1_index = vaddr >> SECTION_SHIFT
        l1_entry = self.memory.read((ttbr0 & ~0x3FFF) + l1_index * 4, 4)
        descriptor_type = l1_entry & 0b11

        if descriptor_type == 0b10:  # 1 MiB section
            perms = _ap_to_perms((l1_entry >> 10) & 0b11)
            self._check(perms, vaddr, is_write, is_user)
            base = l1_entry & 0xFFF00000
            paddr_page = base | (vaddr & 0x000FF000)
            return Translation(vaddr & PAGE_MASK, paddr_page, perms)

        if descriptor_type == 0b01:  # points to an L2 table
            l2_base = l1_entry & 0xFFFFFC00
            l2_index = (vaddr >> PAGE_SHIFT) & 0xFF
            l2_entry = self.memory.read(l2_base + l2_index * 4, 4)
            if l2_entry & 0b10 == 0:
                raise MemoryFault(vaddr, is_write, "translation")
            perms = _ap_to_perms((l2_entry >> 4) & 0b11)
            self._check(perms, vaddr, is_write, is_user)
            return Translation(vaddr & PAGE_MASK, l2_entry & 0xFFFFF000,
                               perms)

        raise MemoryFault(vaddr, is_write, "translation")

    @staticmethod
    def _check(perms: int, vaddr: int, is_write: bool, is_user: bool) -> None:
        if perms == 0:
            raise MemoryFault(vaddr, is_write, "translation")
        if is_user and not perms & PERM_USER:
            raise MemoryFault(vaddr, is_write, "permission")
        if is_write and not perms & PERM_WRITE:
            raise MemoryFault(vaddr, is_write, "permission")
