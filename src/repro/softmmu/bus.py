"""The guest bus: virtual-address accesses with MMU + TLB + physical map.

This object implements the access path used by the reference interpreter
and by the DBT slow-path helpers: TLB lookup, page walk on miss, TLB
refill for RAM pages, direct dispatch for MMIO pages.
"""

from __future__ import annotations

from ..common.errors import BusError, MemoryFault
from ..guest.cpu import GuestCpu, MODE_USR
from .pagetable import PAGE_SIZE, PageWalker
from .tlb import (ACCESS_CODE, ACCESS_READ, ACCESS_WRITE, MMU_IDX_KERNEL,
                  MMU_IDX_USER, SoftTlb)


class GuestBus:
    """Virtual-address load/store/fetch path for one guest CPU."""

    def __init__(self, cpu: GuestCpu, memory, tlb: SoftTlb):
        self.cpu = cpu
        self.memory = memory
        self.tlb = tlb
        self.walker = PageWalker(memory)

    # -- translation -----------------------------------------------------------

    def mmu_index(self) -> int:
        return MMU_IDX_USER if self.cpu.mode == MODE_USR else MMU_IDX_KERNEL

    def translate(self, vaddr: int, access: int) -> int:
        """Translate a guest virtual address to a guest physical address."""
        if not self.cpu.cp15.mmu_enabled:
            return vaddr
        mmu_idx = self.mmu_index()
        paddr = self.tlb.lookup(mmu_idx, vaddr, access)
        if paddr is not None:
            return paddr
        translation = self.walker.walk(self.cpu.cp15.ttbr0, vaddr,
                                       access == ACCESS_WRITE,
                                       mmu_idx == MMU_IDX_USER)
        paddr_page = translation.paddr_page
        region = self.memory.find(paddr_page)
        if region is not None and region.is_ram:
            self.tlb.fill(mmu_idx, translation)
        return paddr_page | (vaddr & (PAGE_SIZE - 1))

    # -- access ---------------------------------------------------------------

    def _crosses_page(self, vaddr: int, size: int) -> bool:
        return (vaddr & (PAGE_SIZE - 1)) + size > PAGE_SIZE

    def load(self, vaddr: int, size: int) -> int:
        if self._crosses_page(vaddr, size):
            value = 0
            for i in range(size):
                value |= self.load(vaddr + i, 1) << (8 * i)
            return value
        paddr = self.translate(vaddr, ACCESS_READ)
        try:
            return self.memory.read(paddr, size)
        except BusError:
            raise MemoryFault(vaddr, False, "bus") from None

    def store(self, vaddr: int, size: int, value: int) -> None:
        if self._crosses_page(vaddr, size):
            for i in range(size):
                self.store(vaddr + i, 1, (value >> (8 * i)) & 0xFF)
            return
        paddr = self.translate(vaddr, ACCESS_WRITE)
        try:
            self.memory.write(paddr, size, value)
        except BusError:
            raise MemoryFault(vaddr, True, "bus") from None

    def fetch(self, vaddr: int) -> int:
        paddr = self.translate(vaddr, ACCESS_CODE)
        try:
            return self.memory.read(paddr, 4)
        except BusError:
            raise MemoryFault(vaddr, False, "bus") from None

    def tlb_flush(self) -> None:
        self.tlb.flush()
