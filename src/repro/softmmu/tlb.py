"""Software TLB shared by all execution engines.

The TLB is stored *packed in a bytearray* because the DBT engines' generated
host code performs the TLB fast path with ordinary host loads/compares
against this memory (the machine maps it into the host address space at
``TLB_BASE``).  The Python-side API here is used by the reference
interpreter and by the slow-path refill helper.

Layout (QEMU-style): ``NUM_MMU_IDX`` direct-mapped tables of ``SIZE``
16-byte entries::

    +0   addr_read  : vaddr page if readable, else INVALID
    +4   addr_write : vaddr page if writable, else INVALID
    +8   addr_code  : vaddr page if executable, else INVALID
    +12  addend     : host_address_of_page - vaddr_page (RAM pages only)

MMIO pages are never cached, so every device access takes the slow path —
exactly like QEMU's ``io_readx``/``io_writex``.
"""

from __future__ import annotations

from typing import Optional

from ..common.bitops import u32
from .pagetable import (PAGE_MASK, PERM_EXEC, PERM_READ, PERM_USER,
                        PERM_WRITE, Translation)

MMU_IDX_KERNEL = 0
MMU_IDX_USER = 1
NUM_MMU_IDX = 2

INVALID = 0xFFFFFFFF

ACCESS_READ = 0
ACCESS_WRITE = 1
ACCESS_CODE = 2


class SoftTlb:
    """Direct-mapped software TLB with a packed in-memory representation."""

    SIZE = 256
    ENTRY_SIZE = 16

    def __init__(self, ram_host_base: int):
        self.ram_host_base = ram_host_base
        self.data = bytearray(NUM_MMU_IDX * self.SIZE * self.ENTRY_SIZE)
        self.flush()
        # Statistics for the experiment harness.
        self.fill_count = 0
        self.flush_count = 0

    # -- layout helpers -------------------------------------------------------

    @classmethod
    def entry_offset(cls, mmu_idx: int, vaddr: int) -> int:
        index = (vaddr >> 12) & (cls.SIZE - 1)
        return (mmu_idx * cls.SIZE + index) * cls.ENTRY_SIZE

    def _read_u32(self, offset: int) -> int:
        return int.from_bytes(self.data[offset:offset + 4], "little")

    def _write_u32(self, offset: int, value: int) -> None:
        self.data[offset:offset + 4] = u32(value).to_bytes(4, "little")

    # -- operations ------------------------------------------------------------

    def flush(self) -> None:
        """Invalidate every entry (TLBIALL, TTBR/SCTLR writes)."""
        self.data[:] = b"\xff" * len(self.data)
        self.flush_count = getattr(self, "flush_count", 0) + 1

    def lookup(self, mmu_idx: int, vaddr: int,
               access: int) -> Optional[int]:
        """Fast-path lookup; returns the guest physical address or None."""
        offset = self.entry_offset(mmu_idx, vaddr)
        tag = self._read_u32(offset + 4 * access)
        if tag != vaddr & PAGE_MASK:
            return None
        addend = self._read_u32(offset + 12)
        host_addr = u32(vaddr + addend)
        return host_addr - self.ram_host_base

    def fill(self, mmu_idx: int, translation: Translation) -> None:
        """Install a RAM translation produced by the page walker."""
        self.fill_count += 1
        offset = self.entry_offset(mmu_idx, translation.vaddr_page)
        perms = translation.perms
        user_ok = bool(perms & PERM_USER)
        visible = user_ok or mmu_idx == MMU_IDX_KERNEL
        readable = visible and perms & PERM_READ
        writable = visible and perms & PERM_WRITE
        executable = visible and perms & PERM_EXEC
        page = translation.vaddr_page
        self._write_u32(offset + 0, page if readable else INVALID)
        self._write_u32(offset + 4, page if writable else INVALID)
        self._write_u32(offset + 8, page if executable else INVALID)
        self._write_u32(offset + 12,
                        u32(self.ram_host_base + translation.paddr_page
                            - page))
