"""Per-experiment reproduction: one function per paper table/figure.

Each experiment returns a structured result (plus a rendered text table)
so the benchmarks can assert the paper's qualitative claims — who wins,
monotonic improvements, relative orderings — without depending on exact
magnitudes.  Paper reference values are attached for side-by-side
reporting in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..workloads.realworld import REALWORLD_WORKLOADS
from ..workloads.spec import SPEC_WORKLOADS
from ..workloads.specfp import SPECFP_WORKLOADS
from .report import format_table, geomean, percent
from .runner import RunResult, run_cached

SPEC_ORDER = ["perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
              "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk"]

REALWORLD_ORDER = ["memcached", "sqlite", "fileio", "untar", "cpu-prime"]

RULE_LEVELS = ["rules-base", "rules-reduction", "rules-elimination",
               "rules-full"]

LEVEL_LABELS = {"rules-base": "Base", "rules-reduction": "+Reduction",
                "rules-elimination": "+Elimination",
                "rules-full": "+Scheduling"}

#: Paper-reported values for EXPERIMENTS.md side-by-sides.
PAPER = {
    "fig14_unopt_geomean": 0.95,
    "fig14_full_geomean": 1.36,
    "fig15_qemu": 17.39,
    "fig15_rules": 15.40,
    "fig16": {"Base": 0.95, "+Reduction": 1.22, "+Elimination": 1.30,
              "+Scheduling": 1.36},
    "fig17": {"Base": 8.36, "+Reduction": 1.79, "+Elimination": 1.33,
              "+Scheduling": 0.89},
    "fig18_qemu": 18.73,
    "fig18_rules": 13.83,
    "fig19_geomean": 1.15,
    "table1_geomean": {"system": 0.25, "memory": 33.46, "check": 15.12},
    "fig8_before": 14,
    "fig8_after": 3,
    "coordination_before_pct": 48.83,
    "coordination_after_pct": 24.61,
}


@dataclass
class ExperimentResult:
    name: str
    rows: List[Dict] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    text: str = ""


def _spec_results(engine: str) -> Dict[str, RunResult]:
    return {name: run_cached(SPEC_WORKLOADS[name], engine)
            for name in SPEC_ORDER}


# ---------------------------------------------------------------------------
# Table I.
# ---------------------------------------------------------------------------


def table1() -> ExperimentResult:
    """Distribution of coordination-requiring categories (QEMU baseline)."""
    result = ExperimentResult("table1")
    rows = []
    for name in SPEC_ORDER:
        run = run_cached(SPEC_WORKLOADS[name], "tcg")
        stats = run.stats
        guest = max(run.guest_icount, 1)
        row = {
            "benchmark": name,
            "system_pct": percent(stats["engine.system_insns_dyn"], guest),
            "memory_pct": percent(stats["engine.memory_insns_dyn"], guest),
            "check_pct": percent(stats["engine.interrupt_checks_dyn"], guest),
        }
        rows.append(row)
    result.rows = rows
    result.summary = {
        "system_geomean": geomean([r["system_pct"] for r in rows]),
        "memory_geomean": geomean([r["memory_pct"] for r in rows]),
        "check_geomean": geomean([r["check_pct"] for r in rows]),
    }
    table_rows = [[r["benchmark"], r["system_pct"], r["memory_pct"],
                   r["check_pct"]] for r in rows]
    table_rows.append(["GEOMEAN", result.summary["system_geomean"],
                       result.summary["memory_geomean"],
                       result.summary["check_geomean"]])
    result.text = format_table(
        ["Benchmark", "System-level %", "Memory %", "Interrupt check %"],
        table_rows, title="Table I: coordination-requiring categories "
                          "(measured on the QEMU baseline)")
    return result


# ---------------------------------------------------------------------------
# Figure 8: host instructions per coordination operation.
# ---------------------------------------------------------------------------


def fig8() -> ExperimentResult:
    """Sync sequence length: parsed (Base) vs packed (+Reduction)."""
    result = ExperimentResult("fig8")
    per_level = {}
    for engine in ("rules-base", "rules-reduction"):
        runs = _spec_results(engine)
        ops = sum(r.stats["engine.sync_ops_dyn"] for r in runs.values())
        insns = sum(r.stats["engine.sync_insns_weighted"] for r in runs.values())
        per_level[engine] = insns / max(ops, 1)
    result.summary = {
        "parsed_insns_per_sync": per_level["rules-base"],
        "packed_insns_per_sync": per_level["rules-reduction"],
        "saving_pct": percent(
            per_level["rules-base"] - per_level["rules-reduction"],
            per_level["rules-base"]),
    }
    result.text = format_table(
        ["Scheme", "Host instructions / coordination op", "Paper"],
        [["parsed (Base)", per_level["rules-base"], PAPER["fig8_before"]],
         ["packed (+Reduction)", per_level["rules-reduction"],
          PAPER["fig8_after"]],
         ["saving %", result.summary["saving_pct"], 78.0]],
        title="Fig 8: coordination overhead reduction")
    return result


# ---------------------------------------------------------------------------
# Figures 14 and 16: speedups over QEMU.
# ---------------------------------------------------------------------------


def fig14() -> ExperimentResult:
    """Per-benchmark speedup: un-optimized and fully-optimized rules."""
    result = ExperimentResult("fig14")
    qemu = _spec_results("tcg")
    unopt = _spec_results("rules-base")
    full = _spec_results("rules-full")
    rows = []
    for name in SPEC_ORDER:
        rows.append({
            "benchmark": name,
            "unopt_speedup": qemu[name].runtime / unopt[name].runtime,
            "full_speedup": qemu[name].runtime / full[name].runtime,
        })
    result.rows = rows
    result.summary = {
        "unopt_geomean": geomean([r["unopt_speedup"] for r in rows]),
        "full_geomean": geomean([r["full_speedup"] for r in rows]),
    }
    table_rows = [[r["benchmark"], r["unopt_speedup"], r["full_speedup"]]
                  for r in rows]
    table_rows.append(["GEOMEAN", result.summary["unopt_geomean"],
                       result.summary["full_geomean"]])
    result.text = format_table(
        ["Benchmark", "Un-opt rules (x)", "Full opt (x)"], table_rows,
        title="Fig 14: speedup over QEMU on SPEC CINT2006 analogs "
              f"(paper: {PAPER['fig14_unopt_geomean']}x un-opt, "
              f"{PAPER['fig14_full_geomean']}x full)")
    return result


def fig16() -> ExperimentResult:
    """Cumulative speedup after each optimization."""
    result = ExperimentResult("fig16")
    qemu = _spec_results("tcg")
    for engine in RULE_LEVELS:
        runs = _spec_results(engine)
        speedups = [qemu[name].runtime / runs[name].runtime
                    for name in SPEC_ORDER]
        result.summary[LEVEL_LABELS[engine]] = geomean(speedups)
    rows = [[label, value, PAPER["fig16"][label]]
            for label, value in result.summary.items()]
    result.text = format_table(
        ["Configuration", "Speedup (x)", "Paper (x)"], rows,
        title="Fig 16: cumulative speedup per optimization")
    return result


# ---------------------------------------------------------------------------
# Figure 15: host instructions per translated guest instruction.
# ---------------------------------------------------------------------------


def fig15() -> ExperimentResult:
    result = ExperimentResult("fig15")
    per_engine = {}
    for engine in ("tcg", "rules-full"):
        runs = _spec_results(engine)
        static_host = sum(r.stats["engine.static_host_insns"]
                          for r in runs.values())
        static_guest = sum(r.stats["engine.static_guest_insns"]
                           for r in runs.values())
        per_engine[engine] = static_host / max(static_guest, 1)
    result.summary = {
        "qemu": per_engine["tcg"],
        "rules_full": per_engine["rules-full"],
        "reduction_pct": percent(
            per_engine["tcg"] - per_engine["rules-full"],
            per_engine["tcg"]),
    }
    result.text = format_table(
        ["System", "Host instr / guest instr (static)", "Paper"],
        [["QEMU", per_engine["tcg"], PAPER["fig15_qemu"]],
         ["rule-based (full opt)", per_engine["rules-full"],
          PAPER["fig15_rules"]],
         ["reduction %", result.summary["reduction_pct"], 11.44]],
        title="Fig 15: average host instructions per guest instruction")
    return result


# ---------------------------------------------------------------------------
# Figure 17: sync host instructions per guest instruction.
# ---------------------------------------------------------------------------


def fig17() -> ExperimentResult:
    result = ExperimentResult("fig17")
    for engine in RULE_LEVELS:
        runs = _spec_results(engine)
        sync = sum(r.stats.get("engine.tag_sync", 0.0) for r in runs.values())
        guest = sum(r.guest_icount for r in runs.values())
        result.summary[LEVEL_LABELS[engine]] = sync / max(guest, 1)
    rows = [[label, value, PAPER["fig17"][label]]
            for label, value in result.summary.items()]
    result.text = format_table(
        ["Configuration", "Sync host instr / guest instr", "Paper"], rows,
        title="Fig 17: coordination host instructions per guest "
              "instruction")
    return result


# ---------------------------------------------------------------------------
# Figure 18: slowdown vs native execution.
# ---------------------------------------------------------------------------


def fig18() -> ExperimentResult:
    result = ExperimentResult("fig18")
    rows = []
    for name in SPEC_ORDER:
        qemu = run_cached(SPEC_WORKLOADS[name], "tcg")
        rules = run_cached(SPEC_WORKLOADS[name], "rules-full")
        native = max(qemu.guest_icount, 1)  # 1 guest instr = 1 native unit
        rows.append({
            "benchmark": name,
            "qemu_slowdown": qemu.runtime / native,
            "rules_slowdown": rules.runtime / native,
        })
    result.rows = rows
    result.summary = {
        "qemu_geomean": geomean([r["qemu_slowdown"] for r in rows]),
        "rules_geomean": geomean([r["rules_slowdown"] for r in rows]),
    }
    table_rows = [[r["benchmark"], r["qemu_slowdown"], r["rules_slowdown"]]
                  for r in rows]
    table_rows.append(["GEOMEAN", result.summary["qemu_geomean"],
                       result.summary["rules_geomean"]])
    result.text = format_table(
        ["Benchmark", "QEMU slowdown (x)", "Rule-based slowdown (x)"],
        table_rows,
        title="Fig 18: slowdown vs native execution "
              f"(paper: {PAPER['fig18_qemu']}x vs {PAPER['fig18_rules']}x)")
    return result


# ---------------------------------------------------------------------------
# Figure 19: real-world applications.
# ---------------------------------------------------------------------------


def fig19() -> ExperimentResult:
    result = ExperimentResult("fig19")
    rows = []
    for name in REALWORLD_ORDER:
        workload = REALWORLD_WORKLOADS[name]
        qemu = run_cached(workload, "tcg")
        rules = run_cached(workload, "rules-full")
        rows.append({
            "application": name,
            "speedup": qemu.runtime / rules.runtime,
            "io_fraction": qemu.io_cost / max(qemu.runtime, 1),
        })
    result.rows = rows
    result.summary = {
        "geomean": geomean([r["speedup"] for r in rows]),
    }
    table_rows = [[r["application"], r["speedup"],
                   100.0 * r["io_fraction"]] for r in rows]
    table_rows.append(["GEOMEAN", result.summary["geomean"], ""])
    result.text = format_table(
        ["Application", "Speedup (x)", "I/O time %"], table_rows,
        title="Fig 19: real-world application speedup over QEMU "
              f"(paper geomean: {PAPER['fig19_geomean']}x)")
    return result


# ---------------------------------------------------------------------------
# Sec IV-B coordination-percentage claims.
# ---------------------------------------------------------------------------


def coordination_claims() -> ExperimentResult:
    """48.83% of guest instructions need coordination before the
    optimizations; 24.61% keep a coordination op after."""
    result = ExperimentResult("coordination")
    qemu = _spec_results("tcg")
    guest = sum(r.guest_icount for r in qemu.values())
    sites = sum(r.stats["engine.memory_insns_dyn"] + r.stats["engine.system_insns_dyn"] +
                r.stats["engine.interrupt_checks_dyn"] for r in qemu.values())
    base = _spec_results("rules-base")
    full = _spec_results("rules-full")
    base_ops = sum(r.stats["engine.sync_ops_dyn"] for r in base.values())
    full_ops = sum(r.stats["engine.sync_ops_dyn"] for r in full.values())
    result.summary = {
        "sites_pct": percent(sites, guest),
        "base_coordination_pct": percent(base_ops / 2, guest),
        "full_coordination_pct": percent(full_ops / 2, guest),
    }
    result.text = format_table(
        ["Quantity", "Measured %", "Paper %"],
        [["instructions that are coordination sites",
          result.summary["sites_pct"], PAPER["coordination_before_pct"]],
         ["coordination pairs per instruction (Base)",
          result.summary["base_coordination_pct"], ""],
         ["coordination pairs per instruction (full opt)",
          result.summary["full_coordination_pct"],
          PAPER["coordination_after_pct"]]],
        title="Sec IV-B: coordination elimination")
    return result


def footnote3() -> ExperimentResult:
    """With FP workloads included the speedup grows (paper: 1.92x vs
    1.36x), because FP rules need neither helpers nor coordination."""
    result = ExperimentResult("footnote3")
    qemu_int = _spec_results("tcg")
    full_int = _spec_results("rules-full")
    int_speedups = [qemu_int[name].runtime / full_int[name].runtime
                    for name in SPEC_ORDER]
    fp_speedups = []
    rows = []
    for name in sorted(SPECFP_WORKLOADS):
        workload = SPECFP_WORKLOADS[name]
        qemu = run_cached(workload, "tcg")
        rules = run_cached(workload, "rules-full")
        speedup = qemu.runtime / rules.runtime
        fp_speedups.append(speedup)
        rows.append([name, speedup])
    result.summary = {
        "int_geomean": geomean(int_speedups),
        "combined_geomean": geomean(int_speedups + fp_speedups),
        "fp_geomean": geomean(fp_speedups),
    }
    rows.append(["CINT geomean", result.summary["int_geomean"]])
    rows.append(["CINT+CFP geomean", result.summary["combined_geomean"]])
    result.text = format_table(
        ["Workload", "Speedup (x)"], rows,
        title="Footnote 3: floating-point workloads "
              "(paper: 1.92x combined vs 1.36x integer-only)")
    return result


# ---------------------------------------------------------------------------
# Ablation over the individual optimization switches (not a paper
# figure; complements Fig 16's cumulative view).
# ---------------------------------------------------------------------------

#: Representative subset (memory-heavy, branchy, balanced).
ABLATION_SUBSET = ["mcf", "xalancbmk", "bzip2", "hmmer"]


def _ablation_configs() -> Dict[str, "OptConfig"]:
    from ..core import OptConfig

    return {
        "base": OptConfig(),
        "packed only": OptConfig(packed_sync=True),
        "elimination only": OptConfig(eliminate_redundant=True,
                                      inter_tb=True),
        "packed + elimination": OptConfig(packed_sync=True,
                                          eliminate_redundant=True,
                                          inter_tb=True),
        "full (no inter-TB)": OptConfig(packed_sync=True,
                                        eliminate_redundant=True,
                                        scheduling=True),
        "full": OptConfig(packed_sync=True, eliminate_redundant=True,
                          inter_tb=True, scheduling=True),
        "full + irq-relocation": OptConfig(packed_sync=True,
                                           eliminate_redundant=True,
                                           inter_tb=True, scheduling=True,
                                           irq_scheduling=True),
    }


def ablation() -> ExperimentResult:
    """Per-switch ablation on a representative workload subset."""
    from .runner import current_cache_inject, run_workload

    result = ExperimentResult("ablation")
    inject = current_cache_inject()
    qemu = {name: run_cached(SPEC_WORKLOADS[name], "tcg").runtime
            for name in ABLATION_SUBSET}
    for label, config in _ablation_configs().items():
        runtimes = [run_workload(SPEC_WORKLOADS[name], "rules-custom",
                                 config=config, inject=inject).runtime
                    for name in ABLATION_SUBSET]
        result.summary[label] = geomean(
            [qemu[name] / runtime
             for name, runtime in zip(ABLATION_SUBSET, runtimes)])
    result.text = format_table(
        ["Configuration", "Speedup (x)"],
        [[label, value] for label, value in result.summary.items()],
        title="Ablation: individual optimization switches "
              f"(subset: {', '.join(ABLATION_SUBSET)})")
    return result


ALL_EXPERIMENTS = {
    "table1": table1,
    "fig8": fig8,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "ablation": ablation,
    "coordination": coordination_claims,
    "footnote3": footnote3,
}
