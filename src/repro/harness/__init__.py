"""Experiment harness: runner, metrics, per-figure experiments."""

from .experiments import (ALL_EXPERIMENTS, ExperimentResult, PAPER,
                          REALWORLD_ORDER, RULE_LEVELS, SPEC_ORDER,
                          ablation, coordination_claims, fig8, fig14,
                          fig15, fig16, fig17, fig18, fig19, table1)
from .report import format_table, geomean, percent
from .runner import (ENGINE_SPECS, RunResult, clear_cache,
                     current_cache_inject, make_machine, run_cached,
                     run_workload, set_cache_inject)

__all__ = [
    "ALL_EXPERIMENTS", "ENGINE_SPECS", "ExperimentResult", "PAPER",
    "REALWORLD_ORDER", "RULE_LEVELS", "RunResult", "SPEC_ORDER",
    "ablation", "clear_cache", "coordination_claims",
    "current_cache_inject", "fig8", "fig14", "fig15", "fig16", "fig17",
    "fig18", "fig19", "format_table", "geomean", "make_machine",
    "percent", "run_cached", "run_workload", "set_cache_inject",
    "table1",
]
