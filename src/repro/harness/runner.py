"""Workload runner: boots a machine, applies device setup, collects metrics.

The *runtime* metric of a run is ``host_cost + io_cost``: dynamic host
instructions executed by generated code, plus the modelled cost of
runtime work (helpers, translation, TB lookup) and device time.  All
speedups in the experiment suite are ratios of this quantity
(see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..common.errors import ReproError
from ..core import OptConfig, OptLevel, make_rule_engine
from ..kernel.kernel import build_kernel, build_user_program
from ..miniqemu.machine import Machine
from ..robustness import (ExecutionWatchdog, FaultInjector, FaultPlan,
                          parse_inject_spec)
from ..workloads.spec import Workload

#: Engine specifications accepted by :func:`run_workload`.
ENGINE_SPECS = ("interp", "tcg", "rules-base", "rules-reduction",
                "rules-elimination", "rules-full")

_LEVEL_BY_SPEC = {
    "rules-base": OptLevel.BASE,
    "rules-reduction": OptLevel.REDUCTION,
    "rules-elimination": OptLevel.ELIMINATION,
    "rules-full": OptLevel.FULL,
}


@dataclass
class RunResult:
    workload: str
    engine: str
    exit_code: int
    output: str
    guest_icount: int
    host_instructions: float
    host_cost: float
    io_cost: float
    runtime: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def host_per_guest(self) -> float:
        return self.host_instructions / max(self.guest_icount, 1)

    @property
    def cost_per_guest(self) -> float:
        return self.host_cost / max(self.guest_icount, 1)


def _robustness_kwargs(inject) -> Dict:
    """Machine kwargs for an ``--inject`` spec (str or FaultPlan)."""
    if not inject:
        return {}
    plan = parse_inject_spec(inject) if isinstance(inject, str) else inject
    if not isinstance(plan, FaultPlan):
        raise ValueError(f"bad inject value {inject!r}")
    return {
        "fault_injector": FaultInjector(plan),
        "watchdog": ExecutionWatchdog(),
        # Silent wrong-result rules are only catchable by the online
        # differential self-check: check every eligible TB (paranoid).
        "selfcheck_interval": 1 if plan.wrong_rules else 0,
    }


def make_machine(workload: Workload, engine: str,
                 config: Optional[OptConfig] = None,
                 inject=None, tracer=None, profiler=None,
                 check: bool = False,
                 cache_dir: Optional[str] = None) -> Machine:
    """Build a machine with the kernel + workload loaded and devices set up.

    *check* enables the rules engine's verify-before-enter mode: every
    rules-tier TB is statically verified before entering the code cache
    (``repro run --check``; ignored by the interp/tcg engines).

    *cache_dir* attaches the persistent cross-run translation cache
    (``--cache-dir``; a no-op for engines without a rules tier).  The
    caller is responsible for ``machine.engine.persistent.save()`` after
    the run — :func:`run_workload` does this."""
    kwargs = _robustness_kwargs(inject)
    if tracer is not None:
        kwargs["tracer"] = tracer
    if profiler is not None:
        kwargs["profiler"] = profiler
    if engine in _LEVEL_BY_SPEC:
        factory = make_rule_engine(_LEVEL_BY_SPEC[engine], config=config,
                                   check=check)
        machine = Machine(engine="rules", rule_engine_factory=factory,
                          **kwargs)
    elif engine == "rules-custom":
        if config is None:
            raise ValueError("rules-custom requires an OptConfig")
        factory = make_rule_engine(OptLevel.FULL, config=config,
                                   check=check)
        machine = Machine(engine="rules", rule_engine_factory=factory,
                          **kwargs)
    elif engine in ("interp", "tcg"):
        machine = Machine(engine=engine, **kwargs)
    else:
        raise ValueError(f"unknown engine spec {engine!r}")

    kernel = build_kernel(timer_reload=workload.timer_reload)
    user = build_user_program(workload.body)
    machine.memory.load_program(kernel)
    machine.memory.load_program(user)
    machine.cpu.regs[15] = 0
    machine.env.load_from_cpu(machine.cpu)

    if workload.disk_image is not None:
        machine.blockdev.load_image(workload.disk_image)
    for packet in workload.nic_packets:
        machine.nic.queue_rx(packet)
    if cache_dir:
        # After load_program: the store key includes the image digest.
        from ..cache import attach_cache
        attach_cache(machine, cache_dir)
    return machine


def run_workload(workload: Workload, engine: str,
                 config: Optional[OptConfig] = None,
                 inject=None, tracer=None, profiler=None,
                 check: bool = False,
                 cache_dir: Optional[str] = None) -> RunResult:
    machine = make_machine(workload, engine, config, inject=inject,
                           tracer=tracer, profiler=profiler, check=check,
                           cache_dir=cache_dir)
    exit_code = machine.run(workload.max_insns)
    loader = getattr(machine.engine, "persistent", None)
    if loader is not None:
        loader.save()
    output = machine.uart.text
    if workload.expected_output is not None and \
            output != workload.expected_output:
        raise ReproError(
            f"{workload.name} on {engine}: wrong output {output!r} "
            f"(expected {workload.expected_output!r})")
    if exit_code != 0:
        raise ReproError(f"{workload.name} on {engine}: exit {exit_code}")
    stats = machine.stats()
    host_cost = stats.get("engine.host_cost", 0.0)
    return RunResult(
        workload=workload.name,
        engine=engine,
        exit_code=exit_code,
        output=output,
        guest_icount=machine.guest_icount,
        host_instructions=stats.get("engine.host_instructions", 0.0),
        host_cost=host_cost,
        io_cost=float(machine.io_cost),
        runtime=host_cost + machine.io_cost,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Process-wide memoization: the figure benchmarks share one sweep.
# ---------------------------------------------------------------------------

_CACHE: Dict[Tuple[str, str, str, str], RunResult] = {}

#: Fault plan applied to every ``run_cached`` miss (see
#: :func:`set_cache_inject`); part of the cache key, so injected and
#: clean sweeps never alias.
_CACHE_INJECT: Optional[FaultPlan] = None
_CACHE_INJECT_SPEC: str = ""


def set_cache_inject(inject=None) -> Optional[FaultPlan]:
    """Install a fault plan for the shared sweep (``None`` clears it).

    The ``repro bench`` orchestrator uses this to thread an ``--inject``
    spec through the whole figure pipeline without changing any
    experiment's code — which is how the injector's ``extra-sync`` site
    doubles as an end-to-end regression simulator for the perf gate.
    Returns the parsed plan.
    """
    global _CACHE_INJECT, _CACHE_INJECT_SPEC
    if not inject:
        _CACHE_INJECT, _CACHE_INJECT_SPEC = None, ""
        return None
    plan = parse_inject_spec(inject) if isinstance(inject, str) else inject
    if not isinstance(plan, FaultPlan):
        raise ValueError(f"bad inject value {inject!r}")
    _CACHE_INJECT, _CACHE_INJECT_SPEC = plan, plan.describe()
    return plan


def current_cache_inject() -> Optional[FaultPlan]:
    """The fault plan the shared sweep currently runs under (or None)."""
    return _CACHE_INJECT


#: Persistent translation-cache directory for the shared sweep (see
#: :func:`set_cache_dir`); part of the memo key like the fault plan.
_CACHE_DIR: Optional[str] = None


def set_cache_dir(cache_dir: Optional[str] = None) -> Optional[str]:
    """Thread ``--cache-dir`` through the shared figure sweep
    (``None`` clears it).  Warm-start state is per-store on disk; the
    in-process memo key includes the directory so cached and uncached
    sweeps never alias."""
    global _CACHE_DIR
    _CACHE_DIR = cache_dir or None
    return _CACHE_DIR


def run_cached(workload: Workload, engine: str) -> RunResult:
    key = (workload.name, engine, _CACHE_INJECT_SPEC, _CACHE_DIR or "")
    if key not in _CACHE:
        _CACHE[key] = run_workload(workload, engine,
                                   inject=_CACHE_INJECT,
                                   cache_dir=_CACHE_DIR)
    return _CACHE[key]


def cached_results() -> Tuple[RunResult, ...]:
    """Every result memoized by the current sweep (for reporting, e.g.
    the bench orchestrator's warm-start summary)."""
    return tuple(_CACHE.values())


def clear_cache() -> None:
    _CACHE.clear()
