"""Text rendering for experiment tables (paper-style rows + geomeans)."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [max(len(header), *(len(row[index]) for row in text_rows))
              if text_rows else len(header)
              for index, header in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator
