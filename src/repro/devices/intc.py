"""A minimal interrupt controller (PL190-flavoured).

Devices raise/lower numbered interrupt sources; the controller drives the
CPU's IRQ line whenever an enabled source is pending.

MMIO register map (word access):
  +0x00 STATUS   (RO)  pending & enabled
  +0x04 RAWSTAT  (RO)  pending
  +0x08 ENABLE   (RW)  write 1-bits to enable sources
  +0x0C DISABLE  (WO)  write 1-bits to disable sources
"""

from __future__ import annotations

from ..common.bitops import u32

IRQ_TIMER = 0
IRQ_UART = 1
IRQ_BLOCK = 2
IRQ_NET = 3


class InterruptController:
    def __init__(self, cpu):
        self.cpu = cpu
        self.pending = 0
        self.enabled = 0

    # -- device-facing API ------------------------------------------------------

    def raise_irq(self, source: int) -> None:
        self.pending |= 1 << source
        self._update()

    def lower_irq(self, source: int) -> None:
        self.pending &= ~(1 << source) & 0xFFFFFFFF
        self._update()

    def _update(self) -> None:
        self.cpu.irq_line = bool(self.pending & self.enabled)
        if self.cpu.irq_line:
            self.cpu.halted = False

    # -- MMIO --------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            return u32(self.pending & self.enabled)
        if offset == 0x04:
            return u32(self.pending)
        if offset == 0x08:
            return u32(self.enabled)
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x08:
            self.enabled |= value
        elif offset == 0x0C:
            self.enabled &= ~value & 0xFFFFFFFF
        self._update()
