"""A toy NIC with a scripted peer (the memcached workload's network).

The harness queues request packets; the guest polls RX, processes, and
writes TX responses, which the harness collects.  Packets are length-
prefixed byte strings moved through a small MMIO window, and each packet
is charged the modelled network cost (this is what makes the memcached
analog network-bound, capping its speedup like the paper's 1.13x).

MMIO register map:
  +0x00 RXLEN  (RO)  length of the current RX packet, 0 if none
  +0x04 RXDATA (RO)  next RX byte (auto-advances)
  +0x08 RXDONE (WO)  pop the current RX packet, raise next if queued
  +0x0C TXDATA (WO)  append a byte to the TX buffer
  +0x10 TXSEND (WO)  commit the TX buffer as one packet
"""

from __future__ import annotations

from collections import deque

from ..common.costmodel import COST_NET_PACKET
from .intc import IRQ_NET


class Nic:
    def __init__(self, intc, machine=None):
        self.intc = intc
        self.machine = machine
        self.rx_queue = deque()
        self.rx_pos = 0
        self.tx_buffer = bytearray()
        self.tx_packets = []

    def queue_rx(self, packet: bytes) -> None:
        self.rx_queue.append(bytes(packet))
        self.intc.raise_irq(IRQ_NET)

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            return len(self.rx_queue[0]) if self.rx_queue else 0
        if offset == 0x04:
            if not self.rx_queue:
                return 0
            packet = self.rx_queue[0]
            byte = packet[self.rx_pos] if self.rx_pos < len(packet) else 0
            self.rx_pos += 1
            return byte
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x08:
            if self.rx_queue:
                self.rx_queue.popleft()
                if self.machine is not None:
                    self.machine.charge_io(COST_NET_PACKET)
            self.rx_pos = 0
            if not self.rx_queue:
                self.intc.lower_irq(IRQ_NET)
        elif offset == 0x0C:
            self.tx_buffer.append(value & 0xFF)
        elif offset == 0x10:
            self.tx_packets.append(bytes(self.tx_buffer))
            self.tx_buffer.clear()
            if self.machine is not None:
                self.machine.charge_io(COST_NET_PACKET)
