"""System controller: guest-initiated shutdown.

MMIO register map:
  +0x00 EXIT (WO)  halt the machine with the written exit code
"""

from __future__ import annotations

from ..common.errors import GuestHalt


class SystemController:
    def mmio_read(self, offset: int, size: int) -> int:
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            raise GuestHalt(value)
