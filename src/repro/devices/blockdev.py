"""A DMA block device (the fileIO / untar workloads' storage).

The device owns an in-memory disk image of 512-byte sectors.  The guest
programs a sector number and a physical DMA address, then kicks a read or
write; the transfer completes immediately (deterministically) and raises
the block interrupt.  Each transfer is charged the modelled I/O cost, which
is what makes the I/O-bound real-world analogs I/O-bound.

MMIO register map:
  +0x00 SECTOR (RW)   sector index
  +0x04 ADDR   (RW)   DMA target/source guest physical address
  +0x08 CMD    (WO)   1 = read sector into ADDR, 2 = write sector from ADDR
  +0x0C STATUS (RO)   bit0 = done (cleared by ACK)
  +0x10 ACK    (WO)   clear done + lower interrupt
  +0x14 COUNT  (RO)   total sectors transferred
"""

from __future__ import annotations

from ..common.costmodel import COST_BLOCK_SECTOR_IO
from .intc import IRQ_BLOCK

SECTOR_SIZE = 512


class BlockDevice:
    def __init__(self, intc, memory, machine=None, sectors: int = 4096):
        self.intc = intc
        self.memory = memory
        self.machine = machine
        self.image = bytearray(sectors * SECTOR_SIZE)
        self.sector = 0
        self.dma_addr = 0
        self.done = False
        self.count = 0

    def load_image(self, data: bytes, sector: int = 0) -> None:
        offset = sector * SECTOR_SIZE
        self.image[offset:offset + len(data)] = data

    def read_image(self, sector: int, length: int) -> bytes:
        offset = sector * SECTOR_SIZE
        return bytes(self.image[offset:offset + length])

    def _transfer(self, command: int) -> None:
        offset = self.sector * SECTOR_SIZE
        if command == 1:  # disk -> RAM
            self.memory.write_bytes(self.dma_addr,
                                    bytes(self.image[offset:offset +
                                                     SECTOR_SIZE]))
        elif command == 2:  # RAM -> disk
            self.image[offset:offset + SECTOR_SIZE] = \
                self.memory.read_bytes(self.dma_addr, SECTOR_SIZE)
        self.done = True
        self.count += 1
        if self.machine is not None:
            self.machine.charge_io(COST_BLOCK_SECTOR_IO)
        self.intc.raise_irq(IRQ_BLOCK)

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            return self.sector
        if offset == 0x04:
            return self.dma_addr
        if offset == 0x0C:
            return int(self.done)
        if offset == 0x14:
            return self.count
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            self.sector = value
        elif offset == 0x04:
            self.dma_addr = value
        elif offset == 0x08:
            self._transfer(value)
        elif offset == 0x10:
            self.done = False
            self.intc.lower_irq(IRQ_BLOCK)
