"""An icount-driven periodic timer.

Guest time advances with the number of executed guest instructions (the
machine calls :meth:`advance` from its execution loop), which keeps every
experiment fully deterministic.  When the down-counter reaches zero the
timer raises its interrupt and reloads.

MMIO register map (word access):
  +0x00 LOAD    (RW)  reload value in guest instructions; 0 disables
  +0x04 VALUE   (RO)  current countdown
  +0x08 CTRL    (RW)  bit0 = enable
  +0x0C ACK     (WO)  any write clears the pending interrupt
  +0x10 TICKS   (RO)  total expirations since reset
"""

from __future__ import annotations

from .intc import IRQ_TIMER


class Timer:
    def __init__(self, intc, reload: int = 0):
        self.intc = intc
        self.reload = reload
        self.value = reload
        self.enabled = False
        self.ticks = 0

    def advance(self, instructions: int) -> None:
        """Advance guest time by *instructions* executed instructions."""
        if not self.enabled or self.reload == 0:
            return
        self.value -= instructions
        while self.value <= 0:
            self.value += self.reload
            self.ticks += 1
            self.intc.raise_irq(IRQ_TIMER)

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            return self.reload
        if offset == 0x04:
            return max(self.value, 0)
        if offset == 0x08:
            return int(self.enabled)
        if offset == 0x10:
            return self.ticks
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            self.reload = value
            self.value = value
        elif offset == 0x08:
            self.enabled = bool(value & 1)
        elif offset == 0x0C:
            self.intc.lower_irq(IRQ_TIMER)
