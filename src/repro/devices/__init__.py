"""Device models: interrupt controller, timer, UART, block device, NIC."""

from .blockdev import SECTOR_SIZE, BlockDevice
from .intc import (IRQ_BLOCK, IRQ_NET, IRQ_TIMER, IRQ_UART,
                   InterruptController)
from .nic import Nic
from .syscon import SystemController
from .timer import Timer
from .uart import Uart

__all__ = [
    "BlockDevice", "IRQ_BLOCK", "IRQ_NET", "IRQ_TIMER", "IRQ_UART",
    "InterruptController", "Nic", "SECTOR_SIZE", "SystemController",
    "Timer", "Uart",
]
