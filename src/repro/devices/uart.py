"""A console UART: guest writes bytes, the harness reads the transcript.

MMIO register map:
  +0x00 DR     (RW)  write: transmit byte; read: next input byte or 0
  +0x04 FR     (RO)  bit0 = input available
"""

from __future__ import annotations

from ..common.costmodel import COST_UART_BYTE


class Uart:
    def __init__(self, machine=None):
        self.machine = machine
        self.output = bytearray()
        self.input = bytearray()

    @property
    def text(self) -> str:
        return self.output.decode("latin-1")

    def feed(self, data: bytes) -> None:
        """Queue bytes for the guest to read (test/workload input)."""
        self.input.extend(data)

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x00:
            if self.input:
                return self.input.pop(0)
            return 0
        if offset == 0x04:
            return 1 if self.input else 0
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x00:
            self.output.append(value & 0xFF)
            if self.machine is not None:
                self.machine.charge_io(COST_UART_BYTE)
