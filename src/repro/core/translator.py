"""The rule-based translator: one guest TB -> host code with coordination.

This is the paper's rule-application phase (Sec III) with all four
optimization levels.  The policies, by level:

========================  ======  ==========  ============  ======
behaviour                 Base    +Reduction  +Elimination  +Sched
========================  ======  ==========  ============  ======
sync sequences            parsed  packed      packed        packed
restore after each site   eager   eager       on demand     on demand
restore per conditional   always  always      on demand     on demand
save when env current     yes     yes         skipped       skipped
TB-end save               always  always      inter-TB      inter-TB
insn scheduling           --      --          --            yes
========================  ======  ==========  ============  ======

"site" = any point where control may reach QEMU: the TB-entry interrupt
check, every memory access (softmmu probe + slow path), every
helper-emulated system instruction, and every instruction not covered by
the rulebook (translated by falling back to the TCG pipeline inline).

The static flag tracker (:class:`~repro.core.coordination.FlagsState`)
follows where the live guest CCR is.  Conditional instructions are
emitted with direct host jcc's on the live FLAGS register — the core
speed advantage of rule-based translation — with the state
externalization (reg flushes, flag saves) hoisted above the skip branch
so both paths join in a consistent state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..analysis.justify import (AUDIT_KEY, JUSTIFY_KEY, ORIGINAL_INSNS_KEY,
                                elide_save_justification, fallback_event,
                                inter_tb_justification,
                                irq_reloc_justification, produce_event,
                                reorder_justification, terminal_event)
from ..common.bitops import u32
from ..guest.isa import (ArmInsn, COMPARE_OPS, Cond, DATA_PROCESSING_OPS,
                         Op, PC, ShiftKind, VFP_ARITH_OPS)
from ..host.builder import CodeBuilder
from ..host.isa import (EAX, EDX, ENV_REG, Imm, Mem, Reg, X86Cond,
                        X86Op, Xmm)
from ..miniqemu import mmu_codegen
from ..miniqemu.env import (ENV_IRQ, ENV_PACKED_VALID, env_reg,
                            env_vfp)
from ..miniqemu.helpers import (make_exception_return_helper,
                                make_svc_helper, make_sysreg_helper,
                                make_vfp_helper)
from ..miniqemu.tb import (EXIT_INTERRUPT, EXIT_PC_UPDATED, TranslationBlock)
from .alu import AluEmitter
from .analysis import (BlockInfo, InsnInfo, analyze_block, flags_read,
                       flags_written, schedule_define_before_use, F_ALL)
from .condmap import CarryKind, skip_sequence
from .config import OptConfig
from .coordination import FlagsState, SyncStats
from .regcache import RegCache

RULE_TAG = "rule"
IRQ_TAG = "irqcheck"


@dataclass
class _ColdStub:
    """A deferred interrupt-exit path with its state snapshot."""

    label: str
    resume_pc: int
    dirty_snapshot: List[Tuple[int, int]]  # (guest reg, host reg)


class RuleTranslator:
    """Translates one guest block with a given optimization config."""

    def __init__(self, mmu_idx: int, config: OptConfig, rulebook=None,
                 successor_live_in: Optional[Callable[[int], int]] = None,
                 tcg_fallback: Optional[Callable] = None,
                 tracer=None):
        from ..observability.trace import NULL_TRACER
        self.mmu_idx = mmu_idx
        self.config = config
        self.rulebook = rulebook
        self.successor_live_in = successor_live_in or (lambda pc: F_ALL)
        self.tcg_fallback = tcg_fallback
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Per-TB state, reset in translate().
        self.builder: Optional[CodeBuilder] = None
        self.cache: Optional[RegCache] = None
        self.flags: Optional[FlagsState] = None
        self.alu: Optional[AluEmitter] = None
        self.stats: Optional[SyncStats] = None

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def translate(self, pc: int, insns: List[ArmInsn]) -> TranslationBlock:
        config = self.config
        original = list(insns)
        if config.scheduling:
            insns = schedule_define_before_use(insns)
        reordered = any(a is not b for a, b in zip(original, insns))
        info = analyze_block(insns, self.rulebook)

        self.builder = builder = CodeBuilder(default_tag=RULE_TAG)
        self.stats = SyncStats()
        self._audit = []
        self._justifications = []
        if reordered:
            self._justifications.append(reorder_justification(
                [i.addr for i in original], [i.addr for i in insns]))
        self.flags = FlagsState(builder, self.stats,
                                packed=config.packed_sync,
                                tracer=self.tracer,
                                audit=self._audit)
        self.cache = RegCache(builder)
        self.alu = AluEmitter(builder, self.cache)
        self._cold_stubs: List[_ColdStub] = []
        self._jmp_pcs: List[Optional[int]] = [None, None]
        self._ended = False
        self._irq_checked = False
        self._prealloc_scratch: Optional[int] = None

        # Interrupt check: at TB entry, or scheduled down to the first
        # unconditional memory access (Sec III-D-2).
        relocate_to = self._irq_relocation_index(info) \
            if config.irq_scheduling else None
        if relocate_to is None:
            self._emit_irq_check(resume_pc=pc)
        else:
            self._justifications.append(irq_reloc_justification(
                relocate_to, resume_pc=info.insns[relocate_to].insn.addr))

        for index, item in enumerate(info.insns):
            if relocate_to == index:
                self._emit_irq_check(resume_pc=item.insn.addr)
            self._emit_insn(item)
            if self._ended:
                break
        if not self._ended:
            last = insns[len(info.insns) - 1] if info.insns else None
            next_pc = u32((last.addr + 4) if last else pc)
            self._end_block(slot=0, target_pc=next_pc)

        self._emit_cold_stubs()
        code = builder.finish()
        tb = TranslationBlock(pc=pc, mmu_idx=self.mmu_idx,
                              guest_insns=insns, code=code)
        tb.jmp_pc = list(self._jmp_pcs)
        tb.meta = {
            "sync_saves": self.stats.saves,
            "sync_restores": self.stats.restores,
            "sync_insns": self.stats.save_insns + self.stats.restore_insns,
            "sync_elisions": self.stats.elided_saves,
            "inter_tb_elisions": self.stats.inter_tb_elisions,
            "n_memory": info.n_memory,
            "n_system": info.n_system,
            "n_uncovered": info.n_uncovered,
            "live_in": info.live_in,
            # Rule keys applied in this TB (for quarantine attribution;
            # branches are always "covered" regardless of the rulebook,
            # so they are not attributed).
            "rules_used": sorted({item.insn.op.name for item in info.insns
                                  if item.covered and
                                  not item.insn.is_branch()}),
            AUDIT_KEY: self._audit,
            JUSTIFY_KEY: self._justifications,
        }
        if reordered:
            tb.meta[ORIGINAL_INSNS_KEY] = original
        return tb

    # ------------------------------------------------------------------
    # Interrupt checks.
    # ------------------------------------------------------------------

    def _irq_relocation_index(self, info: BlockInfo) -> Optional[int]:
        """Index of the memory access to co-locate the check with."""
        for index, item in enumerate(info.insns):
            insn = item.insn
            if insn.cond != Cond.AL:
                return None
            if insn.is_memory():
                return index
            if item.is_site or insn.writes_pc():
                return None
        return None

    def _emit_irq_check(self, resume_pc: int) -> None:
        """cmp [env.irq], 0; jne cold_exit  — clobbers EFLAGS."""
        builder = self.builder
        saved = self._sync_before_clobber()
        label = builder.new_label("irq")
        with builder.tagged(IRQ_TAG):
            builder.cmp(Mem(base=ENV_REG, disp=ENV_IRQ), Imm(0))
            builder.jcc(X86Cond.NE, label)
        self.flags.on_clobber()
        if saved:
            self._eager_restore()
        snapshot = [(guest, host) for guest, host
                    in sorted(self.cache.guest_to_host.items())
                    if guest in self.cache.dirty]
        self._cold_stubs.append(_ColdStub(label, resume_pc, snapshot))
        self._irq_checked = True

    def _emit_cold_stubs(self) -> None:
        builder = self.builder
        for stub in self._cold_stubs:
            builder.bind(stub.label)
            with builder.tagged(IRQ_TAG):
                for guest, host in stub.dirty_snapshot:
                    builder.mov(Mem(base=ENV_REG, disp=env_reg(guest)),
                                Reg(host))
                builder.mov(Mem(base=ENV_REG, disp=env_reg(PC)),
                            Imm(stub.resume_pc))
                builder.exit_tb(EXIT_INTERRUPT)

    # ------------------------------------------------------------------
    # Coordination policy helpers.
    # ------------------------------------------------------------------

    def _sync_before_clobber(self) -> bool:
        """Save the CCR to env before EFLAGS is about to be clobbered.

        Returns True when a save was emitted (Base pairs its eager
        restore with it, per Figs 6 and 10).  The naive design saves at
        *every* site where the CCR is live in EFLAGS; skipping the save
        when env is already current is the consecutive-site elimination
        of Sec III-C-2, so it only applies at the elimination level.
        """
        if self.config.eliminate_redundant:
            if self.flags.need_save():
                self.flags.emit_save()
                return True
            if self.flags.in_eflags:
                # env is already current: the naive policy would have
                # saved here — a consecutive-site elision (Sec III-C-2).
                self.stats.elided_saves += 1
                self._justifications.append(elide_save_justification(
                    len(self.builder.insns), self.flags.packed_ok,
                    self.flags.parsed_ok))
                if self.tracer.enabled:
                    self.tracer.emit("sync.elide", kind="consecutive")
            return False
        if self.flags.in_eflags:
            self.flags.emit_save()
            return True
        return False

    def _eager_restore(self) -> None:
        """Base/+Reduction restore the CCR right after every site."""
        if not self.config.eliminate_redundant:
            self.flags.emit_restore()

    def _demand_flags(self) -> None:
        """Make sure the live CCR is in EFLAGS (restore on demand)."""
        if not self.config.eliminate_redundant:
            # Base/+Reduction: the conditional-instruction rule pattern
            # always rematerializes the condition from env (Fig 9
            # "before"): save if dirty, then an (often redundant) restore.
            if self.flags.need_save():
                self.flags.emit_save()
            self.flags.emit_restore()
            return
        if self.flags.need_restore():
            self.flags.emit_restore()

    def _ensure_default_env(self) -> None:
        """Publish the live CCR in the mode's default representation."""
        flags = self.flags
        default_ok = flags.packed_ok if self.config.packed_sync \
            else flags.parsed_ok
        if default_ok:
            return
        if not flags.in_eflags:
            flags.emit_restore()
        flags.emit_save()

    def _canonicalize_kind(self, wanted: CarryKind) -> None:
        if self.flags.kind != wanted:
            self.builder.cmc(tag="sync")
            self.flags.kind = wanted

    # ------------------------------------------------------------------
    # Instruction dispatch.
    # ------------------------------------------------------------------

    def _emit_insn(self, item: InsnInfo) -> None:
        insn = item.insn

        if insn.cond != Cond.AL:
            self._emit_conditional(item)
            return
        self._emit_body(item)

    def _emit_body(self, item: InsnInfo) -> None:  # noqa: C901
        insn = item.insn
        op = insn.op

        if insn.is_system() or op is Op.SVC:
            # System instructions always go through helpers (they cannot
            # be learned from user-level code) — this is the path with
            # the lazy packed-flags parse of Sec III-B.
            self._emit_system(insn)
            return
        if not item.covered:
            self._emit_fallback(insn)
            return
        if op in (Op.B, Op.BL):
            self._emit_direct_branch(insn)
            return
        if op is Op.BX:
            self._emit_indirect_branch(insn)
            return
        if op in VFP_ARITH_OPS or op in (Op.VMOVSR, Op.VMOVRS):
            self._emit_vfp(insn)
            return
        if op is Op.VCMP:
            # Like other helper-emulated instructions (reads/writes FPSCR).
            self._emit_system(insn)
            return
        if insn.is_memory():
            self._emit_memory(item)
            return

        # ALU-family instruction.
        reads = flags_read(insn)
        writes = flags_written(insn)
        if reads:
            self._demand_flags()
        elif writes and writes != F_ALL and self.flags.need_restore():
            # Partial producers (logical/multiply: N/Z only) leave the
            # untouched C/V bits in EFLAGS — those must hold the live
            # values before the update lands on top of them.
            self.flags.emit_restore()
        clobbers = not writes and self.alu.clobbers_eflags(insn)
        if clobbers and self.flags.in_eflags and item.live_after:
            # Protect the live CCR before the body destroys it.  The save
            # canonicalizes the carry; re-adjust afterwards if the body
            # consumes the other convention (e.g. a plain sbc).
            self._sync_before_clobber()
        if reads:
            wanted = self.alu.required_kind(insn)
            if wanted is not None:
                self._canonicalize_kind(wanted)
        if clobbers:
            self.flags.on_clobber()

        body_start = len(self.builder.insns)
        if op in DATA_PROCESSING_OPS:
            if insn.rd == PC and op not in COMPARE_OPS:
                self._emit_pc_write_dp(insn)
                return
            self.alu.emit_dp(insn, flags_live=self.flags.in_eflags)
        elif op in (Op.MUL, Op.MLA):
            self.alu.emit_multiply(insn)
        elif op is Op.CLZ:
            self.alu.emit_clz(insn)
        elif op is Op.NOP:
            self.builder.nop()
        else:
            self._emit_fallback(insn)
            return

        if writes:
            kind, partial = self.alu.produces_kind(insn)
            self.flags.on_produce(kind, partial=partial)
            self._audit.append(produce_event(
                body_start, len(self.builder.insns), flags=writes,
                live_after=item.live_after,
                carry=kind.name.lower() if kind is not None else None,
                partial=partial, guest_addr=insn.addr))

    # ------------------------------------------------------------------
    # Conditional execution.
    # ------------------------------------------------------------------

    def _emit_conditional(self, item: InsnInfo) -> None:
        insn = item.insn
        builder = self.builder

        # Conditional direct branch: ends the TB with two successors.
        if insn.op is Op.B:
            self._emit_conditional_branch(insn)
            return

        self._demand_flags()

        body_produces = bool(flags_written(insn))
        body_clobbers = (insn.is_memory() or insn.is_system() or
                         insn.op is Op.SVC or not item.covered or
                         self.alu.clobbers_eflags(insn) or body_produces)
        if body_produces:
            # The executed path re-saves at the body end in the default
            # representation; the skipped path must already hold the old
            # flags in that SAME representation.
            self._ensure_default_env()
        elif body_clobbers:
            # Externalize flags before the skip branch so both paths
            # join consistently.
            self._sync_before_clobber()
        if insn.is_system() or insn.op is Op.SVC or not item.covered or \
                insn.writes_pc() or insn.is_memory():
            # Helpers (and TB-ending bodies, whose flushes would sit in
            # the skipped region) need dirty registers flushed pre-branch.
            count = self.cache.flush_dirty(tag="sync")
            self.stats.reg_flush_insns += count
        if not item.covered and not (insn.is_system() or
                                      insn.op is Op.SVC):
            # The fallback body may read or partially update the per-bit
            # flag fields; make them current on BOTH paths (state
            # externalization inside the skipped region would be wrong).
            self.flags.ensure_parsed()

        # Pre-touch guest registers so no cache traffic happens inside
        # the conditional body.
        self._pretouch(insn)
        if insn.is_memory():
            self._prealloc_scratch = self.cache.scratch({EAX, EDX})

        skip = builder.new_label("skip")
        execute = builder.new_label("exec")
        used_exec = self._emit_skip_branches(insn.cond, skip, execute)

        if insn.op is Op.BL:
            # Conditional call: lr write + TB end on the taken path.
            lr = self.cache.write(14)
            builder.movi(Reg(lr), u32(insn.addr + 4))
            self._end_block(slot=0, target_pc=insn.target,
                            state_copy=True)
            builder.bind(skip)
            self._ended = False
            self._end_block(slot=1, target_pc=u32(insn.addr + 4))
            return

        self._emit_body(item)
        if self._ended:
            # The body terminated the TB (pc writer / system / svc):
            # the skipped path continues at the next instruction.
            builder.bind(skip)
            self._ended = False
            self._end_block(slot=1, target_pc=u32(insn.addr + 4))
            return
        if body_produces and self.flags.in_eflags:
            # Publish the new flags before the join so both paths agree
            # (the pre-branch save already published the old ones for
            # the skipped path).  A fallback body leaves its flags in
            # env directly, in which case there is nothing in EFLAGS to
            # publish.
            self.flags.emit_save()
        builder.bind(skip)
        if body_produces or body_clobbers:
            # Conservative merge: env is current on both paths (the
            # pre-branch and body-end saves published it); EFLAGS content
            # differs between paths, so stop relying on it.
            self.flags.in_eflags = False
            self._eager_restore()

    def _pretouch(self, insn: ArmInsn) -> None:
        from .analysis import regs_read, regs_written
        for guest in sorted(regs_read(insn) | regs_written(insn)):
            if guest != PC:
                self.cache.read(guest)
        for guest in sorted(regs_written(insn)):
            if guest != PC:
                self.cache.write(guest)

    def _emit_skip_branches(self, cond: Cond, skip: str,
                            execute: str) -> bool:
        """Emit the jcc sequence skipping the body when *cond* fails."""
        builder = self.builder
        used_exec = False
        sequence = skip_sequence(cond, self.flags.kind)
        for host_cond, target in sequence:
            if target == "skip":
                builder.jcc(host_cond, skip)
            else:
                builder.jcc(host_cond, execute)
                used_exec = True
        if used_exec:
            builder.bind(execute)
        return used_exec

    def _emit_conditional_branch(self, insn: ArmInsn) -> None:
        """b<cond>: two-successor TB end."""
        builder = self.builder
        self._demand_flags()
        count = self.cache.flush_dirty(tag="sync")
        self.stats.reg_flush_insns += count

        taken = builder.new_label("taken")
        execute = builder.new_label("bexec")
        # Invert the skip sequence: jump to `taken` when cond passes.
        sequence = skip_sequence(insn.cond, self.flags.kind)
        if len(sequence) == 1:
            host_cond, _ = sequence[0]
            from .condmap import negate
            builder.jcc(negate(host_cond), taken)
        else:
            # Two-test conditions: fall into taken when not skipped.
            fall = builder.new_label("fall")
            for host_cond, target in sequence:
                builder.jcc(host_cond,
                            fall if target == "skip" else execute)
            if any(target == "exec" for _, target in sequence):
                builder.bind(execute)
            builder.jmp(taken)
            builder.bind(fall)

        self._end_block(slot=1, target_pc=u32(insn.addr + 4),
                        state_copy=True)
        builder.bind(taken)
        self._ended = False
        self._end_block(slot=0, target_pc=insn.target)

    # ------------------------------------------------------------------
    # VFP (the footnote-3 extension): learned FP rules lower to scalar
    # SSE directly on the env slots — no helper, no EFLAGS clobber, and
    # therefore NO coordination.  This is why the paper reports 1.92x
    # with floating-point workloads included.
    # ------------------------------------------------------------------

    _VFP_HOST = {Op.VADD: X86Op.ADDSS, Op.VSUB: X86Op.SUBSS,
                 Op.VMUL: X86Op.MULSS}

    def _emit_vfp(self, insn: ArmInsn) -> None:
        builder = self.builder
        if insn.op is Op.VMOVSR:
            host = self.cache.read(insn.rd)
            builder.mov(Mem(base=ENV_REG, disp=env_vfp(insn.fn)), Reg(host))
            return
        if insn.op is Op.VMOVRS:
            host = self.cache.write(insn.rd)
            builder.mov(Reg(host), Mem(base=ENV_REG, disp=env_vfp(insn.fn)))
            return
        builder.emit(X86Op.MOVSS, Xmm(0),
                     Mem(base=ENV_REG, disp=env_vfp(insn.fn)))
        builder.emit(self._VFP_HOST[insn.op], Xmm(0),
                     Mem(base=ENV_REG, disp=env_vfp(insn.fm)))
        builder.emit(X86Op.MOVSS,
                     Mem(base=ENV_REG, disp=env_vfp(insn.fd)), Xmm(0))

    # ------------------------------------------------------------------
    # Memory accesses.
    # ------------------------------------------------------------------

    def _take_mem_scratch(self, forbidden) -> int:
        """Scratch host register for address computation.

        For conditional bodies the register was grabbed before the skip
        branch (cache eviction code must not sit in a skipped region).
        """
        if self._prealloc_scratch is not None:
            reg = self._prealloc_scratch
            self._prealloc_scratch = None
            if reg not in forbidden:
                return reg
        return self.cache.scratch(set(forbidden))

    _SIZES = {Op.LDR: 4, Op.STR: 4, Op.LDRB: 1, Op.STRB: 1, Op.LDRH: 2,
              Op.STRH: 2, Op.LDRSB: 1, Op.LDRSH: 2}

    def _emit_memory(self, item: InsnInfo) -> None:
        insn = item.insn
        # The softmmu probe clobbers EFLAGS: coordinate first (Sec II-C).
        saved = self._sync_before_clobber()
        # Memory accesses can fault and resume (demand paging): the
        # dirty guest-register copies must be in env before the access
        # so the abort handler and the retried instruction see them.
        self.stats.reg_flush_insns += self.cache.flush_dirty(tag="sync")
        self.flags.on_clobber()
        if insn.op in (Op.LDM, Op.STM):
            self._emit_block_memory(insn)
        elif insn.op in (Op.VLDR, Op.VSTR):
            self._emit_vfp_memory(insn)
        else:
            self._emit_single_memory(insn)
        if saved:
            # Base/+Reduction close the pair (Fig 10 "before"); the
            # elimination level restores on demand instead.
            self._eager_restore()

    def _address_reg(self, insn: ArmInsn) -> Tuple[int, int]:
        """(host reg with the effective address, new base value reg).

        Uses flag-safe lea arithmetic where possible; shifted register
        offsets may use shifts freely because the CCR was already synced.
        """
        builder = self.builder
        cache = self.cache
        base = cache.read(insn.rn) if insn.rn != PC else None
        if base is None:
            builder.movi(Reg(EDX), u32(insn.addr + 8))
            base = EDX
        addr = self._take_mem_scratch({base, EAX, EDX})
        if insn.mem_offset_reg is not None:
            offset_reg = cache.read(insn.mem_offset_reg, {base, addr})
            if insn.mem_shift == ShiftKind.LSL and \
                    insn.mem_shift_imm in (0, 1, 2, 3) and insn.add_offset:
                scale = 1 << insn.mem_shift_imm
                builder.lea(Reg(addr), Mem(base=base, index=offset_reg,
                                           scale=scale))
            else:
                builder.mov(Reg(addr), Reg(offset_reg))
                if insn.mem_shift_imm:
                    host_shift = {ShiftKind.LSL: "shl", ShiftKind.LSR: "shr",
                                  ShiftKind.ASR: "sar",
                                  ShiftKind.ROR: "ror"}[insn.mem_shift]
                    getattr(builder, host_shift)(Reg(addr),
                                                 Imm(insn.mem_shift_imm))
                if insn.add_offset:
                    builder.add(Reg(addr), Reg(base))
                else:
                    builder.neg(Reg(addr))
                    builder.add(Reg(addr), Reg(base))
        else:
            disp = insn.mem_offset_imm if insn.add_offset \
                else -insn.mem_offset_imm
            builder.lea(Reg(addr), Mem(base=base, disp=disp & 0xFFFFFFFF))
        return addr, base

    def _emit_single_memory(self, insn: ArmInsn) -> None:
        builder = self.builder
        cache = self.cache
        size = self._SIZES[insn.op]
        signed = insn.op in (Op.LDRSB, Op.LDRSH)
        is_store = insn.op in (Op.STR, Op.STRB, Op.STRH)

        addr_reg, _ = self._address_reg(insn)
        effective = addr_reg if insn.pre_indexed else \
            cache.read(insn.rn, {addr_reg})

        if is_store:
            if insn.rd == PC:
                builder.movi(Reg(EDX), u32(insn.addr + 8))
                value_reg = EDX
            else:
                value_reg = cache.read(insn.rd, {effective, addr_reg})
            mmu_codegen.emit_store(builder, effective, value_reg, size,
                                   self.mmu_idx, insn.addr)
        else:
            mmu_codegen.emit_load(builder, effective, size, signed,
                                  self.mmu_idx, insn.addr)

        writeback = (not insn.pre_indexed) or insn.writeback
        if writeback and not (insn.is_load() and insn.rd == insn.rn):
            wb = cache.write(insn.rn, {EAX, addr_reg})
            builder.mov(Reg(wb), Reg(addr_reg))

        if not is_store:
            if insn.rd == PC:
                self._end_indirect_from(EAX)
                return
            rd = cache.write(insn.rd, {EAX})
            builder.mov(Reg(rd), Reg(EAX))

    def _emit_vfp_memory(self, insn: ArmInsn) -> None:
        builder = self.builder
        cache = self.cache
        base = cache.read(insn.rn)
        addr = self._take_mem_scratch({base, EAX, EDX})
        disp = insn.mem_offset_imm if insn.add_offset \
            else -insn.mem_offset_imm
        builder.lea(Reg(addr), Mem(base=base, disp=disp & 0xFFFFFFFF))
        if insn.op is Op.VLDR:
            mmu_codegen.emit_load(builder, addr, 4, False, self.mmu_idx,
                                  insn.addr)
            builder.mov(Mem(base=ENV_REG, disp=env_vfp(insn.fd)), Reg(EAX))
        else:
            builder.mov(Reg(EAX), Mem(base=ENV_REG, disp=env_vfp(insn.fd)))
            # the probe clobbers EAX: route the value through a cache reg
            value = cache.scratch({base, addr, EAX, EDX})
            builder.mov(Reg(value), Reg(EAX))
            mmu_codegen.emit_store(builder, addr, value, 4, self.mmu_idx,
                                   insn.addr)

    def _emit_block_memory(self, insn: ArmInsn) -> None:
        builder = self.builder
        cache = self.cache
        count = len(insn.reglist)
        base = cache.read(insn.rn)
        addr = self._take_mem_scratch({base, EAX, EDX})
        if insn.increment:
            start = 4 if insn.before else 0
            new_base_disp = 4 * count
        else:
            start = -4 * count + (0 if insn.before else 4)
            new_base_disp = -4 * count
        builder.lea(Reg(addr), Mem(base=base, disp=start & 0xFFFFFFFF))

        # Write the base back *before* the transfer loop: the loop's loads
        # may evict and reuse the host register caching the base (loads of
        # listed registers override the writeback, matching ARM's
        # unpredictable-but-common behaviour for rn in the list).
        if insn.writeback:
            wb = cache.write(insn.rn, {addr, base})
            if wb != base:
                builder.mov(Reg(wb), Reg(base))
            builder.lea(Reg(wb), Mem(base=wb,
                                     disp=new_base_disp & 0xFFFFFFFF))

        loaded_pc = False
        for position, guest in enumerate(sorted(insn.reglist)):
            if position:
                builder.lea(Reg(addr), Mem(base=addr, disp=4))
            if insn.op is Op.STM:
                if guest == PC:
                    builder.movi(Reg(EDX), u32(insn.addr + 8))
                    value_reg = EDX
                else:
                    value_reg = cache.read(guest, {addr})
                mmu_codegen.emit_store(builder, addr, value_reg, 4,
                                       self.mmu_idx, insn.addr)
            else:
                mmu_codegen.emit_load(builder, addr, 4, False,
                                      self.mmu_idx, insn.addr)
                if guest == PC:
                    loaded_pc = True
                    builder.mov(Mem(base=ENV_REG, disp=env_reg(PC)),
                                Reg(EAX))
                else:
                    rd = cache.write(guest, {EAX, addr})
                    builder.mov(Reg(rd), Reg(EAX))
        if loaded_pc:
            # env.pc was stored from the load; finish as indirect exit.
            self._finish_indirect_exit(pc_in_env=True)

    # ------------------------------------------------------------------
    # Branches / TB ends.
    # ------------------------------------------------------------------

    def _emit_direct_branch(self, insn: ArmInsn) -> None:
        if insn.op is Op.BL:
            lr = self.cache.write(14)
            self.builder.movi(Reg(lr), u32(insn.addr + 4))
        self._end_block(slot=0, target_pc=insn.target)

    def _emit_indirect_branch(self, insn: ArmInsn) -> None:
        host = self.cache.read(insn.rm)
        self._sync_before_clobber()   # the mask below clobbers EFLAGS
        self.flags.on_clobber()
        self.builder.mov(Reg(EAX), Reg(host))
        self.builder.and_(Reg(EAX), Imm(0xFFFFFFFE))
        self._end_indirect_from(EAX)

    def _emit_pc_write_dp(self, insn: ArmInsn) -> None:
        """mov pc, rX / add pc, ... (without S: plain indirect branch)."""
        if insn.set_flags:
            self._emit_system(insn)  # exception return via helper
            return
        self._sync_before_clobber()   # shift/mask below clobber EFLAGS
        self.flags.on_clobber()
        src = self.alu.operand2_value(insn, set())
        builder = self.builder
        if insn.op is Op.MOV:
            if isinstance(src, Imm):
                self._end_block(slot=0, target_pc=src.value & 0xFFFFFFFC)
                return
            builder.mov(Reg(EAX), src)
        elif insn.op is Op.ADD:
            rn = self.alu._read_guest(insn.rn, insn, set())
            builder.mov(Reg(EAX), Reg(rn))
            builder.add(Reg(EAX), src)
        else:
            self._emit_fallback(insn)
            return
        builder.and_(Reg(EAX), Imm(0xFFFFFFFC))
        self._end_indirect_from(EAX)

    def _end_indirect_from(self, host_reg: int) -> None:
        builder = self.builder
        builder.mov(Mem(base=ENV_REG, disp=env_reg(PC)), Reg(host_reg))
        self._finish_indirect_exit(pc_in_env=True)

    def _finish_indirect_exit(self, pc_in_env: bool) -> None:
        count = self.cache.flush_dirty(tag="sync")
        self.stats.reg_flush_insns += count
        if self.flags.need_save():
            self.flags.emit_save()
        self.builder.exit_tb(EXIT_PC_UPDATED, tag="chain")
        self._ended = True

    def _end_block(self, slot: int, target_pc: int,
                   state_copy: bool = False) -> None:
        """Terminate the block through goto_tb *slot* to *target_pc*."""
        builder = self.builder
        flags = copy.copy(self.flags) if state_copy else self.flags
        count = self.cache.flush_dirty(tag="sync")
        self.stats.reg_flush_insns += count

        if flags.need_save():
            skip_save = (self.config.inter_tb and
                         self.successor_live_in(target_pc) == 0)
            if skip_save:
                self.stats.inter_tb_elisions += 1
                self._justifications.append(inter_tb_justification(
                    len(builder.insns), u32(target_pc), live_in=0))
                if self.tracer.enabled:
                    self.tracer.emit("sync.elide", kind="inter-tb",
                                     target_pc=target_pc)
            else:
                flags.emit_save()
        builder.goto_tb(slot, tag="chain")
        builder.mov(Mem(base=ENV_REG, disp=env_reg(PC)), Imm(u32(target_pc)),
                    tag="chain")
        builder.exit_tb(EXIT_PC_UPDATED, tag="chain")
        self._jmp_pcs[slot] = u32(target_pc)
        self._ended = True

    # ------------------------------------------------------------------
    # System instructions and the QEMU fallback.
    # ------------------------------------------------------------------

    def _emit_system(self, insn: ArmInsn) -> None:
        builder = self.builder
        self._sync_before_clobber()
        count = self.cache.flush_dirty(tag="sync")
        self.stats.reg_flush_insns += count
        self.flags.on_clobber()

        if insn.op is Op.SVC:
            self._audit.append(terminal_event(len(builder.insns)))
            builder.call_helper(make_svc_helper(insn), tag="helper")
            self._ended = True
            return
        if insn.op in DATA_PROCESSING_OPS and insn.set_flags and \
                insn.rd == PC:
            # Exception return: compute the target, then helper.
            src = self.alu.operand2_value(insn, set())
            if insn.op is Op.MOV:
                if isinstance(src, Imm):
                    builder.movi(Reg(EAX), src.value)
                else:
                    builder.mov(Reg(EAX), src)
            elif insn.op in (Op.SUB, Op.ADD):
                rn = self.alu._read_guest(insn.rn, insn, set())
                builder.mov(Reg(EAX), Reg(rn))
                host_op = "sub" if insn.op is Op.SUB else "add"
                getattr(builder, host_op)(Reg(EAX), src)
            else:
                self._emit_fallback(insn)
                return
            from ..host.isa import ESP
            builder.push(Reg(EAX), tag="helper")
            self._audit.append(terminal_event(len(builder.insns)))
            builder.call_helper(make_exception_return_helper(insn),
                                args=(Mem(base=ESP, disp=0),), tag="helper")
            self._ended = True
            return

        builder.call_helper(make_sysreg_helper(insn), tag="helper")
        self.cache.invalidate()
        self.flags.on_helper_wrote_flags()
        self._eager_restore()
        # System instructions can change the mode/MMU/interrupt state:
        # end the TB like QEMU does.
        self._end_block(slot=0, target_pc=u32(insn.addr + 4))

    def _emit_fallback(self, insn: ArmInsn) -> None:
        """Uncovered instruction: inline QEMU-style (IR) translation."""
        if self.tcg_fallback is None:
            raise RuntimeError(f"no fallback translator for {insn}")
        builder = self.builder
        self._sync_before_clobber()
        count = self.cache.flush_dirty(tag="sync")
        self.stats.reg_flush_insns += count
        self.flags.on_clobber()
        self.cache.invalidate()

        reads = flags_read(insn)
        writes = flags_written(insn)
        if reads or writes not in (0, F_ALL):
            # The inline QEMU code reads (or partially updates) the
            # per-bit fields directly: they must be current.
            self.flags.ensure_parsed()
        host_insns, ended = self.tcg_fallback(insn, self.mmu_idx)
        offset = len(builder.insns)
        for host_insn in host_insns:
            if host_insn.target_index >= 0:
                host_insn.target_index += offset
            host_insn.tag = "fallback"
            builder.insns.append(host_insn)
        if flags_written(insn):
            # The fallback wrote the per-bit fields directly: invalidate
            # the packed slot at runtime and in the static tracker.
            builder.mov(Mem(base=ENV_REG, disp=ENV_PACKED_VALID), Imm(0),
                        tag="fallback")
            self.flags.on_fallback_wrote_flags()
        else:
            # The fallback may clobber EFLAGS; the pre-splice save (or
            # prior currency) keeps env authoritative.
            self.flags.on_clobber()
        self._audit.append(fallback_event(
            offset, len(builder.insns), reads=reads,
            writes=flags_written(insn), ended=ended))
        if ended:
            self._ended = True
        else:
            self._eager_restore()

