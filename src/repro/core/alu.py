"""Rule-based translation of data-processing instructions.

These emitters are the host-side templates of the learned translation
rules: one guest ALU instruction becomes one (sometimes two or three)
host instructions, with the guest condition codes living directly in the
host FLAGS register.  Compare with the TCG frontend, which expands the
same instructions into ~10-18 host instructions through the IR.

Flag-safety: when the guest CCR is live in EFLAGS and an instruction must
not disturb it, flag-transparent encodings are used (``lea``/``mov``/
``not``).  :meth:`AluEmitter.clobbers_eflags` tells the translator when
no transparent encoding exists, so it can sync-save first.

Carry composition: host ``adc`` consumes CF directly while ARM ``adc``
consumes ARM C, so the translator canonicalizes the carry convention
(one ``cmc``) before ADC-family (needs DIRECT) and SBC-family (needs
INVERTED) bodies — which is a no-op in the natural chains
``adds; adcs`` and ``subs; sbcs``.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..common.bitops import u32
from ..guest.isa import (ArmInsn, COMPARE_OPS, Op, PC, ShiftKind)
from ..host.builder import CodeBuilder
from ..host.isa import EAX, ECX, EDX, Imm, Mem, Reg, X86Cond, X86Op
from .analysis import flags_written
from .condmap import CarryKind
from .regcache import RegCache

_SHIFT_HOST = {ShiftKind.LSL: X86Op.SHL, ShiftKind.LSR: X86Op.SHR,
               ShiftKind.ASR: X86Op.SAR, ShiftKind.ROR: X86Op.ROR}

_BINOP_HOST = {Op.ADD: X86Op.ADD, Op.ADC: X86Op.ADC, Op.SUB: X86Op.SUB,
               Op.SBC: X86Op.SBB, Op.AND: X86Op.AND, Op.ORR: X86Op.OR,
               Op.EOR: X86Op.XOR, Op.BIC: X86Op.AND}


def _has_real_shift(insn: ArmInsn) -> bool:
    op2 = insn.op2
    if op2 is None or op2.is_imm:
        return False
    return op2.shift != ShiftKind.LSL or op2.shift_imm != 0 or \
        op2.rs is not None


class AluEmitter:
    """Emits rule-translated ALU bodies.  One instance per TB."""

    def __init__(self, builder: CodeBuilder, cache: RegCache):
        self.builder = builder
        self.cache = cache

    # ------------------------------------------------------------------
    # Queries used by the translator's flag tracking.
    # ------------------------------------------------------------------

    @staticmethod
    def clobbers_eflags(insn: ArmInsn) -> bool:
        """True if the *non-flag-setting* body would corrupt a live CCR."""
        if flags_written(insn):
            return False  # a producer, handled by the flag tracker
        op = insn.op
        if op in (Op.MUL, Op.MLA):
            return True   # imul rewrites N/Z
        if op is Op.CLZ:
            return True   # bsr writes ZF
        if _has_real_shift(insn):
            return True   # host shifts rewrite C/N/Z
        if op in (Op.ADC, Op.SBC, Op.RSC):
            return True   # adc/sbb rewrite all flags
        if op in (Op.ADD, Op.SUB, Op.MOV):
            return False  # lea / mov are flag-transparent
        if op is Op.MVN:
            return False  # mov + not, both transparent
        if op in (Op.AND, Op.ORR, Op.EOR, Op.BIC, Op.RSB):
            return True   # need a real ALU op (writes N/Z at least)
        return False

    @staticmethod
    def required_kind(insn: ArmInsn) -> Optional[CarryKind]:
        """Carry convention the body needs in EFLAGS before executing."""
        if insn.op in (Op.ADC,):
            return CarryKind.DIRECT
        if insn.op in (Op.SBC, Op.RSC):
            return CarryKind.INVERTED
        if insn.op2 is not None and not insn.op2.is_imm and \
                insn.op2.shift == ShiftKind.RRX:
            return CarryKind.DIRECT  # rcr consumes CF as the ARM C
        return None

    @staticmethod
    def produces_kind(insn: ArmInsn) -> Tuple[Optional[CarryKind], bool]:
        """(carry kind, partial) left in EFLAGS by this flag producer.

        ``partial`` marks producers that define only N/Z (logical ops,
        multiplies): C and V keep their previous convention.
        """
        op = insn.op
        if op in (Op.CMP, Op.SUB, Op.SBC, Op.RSB, Op.RSC):
            return CarryKind.INVERTED, False
        if op in (Op.CMN, Op.ADD, Op.ADC):
            return CarryKind.DIRECT, False
        if flags_written(insn) & 4:  # shifter/rotated-imm writes C directly
            return CarryKind.DIRECT, True
        return None, True

    # ------------------------------------------------------------------
    # Operand-2 materialization.
    # ------------------------------------------------------------------

    def _read_guest(self, number: int, insn: ArmInsn,
                    forbidden: Set[int]) -> int:
        """Host register holding the guest register (PC reads addr+8)."""
        if number == PC:
            self.builder.movi(Reg(EDX), u32(insn.addr + 8))
            return EDX
        return self.cache.read(number, forbidden)

    def operand2_value(self, insn: ArmInsn, forbidden: Set[int]):
        """Materialize operand2 as an Imm or a Reg (scratch EAX if shifted).

        Emits host shifts when needed — the caller has already checked
        :meth:`clobbers_eflags` / arranged a save.
        """
        op2 = insn.op2
        builder = self.builder
        if op2.is_imm:
            return Imm(op2.imm)
        reg = self._read_guest(op2.rm, insn, forbidden)
        if not _has_real_shift(insn):
            return Reg(reg)
        builder.mov(Reg(EAX), Reg(reg))
        if op2.shift == ShiftKind.RRX:
            builder.rcr1(Reg(EAX))
            return Reg(EAX)
        if op2.rs is not None:
            amount_reg = self.cache.read(op2.rs, forbidden | {EAX})
            if amount_reg != ECX:
                self.cache._evict(ECX)
                builder.mov(Reg(ECX), Reg(amount_reg))
            builder.emit(_SHIFT_HOST[op2.shift], Reg(EAX), Reg(ECX))
            return Reg(EAX)
        amount = op2.shift_imm
        if amount == 32 and op2.shift in (ShiftKind.LSR, ShiftKind.ASR):
            if op2.shift == ShiftKind.LSR:
                builder.movi(Reg(EAX), 0)
            else:
                builder.sar(Reg(EAX), Imm(31))
            return Reg(EAX)
        builder.emit(_SHIFT_HOST[op2.shift], Reg(EAX), Imm(amount))
        return Reg(EAX)

    # ------------------------------------------------------------------
    # Main emitters.
    # ------------------------------------------------------------------

    def _emit_imm_carry(self, insn: ArmInsn) -> None:
        """Rotated immediates set the ARM shifter carry to imm[31]."""
        if insn.op2 is not None and insn.op2.is_imm and insn.op2.imm > 0xFF:
            if (insn.op2.imm >> 31) & 1:
                self.builder.emit(X86Op.STC)
            else:
                self.builder.emit(X86Op.CLC)

    def emit_dp(self, insn: ArmInsn, flags_live: bool) -> None:
        """Emit a data-processing instruction (rd != PC guaranteed)."""
        op = insn.op
        builder = self.builder
        cache = self.cache

        if op in COMPARE_OPS:
            self._emit_compare(insn)
            return

        if op in (Op.ADD, Op.SUB) and not insn.set_flags and flags_live \
                and not self.clobbers_eflags(insn):
            self._emit_lea_add_sub(insn)
            return

        src = self.operand2_value(insn, forbidden=set())
        src_regs = {src.number} if isinstance(src, Reg) else set()

        if op in (Op.MOV, Op.MVN):
            rd = cache.write(insn.rd, forbidden=src_regs)
            builder.mov(Reg(rd), src)
            if op is Op.MVN:
                builder.not_(Reg(rd))
            if insn.set_flags:
                # mov/not do not set host flags: the learned movs rule
                # carries an explicit test (plus stc/clc for the rotated
                # immediate's shifter carry).
                builder.test(Reg(rd), Reg(rd))
                self._emit_imm_carry(insn)
            return

        if op in (Op.RSB, Op.RSC):
            rn_reg = self._read_guest(insn.rn, insn, src_regs)
            if not (isinstance(src, Reg) and src.number == EAX):
                builder.mov(Reg(EAX), src)
            builder.emit(X86Op.SUB if op is Op.RSB else X86Op.SBB,
                         Reg(EAX), Reg(rn_reg))
            rd = cache.write(insn.rd, forbidden={EAX})
            builder.mov(Reg(rd), Reg(EAX))
            return

        if op is Op.BIC:
            if isinstance(src, Imm):
                src = Imm(~src.value & 0xFFFFFFFF)
            else:
                if src.number != EAX:
                    builder.mov(Reg(EAX), src)
                builder.not_(Reg(EAX))
                src = Reg(EAX)
                src_regs = {EAX}

        host_op = _BINOP_HOST[op]
        rn_reg = self._read_guest(insn.rn, insn, src_regs)
        if insn.rd == insn.rn and insn.rn != PC:
            rd = cache.write(insn.rd, forbidden=src_regs)
            builder.emit(host_op, Reg(rd), src)
        elif isinstance(src, Reg) and \
                cache.guest_to_host.get(insn.rd) == src.number:
            # rd aliases operand2 (e.g. "add r1, r0, r1"): writing rd's
            # host register first would destroy the operand.
            if op in (Op.ADD, Op.AND, Op.ORR, Op.EOR):
                # Commutative: accumulate rn into rd directly.
                rd = cache.write(insn.rd)
                builder.emit(host_op, Reg(rd), Reg(rn_reg))
            else:
                builder.mov(Reg(EDX), Reg(rn_reg))
                builder.emit(host_op, Reg(EDX), src)
                rd = cache.write(insn.rd, forbidden={EDX})
                builder.mov(Reg(rd), Reg(EDX))
        else:
            rd = cache.write(insn.rd, forbidden=src_regs | {rn_reg})
            builder.mov(Reg(rd), Reg(rn_reg))
            builder.emit(host_op, Reg(rd), src)
        if insn.set_flags and op in (Op.AND, Op.ORR, Op.EOR, Op.BIC):
            self._emit_imm_carry(insn)

    def _emit_lea_add_sub(self, insn: ArmInsn) -> None:
        """Flag-transparent add/sub (immediate or plain register op2)."""
        builder = self.builder
        cache = self.cache
        op2 = insn.op2
        rn_reg = self._read_guest(insn.rn, insn, set())
        if op2.is_imm:
            disp = op2.imm if insn.op is Op.ADD else -op2.imm
            rd = cache.write(insn.rd, forbidden={rn_reg})
            builder.lea(Reg(rd), Mem(base=rn_reg, disp=disp & 0xFFFFFFFF))
            return
        rm_reg = self.cache.read(op2.rm, {rn_reg})
        if insn.op is Op.ADD:
            rd = cache.write(insn.rd, forbidden={rn_reg, rm_reg})
            builder.lea(Reg(rd), Mem(base=rn_reg, index=rm_reg))
            return
        # Subtract without touching flags: rn + NOT(rm) + 1.
        builder.mov(Reg(EAX), Reg(rm_reg))
        builder.not_(Reg(EAX))
        rd = cache.write(insn.rd, forbidden={rn_reg, EAX})
        builder.lea(Reg(rd), Mem(base=rn_reg, index=EAX, disp=1))

    def _emit_compare(self, insn: ArmInsn) -> None:
        builder = self.builder
        src = self.operand2_value(insn, forbidden=set())
        src_regs = {src.number} if isinstance(src, Reg) else set()
        rn_reg = self._read_guest(insn.rn, insn, src_regs)
        if insn.op is Op.CMP:
            builder.cmp(Reg(rn_reg), src)
        elif insn.op is Op.TST:
            builder.test(Reg(rn_reg), src)
            self._emit_imm_carry(insn)
        elif insn.op is Op.TEQ:
            builder.mov(Reg(EDX), Reg(rn_reg))
            builder.xor(Reg(EDX), src)
            self._emit_imm_carry(insn)
        else:  # CMN: flags of rn + op2
            builder.mov(Reg(EDX), Reg(rn_reg))
            builder.add(Reg(EDX), src)

    def emit_multiply(self, insn: ArmInsn) -> None:
        builder = self.builder
        cache = self.cache
        rm = cache.read(insn.rm)
        rs = cache.read(insn.rs, {rm})
        if insn.op is Op.MLA or insn.rd != insn.rm:
            builder.mov(Reg(EAX), Reg(rm))
            builder.imul(Reg(EAX), Reg(rs))
            if insn.op is Op.MLA:
                rn = cache.read(insn.rn, {rm, rs})
                builder.add(Reg(EAX), Reg(rn))
            rd = cache.write(insn.rd, {EAX})
            builder.mov(Reg(rd), Reg(EAX))
        else:
            rd = cache.write(insn.rd, {rs})
            builder.imul(Reg(rd), Reg(rs))
        if insn.set_flags:
            builder.test(Reg(rd), Reg(rd))

    def emit_clz(self, insn: ArmInsn) -> None:
        builder = self.builder
        cache = self.cache
        rm = cache.read(insn.rm)
        done = builder.new_label("clz_done")
        builder.movi(Reg(EAX), 32)
        builder.bsr(Reg(EDX), Reg(rm))
        builder.jcc(X86Cond.E, done)
        builder.movi(Reg(EAX), 31)
        builder.sub(Reg(EAX), Reg(EDX))
        builder.bind(done)
        rd = cache.write(insn.rd, {EAX})
        builder.mov(Reg(rd), Reg(EAX))
