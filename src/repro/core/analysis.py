"""Static per-TB analysis for the rule-based engine.

Computes, over the guest instructions of one block:

- which NZCV flags each instruction reads and writes,
- backward flag liveness (flags are conservatively live out of the block),
- which instructions are coordination sites (memory / system / uncovered),
- the live-in flag requirement of a block (used by the inter-TB
  optimization to prove define-before-use in a chained successor),
- the define-before-use and interrupt-driven scheduling reorders
  (Sec III-D), implemented as a safe reordering of the instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..guest.isa import (ArmInsn, COMPARE_OPS, Cond, DATA_PROCESSING_OPS, Op,
                         PC, ShiftKind)

# Flag bit masks.
F_N = 1
F_Z = 2
F_C = 4
F_V = 8
F_ALL = F_N | F_Z | F_C | F_V
F_NONE = 0

_COND_READS = {
    Cond.EQ: F_Z, Cond.NE: F_Z,
    Cond.CS: F_C, Cond.CC: F_C,
    Cond.MI: F_N, Cond.PL: F_N,
    Cond.VS: F_V, Cond.VC: F_V,
    Cond.HI: F_C | F_Z, Cond.LS: F_C | F_Z,
    Cond.GE: F_N | F_V, Cond.LT: F_N | F_V,
    Cond.GT: F_N | F_Z | F_V, Cond.LE: F_N | F_Z | F_V,
    Cond.AL: F_NONE,
}

_LOGICAL_DP = frozenset({Op.AND, Op.EOR, Op.TST, Op.TEQ, Op.ORR, Op.MOV,
                         Op.BIC, Op.MVN})


def flags_read(insn: ArmInsn) -> int:
    """NZCV bits this instruction reads."""
    mask = _COND_READS[insn.cond]
    if insn.op in (Op.ADC, Op.SBC, Op.RSC):
        mask |= F_C
    if insn.op2 is not None and not insn.op2.is_imm and \
            insn.op2.shift == ShiftKind.RRX:
        mask |= F_C
    if insn.op is Op.MRS and not insn.spsr:
        mask |= F_ALL
    return mask


def flags_written(insn: ArmInsn) -> int:
    """NZCV bits this instruction definitely writes (when it executes)."""
    if insn.op in COMPARE_OPS:
        if insn.op in (Op.CMP, Op.CMN):
            return F_ALL
        # TST/TEQ: N,Z always; C only via a shifted operand.
        mask = F_N | F_Z
        if _shifter_touches_carry(insn):
            mask |= F_C
        return mask
    if insn.op in DATA_PROCESSING_OPS and insn.set_flags:
        if insn.op in _LOGICAL_DP:
            mask = F_N | F_Z
            if _shifter_touches_carry(insn):
                mask |= F_C
            return mask
        return F_ALL
    if insn.op in (Op.MUL, Op.MLA) and insn.set_flags:
        return F_N | F_Z
    if insn.op is Op.MSR and not insn.spsr and insn.imm & 0x8:
        return F_ALL
    if insn.op is Op.VMRS and insn.rd == PC:
        return F_ALL
    return F_NONE


def flags_written_may(insn: ArmInsn) -> int:
    """NZCV bits this instruction *may* write (regardless of its condition).

    A conditionally-executed flag-setter (``cond != AL`` with the S bit)
    writes its flags only on the taken path, so callers that need a
    *must*-def (liveness kills, define-before-use proofs) have to use
    :func:`flags_written_definite` instead.  This alias exists to make the
    may/must distinction explicit at call sites.
    """
    return flags_written(insn)


def flags_written_definite(insn: ArmInsn) -> int:
    """NZCV bits this instruction writes on *every* path through it.

    Conditional instructions contribute nothing: on the skipped path the
    flags pass through unchanged, so they are may-defs only and can never
    justify eliding a predecessor's sync-save.
    """
    if insn.cond != Cond.AL:
        return F_NONE
    return flags_written(insn)


def _shifter_touches_carry(insn: ArmInsn) -> bool:
    op2 = insn.op2
    if op2 is None:
        return False
    if op2.is_imm:
        return op2.imm > 0xFF  # rotated immediates set C from bit 31
    if op2.shift == ShiftKind.LSL and op2.shift_imm == 0 and op2.rs is None:
        return False
    return True


def regs_read(insn: ArmInsn) -> Set[int]:
    """Guest registers this instruction reads."""
    regs: Set[int] = set()
    op = insn.op
    if op in DATA_PROCESSING_OPS:
        if op not in (Op.MOV, Op.MVN):
            regs.add(insn.rn)
        if insn.op2 is not None and not insn.op2.is_imm:
            regs.add(insn.op2.rm)
            if insn.op2.rs is not None:
                regs.add(insn.op2.rs)
    elif op in (Op.MUL, Op.MLA):
        regs.update({insn.rm, insn.rs})
        if op is Op.MLA:
            regs.add(insn.rn)
    elif insn.is_memory():
        regs.add(insn.rn)
        if op in (Op.LDM, Op.STM):
            if op is Op.STM:
                regs.update(insn.reglist)
        else:
            if insn.mem_offset_reg is not None:
                regs.add(insn.mem_offset_reg)
            if insn.is_store() and op is not Op.VSTR:
                regs.add(insn.rd)
    elif op is Op.BX:
        regs.add(insn.rm)
    elif op in (Op.MSR, Op.VMSR):
        regs.add(insn.rm if op is Op.MSR else insn.rd)
    elif op is Op.MCR:
        regs.add(insn.rd)
    elif op is Op.CLZ:
        regs.add(insn.rm)
    elif op is Op.VMOVSR:
        regs.add(insn.rd)
    return regs


def regs_written(insn: ArmInsn) -> Set[int]:
    """Guest registers this instruction writes."""
    regs: Set[int] = set()
    op = insn.op
    if op in DATA_PROCESSING_OPS and op not in COMPARE_OPS:
        regs.add(insn.rd)
    elif op in (Op.MUL, Op.MLA, Op.CLZ):
        regs.add(insn.rd)
    elif op in (Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSB, Op.LDRSH):
        regs.add(insn.rd)
        if insn.writeback or not insn.pre_indexed:
            regs.add(insn.rn)
    elif op in (Op.STR, Op.STRB, Op.STRH):
        if insn.writeback or not insn.pre_indexed:
            regs.add(insn.rn)
    elif op is Op.LDM:
        regs.update(insn.reglist)
        if insn.writeback:
            regs.add(insn.rn)
    elif op is Op.STM:
        if insn.writeback:
            regs.add(insn.rn)
    elif op is Op.BL:
        regs.add(14)
    elif op in (Op.MRS, Op.MRC, Op.VMRS, Op.VMOVRS):
        regs.add(insn.rd)
    return regs


@dataclass
class InsnInfo:
    """Analysis results for one guest instruction."""

    insn: ArmInsn
    reads: int = 0            # flag read mask
    writes: int = 0           # flag write mask
    live_after: int = F_ALL   # flags live after this instruction
    is_site: bool = False     # coordination site (memory/system/uncovered)
    covered: bool = True      # covered by the rulebook


@dataclass
class BlockInfo:
    """Analysis results for one guest basic block."""

    insns: List[InsnInfo] = field(default_factory=list)
    #: flags that must be valid on entry (read before written, or not
    #: definitely written): the inter-TB optimization skips the
    #: predecessor's save only when a successor's live_in is empty.
    live_in: int = F_ALL
    #: static counts for the experiment harness
    n_memory: int = 0
    n_system: int = 0
    n_uncovered: int = 0


def analyze_block(insns: List[ArmInsn], rulebook=None) -> BlockInfo:
    """Run the full static analysis over a guest block."""
    info = BlockInfo()
    for insn in insns:
        item = InsnInfo(insn=insn, reads=flags_read(insn),
                        writes=flags_written(insn))
        # Control transfers are handled by the DBT's own control-flow
        # machinery (TB terminators, chaining), not by learned rules.
        item.covered = rulebook is None or insn.is_branch() or \
            rulebook.covers(insn)
        item.is_site = insn.is_memory() or insn.is_system() or \
            insn.op is Op.SVC or not item.covered
        if insn.is_memory():
            info.n_memory += 1
        if insn.is_system() or insn.op is Op.SVC:
            info.n_system += 1
        if not item.covered and not insn.is_system():
            info.n_uncovered += 1
        info.insns.append(item)

    # Backward liveness; flags escape at block end and into helpers.
    live = F_ALL
    for item in reversed(info.insns):
        item.live_after = live
        if item.insn.is_system() or item.insn.op is Op.SVC or \
                not item.covered:
            # Helpers may architecturally read the CPSR.
            live = F_ALL
            continue
        live = (live & ~flags_written_definite(item.insn)) | item.reads

    # Live-in requirement (for inter-TB define-before-use proofs):
    # conservatively, a flag is NOT needed at entry iff the block
    # unconditionally writes it before any read and before any
    # helper-style site (which may read the CPSR architecturally).
    needed = 0
    defined = 0
    for item in info.insns:
        needed |= item.reads & ~defined
        if item.insn.is_system() or item.insn.op is Op.SVC or \
                not item.covered:
            needed |= F_ALL & ~defined
            break
        defined |= flags_written_definite(item.insn)
        if defined == F_ALL:
            break
    # A flag the block never definitely writes is still required at
    # entry: it flows through to the block's own (conservative) live-out.
    # Without this term a pass-through block would report live_in == 0
    # and let a predecessor elide a save whose flags the *successor's
    # successors* still read.
    info.live_in = needed | (F_ALL & ~defined)
    return info


# ---------------------------------------------------------------------------
# Instruction scheduling (Sec III-D-1): hoist independent memory accesses
# above a flag producer so that producer->consumer pairs become adjacent
# and the memory access no longer splits a live flag range.
# ---------------------------------------------------------------------------


def _independent(mem: ArmInsn, producer: ArmInsn) -> bool:
    """May *mem* be moved above *producer*?"""
    if mem.cond != Cond.AL or producer.cond != Cond.AL:
        return False
    if flags_written(mem) or flags_read(mem):
        return False
    mem_reads, mem_writes = regs_read(mem), regs_written(mem)
    prod_reads, prod_writes = regs_read(producer), regs_written(producer)
    if mem_writes & (prod_reads | prod_writes):
        return False
    if mem_reads & prod_writes:
        return False
    return True


def schedule_define_before_use(insns: List[ArmInsn]) -> List[ArmInsn]:
    """Move ld/st instructions that sit between a flag producer and its
    consumer to before the producer, when data dependences allow.

    Stores may not move above other memory operations (aliasing); loads
    may not move above stores.  PC-changing and system instructions are
    barriers.
    """
    result = list(insns)
    changed = True
    while changed:
        changed = False
        for index in range(1, len(result)):
            insn = result[index]
            if not insn.is_memory() or insn.op in (Op.LDM, Op.STM):
                continue
            prev = result[index - 1]
            if not flags_written(prev) or prev.writes_pc() or \
                    prev.is_system():
                continue
            # Only useful if a consumer of prev's flags follows insn.
            follows = result[index + 1:]
            uses_later = any(flags_read(later) & flags_written(prev)
                             for later in follows)
            if not uses_later:
                continue
            if not _independent(insn, prev):
                continue
            # Memory ordering: moving a store above a non-memory flag
            # producer is safe; moving above another memory op is not
            # attempted (prev is a flag producer, never a memory op here,
            # since memory ops do not write flags).
            result[index - 1], result[index] = insn, prev
            changed = True
    return result
