"""Guest-register cache for rule-translated code.

The rule-based approach keeps guest CPU state in host registers: within a
TB, guest registers are loaded into host registers on first use and kept
there (dirty copies are flushed to ``env`` at coordination sites and at
the block end).  EAX and EDX stay reserved as scratch for the softmmu
sequences and the flag parses, mirroring the TCG backend's convention.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..host.builder import CodeBuilder
from ..host.isa import EBX, ECX, EDI, ENV_REG, ESI, Mem, Reg
from ..miniqemu.env import env_reg

#: Host registers available for caching guest registers.
CACHE_REGS = (EBX, ESI, EDI, ECX)


class RegCache:
    """Maps guest registers to host registers during one TB's emission."""

    def __init__(self, builder: CodeBuilder):
        self.builder = builder
        self.guest_to_host: Dict[int, int] = {}
        self.host_to_guest: Dict[int, int] = {}
        self.dirty: Set[int] = set()        # guest regs with unflushed copies
        self.use_clock = 0
        self.last_touch: Dict[int, int] = {}

    # -- internals -----------------------------------------------------------

    def _touch(self, guest: int) -> None:
        self.use_clock += 1
        self.last_touch[guest] = self.use_clock

    def _evict(self, host: int) -> None:
        guest = self.host_to_guest.pop(host, None)
        if guest is None:
            return
        if guest in self.dirty:
            self.builder.mov(Mem(base=ENV_REG, disp=env_reg(guest)),
                             Reg(host))
            self.dirty.discard(guest)
        del self.guest_to_host[guest]

    def _pick_host(self, forbidden: Set[int]) -> int:
        for host in CACHE_REGS:
            if host not in forbidden and host not in self.host_to_guest:
                return host
        victims = [host for host in CACHE_REGS if host not in forbidden]
        if not victims:
            raise RuntimeError("register cache exhausted")
        victim = min(victims,
                     key=lambda host: self.last_touch.get(
                         self.host_to_guest[host], 0))
        self._evict(victim)
        return victim

    # -- public API ------------------------------------------------------------

    def read(self, guest: int, forbidden: Set[int] = frozenset()) -> int:
        """Host register holding guest reg *guest*, loading it if needed."""
        host = self.guest_to_host.get(guest)
        if host is not None:
            self._touch(guest)
            return host
        host = self._pick_host(set(forbidden))
        self.builder.mov(Reg(host), Mem(base=ENV_REG, disp=env_reg(guest)))
        self.guest_to_host[guest] = host
        self.host_to_guest[host] = guest
        self._touch(guest)
        return host

    def write(self, guest: int, forbidden: Set[int] = frozenset()) -> int:
        """Host register to hold a new value of *guest* (marked dirty)."""
        host = self.guest_to_host.get(guest)
        if host is None:
            host = self._pick_host(set(forbidden))
            self.guest_to_host[guest] = host
            self.host_to_guest[host] = guest
        self.dirty.add(guest)
        self._touch(guest)
        return host

    def scratch(self, forbidden: Set[int] = frozenset()) -> int:
        """A cache register temporarily free for intermediate values."""
        return self._pick_host(set(forbidden))

    def flush_dirty(self, tag: Optional[str] = None) -> int:
        """Store every dirty guest register back to env; returns the count."""
        count = 0
        for guest in sorted(self.dirty):
            host = self.guest_to_host[guest]
            if tag is None:
                self.builder.mov(Mem(base=ENV_REG, disp=env_reg(guest)),
                                 Reg(host))
            else:
                self.builder.mov(Mem(base=ENV_REG, disp=env_reg(guest)),
                                 Reg(host), tag=tag)
            count += 1
        self.dirty.clear()
        return count

    def invalidate(self) -> None:
        """Drop all cached copies (after a helper that may write guest regs)."""
        self.guest_to_host.clear()
        self.host_to_guest.clear()
        self.dirty.clear()
