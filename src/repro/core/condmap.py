"""ARM condition -> host condition mapping under the two carry conventions.

Rule-translated code keeps the guest condition codes live in the host
FLAGS register.  N, Z and V always coincide with the x86 SF/ZF/OF bits;
the carry differs by the *producer kind*:

- ``DIRECT``: CF holds the ARM C flag (after add-family producers, and
  after any sync-restore, which always reloads ARM-convention flags).
- ``INVERTED``: CF holds NOT(ARM C) — the state after a translated
  subtraction/compare, because x86 defines CF as *borrow* while ARM
  defines C as *not borrow*.

Most conditions map to a single host jcc; the two exceptions are HI/LS
under ``DIRECT``, which need a two-branch sequence (handled by the
emitter).  A sync-save canonicalizes ``INVERTED`` flags with one ``cmc``.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..guest.isa import Cond
from ..host.isa import X86Cond


class CarryKind(enum.Enum):
    DIRECT = "direct"      # CF == ARM C
    INVERTED = "inverted"  # CF == NOT ARM C


#: Conditions that do not involve the carry: identical under both kinds.
_CARRY_FREE = {
    Cond.EQ: X86Cond.E, Cond.NE: X86Cond.NE,
    Cond.MI: X86Cond.S, Cond.PL: X86Cond.NS,
    Cond.VS: X86Cond.O, Cond.VC: X86Cond.NO,
    Cond.GE: X86Cond.GE, Cond.LT: X86Cond.L,
    Cond.GT: X86Cond.G, Cond.LE: X86Cond.LE,
}

#: Carry-involving conditions under INVERTED flags (the natural state
#: after a translated cmp/sub) — all single host conditions.
_INVERTED = {
    Cond.CS: X86Cond.AE, Cond.CC: X86Cond.B,
    Cond.HI: X86Cond.A, Cond.LS: X86Cond.BE,
}

#: Carry-involving conditions under DIRECT flags.  HI/LS have no single
#: host condition (x86 cannot test CF==1 && ZF==0 in one jcc).
_DIRECT = {
    Cond.CS: X86Cond.B, Cond.CC: X86Cond.AE,
}

_NEGATE = {
    X86Cond.E: X86Cond.NE, X86Cond.NE: X86Cond.E,
    X86Cond.B: X86Cond.AE, X86Cond.AE: X86Cond.B,
    X86Cond.BE: X86Cond.A, X86Cond.A: X86Cond.BE,
    X86Cond.S: X86Cond.NS, X86Cond.NS: X86Cond.S,
    X86Cond.O: X86Cond.NO, X86Cond.NO: X86Cond.O,
    X86Cond.L: X86Cond.GE, X86Cond.GE: X86Cond.L,
    X86Cond.LE: X86Cond.G, X86Cond.G: X86Cond.LE,
}


def negate(cond: X86Cond) -> X86Cond:
    return _NEGATE[cond]


def map_condition(cond: Cond, kind: CarryKind) -> Optional[X86Cond]:
    """Single host condition equivalent to *cond*, or None if two-branch."""
    if cond in _CARRY_FREE:
        return _CARRY_FREE[cond]
    table = _INVERTED if kind == CarryKind.INVERTED else _DIRECT
    return table.get(cond)


def skip_sequence(cond: Cond, kind: CarryKind) -> List[Tuple[X86Cond, str]]:
    """Jump sequence to SKIP a body when *cond* fails.

    Returns a list of (host_cond, target) pairs where target is "skip" or
    "exec"; a trailing unconditional jump to "skip" is implied when the
    last entry targets "exec".
    """
    single = map_condition(cond, kind)
    if single is not None:
        return [(negate(single), "skip")]
    # DIRECT HI/LS.
    if cond == Cond.HI:   # pass iff CF==1 && ZF==0 -> skip if CF==0 or ZF==1
        return [(X86Cond.AE, "skip"), (X86Cond.E, "skip")]
    if cond == Cond.LS:   # pass iff CF==0 || ZF==1 -> skip if CF==1 && ZF==0
        return [(X86Cond.AE, "exec"), (X86Cond.NE, "skip")]
    raise ValueError(f"unmapped condition {cond}")
