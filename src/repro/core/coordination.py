"""CPU-state coordination: sync-save and sync-restore emission.

This module implements the paper's central mechanism.  The guest
condition codes live in the host FLAGS register inside rule-translated
code; whenever control passes to QEMU (helper, softmmu probe/slow path,
interrupt check) they must be *coordinated* with the in-memory ``env``
representation.

Two strategies are emitted, selected by the optimization level:

- **parsed** (Base, Sec III-A): the "one-to-many" save — the host FLAGS
  word is parsed bit by bit into QEMU's four per-bit fields (~14 host
  instructions), and the restore rebuilds FLAGS from the four fields
  (~12 instructions).
- **packed** (+Reduction, Sec III-B): FLAGS is pushed and stored into a
  single env slot in 3 instructions (plus one ``cmc`` when the carry is
  in the inverted x86 convention); QEMU parses the word lazily only when
  it genuinely reads the condition codes
  (:meth:`repro.miniqemu.helpers.QemuRuntime.materialize_flags`).

The emission-time :class:`FlagsState` tracks where the live guest CCR
currently is (host FLAGS vs env) and in which carry convention, so the
elimination optimizations can skip redundant syncs.

All instructions emitted here carry the ``sync`` tag, which is what
Figures 8 and 17 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.justify import restore_event, save_event
from ..host.builder import CodeBuilder
from ..host.isa import EAX, EDX, ENV_REG, Imm, Mem, Reg, X86Cond
from ..miniqemu.env import (ENV_CF, ENV_NF, ENV_PACKED_FLAGS,
                            ENV_PACKED_VALID, ENV_VF, ENV_ZF)
from ..observability.trace import NULL_TRACER
from .condmap import CarryKind

SYNC_TAG = "sync"


def _env(offset: int) -> Mem:
    return Mem(base=ENV_REG, disp=offset)


@dataclass
class SyncStats:
    """Static per-TB counters (scaled by exec_count for dynamic figures)."""

    saves: int = 0
    restores: int = 0
    save_insns: int = 0
    restore_insns: int = 0
    reg_flush_insns: int = 0
    inter_tb_elisions: int = 0
    #: Saves skipped by the consecutive-site elimination (Sec III-C-2).
    elided_saves: int = 0


class FlagsState:
    """Where the live guest CCR is, during emission of one TB."""

    def __init__(self, builder: CodeBuilder, stats: SyncStats,
                 packed: bool, tracer=NULL_TRACER,
                 audit: Optional[List[Dict[str, Any]]] = None):
        self.builder = builder
        self.stats = stats
        self.packed = packed
        self.tracer = tracer
        #: audit-event sink (tb.meta["audit"]): every save/restore range
        #: is recorded so the soundness checker can anchor its abstract
        #: interpretation (see repro.analysis.justify).
        self.audit = audit if audit is not None else []
        # At TB entry QEMU's env holds the authoritative flags.  Which
        # representation is current depends on the mode: packed-sync
        # predecessors publish the packed word, Base predecessors (and
        # helpers) publish the per-bit fields.
        self.in_eflags = False       # EFLAGS holds the live CCR
        self.packed_ok = packed      # env.packed holds the live CCR
        self.parsed_ok = not packed  # per-bit fields hold the live CCR
        self.kind = CarryKind.DIRECT

    @property
    def env_current(self) -> bool:
        return self.packed_ok or self.parsed_ok

    # -- producer notifications ------------------------------------------------

    def on_produce(self, kind: CarryKind, partial: bool = False) -> None:
        """A rule-translated instruction just wrote flags into EFLAGS.

        *partial* marks producers that only update N/Z (and possibly C):
        when *kind* is None the C/V bits in EFLAGS keep their previous
        convention (our host preserves CF/OF across logical ops);
        producers that do define C (shifter carry, rotated-immediate
        stc/clc) pass the convention they left it in.
        """
        self.in_eflags = True
        self.packed_ok = False
        self.parsed_ok = False
        if kind is not None:
            self.kind = kind

    def on_clobber(self) -> None:
        """EFLAGS was clobbered by non-guest code (probe, helper, check)."""
        self.in_eflags = False

    def on_helper_wrote_flags(self) -> None:
        """A helper may have changed the guest flags in env.

        Helpers keep the packed slot in sync (``repack_flags``).
        """
        self.in_eflags = False
        self.packed_ok = True
        self.parsed_ok = True
        self.kind = CarryKind.DIRECT

    def on_fallback_wrote_flags(self) -> None:
        """Inline QEMU-style code wrote the per-bit fields directly.

        The packed slot is now stale: restores must rebuild from the
        per-bit fields until the next sync-save refreshes it.  The
        caller also emits a runtime PACKED_VALID clear.
        """
        self.in_eflags = False
        self.packed_ok = False
        self.parsed_ok = True
        self.kind = CarryKind.DIRECT

    # -- sync-save ----------------------------------------------------------------

    def emit_save(self, parsed: bool = False, reason: str = "site") -> None:
        """Sync-save: publish EFLAGS into env before control reaches QEMU.

        Uses the packed one-word scheme when the reduction optimization
        is on, unless *parsed* forces the per-bit representation (needed
        before inline QEMU-style code that reads the fields directly).
        """
        builder = self.builder
        before = len(builder.insns)
        with builder.tagged(SYNC_TAG):
            if self.kind == CarryKind.INVERTED:
                builder.cmc()
                self.kind = CarryKind.DIRECT
            if self.packed and not parsed:
                self._emit_packed_save()
                self.packed_ok = True
            else:
                self._emit_parsed_save()
                self.parsed_ok = True
                if self.packed:
                    # The packed slot (and its validity marker) are now
                    # stale: stop helpers from materializing from it.
                    builder.movi(_env(ENV_PACKED_VALID), 0)
                    self.packed_ok = False
        self.stats.saves += 1
        emitted = len(builder.insns) - before
        self.stats.save_insns += emitted
        mode = "packed" if self.packed and not parsed else "parsed"
        self.audit.append(save_event(before, before + emitted, mode, reason))
        if self.tracer.enabled:
            self.tracer.emit("sync.save", mode=mode, insns=emitted)

    def ensure_parsed(self) -> None:
        """Make the per-bit fields current (before inline QEMU code)."""
        if self.parsed_ok:
            return
        if not self.in_eflags:
            # env.packed is authoritative: reload it, then parse.
            self.emit_restore()
        self.emit_save(parsed=True)

    def _emit_packed_save(self) -> None:
        """pushfd; pop [env.packed]; mov [env.valid], 1  (3 instructions)."""
        builder = self.builder
        builder.pushfd()
        builder.pop(_env(ENV_PACKED_FLAGS))
        builder.movi(_env(ENV_PACKED_VALID), 1)

    def _emit_parsed_save(self) -> None:
        """The one-to-many parse into QEMU's four per-bit fields.

        One setcc per per-bit field (the fields are kept as 0/1 words
        whose upper bytes are always zero, so byte stores are exact).
        """
        builder = self.builder
        builder.setcc(X86Cond.S, Mem(base=ENV_REG, disp=ENV_NF, size=1))
        builder.setcc(X86Cond.E, Mem(base=ENV_REG, disp=ENV_ZF, size=1))
        builder.setcc(X86Cond.B, Mem(base=ENV_REG, disp=ENV_CF, size=1))
        builder.setcc(X86Cond.O, Mem(base=ENV_REG, disp=ENV_VF, size=1))

    # -- sync-restore --------------------------------------------------------------

    def emit_restore(self) -> None:
        """Sync-restore: reload the guest CCR from env into EFLAGS."""
        builder = self.builder
        before = len(builder.insns)
        packed_reload = self.packed and self.packed_ok
        with builder.tagged(SYNC_TAG):
            if packed_reload:
                builder.push(_env(ENV_PACKED_FLAGS))
                builder.popfd()
            else:
                # Base mode, or the packed slot is stale (QEMU-style
                # fallback code wrote the per-bit fields directly).
                self._emit_parsed_restore()
        self.in_eflags = True
        self.kind = CarryKind.DIRECT
        self.stats.restores += 1
        emitted = len(builder.insns) - before
        self.stats.restore_insns += emitted
        mode = "packed" if packed_reload else "parsed"
        self.audit.append(restore_event(before, before + emitted, mode))
        if self.tracer.enabled:
            self.tracer.emit("sync.restore", mode=mode, insns=emitted)

    def _emit_parsed_restore(self) -> None:
        """Rebuild an EFLAGS word from the four per-bit env fields."""
        builder = self.builder
        builder.mov(Reg(EDX), _env(ENV_VF))
        builder.shl(Reg(EDX), Imm(11))      # OF is bit 11
        builder.mov(Reg(EAX), _env(ENV_NF))
        builder.shl(Reg(EAX), Imm(7))       # SF is bit 7
        builder.or_(Reg(EDX), Reg(EAX))
        builder.mov(Reg(EAX), _env(ENV_ZF))
        builder.shl(Reg(EAX), Imm(6))       # ZF is bit 6
        builder.or_(Reg(EDX), Reg(EAX))
        builder.mov(Reg(EAX), _env(ENV_CF))
        builder.or_(Reg(EDX), Reg(EAX))     # CF is bit 0
        builder.push(Reg(EDX))
        builder.popfd()

    # -- queries ---------------------------------------------------------------------

    def need_save(self) -> bool:
        return self.in_eflags and not self.env_current

    def snapshot(self):
        return (self.in_eflags, self.packed_ok, self.parsed_ok, self.kind)

    def restore_snapshot(self, state) -> None:
        self.in_eflags, self.packed_ok, self.parsed_ok, self.kind = state

    def need_restore(self) -> bool:
        return not self.in_eflags
