"""The rule-based execution engine (plugs into the Machine)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..common.errors import DecodingError, MemoryFault
from ..guest.isa import ArmInsn
from ..ir.ops import IRBuilder
from ..ir.opt import optimize
from ..miniqemu.backend import TcgBackend
from ..miniqemu.frontend import TcgFrontend
from ..miniqemu.machine import DbtEngineBase, Machine
from ..miniqemu.tb import TranslationBlock
from .analysis import F_ALL, analyze_block
from .config import OptConfig, OptLevel
from .rulebook import (MatureRulebook, QuarantineFilter, StructuralFilter,
                       rule_key)
from .translator import RuleTranslator


class RuleEngine(DbtEngineBase):
    """Rule-based system-level DBT (the paper's prototype)."""

    name = "rules"
    tiers = ("rules", "tcg", "interp")

    def __init__(self, machine: Machine, level: OptLevel = OptLevel.FULL,
                 rulebook=None, config: Optional[OptConfig] = None,
                 check: bool = False):
        super().__init__(machine)
        self.level = level
        self.config = config if config is not None \
            else OptConfig.from_level(level)
        #: verify-before-enter mode (``--check``): statically verify
        #: every rules-tier TB before it is inserted into the code
        #: cache; blocks with ERROR findings are demoted and
        #: retranslated at a lower tier (see :meth:`_vet_tb`).
        self.check = check
        self.check_tbs = 0
        self.check_rejected = 0
        self.check_findings = 0
        # Quarantine sits *inside* the structural filter: a quarantined
        # rule stops covering its instructions, so the translator (and
        # the coverage analysis) route them through the QEMU fallback.
        self._quarantine = QuarantineFilter(rulebook or MatureRulebook())
        self.rulebook = StructuralFilter(self._quarantine)
        self.ladder.quarantine = self._quarantine
        self._live_in_cache: Dict[int, int] = {}
        # Successor live-in facts depend on rule coverage: quarantining
        # a rule turns its instructions uncovered, which changes every
        # block's live-in, so cached facts must not outlive coverage
        # changes (a stale entry would let the inter-TB optimization
        # elide a flag sync the successor now needs).
        self.cache.add_evict_listener(self._on_cache_evict)

    # ------------------------------------------------------------------
    # Successor analysis for the inter-TB optimization.
    # ------------------------------------------------------------------

    def _on_cache_evict(self, victims: List[TranslationBlock],
                        rules: Optional[Iterable[str]] = None) -> None:
        if rules:
            # Coverage changed (rule quarantine): every cached live-in
            # fact is suspect, not just the evicted blocks'.
            self._live_in_cache.clear()
        else:
            for tb in victims:
                self._live_in_cache.pop(tb.pc, None)

    def successor_live_in(self, pc: int) -> int:
        cached = self._live_in_cache.get(pc)
        if cached is not None:
            return cached
        try:
            insns = self.fetch_block(pc)
        except (DecodingError, MemoryFault):
            # Unfetchable or undecodable successor: assume it needs
            # everything (no inter-TB elision).
            live_in = F_ALL
        else:
            live_in = analyze_block(insns, self.rulebook).live_in
        self._live_in_cache[pc] = live_in
        return live_in

    # ------------------------------------------------------------------
    # Inline QEMU fallback for uncovered instructions.
    # ------------------------------------------------------------------

    def tcg_fallback(self, insn: ArmInsn, mmu_idx: int):
        """Translate one instruction through the TCG pipeline."""
        frontend = TcgFrontend(mmu_idx)
        frontend.builder = IRBuilder()
        frontend.builder.current_pc = insn.addr
        frontend.jmp_pcs = [None, None]
        frontend._ended = False
        frontend._body(insn)
        ir_insns = optimize(frontend.builder.insns)
        code = TcgBackend(mmu_idx).lower(ir_insns, tag="fallback")
        return code, frontend._ended

    # ------------------------------------------------------------------
    # Translation.
    # ------------------------------------------------------------------

    def _translate_tier(self, tier: str, pc: int,
                        mmu_idx: int) -> TranslationBlock:
        if tier == "rules":
            return self.translate_rules(pc, mmu_idx)
        return super()._translate_tier(tier, pc, mmu_idx)

    def translate_rules(self, pc: int, mmu_idx: int) -> TranslationBlock:
        insns = self.fetch_block(pc)
        injector = self.machine.injector
        if injector.enabled:
            # The rule-crash site models a rule whose application code
            # itself crashes at translate time (quarantine target).
            for insn in insns:
                if not insn.is_branch() and self.rulebook.covers(insn):
                    injector.rule_crash(rule_key(insn))
        translator = RuleTranslator(
            mmu_idx, self.config, rulebook=self.rulebook,
            successor_live_in=self.successor_live_in,
            tcg_fallback=self.tcg_fallback,
            tracer=self.machine.tracer)
        return translator.translate(pc, insns)

    # ------------------------------------------------------------------
    # Verify-before-enter (``--check``).
    # ------------------------------------------------------------------

    def _vet_tb(self, tb: TranslationBlock) -> TranslationBlock:
        """Statically verify a fresh rules-tier TB before caching it.

        Any ERROR finding demotes the block down the degradation
        ladder and retranslates; the loop terminates because each
        demotion lowers the starting tier and the tcg/interp tiers are
        not subject to dataflow checking.
        """
        if not self.check:
            return tb
        from ..analysis.dataflow import check_tb
        from ..analysis.findings import Severity

        while tb.meta.get("tier") == "rules":
            findings = check_tb(tb, self.config,
                                live_in_of=self.successor_live_in,
                                rulebook=self.rulebook)
            self.check_tbs += 1
            self.check_findings += len(findings)
            errors = [f for f in findings if f.severity is Severity.ERROR]
            if not errors:
                break
            self.check_rejected += 1
            if self.machine.tracer.enabled:
                self.machine.tracer.emit(
                    "check.reject", pc=tb.pc, code=errors[0].code,
                    n_errors=len(errors))
            self.ladder.demote(tb.pc, tb.mmu_idx)
            tb = self.translate(tb.pc, tb.mmu_idx)
            self.machine.injector.instrument_tb(tb)
        return tb

    # ------------------------------------------------------------------
    # Statistics (coordination accounting for Figs 8/16/17 + Table I).
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        sync_ops = 0
        sync_insns = 0
        sync_elisions = 0
        covered_dyn = 0
        uncovered_dyn = 0
        for tb in self.cache.all_tbs():
            meta = tb.meta
            weight = tb.exec_count
            sync_ops += weight * (meta.get("sync_saves", 0) +
                                  meta.get("sync_restores", 0))
            sync_insns += weight * meta.get("sync_insns", 0)
            sync_elisions += weight * (meta.get("sync_elisions", 0) +
                                       meta.get("inter_tb_elisions", 0))
            n_uncovered = meta.get("n_uncovered", 0)
            n_system = meta.get("n_system", 0)
            uncovered_dyn += weight * n_uncovered
            covered_dyn += weight * max(
                tb.guest_insn_count - n_uncovered - n_system, 0)
        base.update({
            "sync_ops_dyn": float(sync_ops),
            "sync_insns_weighted": float(sync_insns),
            "sync_elisions_dyn": float(sync_elisions),
            # Dynamic rule coverage (the HERMES-style accounting): guest
            # instructions translated by learned rules vs routed through
            # the TCG fallback, weighted by execution count.
            "rule_covered_insns_dyn": float(covered_dyn),
            "rule_uncovered_insns_dyn": float(uncovered_dyn),
            "flag_parses": float(self.machine.runtime.flag_parse_count),
            "opt_level": float(self.level),
        })
        if self.check:
            base.update({
                "check_tbs": float(self.check_tbs),
                "check_rejected": float(self.check_rejected),
                "check_findings": float(self.check_findings),
            })
        return base


def make_rule_engine(level: OptLevel = OptLevel.FULL, rulebook=None,
                     config: Optional[OptConfig] = None,
                     check: bool = False):
    """Factory for ``Machine(engine="rules", rule_engine_factory=...)``."""

    def factory(machine: Machine) -> RuleEngine:
        return RuleEngine(machine, level=level, rulebook=rulebook,
                          config=config, check=check)

    return factory
