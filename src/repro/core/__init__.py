"""The paper's contribution: rule-based system-level DBT with CPU-state
coordination optimizations (Sec III)."""

from .analysis import analyze_block, flags_read, flags_written
from .condmap import CarryKind, map_condition
from .config import LEVEL_NAMES, OptConfig, OptLevel
from .coordination import FlagsState, SyncStats
from .engine import RuleEngine, make_rule_engine
from .rulebook import EmptyRulebook, MatureRulebook, StructuralFilter
from .translator import RuleTranslator

__all__ = [
    "CarryKind", "EmptyRulebook", "FlagsState", "LEVEL_NAMES",
    "MatureRulebook", "OptConfig", "OptLevel", "RuleEngine",
    "RuleTranslator", "StructuralFilter", "SyncStats", "analyze_block",
    "flags_read", "flags_written", "make_rule_engine", "map_condition",
]
