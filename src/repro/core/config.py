"""Optimization levels for the rule-based engine (paper Sec III / Fig 16).

The four cumulative levels match the paper's evaluation:

- ``BASE``: the naive coordination of Sec III-A — a parsed (per-bit)
  sync-save before and a parsed sync-restore after *every* coordination
  site, plus a parsed restore at every conditional instruction.
- ``REDUCTION`` (+ Sec III-B): packed one-word CCR saves/restores with
  lazy parsing on the QEMU side (14 -> ~3 host instructions per sync).
- ``ELIMINATION`` (+ Sec III-C): redundant sync-restore elimination,
  consecutive-memory-access coalescing, and inter-TB elimination across
  chained blocks.
- ``FULL`` (+ Sec III-D): define-before-use and interrupt-driven
  instruction scheduling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OptLevel(enum.IntEnum):
    BASE = 0
    REDUCTION = 1
    ELIMINATION = 2
    FULL = 3


@dataclass(frozen=True)
class OptConfig:
    """Feature switches derived from an :class:`OptLevel`.

    The switches can also be toggled individually for ablation studies
    (see ``benchmarks/bench_ablation.py``).
    """

    packed_sync: bool = False          # Sec III-B
    eliminate_redundant: bool = False  # Sec III-C (a) + (b)
    inter_tb: bool = False             # Sec III-C (c)
    scheduling: bool = False           # Sec III-D-1 (define-before-use)
    #: Sec III-D-2 (relocate the TB-entry interrupt check next to the
    #: first memory access).  Off by default: in this implementation the
    #: on-demand restore policy already makes the entry check free, so
    #: relocation only adds an extra save site (see EXPERIMENTS.md);
    #: kept as an ablation switch to demonstrate the mechanism.
    irq_scheduling: bool = False

    @staticmethod
    def from_level(level: OptLevel) -> "OptConfig":
        return OptConfig(
            packed_sync=level >= OptLevel.REDUCTION,
            eliminate_redundant=level >= OptLevel.ELIMINATION,
            inter_tb=level >= OptLevel.ELIMINATION,
            scheduling=level >= OptLevel.FULL,
        )


LEVEL_NAMES = {
    OptLevel.BASE: "Base",
    OptLevel.REDUCTION: "+Reduction",
    OptLevel.ELIMINATION: "+Elimination",
    OptLevel.FULL: "+Scheduling",
}
