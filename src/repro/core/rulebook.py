"""Rulebook interface: which guest instructions have translation rules.

The learning pipeline (:mod:`repro.learning`) produces a rulebook of
parameterized, formally-verified guest->host translation rules.  The
rule engine only needs a coverage predicate at translation time: an
instruction with no matching rule is emulated by switching to QEMU
(Sec II-A), which is a coordination site.

:class:`MatureRulebook` models the paper's evaluation setting (the rule
set of [2], trained to high user-level coverage): every user-level
instruction the ALU/memory/branch emitters handle is covered, system
instructions are not (they cannot be learned from user-level programs).

:class:`StructuralFilter` wraps any rulebook with the constrained-rule
restrictions of this implementation (operand shapes the host templates
cannot express safely are routed to QEMU, as the paper's constrained
rules do).
"""

from __future__ import annotations

from ..guest.isa import (ArmInsn, Cond, DATA_PROCESSING_OPS, MEMORY_OPS,
                         Op, ShiftKind, VFP_ARITH_OPS)
from .alu import AluEmitter, _has_real_shift

#: User-level ops the rule emitters implement directly (VFP arithmetic
#: and moves are rule-translatable per the paper's footnote 3; vcmp is
#: helper territory because it writes the FPSCR).
_RULE_OPS = frozenset(DATA_PROCESSING_OPS) | MEMORY_OPS | \
    VFP_ARITH_OPS | \
    frozenset({Op.MUL, Op.MLA, Op.B, Op.BL, Op.BX, Op.CLZ, Op.NOP,
               Op.VMOVSR, Op.VMOVRS})


class MatureRulebook:
    """Full user-level coverage (the paper's trained rule set)."""

    name = "mature"

    def covers(self, insn: ArmInsn) -> bool:
        return insn.op in _RULE_OPS and not insn.is_system()


class EmptyRulebook:
    """No rules at all: every instruction goes through QEMU (for tests)."""

    name = "empty"

    def covers(self, insn: ArmInsn) -> bool:
        return False


def rule_key(insn: ArmInsn) -> str:
    """The quarantine key of the rule that translates *insn*.

    Learned rules are parameterized per guest opcode in this
    implementation, so the opcode name identifies the rule; a corrupted
    ``EOR`` rule is quarantined without touching the ``ADD`` rule.
    """
    return insn.op.name


class QuarantineFilter:
    """Runtime quarantine wrapper: misbehaving rules stop matching.

    The degradation ladder quarantines a rule when its applied code
    crashes the host interpreter, trips the watchdog, or fails the
    online differential self-check.  A quarantined rule simply stops
    covering its instructions, so the next translation of any affected
    block routes them through the QEMU fallback — correctness is
    restored at the cost of coordination overhead.
    """

    def __init__(self, inner):
        self.inner = inner
        self.quarantined: dict = {}   # rule key -> reason
        self.name = f"quarantine({inner.name})"

    def covers(self, insn: ArmInsn) -> bool:
        if rule_key(insn) in self.quarantined:
            return False
        return self.inner.covers(insn)

    def quarantine(self, key: str, reason: str) -> bool:
        """Quarantine *key*; returns True if it was not already out."""
        if key in self.quarantined:
            return False
        self.quarantined[key] = reason
        return True


class StructuralFilter:
    """Adds the constrained-rule restrictions to any rulebook.

    Rules whose host template cannot preserve the live CCR protocol are
    rejected here and handled by the QEMU fallback:

    - carry-consuming bodies with a real barrel shift (the host shift
      would destroy the carry the body is about to consume),
    - register-shifted operands under conditional execution (the shift
      scratch traffic cannot be hoisted above the skip branch).
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = f"structural({inner.name})"

    def covers(self, insn: ArmInsn) -> bool:
        if not self.inner.covers(insn):
            return False
        if AluEmitter.required_kind(insn) is not None and \
                _has_real_shift(insn):
            return False
        if insn.cond != Cond.AL and insn.op2 is not None and \
                insn.op2.rs is not None:
            return False
        # RRX consumes C: same scratch hazard under conditional execution.
        if insn.cond != Cond.AL and insn.op2 is not None and \
                not insn.op2.is_imm and insn.op2.shift == ShiftKind.RRX:
            return False
        # Conditional VFP transfers need two pre-allocated scratches;
        # route them through the fallback instead.
        if insn.cond != Cond.AL and insn.op in (Op.VLDR, Op.VSTR):
            return False
        return True
