"""Host-code builder: emit X86Insn sequences with labels, then resolve.

Both code generators (the TCG backend and the rule-based translator) build
TB bodies through this class.  ``tag`` arguments attribute instructions to
the paper's accounting categories; the default tag of the builder can be
temporarily overridden with :meth:`tagged`.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Callable, Dict, List

from ..common.errors import TranslationError
from .isa import (Imm, Mem, X86Cond, X86Insn, X86Op)

_label_counter = itertools.count()


class CodeBuilder:
    """Accumulates host instructions and resolves intra-block labels."""

    def __init__(self, default_tag: str = "code"):
        self.insns: List[X86Insn] = []
        self._labels: Dict[str, int] = {}
        self._tag = default_tag

    # -- tagging -------------------------------------------------------------

    @contextlib.contextmanager
    def tagged(self, tag: str):
        """Attribute instructions emitted inside the block to *tag*."""
        previous, self._tag = self._tag, tag
        try:
            yield self
        finally:
            self._tag = previous

    # -- label handling --------------------------------------------------------

    def new_label(self, stem: str = "L") -> str:
        return f"{stem}_{next(_label_counter)}"

    def bind(self, label: str) -> None:
        if label in self._labels:
            raise TranslationError(f"label {label} bound twice")
        self._labels[label] = len(self.insns)

    def finish(self) -> List[X86Insn]:
        """Resolve jump targets; returns the finished instruction list."""
        for insn in self.insns:
            if insn.op in (X86Op.JMP, X86Op.JCC) and insn.target_index < 0:
                # Pre-resolved jumps (spliced from another builder, e.g.
                # the rule engine's inline QEMU fallback) are left alone.
                if insn.label not in self._labels:
                    raise TranslationError(f"undefined label {insn.label}")
                insn.target_index = self._labels[insn.label]
        return self.insns

    # -- raw emit ---------------------------------------------------------------

    def emit(self, op: X86Op, dst=None, src=None, *, cond=None, label=None,
             helper=None, helper_args=(), imm=0, tag=None) -> X86Insn:
        insn = X86Insn(op=op, dst=dst, src=src, cond=cond, label=label,
                       helper=helper, helper_args=tuple(helper_args),
                       imm=imm, tag=tag or self._tag)
        self.insns.append(insn)
        return insn

    # -- convenience emitters (one host instruction each) -------------------------

    def mov(self, dst, src, **kw):
        self.emit(X86Op.MOV, dst, src, **kw)

    def movi(self, dst, value: int, **kw):
        self.emit(X86Op.MOV, dst, Imm(value), **kw)

    def movzx(self, dst, src, **kw):
        self.emit(X86Op.MOVZX, dst, src, **kw)

    def movsx(self, dst, src, **kw):
        self.emit(X86Op.MOVSX, dst, src, **kw)

    def lea(self, dst, mem: Mem, **kw):
        self.emit(X86Op.LEA, dst, mem, **kw)

    def add(self, dst, src, **kw):
        self.emit(X86Op.ADD, dst, src, **kw)

    def adc(self, dst, src, **kw):
        self.emit(X86Op.ADC, dst, src, **kw)

    def sub(self, dst, src, **kw):
        self.emit(X86Op.SUB, dst, src, **kw)

    def sbb(self, dst, src, **kw):
        self.emit(X86Op.SBB, dst, src, **kw)

    def and_(self, dst, src, **kw):
        self.emit(X86Op.AND, dst, src, **kw)

    def or_(self, dst, src, **kw):
        self.emit(X86Op.OR, dst, src, **kw)

    def xor(self, dst, src, **kw):
        self.emit(X86Op.XOR, dst, src, **kw)

    def cmp(self, dst, src, **kw):
        self.emit(X86Op.CMP, dst, src, **kw)

    def test(self, dst, src, **kw):
        self.emit(X86Op.TEST, dst, src, **kw)

    def neg(self, dst, **kw):
        self.emit(X86Op.NEG, dst, **kw)

    def not_(self, dst, **kw):
        self.emit(X86Op.NOT, dst, **kw)

    def imul(self, dst, src, **kw):
        self.emit(X86Op.IMUL, dst, src, **kw)

    def shl(self, dst, src, **kw):
        self.emit(X86Op.SHL, dst, src, **kw)

    def shr(self, dst, src, **kw):
        self.emit(X86Op.SHR, dst, src, **kw)

    def sar(self, dst, src, **kw):
        self.emit(X86Op.SAR, dst, src, **kw)

    def ror(self, dst, src, **kw):
        self.emit(X86Op.ROR, dst, src, **kw)

    def rcr1(self, dst, **kw):
        self.emit(X86Op.RCR, dst, Imm(1), **kw)

    def bsr(self, dst, src, **kw):
        self.emit(X86Op.BSR, dst, src, **kw)

    def push(self, src, **kw):
        self.emit(X86Op.PUSH, src=src, **kw)

    def pop(self, dst, **kw):
        self.emit(X86Op.POP, dst, **kw)

    def pushfd(self, **kw):
        self.emit(X86Op.PUSHFD, **kw)

    def popfd(self, **kw):
        self.emit(X86Op.POPFD, **kw)

    def lahf(self, **kw):
        self.emit(X86Op.LAHF, **kw)

    def sahf(self, **kw):
        self.emit(X86Op.SAHF, **kw)

    def setcc(self, cond: X86Cond, dst, **kw):
        self.emit(X86Op.SETCC, dst, cond=cond, **kw)

    def cmc(self, **kw):
        self.emit(X86Op.CMC, **kw)

    def jmp(self, label: str, **kw):
        self.emit(X86Op.JMP, label=label, **kw)

    def jcc(self, cond: X86Cond, label: str, **kw):
        self.emit(X86Op.JCC, cond=cond, label=label, **kw)

    def call_helper(self, helper: Callable, args=(), **kw):
        self.emit(X86Op.CALL_HELPER, helper=helper, helper_args=args, **kw)

    def exit_tb(self, status: int, **kw):
        self.emit(X86Op.EXIT_TB, imm=status, **kw)

    def goto_tb(self, slot: int, **kw):
        self.emit(X86Op.GOTO_TB, imm=slot, **kw)

    def nop(self, **kw):
        self.emit(X86Op.NOPSLOT, **kw)
