"""Host x86 CPU state: eight GPRs and EFLAGS.

The rule-based DBT keeps the *guest* condition codes live in this EFLAGS
register between instructions — that is the whole point of the paper —
so the flags model here is bit-accurate for CF/ZF/SF/OF.
"""

from __future__ import annotations

from ..common.bitops import u32
from .isa import FLAG_CF, FLAG_OF, FLAG_SF, FLAG_ZF, REG_NAMES, X86Cond


class HostCpu:
    """Architectural state of the (simulated) host processor."""

    def __init__(self, stack_top: int = 0):
        self.regs = [0] * 8
        self.xmm = [0] * 8      # scalar single-precision (bit patterns)
        self.cf = 0
        self.zf = 0
        self.sf = 0
        self.of = 0
        self.regs[4] = stack_top  # ESP

    # -- EFLAGS as a packed word (pushfd/popfd) ---------------------------------

    @property
    def eflags(self) -> int:
        return ((self.cf << FLAG_CF) | (self.zf << FLAG_ZF) |
                (self.sf << FLAG_SF) | (self.of << FLAG_OF) | 0x2)

    @eflags.setter
    def eflags(self, value: int) -> None:
        self.cf = (value >> FLAG_CF) & 1
        self.zf = (value >> FLAG_ZF) & 1
        self.sf = (value >> FLAG_SF) & 1
        self.of = (value >> FLAG_OF) & 1

    # -- condition evaluation -----------------------------------------------------

    def test(self, cond: X86Cond) -> bool:
        table = {
            X86Cond.E: self.zf == 1, X86Cond.NE: self.zf == 0,
            X86Cond.B: self.cf == 1, X86Cond.AE: self.cf == 0,
            X86Cond.BE: self.cf == 1 or self.zf == 1,
            X86Cond.A: self.cf == 0 and self.zf == 0,
            X86Cond.S: self.sf == 1, X86Cond.NS: self.sf == 0,
            X86Cond.O: self.of == 1, X86Cond.NO: self.of == 0,
            X86Cond.L: self.sf != self.of, X86Cond.GE: self.sf == self.of,
            X86Cond.LE: self.zf == 1 or self.sf != self.of,
            X86Cond.G: self.zf == 0 and self.sf == self.of,
        }
        return table[cond]

    # -- flag-producing arithmetic (shared by the interpreter) ---------------------

    def set_nz(self, result: int) -> None:
        result = u32(result)
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> 31) & 1

    def flags_add(self, a: int, b: int, carry_in: int = 0) -> int:
        total = (a & 0xFFFFFFFF) + (b & 0xFFFFFFFF) + carry_in
        result = u32(total)
        self.cf = 1 if total > 0xFFFFFFFF else 0
        self.of = 1 if (~(a ^ b) & (a ^ result)) & 0x80000000 else 0
        self.set_nz(result)
        return result

    def flags_sub(self, a: int, b: int, borrow_in: int = 0) -> int:
        a &= 0xFFFFFFFF
        b &= 0xFFFFFFFF
        result = u32(a - b - borrow_in)
        self.cf = 1 if (b + borrow_in) > a else 0
        self.of = 1 if ((a ^ b) & (a ^ result)) & 0x80000000 else 0
        self.set_nz(result)
        return result

    def flags_logic(self, result: int) -> int:
        """Set N/Z for a logical result, PRESERVING CF and OF.

        Deliberate deviation from real x86 (which clears CF/OF): the
        paper's rule-based translator handles the ARM-vs-x86 mismatch on
        logical flag producers with *constrained rules*; modelling CF/OF
        preservation instead lets one host op implement ARM logical-S
        semantics exactly (ARM leaves C/V unchanged for unshifted
        operands) without affecting any coordination measurement.  See
        DESIGN.md, "Key design decisions".
        """
        result = u32(result)
        self.set_nz(result)
        return result

    def __repr__(self) -> str:
        regs = " ".join(f"{REG_NAMES[i]}={self.regs[i]:08x}"
                        for i in range(8))
        return (f"<HostCpu {regs} cf={self.cf} zf={self.zf} sf={self.sf} "
                f"of={self.of}>")
