"""Host x86 interpreter: executes generated host code and counts it.

Each executed :class:`~repro.host.isa.X86Insn` increments the total
dynamic instruction count and a per-tag counter; these counters are the
performance metric of every experiment (see
:mod:`repro.common.costmodel`).  Helper calls additionally charge the
modelled cost of the helper body via :meth:`charge`.

Block chaining is executed natively: a patched ``GOTO_TB`` continues
straight into the next TB's code (costing exactly the one jump
instruction), while an unpatched one exits to the cpu_exec loop.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..common.bitops import s32, u32
from ..common.errors import HostExecutionError, WatchdogTimeout
from ..observability.trace import NULL_TRACER
from .cpu import HostCpu
from .isa import (ECX, ESP, Imm, Mem, Reg, X86Insn, X86Op, Xmm)
from ..common.f32 import f32_add, f32_mul, f32_sub

#: Hard cap on host instructions per TB execution (codegen-bug guard).
_RUNAWAY_LIMIT = 5_000_000


@dataclass
class ExitInfo:
    """Why TB execution returned to the cpu_exec loop."""

    kind: str                 # always 'exit'
    status: int = 0           # EXIT_TB status value
    tb: Optional[object] = None
    #: (tb, slot) of an unpatched GOTO_TB the execution fell through —
    #: the cpu_exec loop patches it once the successor TB exists.
    chain: Optional[tuple] = None


class HostInterpreter:
    """Executes host code blocks against a HostCpu + HostMemory."""

    def __init__(self, cpu: HostCpu, memory):
        self.cpu = cpu
        self.memory = memory
        self.total = 0                      # dynamic host instructions
        self.charged = 0                    # modelled helper/runtime cost
        self.by_tag = defaultdict(int)      # dynamic count per tag
        self.runtime = None                 # set by the machine (helpers ctx)
        #: called with the target TB on every chained goto_tb transition
        #: (lets the machine advance guest time without leaving the cache)
        self.on_tb_enter = None
        #: optional ExecutionWatchdog bounding host insns per execute()
        self.watchdog = None
        #: True once the current execute() call performed non-idempotent
        #: work (MMIO, exception delivery) — rollback+replay is then
        #: unsafe; the runtime sets this via note_side_effect().
        self.tb_side_effects = False
        #: Observability (repro.observability): the disabled defaults
        #: keep the hot loop's only overhead a None/False check.
        self.tracer = NULL_TRACER
        self.profiler = None
        #: (pc, mmu_idx) of the TB charges are attributed to, or None
        #: when cost is being charged outside any block.
        self._profile_key = None

    def note_side_effect(self, kind: str = "") -> None:
        """Mark the current execute() call as non-replayable."""
        self.tb_side_effects = True

    # -- cost accounting ---------------------------------------------------------

    def charge(self, amount: int, tag: str = "runtime") -> None:
        """Charge modelled host instructions for non-generated work."""
        self.charged += amount
        self.by_tag[tag] += amount
        if self.profiler is not None:
            self.profiler.on_charge(self._profile_key, tag, amount)

    @property
    def cost(self) -> int:
        """Total cost: executed instructions plus modelled charges."""
        return self.total + self.charged

    # -- operand access ------------------------------------------------------------

    def _addr(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.cpu.regs[mem.base]
        if mem.index is not None:
            addr += self.cpu.regs[mem.index] * mem.scale
        return u32(addr)

    def _read(self, operand, size: int = 4) -> int:
        if isinstance(operand, Reg):
            return self.cpu.regs[operand.number]
        if isinstance(operand, Imm):
            return u32(operand.value)
        if isinstance(operand, Mem):
            return self.memory.read(self._addr(operand), operand.size)
        raise HostExecutionError(f"bad operand {operand!r}")

    def _write(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.cpu.regs[operand.number] = u32(value)
        elif isinstance(operand, Mem):
            self.memory.write(self._addr(operand), value, operand.size)
        else:
            raise HostExecutionError(f"bad destination {operand!r}")

    # -- execution -------------------------------------------------------------------

    def execute(self, tb) -> ExitInfo:  # noqa: C901 - central dispatch loop
        cpu = self.cpu
        insns = tb.code
        index = 0
        executed = 0
        pending_chain = None
        self.tb_side_effects = False
        limit = self.watchdog.max_host_insns if self.watchdog is not None \
            else _RUNAWAY_LIMIT
        profiler = self.profiler
        if profiler is not None:
            self._profile_key = (tb.pc, tb.mmu_idx)
            prof_tags = profiler.tags_for(self._profile_key)
        else:
            prof_tags = None
        while True:
            if index >= len(insns):
                raise HostExecutionError(
                    f"fell off the end of TB 0x{tb.pc:08x}")
            insn = insns[index]
            index += 1
            executed += 1
            self.total += 1
            self.by_tag[insn.tag] += 1
            if prof_tags is not None:
                prof_tags[insn.tag] += 1
            if executed > limit:
                if self.watchdog is not None:
                    self.watchdog.trips += 1
                raise WatchdogTimeout(executed, limit, tb_pc=tb.pc)
            op = insn.op

            if op is X86Op.MOV:
                self._write(insn.dst, self._read(insn.src))
            elif op is X86Op.MOVZX:
                if isinstance(insn.src, Reg):
                    value = cpu.regs[insn.src.number] & 0xFF
                else:
                    value = self._read(insn.src)
                self._write(insn.dst, value)
            elif op is X86Op.MOVSX:
                if isinstance(insn.src, Reg):
                    value = cpu.regs[insn.src.number] & 0xFF
                    width = 8
                else:
                    value = self._read(insn.src)
                    width = 8 * insn.src.size
                sign = 1 << (width - 1)
                self._write(insn.dst, (value & (sign - 1)) - (value & sign))
            elif op is X86Op.LEA:
                self._write(insn.dst, self._addr(insn.src))
            elif op is X86Op.ADD:
                self._write(insn.dst, cpu.flags_add(self._read(insn.dst),
                                                    self._read(insn.src)))
            elif op is X86Op.ADC:
                self._write(insn.dst, cpu.flags_add(self._read(insn.dst),
                                                    self._read(insn.src),
                                                    cpu.cf))
            elif op is X86Op.SUB:
                self._write(insn.dst, cpu.flags_sub(self._read(insn.dst),
                                                    self._read(insn.src)))
            elif op is X86Op.SBB:
                self._write(insn.dst, cpu.flags_sub(self._read(insn.dst),
                                                    self._read(insn.src),
                                                    cpu.cf))
            elif op is X86Op.CMP:
                cpu.flags_sub(self._read(insn.dst), self._read(insn.src))
            elif op is X86Op.AND:
                self._write(insn.dst, cpu.flags_logic(self._read(insn.dst) &
                                                      self._read(insn.src)))
            elif op is X86Op.OR:
                self._write(insn.dst, cpu.flags_logic(self._read(insn.dst) |
                                                      self._read(insn.src)))
            elif op is X86Op.XOR:
                self._write(insn.dst, cpu.flags_logic(self._read(insn.dst) ^
                                                      self._read(insn.src)))
            elif op is X86Op.TEST:
                cpu.flags_logic(self._read(insn.dst) & self._read(insn.src))
            elif op is X86Op.NEG:
                value = self._read(insn.dst)
                self._write(insn.dst, cpu.flags_sub(0, value))
            elif op is X86Op.NOT:
                self._write(insn.dst, ~self._read(insn.dst))
            elif op is X86Op.INC:
                carry = cpu.cf
                self._write(insn.dst, cpu.flags_add(self._read(insn.dst), 1))
                cpu.cf = carry  # INC preserves CF
            elif op is X86Op.DEC:
                carry = cpu.cf
                self._write(insn.dst, cpu.flags_sub(self._read(insn.dst), 1))
                cpu.cf = carry  # DEC preserves CF
            elif op is X86Op.IMUL:
                # Like flags_logic, IMUL here preserves CF/OF (ARM muls
                # leaves C/V unchanged); see DESIGN.md.
                product = s32(self._read(insn.dst)) * s32(self._read(insn.src))
                result = u32(product)
                cpu.set_nz(result)
                self._write(insn.dst, result)
            elif op in (X86Op.SHL, X86Op.SHR, X86Op.SAR, X86Op.ROR,
                        X86Op.ROL, X86Op.RCR):
                self._shift(insn, op)
            elif op is X86Op.BSR:
                value = self._read(insn.src)
                cpu.zf = 1 if value == 0 else 0
                if value:
                    self._write(insn.dst, value.bit_length() - 1)
            elif op is X86Op.PUSH:
                cpu.regs[ESP] = u32(cpu.regs[ESP] - 4)
                self.memory.write(cpu.regs[ESP], self._read(insn.src))
            elif op is X86Op.POP:
                self._write(insn.dst, self.memory.read(cpu.regs[ESP], 4))
                cpu.regs[ESP] = u32(cpu.regs[ESP] + 4)
            elif op is X86Op.PUSHFD:
                cpu.regs[ESP] = u32(cpu.regs[ESP] - 4)
                self.memory.write(cpu.regs[ESP], cpu.eflags)
            elif op is X86Op.POPFD:
                cpu.eflags = self.memory.read(cpu.regs[ESP], 4)
                cpu.regs[ESP] = u32(cpu.regs[ESP] + 4)
            elif op is X86Op.LAHF:
                flags_byte = ((cpu.sf << 7) | (cpu.zf << 6) | 0x02 | cpu.cf)
                cpu.regs[0] = (cpu.regs[0] & ~0xFF00 & 0xFFFFFFFF) | \
                    (flags_byte << 8)
            elif op is X86Op.SAHF:
                byte = (cpu.regs[0] >> 8) & 0xFF
                cpu.sf = (byte >> 7) & 1
                cpu.zf = (byte >> 6) & 1
                cpu.cf = byte & 1
            elif op is X86Op.SETCC:
                bit_value = 1 if cpu.test(insn.cond) else 0
                if isinstance(insn.dst, Reg):
                    number = insn.dst.number
                    cpu.regs[number] = (cpu.regs[number] & ~0xFF &
                                        0xFFFFFFFF) | bit_value
                else:
                    self._write(insn.dst, bit_value)
            elif op is X86Op.CMC:
                cpu.cf ^= 1
            elif op is X86Op.STC:
                cpu.cf = 1
            elif op is X86Op.CLC:
                cpu.cf = 0
            elif op is X86Op.JMP:
                index = insn.target_index
            elif op is X86Op.JCC:
                if cpu.test(insn.cond):
                    index = insn.target_index
            elif op is X86Op.CALL_HELPER:
                if self.tracer.enabled:
                    self.tracer.emit("helper.call", tb_pc=tb.pc,
                                     helper=insn.helper.__name__)
                args = [self._read(arg) for arg in insn.helper_args]
                result = insn.helper(self.runtime, *args)
                if result is not None:
                    cpu.regs[0] = u32(result)
            elif op is X86Op.EXIT_TB:
                return ExitInfo("exit", status=insn.imm, tb=tb,
                                chain=pending_chain)
            elif op is X86Op.GOTO_TB:
                target = tb.jmp_target[insn.imm]
                if target is None:
                    # Unpatched: fall through to the exit stub (QEMU's
                    # initial goto_tb jumps to the next instruction).
                    pending_chain = (tb, insn.imm)
                else:
                    tb = target
                    insns = tb.code
                    index = 0
                    if prof_tags is not None:
                        self._profile_key = (tb.pc, tb.mmu_idx)
                        prof_tags = profiler.tags_for(self._profile_key)
                    if self.on_tb_enter is not None:
                        self.on_tb_enter(tb)
            elif op is X86Op.NOPSLOT:
                pass
            elif op is X86Op.MOVSS:
                if isinstance(insn.dst, Xmm):
                    value = cpu.xmm[insn.src.number] \
                        if isinstance(insn.src, Xmm) \
                        else self.memory.read(self._addr(insn.src), 4)
                    cpu.xmm[insn.dst.number] = value
                else:
                    self.memory.write(self._addr(insn.dst),
                                      cpu.xmm[insn.src.number])
            elif op in (X86Op.ADDSS, X86Op.SUBSS, X86Op.MULSS):
                left = cpu.xmm[insn.dst.number]
                right = cpu.xmm[insn.src.number] \
                    if isinstance(insn.src, Xmm) \
                    else self.memory.read(self._addr(insn.src), 4)
                table = {X86Op.ADDSS: f32_add, X86Op.SUBSS: f32_sub,
                         X86Op.MULSS: f32_mul}
                cpu.xmm[insn.dst.number] = table[op](left, right)
            else:
                raise HostExecutionError(f"unimplemented host op {op}")

    def _shift(self, insn: X86Insn, op: X86Op) -> None:
        cpu = self.cpu
        value = self._read(insn.dst)
        if isinstance(insn.src, Imm):
            amount = insn.src.value & 31
        else:
            amount = cpu.regs[ECX] & 31
        if op is X86Op.RCR:
            # Rotate through carry by one (used for ARM RRX).
            result = u32((value >> 1) | (cpu.cf << 31))
            cpu.cf = value & 1
            self._write(insn.dst, result)
            return
        if amount == 0:
            return
        if op is X86Op.SHL:
            cpu.cf = (value >> (32 - amount)) & 1
            result = u32(value << amount)
        elif op is X86Op.SHR:
            cpu.cf = (value >> (amount - 1)) & 1
            result = value >> amount
        elif op is X86Op.SAR:
            signed = s32(value)
            cpu.cf = (signed >> (amount - 1)) & 1
            result = u32(signed >> amount)
        elif op is X86Op.ROR:
            result = u32((value >> amount) | (value << (32 - amount)))
            cpu.cf = (result >> 31) & 1
        else:  # ROL
            result = u32((value << amount) | (value >> (32 - amount)))
            cpu.cf = result & 1
        cpu.set_nz(result)
        self._write(insn.dst, result)
