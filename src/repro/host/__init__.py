"""x86-32 host: instruction model, CPU/memory state, interpreter, builder."""

from .builder import CodeBuilder
from .cpu import HostCpu
from .interp import ExitInfo, HostInterpreter
from .isa import (EAX, EBP, EBX, ECX, EDI, EDX, ENV_REG, ESI, ESP, Imm, Mem,
                  Reg, X86Cond, X86Insn, X86Op)
from .memory import HostMemory

__all__ = [
    "CodeBuilder", "EAX", "EBP", "EBX", "ECX", "EDI", "EDX", "ENV_REG",
    "ESI", "ESP", "ExitInfo", "HostCpu", "HostInterpreter", "HostMemory",
    "Imm", "Mem", "Reg", "X86Cond", "X86Insn", "X86Op",
]
