"""x86-32 host instruction model.

Generated host code is a list of :class:`X86Insn` objects executed by the
host interpreter (:mod:`repro.host.interp`).  The paper's performance
metric in this reproduction is the *dynamic count* of these instructions,
so each one corresponds to exactly one real x86 instruction; pseudo-ops
that stand in for QEMU's C runtime (helper calls, TB exits) are documented
as such and costed by :mod:`repro.common.costmodel`.

Every instruction carries a ``tag`` identifying why it was emitted
(translated guest code, CPU-state sync, softmmu fast path, interrupt
check, ...), which is how the harness attributes dynamic instruction
counts to the paper's categories (Figs 8, 15, 17).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

# Host general-purpose registers.
EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

REG_NAMES = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]

#: Register conventionally holding the env pointer in generated code
#: (QEMU's TCG x86 backend reserves EBP for this too).
ENV_REG = EBP

# EFLAGS bit positions (the architectural ones).
FLAG_CF = 0
FLAG_ZF = 6
FLAG_SF = 7
FLAG_OF = 11


class X86Op(enum.Enum):
    MOV = "mov"
    MOVZX = "movzx"
    MOVSX = "movsx"
    LEA = "lea"
    ADD = "add"
    ADC = "adc"
    SUB = "sub"
    SBB = "sbb"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    TEST = "test"
    NEG = "neg"
    NOT = "not"
    INC = "inc"
    DEC = "dec"
    IMUL = "imul"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    ROR = "ror"
    ROL = "rol"
    RCR = "rcr"
    BSR = "bsr"
    PUSH = "push"
    POP = "pop"
    PUSHFD = "pushfd"
    POPFD = "popfd"
    LAHF = "lahf"
    SAHF = "sahf"
    SETCC = "setcc"
    CMC = "cmc"
    STC = "stc"
    CLC = "clc"
    JMP = "jmp"
    JCC = "jcc"
    CALL_HELPER = "call"   # call into the QEMU runtime (a Python callable)
    EXIT_TB = "exit_tb"    # return to the cpu_exec loop with a status value
    GOTO_TB = "goto_tb"    # direct block chaining slot (patched jmp)
    NOPSLOT = "nop"

    # SSE scalar single-precision (the VFP rule templates).
    MOVSS = "movss"
    ADDSS = "addss"
    SUBSS = "subss"
    MULSS = "mulss"


class X86Cond(enum.Enum):
    """Host condition codes for jcc/setcc."""

    E = "e"      # ZF
    NE = "ne"
    B = "b"      # CF  (unsigned <)
    AE = "ae"    # !CF
    BE = "be"    # CF or ZF
    A = "a"      # !CF and !ZF
    S = "s"      # SF
    NS = "ns"
    O = "o"      # OF
    NO = "no"
    L = "l"      # SF != OF (signed <)
    GE = "ge"
    LE = "le"
    G = "g"


@dataclass(frozen=True)
class Mem:
    """A memory operand: [base + index*scale + disp]."""

    base: Optional[int] = None
    disp: int = 0
    index: Optional[int] = None
    scale: int = 1
    size: int = 4

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(REG_NAMES[self.base])
        if self.index is not None:
            parts.append(f"{REG_NAMES[self.index]}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        prefix = {1: "byte ", 2: "word ", 4: ""}[self.size]
        return f"{prefix}[{' + '.join(parts)}]"


#: An operand is a register number, an immediate (int via Imm), or Mem.
@dataclass(frozen=True)
class Reg:
    number: int

    def __str__(self) -> str:
        return REG_NAMES[self.number]


@dataclass(frozen=True)
class Imm:
    value: int

    def __str__(self) -> str:
        return f"{self.value:#x}"


@dataclass(frozen=True)
class Xmm:
    """An SSE register operand (xmm0..xmm7)."""

    number: int

    def __str__(self) -> str:
        return f"xmm{self.number}"


Operand = Union[Reg, Imm, Mem]


@dataclass
class X86Insn:
    """One host instruction."""

    op: X86Op
    dst: Optional[Operand] = None
    src: Optional[Operand] = None
    cond: Optional[X86Cond] = None
    label: Optional[str] = None            # jump target (intra-TB)
    helper: Optional[Callable] = None      # CALL_HELPER target
    helper_args: Tuple = ()                # registers passed to the helper
    imm: int = 0                           # EXIT_TB status / GOTO_TB slot
    tag: str = "code"
    target_index: int = -1                 # resolved intra-TB jump target

    def __str__(self) -> str:
        name = self.op.value
        if self.op is X86Op.JCC:
            return f"j{self.cond.value} {self.label}"
        if self.op is X86Op.SETCC:
            return f"set{self.cond.value} {self.dst}"
        if self.op is X86Op.JMP:
            return f"jmp {self.label}"
        if self.op is X86Op.CALL_HELPER:
            helper_name = getattr(self.helper, "__name__", "helper")
            return f"call {helper_name}"
        if self.op is X86Op.EXIT_TB:
            return f"exit_tb {self.imm:#x}"
        if self.op is X86Op.GOTO_TB:
            return f"goto_tb slot{self.imm}"
        operands = ", ".join(str(operand) for operand in
                             (self.dst, self.src) if operand is not None)
        return f"{name} {operands}".rstrip()
