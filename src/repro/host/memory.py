"""The host (emulator-process) address space.

Generated host code addresses the DBT's own data — the ``env`` CPU-state
structure, the packed softmmu TLB, the host stack, and guest RAM — through
this flat little-endian address space.  Regions *alias* the live
bytearrays owned by other components (the TLB's packed table, the
machine's guest RAM), so a host store through this object is immediately
visible to the Python-side models and vice versa.
"""

from __future__ import annotations

from typing import List

from ..common.errors import HostExecutionError


class HostMemory:
    """Sparse flat memory built from aliased bytearray regions."""

    def __init__(self):
        self._regions: List = []  # (base, size, bytearray)

    def map_region(self, base: int, data: bytearray, name: str = "") -> None:
        for other_base, other_size, _, other_name in self._regions:
            if base < other_base + other_size and other_base < base + len(data):
                raise ValueError(f"host region {name} overlaps {other_name}")
        self._regions.append((base, len(data), data, name))
        self._regions.sort(key=lambda region: region[0])

    def _find(self, addr: int, size: int):
        for base, region_size, data, _ in self._regions:
            if base <= addr and addr + size <= base + region_size:
                return base, data
        raise HostExecutionError(
            f"host access outside mapped regions: 0x{addr:08x} ({size} bytes)")

    def read(self, addr: int, size: int = 4) -> int:
        base, data = self._find(addr, size)
        offset = addr - base
        return int.from_bytes(data[offset:offset + size], "little")

    def write(self, addr: int, value: int, size: int = 4) -> None:
        base, data = self._find(addr, size)
        offset = addr - base
        data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")
