"""The mini guest OS.

A small ARMv7 kernel, written in the repository's assembly dialect and
assembled at load time.  It exercises every mechanism the paper's
coordination overheads come from:

- **system-level instructions**: msr/mrs for mode switching, mcr to set up
  TTBR0/DACR/SCTLR (MMU enable), cpsie/cpsid, exception returns
  (``movs pc, lr`` / ``subs pc, lr, #4``);
- **address translation**: it builds a real short-descriptor page table
  (1 MiB sections for RAM and devices, an L2 table of 4 KiB small pages
  for the first MiB so kernel pages are privileged-only) and turns the
  MMU on, after which *every* guest load/store goes through the softmmu;
- **interrupts**: a periodic timer IRQ with a handler that counts ticks;
- **demand paging**: MiB 4 of the address space starts unmapped; the
  data abort handler allocates a physical page from the MiB-7 pool,
  installs the L2 entry and retries the faulting instruction.

User programs run in USR mode at :data:`USER_ENTRY` and request services
with ``svc`` using the syscall numbers in :class:`Sys`.

Memory map (guest virtual == guest physical; identity-mapped):

    0x0000_0000  vector table
    0x0000_8000  kernel code (+ literal pool)
    0x0001_2000  SVC stack     0x13000 IRQ stack    0x13800 ABT stack
    0x0001_4000  kernel variables (tick counter)
    0x0002_0000  L1 page table (16 KiB)
    0x0002_4000  L2 page table for MiB 0 (1 KiB)
    0x0004_0000  user program (USER_ENTRY)
    0x0030_0000  user stack top (grows down)
    0x0010_0000+ user data / heap (user-accessible sections)
    0x0040_0000  demand-paged MiB (mapped on first touch)
    0x0070_0000  physical pool backing the demand pages
"""

from __future__ import annotations

from ..guest.asm import Program, assemble

USER_ENTRY = 0x40000
USER_STACK_TOP = 0x300000
USER_HEAP = 0x100000
DEMAND_BASE = 0x400000  # MiB 4 is demand-paged (mapped on first touch)
TICKS_VAR = 0x14000

DEFAULT_TIMER_RELOAD = 5000


class Sys:
    """Syscall numbers (passed in r7, arguments in r0..r1)."""

    EXIT = 0        # r0 = exit code
    PUTC = 1        # r0 = character
    PUTS = 2        # r0 = pointer, r1 = length
    TICKS = 3       # returns timer tick count in r0
    BREAD = 4       # r0 = sector, r1 = physical buffer address
    BWRITE = 5      # r0 = sector, r1 = physical buffer address
    NRXLEN = 6      # returns current rx packet length (0 if none)
    NRXBYTE = 7     # returns next rx byte
    NRXDONE = 8     # pop the rx packet
    NTXBYTE = 9     # r0 = byte to append
    NTXSEND = 10    # commit the tx packet
    PDEC = 12       # print r0 as decimal + newline
    PHEX = 13       # print r0 as hex + newline
    FAULTS = 14     # returns the demand-paging fault count in r0


KERNEL_SOURCE_TEMPLATE = r"""
@ ----- constants ---------------------------------------------------------
.equ UART_DR,     0x10000000
.equ TIMER_BASE,  0x10010000
.equ INTC_BASE,   0x10020000
.equ BLOCK_BASE,  0x10030000
.equ NIC_BASE,    0x10040000
.equ SYSCON_EXIT, 0x100F0000
.equ L1_TABLE,    0x20000
.equ L2_TABLE,    0x24000
.equ L2_DEMAND,   0x24400
.equ SVC_STACK,   0x12000
.equ IRQ_STACK,   0x13000
.equ ABT_STACK,   0x13800
.equ TICKS_VAR,   0x14000
.equ FAULTS_VAR,  0x14004
.equ DEMAND_NEXT, 0x14008
.equ USER_ENTRY,  0x40000
.equ USER_STACK,  0x300000
.equ RAM_MBS,     {ram_mbs}
.equ TIMER_RELOAD, {timer_reload}

@ ----- exception vectors -------------------------------------------------
_vectors:
    b _kstart             @ 0x00 reset
    b undef_handler       @ 0x04 undefined instruction
    b svc_handler         @ 0x08 supervisor call
    b pabt_handler        @ 0x0C prefetch abort
    b dabt_handler        @ 0x10 data abort
    nop                   @ 0x14 (unused)
    b irq_handler         @ 0x18 IRQ
    nop                   @ 0x1C FIQ (unused)

.org 0x8000
@ ----- boot --------------------------------------------------------------
_kstart:
    @ Per-mode stacks: hop through each mode with msr cpsr_c.
    ldr r0, =0xd2         @ IRQ mode, IRQs masked
    msr cpsr_c, r0
    ldr sp, =IRQ_STACK
    ldr r0, =0xd7         @ ABT mode
    msr cpsr_c, r0
    ldr sp, =ABT_STACK
    ldr r0, =0xdf         @ SYS mode (shares the user-bank SP)
    msr cpsr_c, r0
    ldr sp, =USER_STACK
    ldr r0, =0xd3         @ back to SVC mode
    msr cpsr_c, r0
    ldr sp, =SVC_STACK

    @ L1 sections for RAM MiBs 1..RAM_MBS-1: user read/write (AP=11).
    ldr r0, =L1_TABLE
    mov r1, #1
sect_loop:
    cmp r1, #4                    @ MiB 4 is demand-paged (see below)
    beq sect_next
    cmp r1, #7                    @ MiB 7 backs the demand-page pool
    beq sect_next
    mov r2, r1, lsl #20
    orr r2, r2, #0xC00
    orr r2, r2, #0x02
    str r2, [r0, r1, lsl #2]
sect_next:
    add r1, r1, #1
    cmp r1, #RAM_MBS
    blt sect_loop

    @ Device sections 0x100..0x104 (privileged only, AP=01).
    mov r1, #0x100
dev_loop:
    mov r2, r1, lsl #20
    orr r2, r2, #0x400
    orr r2, r2, #0x02
    str r2, [r0, r1, lsl #2]
    add r1, r1, #1
    ldr r3, =0x105
    cmp r1, r3
    blt dev_loop

    @ System controller section 0x10F.
    ldr r1, =0x10F
    mov r2, r1, lsl #20
    orr r2, r2, #0x400
    orr r2, r2, #0x02
    str r2, [r0, r1, lsl #2]

    @ MiB 4 is demand-paged: an initially-empty L2 table; the data
    @ abort handler maps 4 KiB pages on first touch.
    ldr r2, =L2_DEMAND
    orr r2, r2, #1
    str r2, [r0, #16]            @ L1[4]
    ldr r2, =0x700000            @ physical pool: MiB 7 (not VA-mapped)
    ldr r1, =DEMAND_NEXT
    str r2, [r1]                 @ next free physical page

    @ MiB 0 through an L2 table: kernel pages privileged, user pages open.
    ldr r2, =L2_TABLE
    orr r2, r2, #1
    str r2, [r0]
    ldr r0, =L2_TABLE
    mov r1, #0
l2_loop:
    mov r2, r1, lsl #12
    orr r2, r2, #0x12     @ small page, AP=01 (privileged)
    cmp r1, #0x40
    orrge r2, r2, #0x20   @ pages >= 0x40: AP=11 (user ok)
    str r2, [r0, r1, lsl #2]
    add r1, r1, #1
    cmp r1, #0x100
    blt l2_loop

    @ Turn the MMU on.
    ldr r0, =L1_TABLE
    mcr p15, 0, r0, c2, c0, 0     @ TTBR0
    mov r0, #1
    mcr p15, 0, r0, c3, c0, 0     @ DACR (client)
    mcr p15, 0, r0, c1, c0, 0     @ SCTLR.M = 1
    mcr p15, 0, r0, c8, c7, 0     @ TLBIALL (flush stale entries)

    @ Timer + interrupt controller.
    ldr r0, =TIMER_BASE
    ldr r1, =TIMER_RELOAD
    str r1, [r0]                  @ LOAD
    cmp r1, #0
    moveq r2, #0
    movne r2, #1
    str r2, [r0, #8]              @ CTRL.enable iff reload != 0
    ldr r0, =INTC_BASE
    mov r1, #5                    @ enable timer (bit 0) + block (bit 2)
    str r1, [r0, #8]
    cpsie i

    @ Enter the user program in USR mode with IRQs enabled.
    ldr r0, =0x10
    msr spsr_cxsf, r0
    ldr lr, =USER_ENTRY
    movs pc, lr

@ ----- supervisor calls --------------------------------------------------
svc_handler:
    push {{r0-r12, lr}}
    cmp r7, #0
    beq sys_exit
    cmp r7, #1
    beq sys_putc
    cmp r7, #2
    beq sys_puts
    cmp r7, #3
    beq sys_ticks
    cmp r7, #4
    beq sys_bread
    cmp r7, #5
    beq sys_bwrite
    cmp r7, #6
    beq sys_nrxlen
    cmp r7, #7
    beq sys_nrxbyte
    cmp r7, #8
    beq sys_nrxdone
    cmp r7, #9
    beq sys_ntxbyte
    cmp r7, #10
    beq sys_ntxsend
    cmp r7, #12
    beq sys_pdec
    cmp r7, #13
    beq sys_phex
    cmp r7, #14
    beq sys_faults
svc_done:
    pop {{r0-r12, lr}}
    movs pc, lr

sys_exit:
    ldr r1, =SYSCON_EXIT
    str r0, [r1]                  @ never returns (machine halts)

sys_putc:
    ldr r1, =UART_DR
    str r0, [r1]
    b svc_done

sys_puts:
    ldr r2, =UART_DR
    cmp r1, #0
    beq svc_done
puts_loop:
    ldrb r3, [r0], #1
    str r3, [r2]
    subs r1, r1, #1
    bne puts_loop
    b svc_done

sys_ticks:
    ldr r0, =TIMER_BASE
    ldr r0, [r0, #0x10]
    str r0, [sp]                  @ returned in the caller's r0 slot
    b svc_done

sys_bread:
    ldr r2, =BLOCK_BASE
    str r0, [r2]                  @ SECTOR
    str r1, [r2, #4]              @ DMA address
    mov r3, #1
    str r3, [r2, #8]              @ CMD = read
    str r3, [r2, #0x10]           @ ACK (transfer is synchronous)
    b svc_done

sys_bwrite:
    ldr r2, =BLOCK_BASE
    str r0, [r2]
    str r1, [r2, #4]
    mov r3, #2
    str r3, [r2, #8]              @ CMD = write
    mov r3, #1
    str r3, [r2, #0x10]
    b svc_done

sys_nrxlen:
    ldr r1, =NIC_BASE
    ldr r0, [r1]
    str r0, [sp]
    b svc_done

sys_nrxbyte:
    ldr r1, =NIC_BASE
    ldr r0, [r1, #4]
    str r0, [sp]
    b svc_done

sys_nrxdone:
    ldr r1, =NIC_BASE
    mov r0, #1
    str r0, [r1, #8]
    b svc_done

sys_ntxbyte:
    ldr r1, =NIC_BASE
    str r0, [r1, #0xC]
    b svc_done

sys_ntxsend:
    ldr r1, =NIC_BASE
    mov r0, #1
    str r0, [r1, #0x10]
    b svc_done

sys_pdec:
    ldr r2, =UART_DR
    ldr r3, =pow10_table
    mov r12, #0                   @ "printed a digit yet" flag
pdec_outer:
    ldr r4, [r3], #4
    cmp r4, #0
    beq pdec_end
    mov r1, #0
pdec_inner:
    cmp r0, r4
    blo pdec_emit
    sub r0, r0, r4
    add r1, r1, #1
    b pdec_inner
pdec_emit:
    cmp r12, #1
    beq pdec_print
    cmp r1, #0
    beq pdec_outer                @ skip leading zeros
pdec_print:
    mov r12, #1
    add r1, r1, #'0'
    str r1, [r2]
    b pdec_outer
pdec_end:
    cmp r12, #0
    bne pdec_nl
    mov r1, #'0'
    str r1, [r2]
pdec_nl:
    mov r1, #10
    str r1, [r2]
    b svc_done

sys_faults:
    ldr r0, =FAULTS_VAR
    ldr r0, [r0]
    str r0, [sp]                  @ returned in the caller's r0 slot
    b svc_done

sys_phex:
    ldr r2, =UART_DR
    mov r3, #8
phex_loop:
    mov r1, r0, lsr #28
    cmp r1, #10
    addlt r1, r1, #'0'
    addge r1, r1, #('a' - 10)
    str r1, [r2]
    mov r0, r0, lsl #4
    subs r3, r3, #1
    bne phex_loop
    mov r1, #10
    str r1, [r2]
    b svc_done

@ ----- interrupts --------------------------------------------------------
irq_handler:
    push {{r0-r3, r12, lr}}
    ldr r0, =INTC_BASE
    ldr r1, [r0]                  @ STATUS (pending & enabled)
    tst r1, #1
    beq irq_not_timer
    ldr r0, =TIMER_BASE
    mov r2, #1
    str r2, [r0, #0xC]            @ timer ACK
    ldr r0, =TICKS_VAR
    ldr r2, [r0]
    add r2, r2, #1
    str r2, [r0]
irq_not_timer:
    tst r1, #4
    beq irq_done
    ldr r0, =BLOCK_BASE
    mov r2, #1
    str r2, [r0, #0x10]           @ block ACK
irq_done:
    pop {{r0-r3, r12, lr}}
    subs pc, lr, #4

@ ----- faults ------------------------------------------------------------
dabt_handler:
    push {{r0-r3, lr}}
    mrc p15, 0, r0, c6, c0, 0     @ DFAR: the faulting address
    ldr r1, =0x400000             @ the demand-paged MiB
    sub r2, r0, r1
    cmp r2, #0x100000
    bhs dabt_fatal
    @ map the 4 KiB page: L2_DEMAND[(dfar >> 12) & 0xFF]
    mov r2, r0, lsr #12
    and r2, r2, #0xFF
    ldr r1, =DEMAND_NEXT
    ldr r3, [r1]                  @ next free physical page
    add r0, r3, #0x1000
    str r0, [r1]
    orr r3, r3, #0x30             @ small page, AP=11 (user ok)
    orr r3, r3, #0x02
    ldr r1, =L2_DEMAND
    str r3, [r1, r2, lsl #2]
    ldr r1, =FAULTS_VAR           @ count the page-in
    ldr r3, [r1]
    add r3, r3, #1
    str r3, [r1]
    pop {{r0-r3, lr}}
    subs pc, lr, #8               @ retry the faulting instruction
dabt_fatal:
    ldr r0, =UART_DR
    mov r1, #'D'
    str r1, [r0]
    ldr r0, =SYSCON_EXIT
    mov r1, #127
    str r1, [r0]

pabt_handler:
    ldr r0, =UART_DR
    mov r1, #'P'
    str r1, [r0]
    ldr r0, =SYSCON_EXIT
    mov r1, #125
    str r1, [r0]

undef_handler:
    ldr r0, =UART_DR
    mov r1, #'U'
    str r1, [r0]
    ldr r0, =SYSCON_EXIT
    mov r1, #126
    str r1, [r0]

pow10_table:
    .word 1000000000
    .word 100000000
    .word 10000000
    .word 1000000
    .word 100000
    .word 10000
    .word 1000
    .word 100
    .word 10
    .word 1
    .word 0
.ltorg
"""


def build_kernel(timer_reload: int = DEFAULT_TIMER_RELOAD,
                 ram_mbs: int = 8) -> Program:
    """Assemble the kernel image (base address 0)."""
    source = KERNEL_SOURCE_TEMPLATE.format(timer_reload=timer_reload,
                                           ram_mbs=ram_mbs)
    return assemble(source, base=0)


#: User-side syscall wrapper routines; workloads append their code after
#: this prelude (which starts with a jump to the workload's ``main``).
USER_PRELUDE = r"""
.equ USER_HEAP, 0x100000
.equ DEMAND_BASE, 0x400000
_start:
    b main

@ r0 = exit code.
uexit:
    mov r7, #0
    svc #0

@ r0 = character.
uputc:
    mov r7, #1
    svc #0
    bx lr

@ r0 = pointer, r1 = length.
uputs:
    mov r7, #2
    svc #0
    bx lr

@ returns tick count in r0.
uticks:
    mov r7, #3
    svc #0
    bx lr

@ r0 = sector, r1 = buffer (user virtual == physical here).
ubread:
    mov r7, #4
    svc #0
    bx lr

ubwrite:
    mov r7, #5
    svc #0
    bx lr

unrxlen:
    mov r7, #6
    svc #0
    bx lr

unrxbyte:
    mov r7, #7
    svc #0
    bx lr

unrxdone:
    mov r7, #8
    svc #0
    bx lr

untxbyte:
    mov r7, #9
    svc #0
    bx lr

untxsend:
    mov r7, #10
    svc #0
    bx lr

@ print r0 in decimal + newline.
updec:
    mov r7, #12
    svc #0
    bx lr

@ print r0 in hex + newline.
uphex:
    mov r7, #13
    svc #0
    bx lr

@ returns the demand-paging fault count in r0.
ufaults:
    mov r7, #14
    svc #0
    bx lr
"""


def build_user_program(body: str, base: int = USER_ENTRY) -> Program:
    """Assemble a user program: prelude (syscall wrappers) + *body*.

    The body must define ``main``; it may end with ``.ltorg`` of its own.
    """
    return assemble(USER_PRELUDE + body, base=base)
