"""The mini guest OS (boot, page tables, syscalls, IRQ handling)."""

from .kernel import (DEFAULT_TIMER_RELOAD, KERNEL_SOURCE_TEMPLATE, Sys,
                     USER_ENTRY, USER_HEAP, USER_PRELUDE, USER_STACK_TOP,
                     build_kernel, build_user_program)

__all__ = ["DEFAULT_TIMER_RELOAD", "KERNEL_SOURCE_TEMPLATE", "Sys",
           "USER_ENTRY", "USER_HEAP", "USER_PRELUDE", "USER_STACK_TOP",
           "build_kernel", "build_user_program"]
