"""Reproduction of "A System-Level Dynamic Binary Translator using
Automatically-Learned Translation Rules" (CGO 2024).

Public API tour:

- :class:`repro.miniqemu.Machine` — a full guest system (ARMv7 CPU,
  softmmu, devices) with a pluggable execution engine
  (``engine="interp" | "tcg" | "rules"``).
- :func:`repro.core.make_rule_engine` — the paper's rule-based DBT at a
  chosen :class:`repro.core.OptLevel`.
- :func:`repro.learning.learn` — the automatic rule-learning pipeline.
- :mod:`repro.harness` — experiment runners reproducing every table and
  figure of the paper's evaluation.
- :mod:`repro.workloads` — SPEC CINT2006 analogs + real-world analogs.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from . import common, core, devices, guest, harness, host, ir, kernel, \
    learning, miniqemu, softmmu, workloads  # noqa: F401

__all__ = ["common", "core", "devices", "guest", "harness", "host", "ir",
           "kernel", "learning", "miniqemu", "softmmu", "workloads",
           "__version__"]
