"""SPEC CINT2006 analog workloads.

Twelve synthetic guest programs, one per benchmark in the paper's Table I.
Each is a small but genuine implementation of the benchmark's
characteristic algorithm (an interpreter dispatch loop for perlbench, RLE
coding for bzip2, pointer chasing for mcf, ...), written in ARMv7
assembly and sized so that its *dynamic instruction mix* — the fraction
of memory accesses, the basic-block length (which sets the interrupt-
check frequency), and the system-instruction rate — approximates the
paper's measured distribution for that benchmark:

    benchmark   sys%   mem%   irq-check%   character
    perlbench   0.28   36.94  19.64        hash + bytecode dispatch
    bzip2       0.28   40.03  14.24        run-length coding
    gcc         2.48   29.90  20.11        token scan + symbol table,
                                           syscall-heavy
    mcf         0.45   41.19  20.53        linked-list pointer chasing
    gobmk       0.25   30.58  17.53        board scanning
    hmmer       0.09   47.98   5.18        DP inner loop, long blocks
    sjeng       0.17   33.86  17.84        game-tree search (stack)
    libquantum  0.09   23.36   9.19        bit-twiddling, ALU heavy
    h264ref     0.13   55.21   9.15        SAD block matching
    omnetpp     0.24   22.54  22.02        binary-heap event queue
    astar       0.24   31.42  15.92        grid BFS
    xalancbmk   0.34   23.81  25.94        tree walking, very branchy

Every workload prints a deterministic checksum through the kernel's
``updec`` syscall and exits 0, which the differential tests verify on
every engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Workload:
    name: str
    body: str
    expected_output: Optional[str] = None
    max_insns: int = 5_000_000
    timer_reload: int = 5000
    disk_image: Optional[bytes] = None
    nic_packets: List[bytes] = field(default_factory=list)
    category: str = "spec"


PERLBENCH = Workload("perlbench", expected_output="3296224939\n", body=r"""
main:
    ldr r4, =USER_HEAP          @ bytecode buffer
    mov r5, #0
fill:                           @ synthesize a 512-op bytecode program
    mul r0, r5, r5
    add r0, r0, r5, lsr #3
    and r0, r0, #7
    strb r0, [r4, r5]
    add r5, r5, #1
    cmp r5, #512
    blt fill

    mov r8, #0                  @ accumulator (the "interpreter state")
    ldr r10, =USER_HEAP + 0x2000 @ VM operand stack (grows up)
    str r8, [r10]
    str r8, [r10, #4]
    mov r9, #0                  @ pass counter
passes:
    mov r5, #0                  @ program counter
dispatch:
    ldrb r0, [r4, r5]           @ fetch opcode
    cmp r0, #0
    beq op_add
    cmp r0, #1
    beq op_xor
    cmp r0, #2
    beq op_shift
    cmp r0, #3
    beq op_load
    cmp r0, #4
    beq op_store
    cmp r0, #5
    beq op_hash
    cmp r0, #6
    beq op_sub
    b op_rot
op_add:
    ldr r1, [r10]               @ pop two, push sum (stack VM)
    ldr r2, [r10, #4]
    add r1, r1, r2
    add r1, r1, r5
    str r1, [r10]
    add r8, r8, r1
    b next
op_xor:
    ldr r1, [r10]
    and r2, r5, #0x7F
    ldrb r2, [r4, r2]
    eor r1, r1, r2, lsl #2
    str r1, [r10, #4]
    add r8, r8, r1
    b next
op_shift:
    ldr r1, [r10]
    add r8, r8, r1, lsl #5
    str r8, [r10]
    and r1, r5, #0x3F
    strb r8, [r4, r1]
    b next
op_load:
    and r1, r5, #0xFF
    ldrb r2, [r4, r1]
    add r8, r8, r2
    b next
op_store:
    and r1, r5, #0xFF
    strb r8, [r4, r1]
    b next
op_hash:
    eor r8, r8, r8, lsr #7
    add r8, r8, #0x9000000
    b next
op_sub:
    sub r8, r8, r5, lsr #1
    b next
op_rot:
    add r8, r8, r8, ror #13
next:
    add r5, r5, #1
    cmp r5, #512
    blt dispatch
    add r9, r9, #1
    cmp r9, #10
    blt passes

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


BZIP2 = Workload("bzip2", expected_output="11941904\n", body=r"""
main:
    ldr r4, =USER_HEAP          @ source buffer
    ldr r5, =USER_HEAP + 0x4000 @ encoded buffer
    ldr r6, =USER_HEAP + 0x8000 @ decoded buffer
    mov r0, #0
    ldr r1, =7
genloop:                        @ generate compressible data (runs)
    mul r2, r0, r1
    mov r2, r2, lsr #4
    and r2, r2, #15
    strb r2, [r4, r0]
    add r0, r0, #1
    cmp r0, #2048
    blt genloop

    mov r9, #0                  @ passes
encpass:
    @ --- RLE encode r4[0..2048) -> r5, length in r10
    mov r0, #0                  @ src index
    mov r10, #0                 @ dst index
encode:
    ldrb r1, [r4, r0]           @ current byte
    mov r2, #1                  @ run length
runlen:
    add r3, r0, r2
    cmp r3, #2048
    bge runout
    ldrb r3, [r4, r3]
    cmp r3, r1
    bne runout
    add r2, r2, #1
    cmp r2, #255
    blt runlen
runout:
    strb r1, [r5, r10]
    add r10, r10, #1
    strb r2, [r5, r10]
    add r10, r10, #1
    add r0, r0, r2
    cmp r0, #2048
    blt encode

    @ --- decode r5[0..r10) -> r6
    mov r0, #0                  @ src
    mov r1, #0                  @ dst
decode:
    ldrb r2, [r5, r0]           @ byte
    add r0, r0, #1
    ldrb r3, [r5, r0]           @ count
    add r0, r0, #1
expand:
    strb r2, [r6, r1]
    add r1, r1, #1
    subs r3, r3, #1
    bne expand
    cmp r0, r10
    blt decode
    add r9, r9, #1
    cmp r9, #2
    blt encpass

    @ --- move-to-front transform over the decoded buffer (mem heavy)
    ldr r11, =USER_HEAP + 0xC000 @ MTF symbol table (16 bytes)
    mov r0, #0
mtfinit:
    strb r0, [r11, r0]
    add r0, r0, #1
    cmp r0, #16
    blt mtfinit
    mov r0, #0                  @ buffer index
mtf:
    ldrb r1, [r6, r0]           @ symbol
    mov r2, #0                  @ search the table
mtffind:
    ldrb r3, [r11, r2]
    cmp r3, r1
    beq mtfhit
    add r2, r2, #1
    cmp r2, #16
    blt mtffind
mtfhit:
    strb r2, [r6, r0]           @ replace symbol with its rank
mtfshift:                       @ move the symbol to the front
    cmp r2, #0
    beq mtfdone
    sub r3, r2, #1
    ldrb r12, [r11, r3]
    strb r12, [r11, r2]
    sub r2, r2, #1
    b mtfshift
mtfdone:
    strb r1, [r11]
    add r0, r0, #1
    ldr r3, =1024
    cmp r0, r3
    blt mtf

    @ --- checksum decoded buffer + encoded length
    mov r0, #0
    mov r1, #0
cksum:
    ldrb r2, [r6, r1]
    add r0, r0, r2
    add r0, r0, r0, lsl #3
    bic r0, r0, #0xFF000000
    add r1, r1, #1
    cmp r1, #2048
    blt cksum
    add r0, r0, r10
    bl updec
    mov r0, #0
    bl uexit
""")


GCC = Workload("gcc", expected_output="482304\n", body=r"""
main:
    ldr r4, =USER_HEAP          @ "source text"
    mov r0, #0
srcgen:
    mul r1, r0, r0
    add r1, r1, r0, lsl #1
    and r1, r1, #63
    add r1, r1, #32             @ printable-ish token bytes
    strb r1, [r4, r0]
    add r0, r0, #1
    cmp r0, #1024
    blt srcgen

    ldr r5, =USER_HEAP + 0x8000 @ symbol table: 256 slots of 8 bytes
    mov r8, #0                  @ checksum
    mov r9, #0                  @ outer passes (each ends in a syscall)
compile:
    mov r6, #0                  @ scan index
scan:
    ldrb r0, [r4, r6]
    @ classify: "identifier" if >= 64, else "operator"
    cmp r0, #64
    blt operator
    @ hash insert: h = (byte*31 + index) & 255
    mov r1, #31
    mul r2, r0, r1
    add r2, r2, r6
    and r2, r2, #255
probe:
    ldr r3, [r5, r2, lsl #3]    @ slot key
    cmp r3, #0
    beq insert
    cmp r3, r0
    beq found
    add r2, r2, #1
    and r2, r2, #255
    b probe
insert:
    str r0, [r5, r2, lsl #3]
found:
    add r12, r5, r2, lsl #3
    ldr r3, [r12, #4]
    add r3, r3, #1
    str r3, [r12, #4]           @ bump occurrence count
    add r8, r8, r2
    b advance
operator:
    add r8, r8, r0, lsl #1
advance:
    add r6, r6, #1
    tst r6, #7
    bleq uticks                 @ "emit object code" (frequent syscalls)
    cmp r6, #192
    blt scan
    bl uticks
    add r9, r9, #1
    cmp r9, #24
    blt compile

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


MCF = Workload("mcf", expected_output="5120\n", body=r"""
main:
    @ Build a 512-node singly-linked network: node = {next, cost, flow}.
    ldr r4, =USER_HEAP
    mov r0, #0
build:
    mul r1, r0, r0
    add r1, r1, #17
    and r1, r1, #0x1F8          @ pseudo-random successor
    add r2, r4, r1, lsl #4      @ &node[succ]
    add r3, r4, r0, lsl #4      @ &node[i]
    str r2, [r3]                @ node.next
    eor r1, r1, r0
    str r1, [r3, #4]            @ node.cost
    mov r1, #0
    str r1, [r3, #8]            @ node.flow
    add r0, r0, #1
    cmp r0, #512
    blt build

    mov r8, #0                  @ objective
    mov r9, #0                  @ iterations
simplex:
    mov r5, r4                  @ current node
    mov r6, #64                 @ chase length
chase:
    ldr r0, [r5, #4]            @ cost
    ldr r1, [r5, #8]            @ flow
    ldr r3, [r5, #12]           @ potential
    add r0, r0, r3, lsr #8
    add r2, r0, r1
    cmp r2, r8, lsr #16
    addlt r8, r8, r0
    addge r8, r8, #1
    add r1, r1, #1
    str r1, [r5, #8]            @ update flow
    ldr r5, [r5]                @ follow pointer
    subs r6, r6, #1
    bne chase
    add r9, r9, #1
    cmp r9, #80
    blt simplex

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


GOBMK = Workload("gobmk", expected_output="9592\n", body=r"""
main:
    @ 32x32 board of stones {0,1,2}; count pattern scores.
    ldr r4, =USER_HEAP
    mov r0, #0
seed:
    mul r1, r0, r0
    add r1, r1, r0, lsl #3
    mov r1, r1, lsr #3
    cmp r1, r0
    and r1, r1, #3
    cmp r1, #3
    moveq r1, #0
    strb r1, [r4, r0]
    add r0, r0, #1
    ldr r2, =1024
    cmp r0, r2
    blt seed

    mov r8, #0                  @ score
    mov r9, #0                  @ passes
evaluate:
    mov r5, #33                 @ start inside the border
row:
    ldrb r0, [r4, r5]           @ stone at (x, y)
    cmp r0, #0
    beq empty
    sub r1, r5, #1
    ldrb r1, [r4, r1]           @ west
    add r2, r5, #1
    ldrb r2, [r4, r2]           @ east
    sub r3, r5, #32
    ldrb r3, [r4, r3]           @ north
    add r6, r5, #32
    ldrb r6, [r4, r6]           @ south
    @ liberties: empty neighbours
    cmp r1, #0
    addeq r8, r8, #1
    cmp r2, #0
    addeq r8, r8, #1
    cmp r3, #0
    addeq r8, r8, #1
    cmp r6, #0
    addeq r8, r8, #1
    @ connection bonus: same-colour east neighbour
    cmp r2, r0
    addeq r8, r8, #3
    b next_point
empty:
    add r8, r8, #0
next_point:
    add r5, r5, #1
    ldr r1, =990
    cmp r5, r1
    blt row
    add r9, r9, #1
    cmp r9, #8
    blt evaluate

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


HMMER = Workload("hmmer", expected_output="1151559\n", body=r"""
main:
    @ Viterbi-style DP: score[i] = max(prev[i-1]+m, prev[i]+d) + e[i].
    ldr r4, =USER_HEAP          @ prev row (128 words)
    ldr r5, =USER_HEAP + 0x400  @ curr row
    ldr r6, =USER_HEAP + 0x800  @ emission scores
    mov r0, #0
init:
    mul r1, r0, r0
    and r1, r1, #255
    str r1, [r6, r0, lsl #2]
    mov r2, #0
    str r2, [r4, r0, lsl #2]
    add r0, r0, #1
    cmp r0, #128
    blt init

    mov r9, #0                  @ sequence position
viterbi:
    mov r8, #1                  @ state index (4x unrolled inner loop)
inner:
    sub r0, r8, #1
    ldr r1, [r4, r0, lsl #2]    @ prev[i-1]
    ldr r2, [r4, r8, lsl #2]    @ prev[i]
    ldr r3, [r6, r0, lsl #2]    @ match transition score
    add r1, r1, r3
    add r2, r2, #1              @ delete transition
    cmp r1, r2
    movlt r1, r2
    ldr r3, [r6, r8, lsl #2]    @ emission
    add r1, r1, r3
    bic r1, r1, #0xFF000000     @ keep scores bounded
    str r1, [r5, r8, lsl #2]    @ curr[i]
    add r8, r8, #1
    sub r0, r8, #1
    ldr r1, [r4, r0, lsl #2]
    ldr r2, [r4, r8, lsl #2]
    ldr r3, [r6, r0, lsl #2]
    add r1, r1, r3
    add r2, r2, #1
    cmp r1, r2
    movlt r1, r2
    ldr r3, [r6, r8, lsl #2]
    add r1, r1, r3
    bic r1, r1, #0xFF000000
    str r1, [r5, r8, lsl #2]
    add r8, r8, #1
    cmp r8, #128
    blt inner
    @ swap rows
    mov r0, r4
    mov r4, r5
    mov r5, r0
    add r9, r9, #1
    cmp r9, #40
    blt viterbi

    @ checksum final row
    mov r0, #0
    mov r1, #0
final:
    ldr r2, [r4, r1, lsl #2]
    add r0, r0, r2
    add r1, r1, #1
    cmp r1, #128
    blt final
    bl updec
    mov r0, #0
    bl uexit
""")


SJENG = Workload("sjeng", expected_output="118238\n", body=r"""
main:
    @ Iterative game-tree search with an explicit stack of positions.
    ldr r4, =USER_HEAP          @ stack of (position, depth) pairs
    ldr r8, =0x12345           @ position hash
    mov r9, #0                  @ best score
    mov r11, #0                 @ game counter
game:
    mov r5, #0                  @ stack pointer (index)
    @ push root
    add r8, r8, r11, lsl #5
    str r8, [r4]
    mov r0, #9                  @ root depth
    str r0, [r4, #4]
    mov r5, #1
search:
    cmp r5, #0
    beq game_over
    sub r5, r5, #1
    add r1, r4, r5, lsl #3
    ldr r8, [r1]                @ position
    ldr r6, [r1, #4]            @ depth
    @ transposition-table probe (1K entries at heap + 0x1000)
    ldr r12, =USER_HEAP + 0x1000
    eor r0, r8, r8, lsr #11
    add r0, r0, r0, lsl #3
    and r2, r0, #0xFF0
    ldr r3, [r12, r2]           @ tt entry
    cmp r3, r8
    addeq r9, r9, #2            @ tt hit bonus
    str r8, [r12, r2]           @ store position
    and r2, r0, #255
    add r9, r9, r2
    cmp r6, #0
    beq search                  @ leaf
    @ expand 2 children (bounded stack)
    cmp r5, #200
    bge search
    mov r1, #0x41
    mul r2, r8, r1
    add r2, r2, #13             @ child 1 position
    add r3, r4, r5, lsl #3
    str r2, [r3]
    sub r0, r6, #1
    str r0, [r3, #4]
    add r5, r5, #1
    eor r2, r8, r8, lsl #7
    add r2, r2, #29             @ child 2 position
    and r1, r2, #1
    cmp r1, #0                  @ prune half the children
    beq search
    add r3, r4, r5, lsl #3
    str r2, [r3]
    sub r0, r6, #1
    str r0, [r3, #4]
    add r5, r5, #1
    b search
game_over:
    add r11, r11, #1
    cmp r11, #12
    blt game
    mov r0, r9
    bl updec
    mov r0, #0
    bl uexit
""")


LIBQUANTUM = Workload("libquantum", expected_output="4244632576\n", body=r"""
main:
    @ Quantum register simulation: phase kickback over 2^k basis states.
    ldr r4, =USER_HEAP          @ amplitude table (byte phases)
    mov r8, #0                  @ state checksum
    mov r9, #0                  @ gate counter
gates:
    @ controlled-NOT-ish pass: pure ALU bit manipulation
    mov r5, #0
    ldr r6, =0x5A5A5A5A
states:
    eor r0, r5, r5, lsl #13
    eor r0, r0, r0, lsr #17
    eor r0, r0, r0, lsl #5     @ xorshift "amplitude"
    and r1, r5, #7
    mov r2, r6, ror r1
    eor r0, r0, r2
    add r8, r8, r0
    @ occasionally touch a phase byte (sparse memory traffic)
    tst r5, #1
    andeq r1, r5, #0xFF
    ldrbeq r2, [r4, r1]
    addeq r0, r0, r2
    strbeq r0, [r4, r1]
    add r5, r5, #1
    cmp r5, #256
    blt states
    add r9, r9, #1
    cmp r9, #24
    blt gates

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


H264REF = Workload("h264ref", expected_output="3954265738\n", body=r"""
main:
    @ Motion estimation: SAD of a 16x16 block over a search window,
    @ then motion-compensation block copies (very memory-heavy).
    ldr r4, =USER_HEAP          @ reference frame (64x64 bytes)
    ldr r5, =USER_HEAP + 0x2000 @ current block (16x16)
    ldr r11, =USER_HEAP + 0x3000 @ reconstruction buffer
    mov r0, #0
    ldr r3, =0x01010101
frame:
    mul r1, r0, r3              @ word-wise pseudo-pixels
    add r1, r1, r0, ror #7
    str r1, [r4, r0, lsl #2]
    add r0, r0, #1
    ldr r2, =1024
    cmp r0, r2
    blt frame
    mov r0, #0
block:
    add r1, r0, #7
    mul r1, r1, r1
    and r1, r1, #255
    strb r1, [r5, r0]
    add r0, r0, #1
    cmp r0, #256
    blt block

    mov r8, #0                  @ SAD accumulator
    mov r9, #0                  @ search position
window:
    mov r6, #0                  @ row
sadrow:
    add r0, r9, r6, lsl #6
    add r0, r0, r4              @ ref row pointer
    add r2, r5, r6, lsl #4      @ cur row pointer
    mov r10, #16                @ 16 pixels, pointer-walking
sadcol:
    ldrb r1, [r0], #1
    ldrb r3, [r2], #1
    subs r1, r1, r3
    rsblt r1, r1, #0            @ abs
    add r8, r8, r1
    subs r10, r10, #1
    bne sadcol
    add r6, r6, #1
    cmp r6, #16
    blt sadrow
    @ motion compensation: copy the best row block (word loads/stores)
    add r0, r4, r9
    mov r2, r11
    mov r10, #64
copy:
    ldr r1, [r0], #4
    str r1, [r2], #4
    subs r10, r10, #1
    bne copy
    add r9, r9, #4
    cmp r9, #64
    blt window

    @ fold the reconstruction buffer into the checksum
    mov r1, #0
fold:
    ldr r2, [r11, r1, lsl #2]
    add r8, r8, r2
    add r1, r1, #1
    cmp r1, #64
    blt fold
    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


OMNETPP = Workload("omnetpp", expected_output="2097701\n", body=r"""
main:
    @ Discrete-event simulation: binary min-heap of (time, kind) events.
    ldr r4, =USER_HEAP          @ heap array (8-byte entries)
    mov r5, #0                  @ heap size
    ldr r8, =0x1234             @ rng state
    mov r9, #0                  @ processed events
    mov r10, #0                 @ simulated clock checksum
    @ seed 16 events
seedloop:
    bl rng
    and r0, r8, #0xFF0
    bl heap_push
    add r9, r9, #1
    cmp r9, #16
    blt seedloop
    mov r9, #0
run:
    bl heap_pop                 @ r0 = earliest time
    add r10, r10, r0
    ldr r1, =USER_HEAP + 0x4000 @ event log
    and r2, r9, #0xFF0
    str r0, [r1, r2]            @ log the event time
    ldr r3, [r1, r2]
    add r10, r10, r3, lsr #24
    @ each event schedules 0-2 successors
    bl rng
    tst r8, #1
    beq noschedule
    and r0, r8, #0xFF0
    add r0, r0, r10, lsr #20
    bl heap_push
noschedule:
    bl rng
    tst r8, #6
    bne skip2
    and r0, r8, #0x7F0
    bl heap_push
skip2:
    cmp r5, #0
    beq refill
    add r9, r9, #1
    ldr r0, =900
    cmp r9, r0
    blt run
    b finish
refill:
    bl rng
    and r0, r8, #0xFF0
    bl heap_push
    b run
finish:
    mov r0, r10
    bl updec
    mov r0, #0
    bl uexit

rng:                            @ xorshift on r8
    eor r8, r8, r8, lsl #13
    eor r8, r8, r8, lsr #17
    eor r8, r8, r8, lsl #5
    bx lr

heap_push:                      @ r0 = key; clobbers r1-r3, r6
    add r1, r4, r5, lsl #3
    str r0, [r1]
    str r9, [r1, #4]
    mov r1, r5                  @ sift up from index r5
    add r5, r5, #1
siftup:
    cmp r1, #0
    beq push_done
    sub r2, r1, #1
    mov r2, r2, lsr #1          @ parent index
    add r3, r4, r2, lsl #3
    ldr r6, [r3]
    cmp r6, r0
    bls push_done
    @ swap
    add r12, r4, r1, lsl #3
    str r6, [r12]
    str r0, [r3]
    mov r1, r2
    b siftup
push_done:
    bx lr

heap_pop:                       @ returns min key in r0; clobbers r1-r3,r6,r12
    ldr r0, [r4]
    sub r5, r5, #1
    add r1, r4, r5, lsl #3
    ldr r2, [r1]                @ last key
    str r2, [r4]
    mov r1, #0                  @ sift down
siftdown:
    add r2, r1, r1
    add r2, r2, #1              @ left child
    cmp r2, r5
    bge pop_done
    add r3, r2, #1              @ right child
    cmp r3, r5
    bge noright
    add r12, r4, r2, lsl #3
    ldr r6, [r12]
    add r12, r4, r3, lsl #3
    ldr r12, [r12]
    cmp r12, r6
    movlo r2, r3                @ pick the smaller child
noright:
    add r3, r4, r1, lsl #3
    ldr r6, [r3]                @ parent key
    add r12, r4, r2, lsl #3
    ldr r12, [r12]              @ child key
    cmp r12, r6
    bhs pop_done
    @ swap parent/child
    add r3, r4, r1, lsl #3
    str r12, [r3]
    add r3, r4, r2, lsl #3
    str r6, [r3]
    mov r1, r2
    b siftdown
pop_done:
    bx lr
""")


ASTAR = Workload("astar", expected_output="960\n", body=r"""
main:
    @ Repeated BFS over a 32x32 grid with walls; ring-buffer frontier.
    ldr r4, =USER_HEAP          @ grid: 0 free, 1 wall, 2 visited
    ldr r5, =USER_HEAP + 0x1000 @ queue of cell indices
    ldr r12, =USER_HEAP + 0x2000 @ wall template
    mov r0, #0
template:
    mul r1, r0, r0
    add r1, r1, r0, lsl #2
    and r1, r1, #31
    cmp r1, #5                  @ ~1/6 walls
    movlt r1, #1
    movge r1, #0
    strb r1, [r12, r0]
    add r0, r0, #1
    ldr r2, =1024
    cmp r0, r2
    blt template
    mov r11, #0                 @ search number
    mov r10, #0                 @ total reachable cells
searches:
    mov r0, #0
grid:                           @ reset the grid from the template
    ldr r1, [r12, r0]
    str r1, [r4, r0]
    add r0, r0, #4
    ldr r2, =1024
    cmp r0, r2
    blt grid

    ldr r0, =33                 @ start cell (1,1)
    mov r1, #2
    strb r1, [r4, r0]
    str r0, [r5]
    mov r8, #1                  @ queue tail
    mov r9, #0                  @ queue head
bfs:
    cmp r9, r8
    beq bfs_done
    ldr r6, [r5, r9, lsl #2]    @ dequeue
    add r9, r9, #1
    add r10, r10, #1
    @ four neighbours
    sub r0, r6, #1
    bl visit
    add r0, r6, #1
    bl visit
    sub r0, r6, #32
    bl visit
    add r0, r6, #32
    bl visit
    b bfs
visit:
    cmp r0, #0
    bxlt lr
    ldr r1, =1024
    cmp r0, r1
    bxge lr
    ldrb r1, [r4, r0]
    cmp r1, #0
    bxne lr                     @ wall or visited
    mov r1, #2
    strb r1, [r4, r0]
    str r0, [r5, r8, lsl #2]
    add r8, r8, #1
    bx lr
bfs_done:
    add r11, r11, #1
    cmp r11, #10
    blt searches
    mov r0, r10
    bl updec
    mov r0, #0
    bl uexit
""")


XALANCBMK = Workload("xalancbmk", expected_output="8390\n", body=r"""
main:
    @ XML-ish tree: array of nodes {tag, first_child, sibling};
    @ repeated traversals with tag matching (short, branchy blocks).
    ldr r4, =USER_HEAP
    mov r0, #0
nodes:                          @ build 256 nodes
    mul r1, r0, r0
    add r1, r1, #3
    and r1, r1, #15
    add r2, r4, r0, lsl #4
    str r1, [r2]                @ tag
    add r1, r0, r0
    add r1, r1, #1
    cmp r1, #256
    movge r1, #0
    str r1, [r2, #4]            @ first child
    add r1, r1, #1
    cmp r1, #256
    movge r1, #0
    str r1, [r2, #8]            @ sibling
    add r0, r0, #1
    cmp r0, #256
    blt nodes

    mov r8, #0                  @ matches
    mov r9, #0                  @ queries
query:
    and r10, r9, #15            @ target tag
    mov r5, #0                  @ current node
    mov r6, #0                  @ steps
walk:
    add r2, r4, r5, lsl #4
    ldr r0, [r2]                @ tag
    cmp r0, r10
    addeq r8, r8, r5
    addne r8, r8, #1
    tst r6, #1
    ldreq r5, [r2, #4]          @ even step: descend
    ldrne r5, [r2, #8]          @ odd step: sibling
    cmp r5, #0
    beq walk_done
    add r6, r6, #1
    cmp r6, #40
    blt walk
walk_done:
    add r9, r9, #1
    ldr r0, =160
    cmp r9, r0
    blt query

    mov r0, r8
    bl updec
    mov r0, #0
    bl uexit
""")


SPEC_WORKLOADS: Dict[str, Workload] = {
    workload.name: workload for workload in (
        PERLBENCH, BZIP2, GCC, MCF, GOBMK, HMMER, SJENG, LIBQUANTUM,
        H264REF, OMNETPP, ASTAR, XALANCBMK)
}
