"""Floating-point workload analogs (the paper's footnote 3).

The paper notes that with SPEC 2006's floating-point applications
included, the optimized rule-based system reaches **1.92x** (instead of
1.36x on CINT alone): FP rules translate VFP arithmetic to host SSE
scalar ops directly, while QEMU emulates every FP instruction through a
softfloat helper — and SSE ops do not touch the host FLAGS register, so
FP code needs *no* CPU-state coordination at all.

Three kernels in the style of SPEC CFP hot loops: a SAXPY stream, a
Horner polynomial evaluator, and a 3-point stencil smoother.  All
arithmetic is binary32 with bit-exact results across engines, checked by
printing the raw bit patterns.
"""

from __future__ import annotations

from typing import Dict

from .spec import Workload

# f32 constants as bit patterns.
#   1.0 = 0x3F800000   0.5 = 0x3F000000   0.25 = 0x3E800000
#   2.0 = 0x40000000   1.5 = 0x3FC00000   3.0 = 0x40400000

SAXPY = Workload("saxpy", category="specfp",
        expected_output="3f800000\n44f02000\n45ef1800\n", body=r"""
main:
    ldr r4, =USER_HEAP          @ x[]
    ldr r5, =USER_HEAP + 0x1000 @ y[]
    @ initialize x[i] = i * 0.5, y[i] = 1.0  (built with FP adds)
    ldr r0, =0x3F000000         @ 0.5
    str r0, [r4]
    vldr s0, [r4]               @ s0 = 0.5 (the step)
    vsub.f32 s1, s0, s0         @ s1 = running x value = 0.0
    ldr r0, =0x3F800000         @ 1.0
    str r0, [r5]
    vldr s2, [r5]               @ s2 = 1.0
    mov r6, #0
init:
    vstr s1, [r4]
    vstr s2, [r5]
    vadd.f32 s1, s1, s0
    add r4, r4, #4
    add r5, r5, #4
    add r6, r6, #1
    cmp r6, #256
    blt init
    ldr r4, =USER_HEAP
    ldr r5, =USER_HEAP + 0x1000

    @ y[i] = a*x[i] + y[i], a = 1.5, repeated passes
    ldr r0, =0x3FC00000
    str r0, [r4, #0x3F8]
    vldr s7, [r4, #0x3F8]       @ a = 1.5
    mov r8, #0                  @ pass counter
passes:
    mov r6, #0
    mov r0, r4
    mov r1, r5
saxpy:
    vldr s0, [r0]
    vldr s1, [r1]
    vmul.f32 s0, s0, s7
    vadd.f32 s1, s1, s0
    vstr s1, [r1]
    add r0, r0, #4
    add r1, r1, #4
    add r6, r6, #1
    cmp r6, #256
    blt saxpy
    add r8, r8, #1
    cmp r8, #40
    blt passes

    @ print a few raw results
    ldr r0, [r5]
    bl uphex
    ldr r0, [r5, #0x100]
    bl uphex
    ldr r0, [r5, #0x3FC]
    bl uphex
    mov r0, #0
    bl uexit
""")


POLY = Workload("fppoly", category="specfp",
        expected_output="5b0653d8\n", body=r"""
main:
    ldr r4, =USER_HEAP          @ coefficient table c0..c7
    ldr r0, =0x3F800000         @ 1.0
    mov r6, #0
    mov r1, r0
coef:
    str r1, [r4, r6, lsl #2]
    add r1, r1, #0x00100000     @ vary the coefficient bits
    add r6, r6, #1
    cmp r6, #8
    blt coef

    @ Horner: p(x) = ((c7*x + c6)*x + ...)*x + c0 for 600 x values
    ldr r0, =0x3D800000         @ x step = 0.0625
    str r0, [r4, #0x40]
    vldr s1, [r4, #0x40]        @ step
    vsub.f32 s2, s1, s1         @ x = 0.0
    vsub.f32 s10, s1, s1        @ checksum accumulator = 0.0
    mov r8, #0
points:
    vldr s0, [r4, #28]          @ p = c7
    mov r6, #6
horner:
    vmul.f32 s0, s0, s2         @ p *= x
    ldr r1, [r4, r6, lsl #2]
    str r1, [r4, #0x44]
    vldr s3, [r4, #0x44]
    vadd.f32 s0, s0, s3         @ p += c[i]
    subs r6, r6, #1
    bge horner
    vadd.f32 s10, s10, s0       @ accumulate
    vadd.f32 s2, s2, s1         @ x += step
    add r8, r8, #1
    ldr r1, =1600
    cmp r8, r1
    blt points

    vstr s10, [r4, #0x48]
    ldr r0, [r4, #0x48]
    bl uphex
    mov r0, #0
    bl uexit
""")


STENCIL = Workload("fpstencil", category="specfp",
        expected_output="3fe6a923\n3f000002\n",
                   body=r"""
main:
    ldr r4, =USER_HEAP          @ grid of 512 f32 values
    @ seed the grid: v = 2.0; v[i+1] = v[i] * 0.75 + 0.125
    ldr r0, =0x40000000         @ 2.0
    str r0, [r4]
    vldr s0, [r4]
    ldr r0, =0x3F400000         @ 0.75
    str r0, [r4, #4]
    vldr s1, [r4, #4]
    ldr r0, =0x3E000000         @ 0.125
    str r0, [r4, #8]
    vldr s2, [r4, #8]
    mov r6, #0
seed:
    vstr s0, [r4]
    vmul.f32 s0, s0, s1
    vadd.f32 s0, s0, s2
    add r4, r4, #4
    add r6, r6, #1
    cmp r6, #512
    blt seed
    ldr r4, =USER_HEAP

    @ smoothing passes: g[i] = (g[i-1] + g[i] + g[i+1]) * 0.25 + g[i] * 0.25
    ldr r0, =0x3E800000         @ 0.25
    ldr r5, =USER_HEAP + 0x900
    str r0, [r5]
    vldr s7, [r5]
    mov r8, #0
smooth:
    add r0, r4, #4              @ &g[1]
    mov r6, #1
row:
    vldr s0, [r0, #-4]
    vldr s1, [r0]
    vldr s2, [r0, #4]
    vadd.f32 s0, s0, s1
    vadd.f32 s0, s0, s2
    vmul.f32 s0, s0, s7
    vmul.f32 s3, s1, s7
    vadd.f32 s0, s0, s3
    vstr s0, [r0]
    add r0, r0, #4
    add r6, r6, #1
    ldr r1, =511
    cmp r6, r1
    blt row
    add r8, r8, #1
    cmp r8, #30
    blt smooth

    ldr r0, [r4, #4]
    bl uphex
    ldr r0, [r4, #0x400]
    bl uphex
    mov r0, #0
    bl uexit
""")


SPECFP_WORKLOADS: Dict[str, Workload] = {
    workload.name: workload for workload in (SAXPY, POLY, STENCIL)
}
